"""repro.schedule — first-class, inspectable tile schedules for staged kernels.

The ROADMAP's generalization of Orion's ad-hoc schedule directives
(vectorize / linebuffer / parallel): a small library of hashable
schedule objects —

* :class:`Block`      — split one axis into size-``S`` chunks (order-preserving),
* :class:`Tile`       — block a perfect loop nest jointly and interchange,
* :class:`Unroll`     — unroll an axis by a factor with a remainder loop,
* :class:`Vectorize`  — force W-lane vectorization of an innermost axis,
* :class:`Parallel`   — dispatch an axis across worker threads
  (:mod:`repro.parallel` chunked entries),
* :class:`Pack`       — copy an operand tile/panel into contiguous scratch
  (consumed by schedule-aware builders, not the generic lowering),

composing into a :class:`Schedule` applied to *any* staged loop nest with
:func:`apply`.  Axes are named by their loop variable (``for i = ...`` is
axis ``"i"``); lowering happens in the ``schedule`` IR pass
(:mod:`repro.passes.tileschedule`), which runs once per function before
any pipeline level — so levels 0–3, both backends, the tiered
dispatcher, tracing, and the buildd artifact cache all see the scheduled
tree with no special cases.  Invalid schedules raise a typed
:class:`~repro.errors.ScheduleError` naming the offending directive, at
construction when the conflict is schedule-internal and at compile time
when it depends on the loop nest.

Environment knobs (docs/ENVIRONMENT.md):

* ``REPRO_TERRA_SCHEDULE_DISABLE=1`` — ignore attached schedules (compile
  the naive kernel and dispatch serially; the ablation baseline switch);
* ``REPRO_TERRA_SCHEDULE_DUMP=<path|1>`` — write the scheduled IR after
  lowering to a file (or stderr) — what the CI artifact captures.

See docs/SCHEDULES.md for the lowering contract and the Orion-directive
mapping table.

>>> from repro import terra
>>> from repro.schedule import Block, Vectorize, Schedule, apply
>>> fn = terra('''
... terra saxpy(n : int64, a : float, x : &float, y : &float)
...   for i = 0, n do y[i] = a * x[i] + y[i] end
... end
... ''')
>>> kernel = apply(fn, Schedule([Block("i", 512), Vectorize("i", 8)]))
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..errors import ScheduleError

__all__ = [
    "Block", "Tile", "Unroll", "Pack", "Parallel", "Vectorize",
    "Directive", "Schedule", "ScheduledKernel", "ScheduleError",
    "apply", "axes_of", "fuzz_schedule",
]


def _env_disabled() -> bool:
    return os.environ.get("REPRO_TERRA_SCHEDULE_DISABLE", "") not in ("", "0")


# -- directives -------------------------------------------------------------------

@dataclass(frozen=True)
class Directive:
    """Base class: one schedule decision.  Frozen (hashable) so
    schedules can key caches and tuner tables.  Single-axis directives
    carry an ``axis`` field; :class:`Tile` carries ``axes`` — use
    :func:`axes_of` for the uniform view."""

    def _bad(self, message: str) -> ScheduleError:
        return ScheduleError(f"{self}: {message}")


def _check_axis(d: Directive, axis) -> None:
    if not isinstance(axis, str) or not axis:
        raise ScheduleError(f"{type(d).__name__}: axis must be a non-empty "
                            f"loop-variable name, got {axis!r}")


@dataclass(frozen=True)
class Block(Directive):
    """Split ``axis`` into chunks of ``size`` iterations.

    Order-preserving (the chunks cover the range in order, the remainder
    chunk is clamped), so blocking never changes results — it only
    changes locality.  The outer chunk loop is named ``<axis>_o``."""

    axis: str
    size: int

    def __post_init__(self):
        _check_axis(self, self.axis)
        if not isinstance(self.size, int) or self.size < 2:
            raise self._bad(f"block size must be an int >= 2, "
                            f"got {self.size!r}")

    def __str__(self) -> str:
        return f"Block({self.axis!r}, {self.size})"


@dataclass(frozen=True)
class Tile(Directive):
    """Jointly block a *perfectly nested* run of axes and interchange so
    all chunk loops run outside all intra-tile loops (classic loop
    tiling).  ``axes`` must name a chain where each loop's body is
    exactly the next loop; anything between them is a compile-time
    :class:`ScheduleError`.  Reorders iterations across axes — legal for
    the dependence-free nests it accepts."""

    axes: tuple
    sizes: tuple

    def __post_init__(self):
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "sizes", tuple(self.sizes))
        if len(self.axes) < 2:
            raise self._bad("needs at least two axes (use Block for one)")
        if len(self.axes) != len(self.sizes):
            raise self._bad(f"{len(self.axes)} axes but "
                            f"{len(self.sizes)} sizes")
        for a in self.axes:
            _check_axis(self, a)
        if len(set(self.axes)) != len(self.axes):
            raise self._bad("axes must be distinct")
        for s in self.sizes:
            if not isinstance(s, int) or s < 2:
                raise self._bad(f"tile sizes must be ints >= 2, got {s!r}")

    def __str__(self) -> str:
        return f"Tile({list(self.axes)}, {list(self.sizes)})"


@dataclass(frozen=True)
class Unroll(Directive):
    """Unroll ``axis`` by ``factor``: the main loop steps by ``factor``
    with the body repeated (index offset per copy, locals freshened), a
    remainder loop runs the leftover iterations.  Execution order is
    exactly the original loop's, so unrolling never changes results."""

    axis: str
    factor: int

    def __post_init__(self):
        _check_axis(self, self.axis)
        if not isinstance(self.factor, int) or self.factor < 2:
            raise self._bad(f"unroll factor must be an int >= 2, "
                            f"got {self.factor!r}")

    def __str__(self) -> str:
        return f"Unroll({self.axis!r}, {self.factor})"


@dataclass(frozen=True)
class Vectorize(Directive):
    """Vectorize ``axis`` with ``width`` lanes (0 = derive from
    ``REPRO_TERRA_VEC_BYTES``).  Unlike pipeline level 3 — which silently
    bails on unsupported loops — an explicit Vectorize that cannot be
    honored is a :class:`ScheduleError` naming the reason: the axis must
    be innermost (after any Tile/Block) with unit stride and a
    lane-exact body (see passes/vectorize.py)."""

    axis: str
    width: int = 0

    def __post_init__(self):
        _check_axis(self, self.axis)
        w = self.width
        if not isinstance(w, int) or w < 0 or w == 1 \
                or (w > 1 and (w & (w - 1)) != 0):
            raise self._bad(f"width must be 0 (auto) or a power of two "
                            f">= 2, got {w!r}")

    def __str__(self) -> str:
        return f"Vectorize({self.axis!r}, {self.width})"


@dataclass(frozen=True)
class Parallel(Directive):
    """Dispatch ``axis`` across worker threads via the kernel's chunked
    C entry (:mod:`repro.parallel`).  The axis must be the kernel's
    final top-level loop with host-evaluable bounds (constants or whole
    parameters); each worker runs a contiguous ``[lo, hi)`` slice, so
    results are bit-identical to serial for independent iterations.
    ``nthreads=0`` defers to ``REPRO_TERRA_THREADS`` / the core count."""

    axis: str
    nthreads: int = 0

    def __post_init__(self):
        _check_axis(self, self.axis)
        if not isinstance(self.nthreads, int) or self.nthreads < 0:
            raise self._bad(f"nthreads must be an int >= 0, "
                            f"got {self.nthreads!r}")

    def __str__(self) -> str:
        return f"Parallel({self.axis!r}, nthreads={self.nthreads})"


@dataclass(frozen=True)
class Pack(Directive):
    """Copy ``operand`` (a pointer parameter, by name) into contiguous
    scratch — per panel (``layout="panel"``) or per tile
    (``layout="tile"``) — before the compute loops touch it.

    Packing changes how the kernel is *staged*, not how one loop is
    rewritten, so it is consumed by schedule-aware builders
    (``autotune.make_gemm_from_schedule``, ``apps.dequant``); a Pack
    reaching the generic lowering pass is a :class:`ScheduleError`
    (docs/SCHEDULES.md explains the split)."""

    operand: str
    layout: str = "panel"

    LAYOUTS = ("panel", "tile")

    def __post_init__(self):
        if not isinstance(self.operand, str) or not self.operand:
            raise self._bad(f"operand must be a parameter name, "
                            f"got {self.operand!r}")
        if self.layout not in self.LAYOUTS:
            raise self._bad(f"layout must be one of {self.LAYOUTS}, "
                            f"got {self.layout!r}")

    def __str__(self) -> str:
        return f"Pack({self.operand!r}, {self.layout!r})"


def axes_of(d: Directive) -> tuple[str, ...]:
    """The loop axes a directive touches, by loop-variable name."""
    if isinstance(d, Tile):
        return d.axes
    axis = getattr(d, "axis", None)
    return (axis,) if axis else ()


# -- the schedule -----------------------------------------------------------------

class Schedule:
    """An immutable, hashable composition of directives.

    Schedule-internal conflicts (two Blocks on one axis, Vectorize plus
    Unroll on one axis, ...) are rejected at construction; conflicts
    that depend on the loop nest (axis not found, non-innermost
    Vectorize, imperfect Tile nest) are rejected when the schedule is
    lowered at compile time.  ``strict=False`` turns nest-dependent
    rejections into silent skips — the fuzz harness uses it to apply a
    generic schedule to arbitrary generated programs.
    """

    __slots__ = ("directives", "strict")

    def __init__(self, directives: Sequence[Directive] = (),
                 strict: bool = True):
        directives = tuple(directives)
        for d in directives:
            if not isinstance(d, Directive):
                raise ScheduleError(
                    f"Schedule items must be directives "
                    f"(Block/Tile/Unroll/Pack/Parallel/Vectorize), "
                    f"got {d!r}")
        self._validate(directives)
        object.__setattr__(self, "directives", directives)
        object.__setattr__(self, "strict", bool(strict))

    def __setattr__(self, name, value):
        raise AttributeError("Schedule is immutable")

    @staticmethod
    def _validate(directives: tuple) -> None:
        splitters: dict[str, Directive] = {}   # axis -> Block/Tile
        per_kind: dict[tuple, Directive] = {}  # (kind, axis) -> directive
        packs: dict[str, Directive] = {}
        parallel_seen: Optional[Directive] = None
        for d in directives:
            if isinstance(d, (Block, Tile)):
                for axis in axes_of(d):
                    other = splitters.get(axis)
                    if other is not None:
                        raise ScheduleError(
                            f"{d}: axis {axis!r} is already split by "
                            f"{other}")
                    splitters[axis] = d
                continue
            if isinstance(d, Pack):
                other = packs.get(d.operand)
                if other is not None:
                    raise ScheduleError(
                        f"{d}: operand {d.operand!r} is already packed "
                        f"by {other}")
                packs[d.operand] = d
                continue
            if isinstance(d, Parallel):
                if parallel_seen is not None:
                    raise ScheduleError(
                        f"{d}: only one Parallel directive per schedule "
                        f"(already have {parallel_seen})")
                parallel_seen = d
            key = (type(d).__name__, d.axis)
            other = per_kind.get(key)
            if other is not None:
                raise ScheduleError(f"{d}: duplicate of {other}")
            per_kind[key] = d
        # cross-kind conflicts on one axis
        for (kind, axis), d in per_kind.items():
            if kind == "Vectorize" and ("Unroll", axis) in per_kind:
                raise ScheduleError(
                    f"{d}: cannot both Vectorize and Unroll axis "
                    f"{axis!r} — vectorization already widens the body "
                    f"(unroll a different axis)")
            if kind == "Parallel":
                for other_kind in ("Vectorize", "Unroll"):
                    other = per_kind.get((other_kind, axis))
                    if other is not None:
                        raise ScheduleError(
                            f"{d}: axis {axis!r} is the thread-dispatch "
                            f"axis; {other} would change the per-chunk "
                            f"loop structure the chunked entry clamps")

    # -- views ---------------------------------------------------------------

    def __iter__(self) -> Iterator[Directive]:
        return iter(self.directives)

    def __len__(self) -> int:
        return len(self.directives)

    def __bool__(self) -> bool:
        return bool(self.directives)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schedule) \
            and self.directives == other.directives \
            and self.strict == other.strict

    def __hash__(self) -> int:
        return hash((self.directives, self.strict))

    def __repr__(self) -> str:
        inner = ", ".join(str(d) for d in self.directives)
        strict = "" if self.strict else ", strict=False"
        return f"Schedule([{inner}]{strict})"

    def key(self) -> str:
        """A stable human-readable identity — tuner tables and benchmark
        labels key on this."""
        if not self.directives:
            return "naive"
        return "|".join(str(d) for d in self.directives)

    def of_kind(self, kind: type) -> list:
        return [d for d in self.directives if isinstance(d, kind)]

    @property
    def packs(self) -> list:
        return self.of_kind(Pack)

    @property
    def parallel(self) -> Optional[Parallel]:
        found = self.of_kind(Parallel)
        return found[0] if found else None

    def split_size(self, axis: str) -> int:
        """The Block/Tile chunk size on ``axis`` (1 when unsplit) — the
        dispatch grain for a Parallel axis."""
        for d in self.directives:
            if isinstance(d, Block) and d.axis == axis:
                return d.size
            if isinstance(d, Tile) and axis in d.axes:
                return d.sizes[d.axes.index(axis)]
        return 1

    def partition(self, pred) -> tuple["Schedule", "Schedule"]:
        """Split into (matching, rest) schedules; schedule-aware builders
        use this to consume Pack (and the axes they restage) and hand
        the remainder to the generic lowering."""
        hit = [d for d in self.directives if pred(d)]
        rest = [d for d in self.directives if not pred(d)]
        return (Schedule(hit, strict=self.strict),
                Schedule(rest, strict=self.strict))

    def without_packs(self) -> "Schedule":
        return self.partition(lambda d: isinstance(d, Pack))[1]


# -- application ------------------------------------------------------------------

class ScheduledKernel:
    """A scheduled Terra kernel: callable like the function itself, with
    ``Parallel`` dispatch handled host-side.

    Non-``Parallel`` schedules are entirely an IR property, so calls
    simply forward to the function (any backend, any tier).  With a
    ``Parallel(axis)`` directive the call extracts the axis bounds from
    the typed IR (validated by the schedule pass at compile time) and
    drives the kernel's chunked C entry through
    :func:`repro.parallel.parallel_for`.  Everything else (``compile``,
    ``get_c_source``, ``name``, ...) delegates to the function.
    """

    def __init__(self, fn, schedule: Schedule):
        self.fn = fn
        self.schedule = schedule

    def __getattr__(self, name):
        return getattr(self.fn, name)

    def __repr__(self) -> str:
        return f"<scheduled {self.fn.name}: {self.schedule.key()}>"

    def __call__(self, *args):
        par = self.schedule.parallel
        if par is None or _env_disabled():
            return self.fn(*args)
        from ..parallel import parallel_for
        lo, hi = self._axis_bounds(args)
        return parallel_for(self.fn, lo, hi, *args,
                            nthreads=par.nthreads,
                            grain=self.schedule.split_size(par.axis))

    def _axis_bounds(self, args) -> tuple[int, int]:
        """The Parallel axis' (start, limit) for this call — recorded by
        the schedule pass as (expr, expr) and evaluated against the
        actual arguments (constants or whole parameters only)."""
        self.fn.compile("c")  # runs the schedule pass if it hasn't yet
        typed = self.fn.typed
        bounds = getattr(typed, "_sched_parallel_bounds", None)
        if bounds is None:
            raise ScheduleError(
                f"{self.schedule.parallel}: no dispatch bounds recorded "
                f"for {self.fn.name!r} (was the schedule disabled?)")
        params = {sym: i for i, sym in enumerate(typed.param_symbols)}

        def ev(expr):
            from ..core import tast
            e = expr
            while isinstance(e, tast.TCast):
                e = e.expr
            if isinstance(e, tast.TConst):
                return int(e.value)
            if isinstance(e, tast.TVar) and e.symbol in params:
                return int(args[params[e.symbol]])
            raise ScheduleError(
                f"{self.schedule.parallel}: cannot evaluate loop bound "
                f"for host-side dispatch")

        return ev(bounds[0]), ev(bounds[1])


def apply(fn, schedule) -> ScheduledKernel:
    """Attach ``schedule`` to Terra function ``fn``; returns the
    :class:`ScheduledKernel` wrapper.

    Must run before the function is typechecked or compiled: the
    schedule is part of the compiled artifact's identity (a scheduled
    kernel emits different C, hence a different buildd cache entry).
    Accepts a bare directive as shorthand for a one-entry schedule.
    """
    if isinstance(schedule, Directive):
        schedule = Schedule([schedule])
    if not isinstance(schedule, Schedule):
        raise ScheduleError(
            f"apply() needs a Schedule or a directive, got {schedule!r}")
    if not getattr(fn, "is_terra_function", False):
        raise ScheduleError(
            f"apply() schedules Terra functions, got {fn!r}")
    if getattr(fn, "is_external", False):
        raise ScheduleError(
            f"apply(): {fn.name!r} is external — there is no staged loop "
            f"nest to schedule")
    if getattr(fn, "typed", None) is not None:
        raise ScheduleError(
            f"apply(): {fn.name!r} is already typechecked; schedules "
            f"must be attached before the first compile or call")
    if getattr(fn, "schedule", None) is not None:
        raise ScheduleError(
            f"apply(): {fn.name!r} already has a schedule "
            f"({fn.schedule.key()}); schedules are immutable per function")
    if schedule.strict and schedule.packs:
        raise ScheduleError(
            f"{schedule.packs[0]}: Pack is consumed by schedule-aware "
            f"builders (make_gemm_from_schedule, apps.dequant), not the "
            f"generic lowering — see docs/SCHEDULES.md")
    fn.schedule = schedule
    if schedule.parallel is not None and not _env_disabled():
        fn.mark_chunked()
    return ScheduledKernel(fn, schedule)


def fuzz_schedule() -> Schedule:
    """The deterministic lenient schedule the fuzz harness applies to
    generated programs: block every loop the generators name (``i`` in
    array kernels, ``i1``/``i2``/... in scalar programs) by a
    deliberately non-dividing size, exercising the remainder/clamp paths
    against the unscheduled configs.  Lenient resolution applies a
    directive to every matching loop and skips loops the lowering
    cannot handle — semantics are untouched either way."""
    return Schedule([Block("i", 3), Block("i1", 3),
                     Block("i2", 3), Block("i3", 3)], strict=False)
