"""Lowering of :class:`~repro.schedule.Schedule` directives onto typed IR.

Called by the ``schedule`` pass (:mod:`repro.passes.tileschedule`) once
per function, before any pipeline level.  The rewrites reuse the
auto-vectorizer's machinery where it exists:

* **Block/Tile** use the vectorizer's hoisted-bounds idiom — bounds are
  evaluated once into locals, the intra-chunk limit is clamped with a
  conditional (handles non-dividing sizes with no separate epilogue),
  and iteration *order* per axis is preserved exactly;
* **Unroll** uses the vectorizer's trip-count/epilogue pattern — a
  multiple-of-F main loop with F offset body copies, then a remainder
  loop running the original body;
* **Vectorize** calls straight into ``passes/vectorize.py`` with a
  forced lane width; a bailout there becomes a
  :class:`~repro.errors.ScheduleError` naming the directive (an
  explicit request is honored or rejected, never silently dropped);
* **Parallel** is validated here (final top-level loop, host-evaluable
  bounds) and recorded on the TypedFunction for
  :class:`~repro.schedule.ScheduledKernel` to dispatch through the
  chunked-entry path.

Every loop that still *contains the original body* (the intra-chunk
loop, the unroll remainder) is tagged with a shared ``_sched_origin``
token, which the vectorizer's bailout accounting uses to count one
``vec.bailouts.<reason>`` per *original* loop rather than per generated
instance (metrics stay comparable across schedules).

Axis resolution is by loop-variable name over the whole body.  In
strict schedules an unknown or ambiguous axis is a ScheduleError; in
lenient schedules (``strict=False``, the fuzz harness) a directive
applies to every matching qualifying loop and silently skips the rest.
"""

from __future__ import annotations

from ..core import tast
from ..core import types as T
from ..core.symbols import Symbol
from ..errors import ScheduleError
from ..passes.analysis import expr_may_trap, has_side_effects
from . import Block, Parallel, Schedule, Tile, Unroll, Vectorize


def _metric(name: str, n: int = 1) -> None:
    from ..trace.metrics import registry
    registry().add(name, n)


# -- tree navigation --------------------------------------------------------------

def _child_blocks(stat):
    if isinstance(stat, tast.TIf):
        for _, body in stat.branches:
            yield body
        if stat.orelse is not None:
            yield stat.orelse
        return
    for f in stat._fields:
        child = getattr(stat, f, None)
        if isinstance(child, tast.TBlock):
            yield child


def _iter_slots(block):
    """Yield ``(block, index, statement)`` for every statement position
    in the tree (statement positions only — a loop buried inside a
    ``TLetIn`` expression is not replaceable)."""
    for idx, stat in enumerate(list(block.statements)):
        yield block, idx, stat
        for child in _child_blocks(stat):
            yield from _iter_slots(child)


def _loops_named(body, axis: str) -> list:
    return [n for n in tast.walk(body)
            if isinstance(n, tast.TForNum)
            and (n.symbol.displayname or "") == axis]


def _slot_of(body, loop):
    for block, idx, stat in _iter_slots(body):
        if stat is loop:
            return block, idx
    return None


def _resolve_axis(typed, axis: str, directive):
    """The unique TForNum for ``axis`` plus its statement slot, or a
    ScheduleError naming the directive (strict mode)."""
    loops = _loops_named(typed.body, axis)
    if not loops:
        raise ScheduleError(
            f"{directive}: axis {axis!r} not found in {typed.name!r} "
            f"(axes are loop-variable names)")
    if len(loops) > 1:
        raise ScheduleError(
            f"{directive}: axis {axis!r} is ambiguous in {typed.name!r} "
            f"({len(loops)} loops use that name)")
    slot = _slot_of(typed.body, loops[0])
    if slot is None:
        raise ScheduleError(
            f"{directive}: axis {axis!r} in {typed.name!r} is inside an "
            f"expression; only statement-position loops can be scheduled")
    return loops[0], slot


# -- qualification ----------------------------------------------------------------

def _has_reachable_break(block) -> bool:
    """A ``break`` that would leave *this* loop (not a nested one)."""
    for stat in block.statements:
        if isinstance(stat, tast.TBreak):
            return True
        if isinstance(stat, (tast.TForNum, tast.TWhile, tast.TRepeat)):
            continue  # a nested loop absorbs its own breaks
        if any(_has_reachable_break(child) for child in _child_blocks(stat)):
            return True
    return False


def _qualify(typed, loop, directive) -> None:
    """Common legality for Block/Tile/Unroll: raise ScheduleError (the
    lenient path catches it) when the rewrite cannot be proven exact."""
    step = loop.step
    if step is not None and not (isinstance(step, tast.TConst)
                                 and step.value == 1):
        raise ScheduleError(
            f"{directive}: axis {loop.symbol.displayname!r} has a "
            f"non-unit step; only unit-stride axes can be split")
    vt = loop.var_type
    if not (isinstance(vt, T.PrimitiveType) and vt.isintegral()
            and not vt.islogical()):
        raise ScheduleError(
            f"{directive}: axis {loop.symbol.displayname!r} has "
            f"non-integral loop-variable type {vt}")
    for bound in (loop.start, loop.limit):
        if has_side_effects(bound) or expr_may_trap(bound):
            raise ScheduleError(
                f"{directive}: axis {loop.symbol.displayname!r} has "
                f"impure or trapping bounds; they must be hoistable")
    if _has_reachable_break(loop.body):
        raise ScheduleError(
            f"{directive}: axis {loop.symbol.displayname!r} body "
            f"contains a break; an early exit would skip the remainder "
            f"iterations")
    for node in tast.walk(loop.body):
        if isinstance(node, tast.TAssign) and any(
                isinstance(lhs, tast.TVar) and lhs.symbol is loop.symbol
                for lhs in node.lhs):
            raise ScheduleError(
                f"{directive}: axis {loop.symbol.displayname!r} loop "
                f"variable is assigned in the body")


def _origin_of(loop):
    """The loop's identity token for bailout accounting — created once
    and shared by every generated loop that still runs its body."""
    origin = getattr(loop, "_sched_origin", None)
    if origin is None:
        origin = object()
    return origin


# -- statement splicing -----------------------------------------------------------

def _splice(typed, slot, statements: list) -> None:
    """Replace the statement at ``slot`` with ``statements``.

    At the *final top-level* position the statements are spliced inline
    (no ``do`` wrapper), so a loop that stays last keeps the shape the
    chunked-entry emitter requires; everywhere else they are wrapped in
    a ``do`` block to keep scoping tight."""
    block, idx = slot
    top_final = block is typed.body and idx == len(block.statements) - 1
    if top_final:
        block.statements[idx:idx + 1] = statements
    else:
        block.statements[idx] = tast.TDoStat(tast.TBlock(statements))


# -- Block ------------------------------------------------------------------------

def _build_block(loop, size: int, origin) -> list:
    """``[bounds decls, outer chunk loop]`` for one Block rewrite."""
    vt = loop.var_type
    axis = loop.symbol.displayname or "i"

    def var(sym):
        return tast.TVar(sym, vt)

    def const(v):
        return tast.TConst(v, vt)

    bs = Symbol(vt, f"{axis}_bs")
    bl = Symbol(vt, f"{axis}_bl")
    io = Symbol(vt, f"{axis}_o")
    hi = Symbol(vt, f"{axis}_hi")
    limit_decl = tast.TVarDecl(
        [hi], [vt], [tast.TBinOp("+", var(io), const(size), vt)])
    clamp = tast.TIf(
        [(tast.TBinOp(">", var(hi), var(bl), T.bool_),
          tast.TBlock([tast.TAssign([var(hi)], [var(bl)])]))], None)
    inner = tast.TForNum(loop.symbol, vt, var(io), var(hi), None,
                         loop.body, step_sign=1, location=loop.location)
    inner._sched_origin = origin
    outer = tast.TForNum(io, vt, var(bs), var(bl), const(size),
                         tast.TBlock([limit_decl, clamp, inner]),
                         step_sign=1, location=loop.location)
    outer._sched_origin = origin
    outer._sched_outer = True
    return [tast.TVarDecl([bs], [vt], [loop.start]),
            tast.TVarDecl([bl], [vt], [loop.limit]),
            outer]


def _lower_block(typed, d: Block, lenient: bool) -> bool:
    if lenient:
        changed = False
        matches = _loops_named(typed.body, d.axis)
        if not matches:
            _metric("sched.skipped")
            return False
        for loop in matches:
            slot = _slot_of(typed.body, loop)
            if slot is None:
                continue
            try:
                _qualify(typed, loop, d)
            except ScheduleError:
                _metric("sched.skipped")
                continue
            _splice(typed, slot, _build_block(loop, d.size, _origin_of(loop)))
            _metric("sched.blocked")
            changed = True
        return changed
    loop, slot = _resolve_axis(typed, d.axis, d)
    _qualify(typed, loop, d)
    _splice(typed, slot, _build_block(loop, d.size, _origin_of(loop)))
    _metric("sched.blocked")
    return True


# -- Tile -------------------------------------------------------------------------

def _lower_tile(typed, d: Tile) -> bool:
    loops = []
    for axis in d.axes:
        loop, slot = _resolve_axis(typed, axis, d)
        loops.append(loop)
    slot = _slot_of(typed.body, loops[0])
    # perfect nesting, in the listed order
    for outer, inner, axis in zip(loops, loops[1:], d.axes[1:]):
        stmts = outer.body.statements
        if len(stmts) != 1 or stmts[0] is not inner:
            raise ScheduleError(
                f"{d}: axes must form a perfect nest — the body of "
                f"{outer.symbol.displayname!r} is not exactly the "
                f"{axis!r} loop")
    outer_syms: set = set()
    for loop in loops:
        _qualify(typed, loop, d)
        for bound in (loop.start, loop.limit):
            for node in tast.walk(bound):
                if isinstance(node, tast.TVar) and node.symbol in outer_syms:
                    raise ScheduleError(
                        f"{d}: bounds of axis "
                        f"{loop.symbol.displayname!r} depend on an outer "
                        f"tiled axis — the nest is not rectangular")
        outer_syms.add(loop.symbol)

    decls: list = []
    chunk_syms: list = []     # (io, bs, bl, hi) per axis
    for loop, size in zip(loops, d.sizes):
        vt = loop.var_type
        axis = loop.symbol.displayname or "i"
        bs = Symbol(vt, f"{axis}_bs")
        bl = Symbol(vt, f"{axis}_bl")
        io = Symbol(vt, f"{axis}_o")
        hi = Symbol(vt, f"{axis}_hi")
        decls.append(tast.TVarDecl([bs], [vt], [loop.start]))
        decls.append(tast.TVarDecl([bl], [vt], [loop.limit]))
        chunk_syms.append((io, bs, bl, hi))

    # innermost outward: intra-tile loops around the original body
    inner_stmt = loops[-1].body
    for loop, (io, _, bl, hi) in zip(reversed(loops), reversed(chunk_syms)):
        vt = loop.var_type
        body = inner_stmt if isinstance(inner_stmt, tast.TBlock) \
            else tast.TBlock([inner_stmt])
        intra = tast.TForNum(loop.symbol, vt, tast.TVar(io, vt),
                             tast.TVar(hi, vt), None, body,
                             step_sign=1, location=loop.location)
        intra._sched_origin = _origin_of(loop)
        inner_stmt = intra

    # the clamped intra-tile limits, computed inside the innermost chunk loop
    limit_stmts: list = []
    for loop, (io, _, bl, hi) in zip(loops, chunk_syms):
        vt = loop.var_type
        size = d.sizes[loops.index(loop)]
        limit_stmts.append(tast.TVarDecl(
            [hi], [vt],
            [tast.TBinOp("+", tast.TVar(io, vt),
                         tast.TConst(size, vt), vt)]))
        limit_stmts.append(tast.TIf(
            [(tast.TBinOp(">", tast.TVar(hi, vt), tast.TVar(bl, vt),
                          T.bool_),
              tast.TBlock([tast.TAssign([tast.TVar(hi, vt)],
                                        [tast.TVar(bl, vt)])]))], None))

    nest = tast.TBlock(limit_stmts + [inner_stmt])
    for loop, size, (io, bs, bl, hi) in zip(reversed(loops),
                                            reversed(d.sizes),
                                            reversed(chunk_syms)):
        vt = loop.var_type
        chunk = tast.TForNum(io, vt, tast.TVar(bs, vt), tast.TVar(bl, vt),
                             tast.TConst(size, vt), nest,
                             step_sign=1, location=loop.location)
        chunk._sched_outer = True
        nest = tast.TBlock([chunk])
    _splice(typed, slot, decls + list(nest.statements))
    _metric("sched.tiled")
    return True


# -- Unroll -----------------------------------------------------------------------

def _replace_vars(node, repl) -> None:
    """In-place: substitute TVar nodes per ``repl(var) -> expr | None``."""

    def sub(value):
        if isinstance(value, tast.TVar):
            new = repl(value)
            if new is not None:
                return new
        if isinstance(value, tast.TNode):
            _replace_vars(value, repl)
        return value

    for f in node._fields:
        value = getattr(node, f, None)
        if isinstance(value, tast.TNode):
            setattr(node, f, sub(value))
        elif isinstance(value, list):
            for i, item in enumerate(value):
                if isinstance(item, tast.TNode):
                    value[i] = sub(item)
                elif isinstance(item, tuple):  # TIf branches
                    value[i] = tuple(sub(x) if isinstance(x, tast.TNode)
                                     else x for x in item)


def _offset_body_copy(loop, k: int):
    """A clone of the loop body for unroll copy ``k``: the loop variable
    reads become ``var + k`` and every binder declared inside the copy is
    freshened (two copies must not share local symbols)."""
    body = tast.clone(loop.body)
    vt = loop.var_type
    fresh: dict = {}
    for node in tast.walk(body):
        if isinstance(node, tast.TVarDecl):
            node.symbols = [
                fresh.setdefault(
                    s, Symbol(ty, f"{s.displayname or 'v'}_u{k}"))
                for s, ty in zip(node.symbols, node.types)]
        elif isinstance(node, tast.TForNum):
            node.symbol = fresh.setdefault(
                node.symbol,
                Symbol(node.var_type,
                       f"{node.symbol.displayname or 'i'}_u{k}"))

    def repl(var):
        if var.symbol is loop.symbol:
            if k == 0:
                return None
            return tast.TBinOp("+", tast.TVar(loop.symbol, vt),
                               tast.TConst(k, vt), vt)
        twin = fresh.get(var.symbol)
        if twin is not None:
            return tast.TVar(twin, var.type)
        return None

    _replace_vars(body, repl)
    return body


def _lower_unroll(typed, d: Unroll, lenient: bool) -> bool:
    try:
        loop, slot = _resolve_axis(typed, d.axis, d)
        _qualify(typed, loop, d)
    except ScheduleError:
        if lenient:
            _metric("sched.skipped")
            return False
        raise
    F = d.factor
    vt = loop.var_type
    axis = loop.symbol.displayname or "i"
    origin = _origin_of(loop)

    def var(sym):
        return tast.TVar(sym, vt)

    def const(v):
        return tast.TConst(v, vt)

    us = Symbol(vt, f"{axis}_us")
    ul = Symbol(vt, f"{axis}_ul")
    ue = Symbol(vt, f"{axis}_ue")
    # ue = us; if us < ul then ue = ul - ((ul - us) % F) end   — the
    # vectorizer's multiple-of-W prefix, for arbitrary (non-power-of-2) F
    prefix = tast.TAssign(
        [var(ue)],
        [tast.TBinOp(
            "-", var(ul),
            tast.TBinOp("%",
                        tast.TBinOp("-", var(ul), var(us), vt),
                        const(F), vt),
            vt)])
    guard = tast.TIf(
        [(tast.TBinOp("<", var(us), var(ul), T.bool_),
          tast.TBlock([prefix]))], None)

    main_stmts: list = []
    for k in range(F):
        main_stmts.extend(_offset_body_copy(loop, k).statements)
    main = tast.TForNum(loop.symbol, vt, var(us), var(ue), const(F),
                        tast.TBlock(main_stmts), step_sign=1,
                        location=loop.location)
    main._sched_origin = origin
    remainder = tast.TForNum(loop.symbol, vt, var(ue), var(ul), None,
                             loop.body, step_sign=1,
                             location=loop.location)
    remainder._sched_origin = origin
    _splice(typed, slot, [
        tast.TVarDecl([us], [vt], [loop.start]),
        tast.TVarDecl([ul], [vt], [loop.limit]),
        tast.TVarDecl([ue], [vt], [var(us)]),
        guard,
        main,
        remainder,
    ])
    _metric("sched.unrolled")
    return True


# -- Vectorize --------------------------------------------------------------------

def _lower_vectorize(typed, d: Vectorize, lenient: bool) -> bool:
    from ..passes import vectorize as vz
    try:
        loop, slot = _resolve_axis(typed, d.axis, d)
    except ScheduleError:
        if lenient:
            _metric("sched.skipped")
            return False
        raise
    if vz._contains_loop(loop.body):
        err = ScheduleError(
            f"{d}: axis {d.axis!r} is not innermost — vectorization "
            f"needs a flat body (Tile/Block the outer axes instead)")
        if lenient:
            _metric("sched.skipped")
            return False
        raise err
    addr_taken = vz._addr_taken_symbols(typed.body)
    try:
        replacement = vz.vectorize_loop(loop, addr_taken, d.width)
    except vz._Bail as bail:
        if lenient:
            _metric("sched.skipped")
            return False
        raise ScheduleError(
            f"{d}: cannot vectorize axis {d.axis!r} "
            f"(vectorizer bailed: {bail.reason})")
    block, idx = slot
    if block is typed.body and idx == len(block.statements) - 1 \
            and getattr(typed.func, "emit_chunk", False):
        if lenient:
            _metric("sched.skipped")
            return False
        raise ScheduleError(
            f"{d}: axis {d.axis!r} is the chunked-dispatch loop; "
            f"vectorizing it would break the chunked entry "
            f"(vectorize an inner axis instead)")
    block.statements[idx] = replacement
    _metric("sched.vectorized")
    return True


# -- Parallel ---------------------------------------------------------------------

def _validate_parallel(typed, d: Parallel) -> None:
    """Check the Parallel axis *before* other rewrites and record its
    dispatch bounds; the splice rules keep its (possibly blocked) loop
    the final top-level statement."""
    loop, slot = _resolve_axis(typed, d.axis, d)
    block, idx = slot
    if block is not typed.body or idx != len(block.statements) - 1:
        raise ScheduleError(
            f"{d}: axis {d.axis!r} must be the final top-level loop of "
            f"{typed.name!r} — that is the loop the chunked entry "
            f"clamps to [lo, hi)")
    if typed.type.returns:
        raise ScheduleError(
            f"{d}: {typed.name!r} returns {typed.type.returntype}; "
            f"parallel kernels must return nothing (results go through "
            f"out-pointers)")
    _qualify(typed, loop, d)
    params = set(typed.param_symbols)

    def host_evaluable(expr) -> bool:
        e = expr
        while isinstance(e, tast.TCast):
            e = e.expr
        return isinstance(e, tast.TConst) or (
            isinstance(e, tast.TVar) and e.symbol in params)

    for bound in (loop.start, loop.limit):
        if not host_evaluable(bound):
            raise ScheduleError(
                f"{d}: axis {d.axis!r} bounds must be constants or "
                f"whole parameters so the host can split [lo, hi) "
                f"across workers")
    typed._sched_parallel_bounds = (tast.clone(loop.start),
                                    tast.clone(loop.limit))


# -- entry ------------------------------------------------------------------------

def lower_schedule(typed, schedule: Schedule) -> bool:
    """Apply every directive of ``schedule`` to ``typed`` in canonical
    phase order — Parallel validation, Tile, Block, Unroll, Vectorize —
    independent of construction order.  Returns True when the tree
    changed."""
    lenient = not schedule.strict
    changed = False
    packs = schedule.packs
    if packs and schedule.strict:
        raise ScheduleError(
            f"{packs[0]}: Pack reached the generic lowering — it is "
            f"consumed by schedule-aware builders (docs/SCHEDULES.md)")
    par = schedule.parallel
    if par is not None:
        try:
            _validate_parallel(typed, par)
        except ScheduleError:
            if not lenient:
                raise
            _metric("sched.skipped")
    for d in schedule.of_kind(Tile):
        try:
            changed = _lower_tile(typed, d) or changed
        except ScheduleError:
            if not lenient:
                raise
            _metric("sched.skipped")
    for d in schedule.of_kind(Block):
        changed = _lower_block(typed, d, lenient) or changed
    for d in schedule.of_kind(Unroll):
        changed = _lower_unroll(typed, d, lenient) or changed
    for d in schedule.of_kind(Vectorize):
        changed = _lower_vectorize(typed, d, lenient) or changed
    if changed:
        _metric("sched.applied")
    return changed
