"""Frontends: surface syntaxes that lower onto the shared Terra core.

Two frontends ship with the reproduction:

* the **string frontend** (``terra("terra f(...) ... end")``) — the
  paper-faithful Lua-Terra syntax, lexed and parsed by
  :mod:`repro.core.lexer` / :mod:`repro.core.parser`;
* the **decorator frontend** (``@terra`` on a type-annotated Python
  function) — implemented here in :mod:`repro.frontend.pyast` on top of
  Python's own :mod:`ast` module.

Both produce untyped :mod:`repro.core.ast` trees and flow through one
shared path: eager specialization, lazy typechecking, the pass pipeline,
both backends and the tiered dispatcher.  The contract a frontend must
satisfy is documented in ``docs/FRONTENDS.md`` and enforced by
:func:`repro.core.sast.validate_definition` at
:meth:`repro.core.function.TerraFunction.define` time.
"""

from .pyast import addr, define_pyfunc, deref

__all__ = ["define_pyfunc", "addr", "deref"]
