"""The ``@terra`` decorator frontend — staged Terra in Python syntax.

The paper embeds Terra in Lua; this module embeds the same object
language in *Python* syntax, so a kernel can be written as a decorated,
type-annotated Python function::

    from repro import terra, int32, ptr

    @terra
    def saxpy(y: ptr(float), x: ptr(float), a: float, n: int32) -> None:
        for i in range(n):
            y[i] = a * x[i] + y[i]

The decorated function is **never executed as Python**.  Its source is
re-read through Python's :mod:`ast` module and lowered into the same
untyped Terra AST (:mod:`repro.core.ast`) the string parser produces;
from there it flows through the one shared path: eager specialization
(:class:`repro.core.specialize.Specializer`), lazy typechecking, the
pass pipeline (levels 0–3 including the vectorizer), both backends, and
the tiered dispatcher.  Nothing downstream of ``TerraFunction.define``
knows which frontend produced a function — that boundary is the
frontend↔IR contract documented in ``docs/FRONTENDS.md``.

Staging hooks (the paper's §4.1 escape semantics, verbatim):

* ``{expr}`` — a one-element set literal is an **escape**: the enclosed
  Python expression is evaluated eagerly during specialization in the
  decoration-site lexical environment, and its value (a constant, type,
  symbol, Terra function or :class:`~repro.core.quotes.Quote`) is
  spliced in.  In statement position a list of quotes splices as
  multiple statements, exactly like the string frontend's ``[...]``.
* a free Python name in the body resolves through the same environment
  at specialization time (closed-over constants, other ``@terra``
  functions, intrinsics) — the SVAR rule.

Surface subset (anything else is a :class:`TerraSyntaxError` carrying
the original Python source location): ``if``/``elif``/``else``,
``while``, ``for i in range(...)`` (Terra's half-open numeric loop),
annotated and first-assignment local declarations, pointer/array
indexing, ``addr(x)`` / ``deref(p)`` for ``&x`` / ``@p``, calls to
other Terra functions and intrinsics, ``return`` (including tuples),
``break``, and escapes.
"""

from __future__ import annotations

import ast as pyast
import inspect
import os
import sys
import textwrap
from typing import Optional

from .. import trace
from ..errors import SourceLocation, TerraError, TerraSyntaxError
from ..core import ast as tast
from ..core.env import Environment
from ..core.function import TerraFunction
from ..core.specialize import Specializer

__all__ = ["define_pyfunc", "addr", "deref"]


def addr(value):  # pragma: no cover - marker, never executed
    """``addr(x)`` inside ``@terra`` code lowers to Terra's ``&x``.

    Importable so editors/linters see a real name; calling it from
    ordinary Python is an error by construction.
    """
    raise TerraError("addr() is @terra staging syntax; it has no meaning "
                     "outside a decorated Terra function")


def deref(pointer):  # pragma: no cover - marker, never executed
    """``deref(p)`` inside ``@terra`` code lowers to Terra's ``@p``."""
    raise TerraError("deref() is @terra staging syntax; it has no meaning "
                     "outside a decorated Terra function")


#: Python operator node -> Terra binary operator spelling
_BINOPS = {
    pyast.Add: "+", pyast.Sub: "-", pyast.Mult: "*",
    pyast.Div: "/", pyast.FloorDiv: "/", pyast.Mod: "%",
    pyast.LShift: "<<", pyast.RShift: ">>",
    pyast.BitOr: "|", pyast.BitXor: "^", pyast.BitAnd: "&",
}

_CMPOPS = {
    pyast.Eq: "==", pyast.NotEq: "~=",
    pyast.Lt: "<", pyast.LtE: "<=", pyast.Gt: ">", pyast.GtE: ">=",
}


def _escape_payload(node: pyast.expr) -> Optional[pyast.expr]:
    """The inner expression when ``node`` is a ``{...}`` escape literal."""
    if isinstance(node, pyast.Set) and len(node.elts) == 1:
        return node.elts[0]
    return None


class _Lowerer:
    """Lowers one Python ``ast.FunctionDef`` to an untyped Terra tree.

    Tracks a stack of lexical block scopes mirroring the specializer's:
    a plain first assignment to an unseen name *declares* a new Terra
    local in the current block (like ``var x = e``); later assignments
    in the same or inner blocks mutate it.
    """

    def __init__(self, filename: str, lines: list[str], line_offset: int):
        self.filename = filename
        self.lines = lines
        self.line_offset = line_offset
        self.scopes: list[set[str]] = [set()]

    # -- bookkeeping --------------------------------------------------------
    def loc(self, node) -> SourceLocation:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        text = self.lines[lineno - 1] if 0 < lineno <= len(self.lines) else None
        return SourceLocation(self.filename, lineno + self.line_offset,
                              col, text)

    def error(self, message: str, node) -> TerraSyntaxError:
        return TerraSyntaxError(message, self.loc(node))

    def declared(self, name: str) -> bool:
        return any(name in scope for scope in self.scopes)

    def declare(self, name: str) -> None:
        self.scopes[-1].add(name)

    # -- entry point --------------------------------------------------------
    def lower_function(self, fdef: pyast.FunctionDef) -> tast.FunctionDef:
        args = fdef.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.defaults \
                or args.kw_defaults:
            raise self.error(
                "@terra functions take only plain positional parameters "
                "(no *args, **kwargs, keyword-only arguments or defaults)",
                fdef)
        params = []
        for arg in args.posonlyargs + args.args:
            if arg.annotation is None:
                raise self.error(
                    f"@terra parameter {arg.arg!r} needs a Terra type "
                    f"annotation (e.g. {arg.arg}: int32)", arg)
            params.append(tast.Param(arg.arg, None,
                                     self.expr(arg.annotation),
                                     self.loc(arg)))
            self.declare(arg.arg)
        rettype = None
        if fdef.returns is not None:
            if isinstance(fdef.returns, pyast.Constant) \
                    and fdef.returns.value is None:
                # ``-> None`` is Terra's unit type ``{}``
                rettype = tast.TupleTypeExpr([], self.loc(fdef.returns))
            else:
                rettype = self.expr(fdef.returns)
        body = self.block(fdef.body, fdef)
        return tast.FunctionDef([fdef.name], None, params, rettype, body,
                                self.loc(fdef))

    # -- statements ---------------------------------------------------------
    def block(self, body: list[pyast.stmt], parent) -> tast.Block:
        self.scopes.append(set())
        try:
            out: list[tast.Stat] = []
            for stmt in body:
                lowered = self.stat(stmt)
                if lowered is not None:
                    out.append(lowered)
            return tast.Block(out, self.loc(parent))
        finally:
            self.scopes.pop()

    def stat(self, node: pyast.stmt) -> Optional[tast.Stat]:
        loc = self.loc(node)
        if isinstance(node, pyast.AnnAssign):
            return self.ann_assign(node)
        if isinstance(node, pyast.Assign):
            return self.assign(node)
        if isinstance(node, pyast.AugAssign):
            return self.aug_assign(node)
        if isinstance(node, pyast.If):
            return self.if_stat(node)
        if isinstance(node, pyast.While):
            if node.orelse:
                raise self.error("while/else has no Terra equivalent", node)
            return tast.WhileStat(self.expr(node.test),
                                  self.block(node.body, node), loc)
        if isinstance(node, pyast.For):
            return self.for_stat(node)
        if isinstance(node, pyast.Return):
            if node.value is None:
                return tast.ReturnStat([], loc)
            if isinstance(node.value, pyast.Tuple):
                return tast.ReturnStat([self.expr(e) for e in node.value.elts],
                                       loc)
            return tast.ReturnStat([self.expr(node.value)], loc)
        if isinstance(node, pyast.Break):
            return tast.BreakStat(loc)
        if isinstance(node, pyast.Continue):
            raise self.error("continue is not part of the Terra subset "
                             "(restructure with if/else)", node)
        if isinstance(node, pyast.Pass):
            return None
        if isinstance(node, pyast.Expr):
            if isinstance(node.value, pyast.Constant) \
                    and isinstance(node.value.value, str):
                return None  # docstring
            payload = _escape_payload(node.value)
            if payload is not None:
                return tast.EscapeStat(pyast.unparse(payload), loc)
            return tast.ExprStat(self.expr(node.value), loc)
        raise self.error(
            f"{type(node).__name__} is outside the @terra statement subset "
            f"(see docs/FRONTENDS.md for what a frontend may emit)", node)

    def ann_assign(self, node: pyast.AnnAssign) -> tast.Stat:
        if not isinstance(node.target, pyast.Name):
            raise self.error("only simple names can be declared with a type "
                             "annotation", node.target)
        target = tast.VarTarget(node.target.id, None, self.expr(node.annotation))
        inits = [self.expr(node.value)] if node.value is not None else None
        self.declare(node.target.id)
        return tast.VarStat([target], inits, self.loc(node))

    def assign(self, node: pyast.Assign) -> tast.Stat:
        if len(node.targets) != 1:
            raise self.error("chained assignment (a = b = e) is not part of "
                             "the Terra subset", node)
        target = node.targets[0]
        loc = self.loc(node)
        rhs = [self.expr(e) for e in node.value.elts] \
            if isinstance(node.value, pyast.Tuple) \
            else [self.expr(node.value)]
        if isinstance(target, pyast.Name):
            if not self.declared(target.id):
                # first assignment declares, like Terra's ``var x = e``
                self.declare(target.id)
                return tast.VarStat(
                    [tast.VarTarget(target.id, None, None)], rhs, loc)
            return tast.AssignStat([self.expr(target)], rhs, loc)
        if isinstance(target, pyast.Tuple):
            names = [t for t in target.elts if isinstance(t, pyast.Name)]
            if len(names) == len(target.elts) \
                    and not any(self.declared(t.id) for t in names):
                for t in names:
                    self.declare(t.id)
                return tast.VarStat(
                    [tast.VarTarget(t.id, None, None) for t in names],
                    rhs, loc)
            return tast.AssignStat([self.expr(t) for t in target.elts],
                                   rhs, loc)
        if isinstance(target, (pyast.Subscript, pyast.Attribute)):
            return tast.AssignStat([self.expr(target)], rhs, loc)
        raise self.error(
            f"cannot assign to {type(target).__name__} in Terra code", target)

    def aug_assign(self, node: pyast.AugAssign) -> tast.Stat:
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise self.error(
                f"augmented operator {type(node.op).__name__} has no Terra "
                f"equivalent", node)
        if isinstance(node.target, pyast.Name) \
                and not self.declared(node.target.id):
            raise self.error(
                f"{node.target.id!r} is augmented before any assignment "
                f"declares it", node)
        lhs = self.expr(node.target)
        rhs = tast.BinOp(op, self.expr(node.target), self.expr(node.value),
                         self.loc(node))
        return tast.AssignStat([lhs], [rhs], self.loc(node))

    def if_stat(self, node: pyast.If) -> tast.Stat:
        branches = [(self.expr(node.test), self.block(node.body, node))]
        orelse = node.orelse
        # Python spells ``elif`` as a single If nested in orelse; flatten
        # into the branch list, matching the string parser's ``elseif``.
        while len(orelse) == 1 and isinstance(orelse[0], pyast.If):
            nested = orelse[0]
            branches.append((self.expr(nested.test),
                             self.block(nested.body, nested)))
            orelse = nested.orelse
        lowered_else = self.block(orelse, node) if orelse else None
        return tast.IfStat(branches, lowered_else, self.loc(node))

    def for_stat(self, node: pyast.For) -> tast.Stat:
        if node.orelse:
            raise self.error("for/else has no Terra equivalent", node)
        if not isinstance(node.target, pyast.Name):
            raise self.error("the Terra for-loop variable must be a simple "
                             "name", node.target)
        it = node.iter
        if not (isinstance(it, pyast.Call) and isinstance(it.func, pyast.Name)
                and it.func.id == "range" and not it.keywords
                and 1 <= len(it.args) <= 3):
            raise self.error(
                "@terra for-loops iterate over range(...) only — Terra's "
                "half-open numeric loop `for i = start, limit, step`",
                node.iter)
        bounds = [self.expr(a) for a in it.args]
        if len(bounds) == 1:
            start: tast.Expr = tast.Number(0, False, "", self.loc(it))
            limit, step = bounds[0], None
        elif len(bounds) == 2:
            (start, limit), step = bounds, None
        else:
            start, limit, step = bounds
        target = tast.VarTarget(node.target.id, None, None)
        self.scopes.append({node.target.id})
        try:
            body = self.block(node.body, node)
        finally:
            self.scopes.pop()
        return tast.ForNum(target, start, limit, step, body, self.loc(node))

    # -- expressions --------------------------------------------------------
    def expr(self, node: pyast.expr) -> tast.Expr:
        loc = self.loc(node)
        if isinstance(node, pyast.Constant):
            return self.constant(node)
        if isinstance(node, pyast.Name):
            return tast.Name(node.id, loc)
        payload = _escape_payload(node)
        if payload is not None:
            return tast.Escape(pyast.unparse(payload), loc)
        if isinstance(node, pyast.Set):
            raise self.error("an escape is a one-element set literal: "
                             "{python_expr}", node)
        if isinstance(node, pyast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise self.error(
                    f"operator {type(node.op).__name__} has no Terra "
                    f"equivalent", node)
            return tast.BinOp(op, self.expr(node.left), self.expr(node.right),
                              loc)
        if isinstance(node, pyast.BoolOp):
            op = "and" if isinstance(node.op, pyast.And) else "or"
            lowered = self.expr(node.values[0])
            for value in node.values[1:]:
                lowered = tast.BinOp(op, lowered, self.expr(value), loc)
            return lowered
        if isinstance(node, pyast.UnaryOp):
            if isinstance(node.op, pyast.USub):
                return tast.UnOp("-", self.expr(node.operand), loc)
            if isinstance(node.op, pyast.UAdd):
                return self.expr(node.operand)
            if isinstance(node.op, (pyast.Not, pyast.Invert)):
                # Terra's ``not``: logical on bool, bitwise on integers
                return tast.UnOp("not", self.expr(node.operand), loc)
            raise self.error(
                f"unary {type(node.op).__name__} has no Terra equivalent",
                node)
        if isinstance(node, pyast.Compare):
            if len(node.ops) != 1:
                raise self.error(
                    "chained comparisons (a < b < c) are not part of the "
                    "Terra subset; split them with `and`", node)
            op = _CMPOPS.get(type(node.ops[0]))
            if op is None:
                raise self.error(
                    f"comparison {type(node.ops[0]).__name__} has no Terra "
                    f"equivalent", node)
            return tast.BinOp(op, self.expr(node.left),
                              self.expr(node.comparators[0]), loc)
        if isinstance(node, pyast.Call):
            return self.call(node)
        if isinstance(node, pyast.Attribute):
            return tast.Select(self.expr(node.value), node.attr, loc)
        if isinstance(node, pyast.Subscript):
            if isinstance(node.slice, (pyast.Slice, pyast.Tuple)):
                raise self.error("Terra indexing takes a single expression "
                                 "(no slices)", node.slice)
            return tast.Index(self.expr(node.value), self.expr(node.slice),
                              loc)
        raise self.error(
            f"{type(node).__name__} is outside the @terra expression subset; "
            f"compute it in Python and splice it with {{...}}", node)

    def constant(self, node: pyast.Constant) -> tast.Expr:
        loc = self.loc(node)
        value = node.value
        if isinstance(value, bool):
            return tast.Bool(value, loc)
        if isinstance(value, int):
            return tast.Number(value, False, "", loc)
        if isinstance(value, float):
            return tast.Number(value, True, "", loc)
        if isinstance(value, str):
            return tast.String(value, loc)
        if value is None:
            return tast.Nil(loc)
        raise self.error(f"literal {value!r} has no Terra equivalent", node)

    def call(self, node: pyast.Call) -> tast.Expr:
        loc = self.loc(node)
        if node.keywords:
            raise self.error("Terra calls take positional arguments only",
                             node)
        if any(isinstance(a, pyast.Starred) for a in node.args):
            raise self.error("*splat arguments are not part of the Terra "
                             "subset; splice a list with {args}", node)
        if isinstance(node.func, pyast.Name):
            fname = node.func.id
            if fname == "range":
                raise self.error("range(...) is only meaningful as a "
                                 "for-loop iterator", node)
            if fname in ("addr", "deref") and not self.declared(fname):
                if len(node.args) != 1:
                    raise self.error(f"{fname}() takes exactly one argument",
                                     node)
                op = "&" if fname == "addr" else "@"
                return tast.UnOp(op, self.expr(node.args[0]), loc)
        return tast.Apply(self.expr(node.func),
                          [self.expr(a) for a in node.args], loc)


def _function_source(pyfn):
    """The dedented source of ``pyfn`` plus its 0-based file line offset."""
    code = pyfn.__code__
    try:
        srclines, first_line = inspect.getsourcelines(pyfn)
    except (OSError, TypeError) as exc:
        raise TerraSyntaxError(
            f"@terra cannot read the source of {pyfn.__name__!r} "
            f"({code.co_filename}): the decorator frontend re-parses the "
            f"function body, so it needs the defining file") from exc
    return textwrap.dedent("".join(srclines)), first_line - 1


def define_pyfunc(pyfn, environment: Environment,
                  name: Optional[str] = None) -> TerraFunction:
    """Define a Terra function from a type-annotated Python function.

    This is the decorator frontend's entry point — ``@terra`` routes
    here (``repro.terra`` dispatches on a callable argument).  The
    Python function is lowered via :class:`_Lowerer`, then handed to
    the *same* specializer and ``TerraFunction.define`` path as the
    string frontend; ``environment`` is the decoration-site lexical
    environment in which escapes and free names resolve.
    """
    if not inspect.isfunction(pyfn):
        raise TerraSyntaxError(
            f"@terra expects a plain Python function, got {pyfn!r}")
    filename = pyfn.__code__.co_filename
    source, line_offset = _function_source(pyfn)
    fname = name or pyfn.__name__
    with trace.span("terra.pyast", cat="stage", filename=filename,
                    function=fname):
        with trace.span("lower", cat="stage", filename=filename):
            try:
                module = pyast.parse(source)
            except SyntaxError as exc:  # pragma: no cover - defensive
                raise TerraSyntaxError(
                    f"could not re-parse {fname!r}: {exc}") from exc
            if not module.body or not isinstance(module.body[0],
                                                 pyast.FunctionDef):
                raise TerraSyntaxError(
                    f"@terra expects a plain `def` (async def and lambdas "
                    f"are not Terra functions)",
                    SourceLocation(filename, line_offset + 1, 1))
            fdef = module.body[0]
            lowerer = _Lowerer(filename, source.splitlines(), line_offset)
            tdef = lowerer.lower_function(fdef)
        # closure cells participate in the lexical environment, exactly
        # like the enclosing-frame locals the string frontend captures
        if pyfn.__closure__:
            cells = {}
            for cellname, cell in zip(pyfn.__code__.co_freevars,
                                      pyfn.__closure__):
                try:
                    cells[cellname] = cell.cell_contents
                except ValueError:  # empty cell (still being defined)
                    pass
            if cells:
                merged = dict(cells)
                merged.update(environment.locals)
                environment = Environment(merged, environment.globals,
                                          environment.description)
        existing = environment.lookup(fname, None)
        if getattr(existing, "is_terra_function", False) \
                and not existing.isdefined():
            fn = existing  # fill in a forward declaration, like terra()
        else:
            fn = TerraFunction(fname, tdef.location)
        body_env = environment.child_with({fname: fn})
        spec = Specializer(body_env)
        with trace.span(f"specialize:{fname}", cat="stage", kind="function"):
            params, ptypes, rettype, body = spec.spec_function(tdef)
        fn.define(params, ptypes, rettype, body)
        fn.frontend = "pyast"
    if os.environ.get("REPRO_TERRA_FRONTEND_DEBUG", "0") not in ("", "0"):
        from ..core.prettyprint import format_specialized
        print(f"-- @terra lowered {fname} ({filename}:{line_offset + 1})",
              file=sys.stderr)
        print(format_specialized(fn), file=sys.stderr)
    return fn
