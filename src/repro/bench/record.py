"""Benchmark result persistence — ``BENCH_<name>.json`` files.

The benchmark suite printed its tables and threw the numbers away; CI
runs and regression hunts want them on disk.  :func:`recording` opens a
named run; while it is active every :meth:`~repro.bench.harness.Table.
show` call lands in the run as structured rows (the console output is
unchanged), and scalar series can be added directly with
:meth:`BenchRun.record`.  On exit the run is written atomically to
``BENCH_<name>.json`` in ``REPRO_BENCH_OUT_DIR`` (default: the current
directory)::

    from repro.bench.record import recording

    with recording("serve", tenants=8) as run:
        run.record("throughput_rps", rps)
        run.record("p99_ms", p99 * 1000)
    # -> ./BENCH_serve.json

The file shape is stable: ``{"name", "meta", "tables", "values",
"written_at"}`` — one JSON object per run, newest write wins.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional


def default_out_dir() -> str:
    return os.environ.get("REPRO_BENCH_OUT_DIR") or os.getcwd()


class BenchRun:
    """One named benchmark run accumulating tables and scalar values."""

    def __init__(self, name: str, out_dir: Optional[str] = None, **meta):
        self.name = name
        self.out_dir = out_dir or default_out_dir()
        self.meta = dict(meta)
        self.tables: list[dict] = []
        self.values: dict = {}
        self._lock = threading.Lock()

    # -- accumulation --------------------------------------------------------
    def record(self, key: str, value) -> None:
        """Set scalar series ``key`` (numbers, strings, or JSON trees)."""
        with self._lock:
            self.values[key] = value

    def add_table(self, title: str, columns: list[str],
                  rows: list[list]) -> None:
        with self._lock:
            self.tables.append({"title": title, "columns": list(columns),
                                "rows": [list(r) for r in rows]})

    # -- persistence ---------------------------------------------------------
    def path(self) -> str:
        return os.path.join(self.out_dir, f"BENCH_{self.name}.json")

    def write(self) -> str:
        """Atomically write ``BENCH_<name>.json``; returns the path."""
        with self._lock:
            payload = {"name": self.name, "meta": self.meta,
                       "tables": self.tables, "values": self.values,
                       "written_at": time.time()}
        os.makedirs(self.out_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.out_dir, prefix=".bench-")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, indent=2, sort_keys=True, default=str)
                f.write("\n")
            final = self.path()
            os.replace(tmp, final)
            return final
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


#: the active run (one at a time; nested recordings stack)
_active: list[BenchRun] = []
_active_lock = threading.Lock()


def current() -> Optional[BenchRun]:
    """The innermost active run, or None (how Table.show finds us)."""
    with _active_lock:
        return _active[-1] if _active else None


def active_runs() -> list[BenchRun]:
    """Every active run, outermost first.  Nested recordings *stack*: a
    table shown inside ``recording("report")`` → ``recording("fig6")``
    lands in both files — the umbrella keeps the complete picture while
    each family gets its own ``BENCH_<family>.json`` (what
    ``benchmarks/report.py --json`` writes)."""
    with _active_lock:
        return list(_active)


@contextmanager
def recording(name: str, out_dir: Optional[str] = None,
              **meta) -> Iterator[BenchRun]:
    """Open run ``name``; tables shown and values recorded inside the block
    are written to ``BENCH_<name>.json`` when it exits (also on error —
    a crashed benchmark still leaves its partial numbers behind)."""
    run = BenchRun(name, out_dir, **meta)
    with _active_lock:
        _active.append(run)
    try:
        yield run
    finally:
        with _active_lock:
            _active.remove(run)
        run.write()
