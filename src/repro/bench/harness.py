"""Timing and reporting helpers shared by the benchmark suite.

Reproduces the paper's reporting units: GFLOPS for the GEMM experiments
(Figure 6), wall-clock speedup-over-reference-C for the Orion experiments
(Figure 8), ns/call for the dispatch micro-benchmark (§6.3.1), and GB/s
for the data-layout experiments (Figure 9).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional


def time_call(fn: Callable[[], None], repeats: int = 5,
              min_time: float = 0.0) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs (after
    one warm-up run, which also absorbs JIT compilation)."""
    fn()
    times = []
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


def gflops(flops: float, seconds: float) -> float:
    return flops / seconds / 1e9

def gbps(nbytes: float, seconds: float) -> float:
    return nbytes / seconds / 1e9


@dataclass
class Row:
    label: str
    value: float
    unit: str
    baseline: Optional[float] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.baseline is None or self.value == 0:
            return None
        return self.baseline / self.value


class Table:
    """A tiny fixed-width results table, printed like the paper's.

    When a :func:`repro.bench.record.recording` is active, :meth:`show`
    also lands the table in the run's ``BENCH_<name>.json``."""

    def __init__(self, title: str, columns: list[str]):
        self.title = title
        self.columns = columns
        self.rows: list[list[str]] = []

    def add(self, *cells) -> None:
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title,
                 "  ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
                 "  ".join("-" * w for w in widths)]
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
        from . import record
        for run in record.active_runs():
            run.add_table(self.title, self.columns, self.rows)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
