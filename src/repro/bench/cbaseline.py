"""Hand-written C baselines, compiled on the fly.

The paper compares generated Terra code against "hand-written C" (Figure
7/8) and against C++-style vtable dispatch (§6.3.1).  This module compiles
baseline C sources with the same gcc flags as the Terra backend, so the
comparison is compiler-fair, and binds them with ctypes.

NumPy arrays pass as pointers; the helper checks dtype/contiguity.
"""

from __future__ import annotations

import ctypes
from types import SimpleNamespace

import numpy as np

from ..backend.c.runtime import compile_shared

_CTYPES = {
    "void": None,
    "int": ctypes.c_int32,
    "long": ctypes.c_int64,
    "float": ctypes.c_float,
    "double": ctypes.c_double,
    "ptr": ctypes.c_void_p,
}


class CFunction:
    def __init__(self, cfn, argspec, restype):
        self.cfn = cfn
        self.argspec = argspec
        cfn.restype = _CTYPES[restype]
        cfn.argtypes = [_CTYPES[a] for a in argspec]

    def __call__(self, *args):
        converted = []
        for value, spec in zip(args, self.argspec):
            if spec == "ptr":
                if isinstance(value, np.ndarray):
                    assert value.flags["C_CONTIGUOUS"]
                    converted.append(value.ctypes.data)
                elif value is None:
                    converted.append(None)
                else:
                    converted.append(int(value))
            else:
                converted.append(value)
        return self.cfn(*converted)


def compile_c(source: str, functions: dict[str, tuple],
              flags: tuple[str, ...] = ()) -> SimpleNamespace:
    """Compile C ``source`` and bind ``functions``: name -> (argspec list,
    restype), with types from {void,int,long,float,double,ptr}."""
    so_path = compile_shared(source, tuple(flags))
    lib = ctypes.CDLL(so_path)
    out = {}
    for name, (argspec, restype) in functions.items():
        out[name] = CFunction(getattr(lib, name), list(argspec), restype)
    return SimpleNamespace(**out)
