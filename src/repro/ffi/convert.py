"""Python ↔ Terra value conversion at call boundaries.

The analog of the paper's use of LuaJIT's FFI: "we use LuaJIT's foreign
function interface to translate values between Lua and Terra both along
function call boundaries and during specialization."  Here:

* Python ints/floats/bools convert to the corresponding primitives
  (with C wrap-around semantics for out-of-range integers),
* ``str``/``bytes`` convert to ``rawstring`` (NUL-terminated buffers kept
  alive for the duration of the call),
* NumPy arrays convert to pointers to their element type — the main way
  benchmark data reaches Terra kernels,
* dicts/tuples convert to structs when they provide the required fields
  (the paper: "Lua tables can be converted into structs when they contain
  the required fields"),
* pointers and aggregates returned to Python are wrapped as cdata.
"""

from __future__ import annotations

import ctypes

import numpy as np

from ..core import types as T
from ..errors import FFIError
from ..memory import layout
from .cdata import CPointer, CStruct

_NUMPY_DTYPES = {
    "int8": T.int8, "int16": T.int16, "int32": T.int32, "int64": T.int64,
    "uint8": T.uint8, "uint16": T.uint16, "uint32": T.uint32,
    "uint64": T.uint64, "float32": T.float32, "float64": T.float64,
    "bool": T.bool_,
}


def numpy_elem_type(arr: np.ndarray) -> T.Type:
    ty = _NUMPY_DTYPES.get(arr.dtype.name)
    if ty is None:
        raise FFIError(f"no Terra type for numpy dtype {arr.dtype}")
    return ty


def python_to_blob(value, ty: T.Type) -> bytes:
    """Serialize a Python value as the in-memory bytes of Terra type ``ty``
    (used for struct arguments, globals and constants)."""
    if isinstance(value, CStruct):
        if value.type is not ty:
            raise FFIError(f"cdata of type {value.type} where {ty} expected")
        return value.blob
    if isinstance(ty, T.StructType):
        ty.complete()
        blob = bytearray(ty.sizeof())
        if isinstance(value, dict):
            # union members are alternatives: at most one may be given
            missing = [e.field for e in ty.entries
                       if e.field not in value and e.union_group is None]
            if missing:
                raise FFIError(
                    f"dict for struct {ty} is missing fields: {missing}")
            items = [(e, value[e.field]) for e in ty.entries
                     if e.field in value]
        elif isinstance(value, (tuple, list)):
            if len(value) != len(ty.entries):
                raise FFIError(
                    f"{len(value)} values for struct {ty} with "
                    f"{len(ty.entries)} fields")
            items = list(zip(ty.entries, value))
        else:
            raise FFIError(
                f"cannot convert {type(value).__name__} to struct {ty}")
        for entry, v in items:
            off = ty.offsetof(entry.field)
            raw = python_to_blob(v, entry.type)
            blob[off:off + len(raw)] = raw
        return bytes(blob)
    if isinstance(ty, T.ArrayType):
        values = list(value)
        if len(values) != ty.count:
            raise FFIError(f"{len(values)} values for array type {ty}")
        return b"".join(python_to_blob(v, ty.elem) for v in values)
    if ty.ispointer():
        addr, _keep = pointer_address(value, ty)
        return layout.pack_value(addr, ty)
    if isinstance(ty, T.VectorType):
        return layout.pack_value(list(value), ty)
    return layout.pack_value(value, ty)


def blob_to_python(blob: bytes, ty: T.Type):
    if ty.isaggregate():
        return CStruct(ty, blob)
    value = layout.unpack_value(blob, ty)
    if ty.ispointer():
        return CPointer(ty, value)
    return value


def pointer_address(value, ty: T.Type) -> tuple[int, object]:
    """Resolve ``value`` to (address, keepalive) for a pointer parameter."""
    if value is None:
        return 0, None
    if isinstance(value, CPointer):
        return value.address, value.keepalive
    if isinstance(value, (int, np.integer)):
        return int(value), None
    if isinstance(value, np.ndarray):
        if not value.flags["C_CONTIGUOUS"]:
            raise FFIError("numpy arrays passed to Terra must be C-contiguous")
        pointee = ty.pointee if isinstance(ty, T.PointerType) else None
        if isinstance(pointee, T.PrimitiveType):
            expected = numpy_elem_type(value)
            if expected is not pointee:
                raise FFIError(
                    f"numpy array of dtype {value.dtype} passed where "
                    f"&{pointee} expected")
        return value.ctypes.data, value
    if isinstance(value, (bytes, bytearray)):
        buf = ctypes.create_string_buffer(bytes(value), len(value) + 1)
        return ctypes.addressof(buf), buf
    if isinstance(value, str):
        raw = value.encode("utf-8")
        buf = ctypes.create_string_buffer(raw, len(raw) + 1)
        return ctypes.addressof(buf), buf
    if isinstance(value, ctypes.Array) or isinstance(value, ctypes.Structure):
        return ctypes.addressof(value), value
    if hasattr(value, "_as_parameter_"):
        return int(value._as_parameter_), value
    raise FFIError(
        f"cannot convert {type(value).__name__} to pointer type {ty}")


def python_to_primitive(value, ty: T.PrimitiveType):
    if ty.islogical():
        return bool(value)
    if ty.isintegral():
        if isinstance(value, (bool, int, np.integer)):
            return layout.wrap_int(int(value), ty)
        if isinstance(value, float) and value.is_integer():
            return layout.wrap_int(int(value), ty)
        raise FFIError(f"cannot convert {value!r} to {ty}")
    if isinstance(value, (int, float, np.integer, np.floating)):
        return layout.round_float(float(value), ty)
    raise FFIError(f"cannot convert {value!r} to {ty}")
