"""cdata — Terra values held by Python code.

The analog of LuaJIT-FFI cdata objects (paper §4.2): pointers and
aggregate values that cross the Terra↔Python boundary are wrapped so that
Python code can hold them, pass them back to Terra functions, and inspect
struct fields without losing type information.
"""

from __future__ import annotations

from ..core import types as T
from ..errors import FFIError
from ..memory import layout


class CPointer:
    """A typed pointer value (an address in the executing backend's address
    space).  ``keepalive`` pins any Python object that owns the memory."""

    __slots__ = ("type", "address", "keepalive")

    def __init__(self, type: T.Type, address: int, keepalive=None):  # noqa: A002
        if not type.ispointer():
            raise FFIError(f"CPointer requires a pointer type, got {type}")
        self.type = type
        self.address = int(address)
        self.keepalive = keepalive

    def isnull(self) -> bool:
        return self.address == 0

    def __int__(self) -> int:
        return self.address

    def __bool__(self) -> bool:
        return not self.isnull()

    def __eq__(self, other) -> bool:
        if isinstance(other, CPointer):
            return self.address == other.address
        if isinstance(other, int):
            return self.address == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.address)

    def __repr__(self) -> str:
        return f"<cdata {self.type} {self.address:#x}>"


class CStruct:
    """An aggregate (struct/array/tuple) value as a blob of bytes with the
    Terra type's layout.  Field access unpacks on demand."""

    __slots__ = ("type", "blob")

    def __init__(self, type: T.Type, blob: bytes):  # noqa: A002
        if not type.isaggregate():
            raise FFIError(f"CStruct requires an aggregate type, got {type}")
        if len(blob) != type.sizeof():
            raise FFIError(
                f"blob of {len(blob)} bytes does not match sizeof({type}) "
                f"= {type.sizeof()}")
        self.type = type
        self.blob = bytes(blob)

    def field(self, name: str):
        ty = self.type
        if not isinstance(ty, T.StructType):
            raise FFIError(f"{ty} has no named fields")
        ftype = ty.entry_type(name)
        if ftype is None:
            raise FFIError(f"struct {ty} has no field {name!r}")
        off = ty.offsetof(name)
        raw = self.blob[off:off + ftype.sizeof()]
        return _unwrap(raw, ftype)

    def element(self, index: int):
        ty = self.type
        if not isinstance(ty, T.ArrayType):
            raise FFIError(f"{ty} is not an array")
        if not 0 <= index < ty.count:
            raise FFIError(f"index {index} out of bounds for {ty}")
        esize = ty.elem.sizeof()
        raw = self.blob[index * esize:(index + 1) * esize]
        return _unwrap(raw, ty.elem)

    def totuple(self):
        ty = self.type
        if isinstance(ty, T.ArrayType):
            return tuple(self.element(i) for i in range(ty.count))
        assert isinstance(ty, T.StructType)
        return tuple(self.field(e.field) for e in ty.entries)

    def __getattr__(self, name: str):
        if name.startswith("_") or name in ("type", "blob"):
            raise AttributeError(name)
        try:
            return self.field(name)
        except FFIError as exc:
            raise AttributeError(str(exc)) from exc

    def __getitem__(self, index: int):
        return self.element(index)

    def __repr__(self) -> str:
        return f"<cdata {self.type} ({self.type.sizeof()} bytes)>"


def _unwrap(raw: bytes, ty: T.Type):
    if ty.isaggregate():
        return CStruct(ty, raw)
    value = layout.unpack_value(raw, ty)
    if ty.ispointer():
        return CPointer(ty, value)
    return value
