"""The persistent worker pool behind :func:`repro.parallel.parallel_for`.

Plain ``threading`` threads are enough to scale Terra kernels: every
chunk executes as one ctypes foreign call, and ctypes **releases the
GIL** for the duration of the call, so N workers genuinely occupy N
cores while the C code runs.  The pool is persistent (daemon threads,
created once, reused by every dispatch) because kernel calls are often
microseconds long — thread spawn cost would swamp them.

Workers are named ``repro-parallel-<i>``; :mod:`repro.trace` records the
thread name per span, so each worker shows up as its own lane in the
exported Chrome trace with zero extra wiring.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Optional, Sequence

#: set on a worker thread while it executes pool tasks; a nested
#: dispatch from inside a worker runs inline instead of deadlocking the
#: pool on itself
_tls = threading.local()


def in_worker() -> bool:
    """Whether the calling thread is one of the pool's workers."""
    return getattr(_tls, "in_worker", False)


class _TaskGroup:
    """One dispatch: a countdown of outstanding tasks plus the errors
    (in submission order slots) the workers hit while running them."""

    def __init__(self, count: int):
        self._remaining = count
        self._cv = threading.Condition()
        self.errors: list[Optional[BaseException]] = [None] * count

    def task_done(self) -> None:
        with self._cv:
            self._remaining -= 1
            if self._remaining <= 0:
                self._cv.notify_all()

    def wait(self) -> None:
        with self._cv:
            while self._remaining > 0:
                self._cv.wait()


class WorkerPool:
    """A fixed set of daemon worker threads draining one task queue."""

    def __init__(self, nthreads: int, name_prefix: str = "repro-parallel"):
        self.nthreads = max(1, int(nthreads))
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []
        self._closed = False
        for i in range(self.nthreads):
            t = threading.Thread(target=self._worker, daemon=True,
                                 name=f"{name_prefix}-{i}")
            t.start()
            self._threads.append(t)

    def _worker(self) -> None:
        _tls.in_worker = True
        while True:
            item = self._queue.get()
            if item is None:
                return
            thunk, group, slot = item
            try:
                thunk()
            except BaseException as exc:  # workers must never die silently
                group.errors[slot] = exc
            finally:
                group.task_done()

    def run(self, thunks: Sequence[Callable[[], None]]) \
            -> list[Optional[BaseException]]:
        """Run every thunk on the pool and wait for all of them; returns
        the per-thunk exception slots (None where the thunk succeeded).

        An exception in one thunk never wedges the pool or abandons its
        siblings — every task always runs to completion (or failure) and
        the pool stays usable for the next dispatch."""
        if self._closed:
            raise RuntimeError("WorkerPool is shut down")
        group = _TaskGroup(len(thunks))
        for slot, thunk in enumerate(thunks):
            self._queue.put((thunk, group, slot))
        group.wait()
        return group.errors

    def shutdown(self) -> None:
        """Stop the workers (idempotent; pending tasks finish first)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout=5.0)


_default_pool: Optional[WorkerPool] = None
_default_lock = threading.Lock()


def get_pool(nthreads: int) -> WorkerPool:
    """The shared process pool, grown (never shrunk) to ``nthreads``.

    Dispatches asking for fewer workers than the pool holds simply use a
    subset of it; asking for more replaces the pool with a larger one so
    the biggest request ever seen sets the thread count."""
    global _default_pool
    with _default_lock:
        if _default_pool is None or _default_pool.nthreads < nthreads \
                or _default_pool._closed:
            old, _default_pool = _default_pool, WorkerPool(nthreads)
            if old is not None:
                old.shutdown()
        return _default_pool


def shutdown_pool() -> None:
    """Tear down the shared pool (tests; a later dispatch recreates it)."""
    global _default_pool
    with _default_lock:
        if _default_pool is not None:
            _default_pool.shutdown()
            _default_pool = None
