"""``python -m repro.parallel`` — a self-contained scaling smoke demo.

Stages one memory-light stencil-ish kernel, runs it serially and through
:func:`repro.parallel.parallel_for`, checks the outputs are bit-identical,
and prints the timings.  Run under ``REPRO_TERRA_TRACE=1`` to get a
Chrome trace with one lane per worker (this is what ``make
parallel-smoke`` uploads as a CI artifact).

    python -m repro.parallel [--n ROWS] [--threads T] [--repeat R]
"""

from __future__ import annotations

import argparse
import ctypes
import sys
import time


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.parallel",
        description="parallel_for scaling smoke: serial vs pooled dispatch")
    ap.add_argument("--n", type=int, default=512,
                    help="rows in the test image (default 512)")
    ap.add_argument("--threads", type=int, default=0,
                    help="worker threads (0 = REPRO_TERRA_THREADS or cores)")
    ap.add_argument("--repeat", type=int, default=5,
                    help="timed repetitions; the minimum is reported")
    args = ap.parse_args(argv)

    from repro import terra
    from repro.parallel import default_nthreads, parallel_for

    n = args.n
    kernel = terra('''
    terra rowsweep(n : int64, w : int64, src : &float, dst : &float)
      for y = 0, n do
        for x = 1, w - 1 do
          var v = src[y * w + x] * 0.5f + src[y * w + x - 1] * 0.25f
          for k = 0, 16 do v = v * 0.999f + 0.001f end
          dst[y * w + x] = v
        end
      end
    end
    ''').mark_chunked()

    w = 256
    src = (ctypes.c_float * (n * w))(*[float(i % 7) for i in range(n * w)])
    serial = (ctypes.c_float * (n * w))()
    par = (ctypes.c_float * (n * w))()
    sp, pp = ctypes.addressof(serial), ctypes.addressof(par)
    srcp = ctypes.addressof(src)

    handle = kernel.compile("c")
    nthreads = default_nthreads(args.threads)

    t_serial = min(_timed(lambda: handle.call_chunk(0, n, n, w, srcp, sp))
                   for _ in range(args.repeat))
    t_par = min(_timed(lambda: parallel_for(kernel, 0, n, n, w, srcp, pp,
                                            nthreads=nthreads))
                for _ in range(args.repeat))

    identical = bytes(serial) == bytes(par)
    print(f"rows={n} width={w} threads={nthreads}")
    print(f"serial:   {t_serial * 1e3:8.3f} ms")
    print(f"parallel: {t_par * 1e3:8.3f} ms   "
          f"({t_serial / max(t_par, 1e-12):.2f}x)")
    print(f"bit-identical: {identical}")
    if not identical:
        print("FAIL: parallel output diverged from serial", file=sys.stderr)
        return 1
    return 0


def _timed(thunk) -> float:
    t0 = time.perf_counter()
    thunk()
    return time.perf_counter() - t0


if __name__ == "__main__":
    raise SystemExit(main())
