"""repro.parallel — multicore dispatch for Terra loop kernels.

The paper's evaluation kernels are single-threaded; the ROADMAP's north
star ("as fast as the hardware allows") also includes the *other* cores.
This package is the runtime half of that story:

* the C backend emits a **chunked entry** for any kernel marked with
  ``fn.mark_chunked()`` — ``<name>_chunk(int64 lo, int64 hi, args...,
  int32* trap)`` runs just the iterations of the kernel's final loop
  that fall in ``[lo, hi)``;
* :func:`parallel_for` splits ``[lo, hi)`` into per-worker chunks and
  drives them through a persistent thread pool.  ctypes releases the
  GIL during each C call, so the workers genuinely occupy N cores;
* a worker-side trap (``%0`` etc.) surfaces as **one**
  :class:`~repro.errors.TrapError` on the dispatching thread, and the
  pool survives to run the next dispatch.

Surfaced in three places: the Orion schedule directive
``parallel(axis, nthreads=0)`` (see :mod:`repro.orion`), the
``parallel_blockedloop`` / ``DataTable.parallel_map`` helpers in
:mod:`repro.lib`, and the packed GEMM driver's panel loop
(:mod:`repro.autotune.matmul`).

Environment: ``REPRO_TERRA_THREADS`` overrides every requested thread
count (``1`` disables parallel dispatch entirely — bit-identical to
never having asked).  Observability: dispatches emit ``parallel.for``
spans, chunks run inside per-worker ``parallel.chunk`` spans (one trace
lane per worker thread), and the ``parallel.*`` metrics series counts
dispatches/chunks/traps.

>>> from repro import terra
>>> from repro.parallel import parallel_for
>>> scale = terra('''
... terra scale(n : int64, a : float, x : &float)
...   for i = 0, n do x[i] = a * x[i] end
... end
... ''').mark_chunked()
>>> # parallel_for(scale, 0, n, n, 2.0, x_ptr)   # doctest: +SKIP
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional, Sequence

from .. import trace as _trace
from ..errors import TrapError
from .pool import WorkerPool, get_pool, in_worker, shutdown_pool

__all__ = [
    "parallel_for", "dispatch_chunks", "run_tasks", "split_range",
    "default_nthreads", "WorkerPool", "get_pool", "shutdown_pool",
    "in_worker",
]


def default_nthreads(requested: int = 0) -> int:
    """The effective worker count for a dispatch.

    ``REPRO_TERRA_THREADS`` (read per call, so tests can monkeypatch it)
    overrides everything; otherwise an explicit ``requested`` count wins;
    otherwise the machine's core count.  A result of 1 means "stay
    serial" — no pool, no chunking, byte-identical behaviour to code
    that never mentioned parallelism."""
    raw = os.environ.get("REPRO_TERRA_THREADS", "")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    if requested and int(requested) > 0:
        return int(requested)
    return os.cpu_count() or 1


def split_range(lo: int, hi: int, nparts: int,
                align: int = 1) -> list[tuple[int, int]]:
    """Split ``[lo, hi)`` into up to ``nparts`` contiguous chunks.

    With ``align > 1`` every interior cut sits a multiple of ``align``
    above ``lo`` (the final chunk keeps any remainder), so blocked
    kernels can keep whole blocks inside one chunk."""
    total = hi - lo
    if total <= 0:
        return []
    if nparts <= 1:
        return [(lo, hi)]
    out: list[tuple[int, int]] = []
    prev = lo
    for i in range(1, nparts):
        cut = lo + (total * i) // nparts
        if align > 1:
            cut -= (cut - lo) % align
        if cut <= prev:
            continue
        out.append((prev, cut))
        prev = cut
    if prev < hi:
        out.append((prev, hi))
    return out


def _chunk_runner(kernel, args) -> Callable[[int, int], None]:
    """A ``run(lo, hi)`` callable for one dispatch of ``kernel``.

    ``kernel`` is a Terra function (compiled on the C backend; must be
    ``mark_chunked()``), an already-compiled C handle, or any Python
    callable ``f(lo, hi, *args)`` (the portable fallback — correct, but
    it cannot release the GIL)."""
    if getattr(kernel, "is_terra_function", False):
        # chunked dispatch is a C-backend feature: resolve the handle
        # through the kernel's dispatcher (joining any pending async
        # compile / tier-up) rather than around it
        kernel = kernel.dispatcher.compiled_handle("c")
    caller = getattr(kernel, "chunk_caller", None)
    if caller is not None:
        return caller(*args)

    def run(lo: int, hi: int):
        kernel(lo, hi, *args)

    run.kernel_name = getattr(kernel, "__name__", "kernel")
    return run


def parallel_for(kernel, lo: int, hi: int, *args,
                 nthreads: int = 0, grain: int = 1) -> None:
    """Run ``kernel`` over ``[lo, hi)`` split across worker threads.

    The iterates executed (and, for disjoint writes, the results) are
    exactly the serial call's, whatever the chunking; ``grain`` aligns
    interior chunk cuts to multiples of ``grain`` above ``lo``.

    Trap handling: if any worker traps, one :class:`TrapError` is raised
    here after *all* chunks finish — the pool is never wedged, and
    every non-trapping chunk has completed (same all-or-nothing shape as
    a serial trap mid-loop: partial writes are visible).
    """
    n = default_nthreads(nthreads)
    run = _chunk_runner(kernel, args)
    if hi - lo <= 0:
        return
    chunks = split_range(lo, hi, n, align=grain)
    if n <= 1 or len(chunks) <= 1 or in_worker():
        # serial path: one chunk covering everything, on this thread
        run(lo, hi)
        return
    name = getattr(run, "kernel_name", "kernel")
    t0 = time.perf_counter()
    with _trace.span(f"parallel.for:{name}", cat="exec", kernel=name,
                     chunks=len(chunks), nthreads=n, lo=lo, hi=hi):
        errors = run_tasks(
            [_traced_chunk(run, name, c0, c1) for c0, c1 in chunks],
            nthreads=n)
    _account(name, len(chunks), time.perf_counter() - t0, errors)


def dispatch_chunks(run, ranges: Sequence[tuple[int, int]],
                    nthreads: int = 0, name: Optional[str] = None) \
        -> list[Optional[BaseException]]:
    """The **batched dispatch entry**: run ``run(lo, hi)`` once per range
    in one pool round-trip; returns one error slot per range, in order.

    Unlike :func:`parallel_for` (one half-open range, errors aggregated
    and raised), this never raises for a worker failure: each range's
    exception — a :class:`TrapError` for a defined runtime trap, anything
    else for a bug — lands in that range's slot and the other ranges run
    to completion.  :mod:`repro.serve` coalesces many concurrent requests
    for the same kernel into one call of this function and maps the slots
    back onto individual client responses, so a kernel that traps
    mid-batch fails only the requests whose range trapped.
    """
    ranges = list(ranges)
    if not ranges:
        return []
    name = name or getattr(run, "kernel_name", "kernel")
    n = default_nthreads(nthreads)
    t0 = time.perf_counter()
    with _trace.span(f"parallel.batch:{name}", cat="exec", kernel=name,
                     chunks=len(ranges), nthreads=n):
        if n <= 1 or len(ranges) == 1 or in_worker():
            errors: list[Optional[BaseException]] = []
            for lo, hi in ranges:
                try:
                    run(lo, hi)
                    errors.append(None)
                except BaseException as exc:
                    errors.append(exc)
        else:
            errors = run_tasks(
                [_traced_chunk(run, name, lo, hi) for lo, hi in ranges],
                nthreads=n)
    from ..trace.metrics import registry
    reg = registry()
    reg.add("parallel.dispatches")
    reg.add("parallel.chunks", len(ranges))
    reg.record_time("parallel.batch", time.perf_counter() - t0)
    ntraps = sum(1 for e in errors if isinstance(e, TrapError))
    if ntraps:
        reg.add("parallel.traps", ntraps)
    return errors


def _traced_chunk(run, name, lo, hi):
    def task():
        with _trace.span(f"parallel.chunk:{name}", cat="exec",
                         kernel=name, lo=lo, hi=hi):
            run(lo, hi)
    return task


def run_tasks(thunks: Sequence[Callable[[], None]],
              nthreads: int = 0) -> list[Optional[BaseException]]:
    """Run arbitrary thunks on the shared pool; returns per-thunk error
    slots.  Low-level building block (Orion's per-group dispatch uses it
    directly); most callers want :func:`parallel_for`."""
    n = max(default_nthreads(nthreads), 1)
    return get_pool(min(n, max(len(thunks), 1))).run(thunks)


def _account(name: str, nchunks: int, seconds: float,
             errors: Sequence[Optional[BaseException]]) -> None:
    """Metrics + error aggregation for one dispatch."""
    from ..trace.metrics import registry
    reg = registry()
    reg.add("parallel.dispatches")
    reg.add("parallel.chunks", nchunks)
    reg.record_time("parallel.for", seconds)
    raise_aggregated(name, errors, reg)


def raise_aggregated(name: str, errors: Sequence[Optional[BaseException]],
                     reg=None) -> None:
    """Raise one exception for a dispatch's worth of worker errors:
    traps fold into a single :class:`TrapError`; any non-trap worker
    exception (a bug, not a defined runtime trap) is re-raised as-is."""
    real = [e for e in errors if e is not None]
    if not real:
        return
    for exc in real:
        if not isinstance(exc, TrapError):
            raise exc
    if reg is None:
        from ..trace.metrics import registry
        reg = registry()
    reg.add("parallel.traps", len(real))
    first = real[0]
    extra = f" (+{len(real) - 1} more worker traps)" if len(real) > 1 else ""
    raise TrapError(f"{first}{extra}")
