"""repro — a Python reproduction of *Terra: A Multi-Stage Language for
High-Performance Computing* (DeVito et al., PLDI 2013).

Python plays the paper's Lua role (the high-level meta-language); Terra is
reproduced as an embedded low-level language that is **staged** from
Python:

>>> from repro import terra
>>> min_ = terra('''
... terra min(a : int, b : int) : int
...   if a < b then return a else return b end
... end
... ''')
>>> min_(3, 4)
3

Terra code shares the invoking Python frame's lexical environment: escapes
``[ ... ]`` evaluate Python expressions during *eager specialization*, and
free Terra names resolve to Python values (types, functions, constants,
quotes, symbols).  Compiled Terra code then executes independently of the
Python runtime, via gcc-compiled native code (default) or the reference
interpreter.

Public surface
--------------
* staging:  :func:`terra`, :func:`quote_`, :func:`expr`, :func:`symbol`,
  :func:`symmat`, :func:`macro`, :func:`declare`, :func:`struct`
* types:    ``int8..int64, uint8..uint64, int_, uint, float_, double,
  bool_, rawstring``, :func:`pointer`, :func:`array`, :func:`vector`,
  :func:`functype`, :func:`tuple_of`
* values:   :func:`global_`, :func:`constant`, :func:`pycallback`
* intrinsics: ``prefetch, fence, sqrt, fabs, fmin, fmax``, :data:`sizeof`
* C interop: :func:`includec`, :func:`saveobj` (see :mod:`repro.cinterop`)
* backends: :func:`set_default_backend` (``"c"`` or ``"interp"``)
* compile service: :mod:`repro.buildd` — pooled parallel compilation
  (``fn.compile_async()``), a content-addressed artifact cache, and
  telemetry (``repro.buildd.stats()``, ``python -m repro.buildd``)
"""

from __future__ import annotations

from typing import Optional

from .errors import (CompileError, FFIError, LinkError, SpecializeError,
                     TerraError, TerraSyntaxError, TrapError, TypeCheckError)
# imported early so REPRO_TERRA_TRACE / REPRO_TERRA_PROFILE take effect
# for any process that imports repro (see docs/OBSERVABILITY.md)
from . import trace as trace
from .core import ast as _ast
from .core import types as _types
from .core import parser as _parser
from .core.env import Environment, capture as _capture
from .core.function import (Constant, GlobalVar, PyCallback, TerraFunction,
                            constant, declare, global_, pycallback)
from .core.intrinsics import (fabs, fence, fmax, fmin, prefetch,
                              select, sqrt, vectorof)
from .core.intrinsics import ceil_ as ceil, floor_ as floor
from .core.quotes import Quote
from .core.specialize import Macro, Specializer, macro, sizeof
from .core.symbols import Symbol, symbol, symmat
from .core.types import (ArrayType, FunctionType, PointerType, PrimitiveType,
                         StructType, TupleType, Type, VectorType, array,
                         bool_, double, float32, float64, float_, functype,
                         int16, int32, int64, int8, int_, long_, pointer,
                         rawstring, tuple_of, uint, uint16, uint32, uint64,
                         uint8, unit, vector)
from .backend.base import (default_backend, get_backend, resolve_backend,
                           set_default_backend)
from .frontend.pyast import addr, deref

#: alias for :func:`pointer`, reading naturally in ``@terra`` annotations
#: (``img: ptr(float)``)
ptr = pointer

__version__ = "1.0.0"

__all__ = [
    # staging
    "terra", "quote_", "expr", "symbol", "symmat", "macro", "declare",
    "struct", "Quote", "Symbol", "Macro", "TerraFunction", "Specializer",
    "Environment", "addr", "deref",
    # types
    "Type", "PrimitiveType", "PointerType", "ArrayType", "VectorType",
    "StructType", "TupleType", "FunctionType",
    "int8", "int16", "int32", "int64", "uint8", "uint16", "uint32", "uint64",
    "int_", "uint", "long_", "float_", "double", "float32", "float64",
    "bool_", "rawstring", "unit",
    "pointer", "ptr", "array", "vector", "functype", "tuple_of",
    # values
    "global_", "constant", "pycallback", "GlobalVar", "Constant",
    "PyCallback",
    # intrinsics
    "sizeof", "prefetch", "fence", "sqrt", "fabs", "floor", "ceil",
    "fmin", "fmax", "select", "vectorof",
    # C interop
    "includec", "saveobj",
    # backends
    "set_default_backend", "default_backend", "get_backend",
    "resolve_backend",
    # errors
    "TerraError", "TerraSyntaxError", "SpecializeError", "TypeCheckError",
    "LinkError", "CompileError", "TrapError", "FFIError",
]


def _environment(env, depth: int = 2) -> Environment:
    """The caller's lexical environment, optionally overlaid with an
    explicit ``env`` mapping."""
    captured = _capture(depth)
    if env is None:
        return captured
    if isinstance(env, Environment):
        return env
    return captured.child_with(env)


class Namespace(dict):
    """The result of a multi-definition ``terra()`` call: a dict of the
    defined functions and structs, with attribute access.

    Attribute lookup prefers the namespace's *entries* over dict methods,
    so a Terra function named ``get`` or ``clear`` is reachable as
    ``ns.get`` (use ``dict.get(ns, ...)`` for the dict method)."""

    is_terra_namespace = True

    def __getattribute__(self, name: str):
        if not name.startswith("_") and dict.__contains__(self, name):
            return dict.__getitem__(self, name)
        return super().__getattribute__(name)

    def __getattr__(self, name: str):
        raise AttributeError(name)


def terra(source=None, env=None, filename: str = "<terra>"):
    """Define Terra functions and structs — from source text or a
    decorated Python function.

    With a **string**, specialization runs **eagerly**, in the caller's
    lexical environment (paper §4.1).  Returns the single defined
    object, or a :class:`Namespace` when the source contains several
    definitions.

    With a **callable**, ``terra`` acts as a decorator: the
    type-annotated Python function is lowered through
    :mod:`repro.frontend.pyast` into the same untyped AST and shared
    specialize→typecheck→compile path (see ``docs/FRONTENDS.md``)::

        @terra
        def add(a: int32, b: int32) -> int32:
            return a + b

    Defining ``terra f(...)`` when ``f`` already names an *undefined*
    Terra function (from :func:`declare`) fills in that declaration —
    the paper's ``ter``/``tdecl`` split that enables mutual recursion.
    """
    if callable(source) and not isinstance(source, (str, bytes)):
        from .frontend.pyast import define_pyfunc
        return define_pyfunc(source, _environment(env))
    if not isinstance(source, str):
        raise TerraSyntaxError(
            f"terra() takes Terra source text or a Python function to "
            f"decorate, got {source!r}")
    environment = _environment(env)
    with trace.span("terra", cat="stage", filename=filename) as tsp:
        with trace.span("parse", cat="stage", filename=filename):
            defs = _parser.parse_toplevel(source, filename)
        if not defs:
            raise TerraSyntaxError("no Terra definitions in source")
        results: dict[str, object] = {}
        overlay: dict[str, object] = {}
        single: object = None
        for d in defs:
            scoped_env = environment.child_with(overlay)
            if isinstance(d, _ast.StructDef):
                single = _define_struct(d, scoped_env, results, overlay)
            else:
                assert isinstance(d, _ast.FunctionDef)
                single = _define_function(d, scoped_env, results, overlay)
        tsp.set(definitions=len(results))
    if len(results) == 1:
        return single
    return Namespace(results)


def _define_struct(d: _ast.StructDef, env: Environment,
                   results: dict, overlay: dict) -> StructType:
    st = _types.StructType(d.name)
    # bind the name before evaluating entry types: self-referential
    # structs (struct Node { next : &Node }) must see themselves.
    overlay[d.name] = st
    with trace.span(f"specialize:{d.name}", cat="stage", kind="struct"):
        spec = Specializer(env.child_with({d.name: st}))
        _fill_struct_entries(st, d.entries, spec)
    results[d.name] = st
    return st


def _fill_struct_entries(st: StructType, entries, spec: Specializer) -> None:
    for item in entries:
        field, payload = item
        if field == "union" and isinstance(payload, list):
            st.add_union([(name, spec.eval_type(texpr))
                          for name, texpr in payload])
        else:
            st.add_entry(field, spec.eval_type(payload))


def _define_function(d: _ast.FunctionDef, env: Environment,
                     results: dict, overlay: dict):
    # method definition: terra Type:name(...)
    if d.method_name is not None:
        spec = Specializer(env)
        receiver = spec.meta_eval(_namepath_expr(d.namepath, d.location))
        if not isinstance(receiver, StructType):
            raise SpecializeError(
                f"method receiver {'.'.join(d.namepath)} is not a struct "
                f"type", d.location)
        fn = TerraFunction(f"{receiver.name}_{d.method_name}", d.location)
        receiver.methods[d.method_name] = fn
        spec = Specializer(env)
        with trace.span(f"specialize:{fn.name}", cat="stage", kind="method"):
            params, ptypes, rettype, body = spec.spec_function(
                d, self_type=_types.pointer(receiver))
        fn.define(params, ptypes, rettype, body)
        results[f"{receiver.name}_{d.method_name}"] = fn
        return fn
    # plain (possibly anonymous, possibly dotted-path) function
    name = d.namepath[-1] if d.namepath else "anon"
    fn: Optional[TerraFunction] = None
    existing = None
    if d.namepath and len(d.namepath) == 1:
        existing = env.lookup(name, None)
    elif d.namepath:
        spec = Specializer(env)
        base = spec.meta_eval(_namepath_expr(d.namepath[:-1], d.location))
        existing = _namespace_get(base, name)
    if isinstance(existing, TerraFunction) and not existing.isdefined():
        fn = existing  # fill in a forward declaration
    if fn is None:
        fn = TerraFunction(name, d.location)
    # the function's own name resolves to itself inside the body
    # (self-recursion), and to later definitions in this terra() call.
    body_env = env.child_with({name: fn}) if d.namepath else env
    spec = Specializer(body_env)
    with trace.span(f"specialize:{name}", cat="stage", kind="function"):
        params, ptypes, rettype, body = spec.spec_function(d)
    fn.define(params, ptypes, rettype, body)
    if d.namepath and len(d.namepath) > 1:
        sp = Specializer(env)
        base = sp.meta_eval(_namepath_expr(d.namepath[:-1], d.location))
        _namespace_set(base, name, fn)
    if d.namepath:
        overlay[name] = fn
    results[name if d.namepath else f"anon_{fn.uid}"] = fn
    return fn


def _namepath_expr(path: list[str], location) -> _ast.Expr:
    expr_node: _ast.Expr = _ast.Name(path[0], location)
    for part in path[1:]:
        expr_node = _ast.Select(expr_node, part, location)
    return expr_node


def _namespace_get(base, name: str):
    if isinstance(base, dict):
        return base.get(name)
    return getattr(base, name, None)


def _namespace_set(base, name: str, value) -> None:
    if isinstance(base, dict):
        base[name] = value
    else:
        setattr(base, name, value)


def quote_(source: str, env=None, filename: str = "<quote>") -> Quote:
    """Create a statements quotation (Terra's ``quote ... end``), eagerly
    specialized in the caller's lexical environment.  An optional trailing
    ``in e`` clause makes it splicable in expression position."""
    environment = _environment(env)
    qbody = _parser.parse_quote(source, filename)
    return Specializer(environment).spec_quote(qbody)


def expr(source: str, env=None, filename: str = "<expr>") -> Quote:
    """Create a single-expression quotation (Terra's back-tick)."""
    environment = _environment(env)
    tree = _parser.parse_expression(source, filename)
    return Quote.from_expr(Specializer(environment).spec_expr(tree))


def struct(source_or_name: str, env=None) -> StructType:
    """Create a struct type.

    ``struct("Complex")`` makes an empty struct (fill ``entries`` via
    reflection, as the paper does for Complex); any source containing
    braces is parsed: ``struct("struct Complex { real : float, imag :
    float }")``.
    """
    if "{" not in source_or_name:
        return _types.StructType(source_or_name)
    environment = _environment(env)
    defs = _parser.parse_toplevel(source_or_name)
    if len(defs) != 1 or not isinstance(defs[0], _ast.StructDef):
        raise TerraSyntaxError("struct() expects exactly one struct definition")
    d = defs[0]
    st = _types.StructType(d.name)
    spec = Specializer(environment.child_with({d.name: st}))
    _fill_struct_entries(st, d.entries, spec)
    return st


def includec(header: str):
    """Import C declarations (the paper's ``terralib.includec``)."""
    from .cinterop.includec import includec as _includec
    return _includec(header)


def saveobj(path: str, functions: dict) -> None:
    """Save Terra functions as a linkable object file / C source / shared
    object, chosen by the file extension (the paper's
    ``terralib.saveobj``)."""
    from .cinterop.saveobj import saveobj as _saveobj
    _saveobj(path, functions)
