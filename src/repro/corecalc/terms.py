"""Terra Core — the term grammar of paper Section 3.

The paper formalizes the essence of the Lua/Terra interaction as a core
calculus.  This module encodes its three term levels exactly:

Lua expressions ``e``::

    e ::= b | T | x | let x = e in e | x := e | e(e)
        | fun(x){e} | tdecl | ter e(x : e) : e { ê } | 'ê

Terra expressions ``ê`` (unspecialized — may contain escapes)::

    ê ::= b | x | ê(ê) | tlet x : ê = ê in ê | [e]

Specialized Terra expressions ``ē`` (the results of →S)::

    ē ::= b | x̄ | ē(ē) | tlet x̄ : T = ē in ē | l

Lua values ``v``::

    v ::= b | l | T | (Γ, x, e) | ē

Types ``T ::= B | T -> T`` — the calculus passes only base values across
the Lua/Terra boundary (LTAPP), as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


# -- types -----------------------------------------------------------------

class CoreType:
    pass


@dataclass(frozen=True)
class Base(CoreType):
    """The base type B (inhabited by the base values b)."""

    def __str__(self):
        return "B"


@dataclass(frozen=True)
class Arrow(CoreType):
    param: CoreType
    result: CoreType

    def __str__(self):
        return f"({self.param} -> {self.result})"


B = Base()


# -- Lua terms ----------------------------------------------------------------

class LuaTerm:
    pass


@dataclass(frozen=True)
class LBase(LuaTerm):
    value: object  # a base value b


@dataclass(frozen=True)
class LType(LuaTerm):
    type: CoreType


@dataclass(frozen=True)
class LVar(LuaTerm):
    name: str


@dataclass(frozen=True)
class LLet(LuaTerm):
    name: str
    init: LuaTerm
    body: LuaTerm


@dataclass(frozen=True)
class LAssign(LuaTerm):
    name: str
    value: LuaTerm


@dataclass(frozen=True)
class LApp(LuaTerm):
    fn: LuaTerm
    arg: LuaTerm


@dataclass(frozen=True)
class LFun(LuaTerm):
    param: str
    body: LuaTerm


@dataclass(frozen=True)
class LTDecl(LuaTerm):
    """``tdecl`` — allocate a fresh, undefined Terra function address."""


@dataclass(frozen=True)
class LTDefn(LuaTerm):
    """``ter e1(x : e2) : e3 { ê }`` — fill in a declaration: e1 must
    evaluate to an undefined address, e2/e3 to types; ê is specialized
    eagerly (rule LTDEFN)."""
    target: LuaTerm
    param: str
    param_type: LuaTerm
    return_type: LuaTerm
    body: "TerraTerm"


@dataclass(frozen=True)
class LQuote(LuaTerm):
    """``'ê`` — specialize ê now, yield the specialized term as a value."""
    body: "TerraTerm"


def seq(first: LuaTerm, second: LuaTerm) -> LuaTerm:
    """``e1; e2`` — the paper's sugar ``let _ = e1 in e2``."""
    return LLet("_", first, second)


# -- Terra terms (unspecialized) ------------------------------------------------

class TerraTerm:
    pass


@dataclass(frozen=True)
class TBase(TerraTerm):
    value: object


@dataclass(frozen=True)
class TVar(TerraTerm):
    name: str


@dataclass(frozen=True)
class TApp(TerraTerm):
    fn: TerraTerm
    arg: TerraTerm


@dataclass(frozen=True)
class TLet(TerraTerm):
    """``tlet x : ê_type = ê_init in ê_body``"""
    name: str
    type_expr: LuaTerm         # type annotations are Lua expressions
    init: TerraTerm
    body: TerraTerm


@dataclass(frozen=True)
class TEscape(TerraTerm):
    """``[e]`` — evaluate Lua code during specialization."""
    code: LuaTerm


# -- specialized Terra terms ------------------------------------------------------

class SpecTerm:
    pass


@dataclass(frozen=True)
class SBase(SpecTerm):
    value: object


@dataclass(frozen=True)
class SVar(SpecTerm):
    """A renamed variable x̄ (fresh symbols; integers in this encoding)."""
    symbol: int


@dataclass(frozen=True)
class SApp(SpecTerm):
    fn: SpecTerm
    arg: SpecTerm


@dataclass(frozen=True)
class SLet(SpecTerm):
    symbol: int
    type: CoreType
    init: SpecTerm
    body: SpecTerm


@dataclass(frozen=True)
class SFunc(SpecTerm):
    """A Terra function address l."""
    address: int


#: a Lua value: base | address (SFunc) | CoreType | Closure | SpecTerm
Value = Union[object]


@dataclass(frozen=True)
class Closure:
    """``(Γ, x, e)`` — a Lua closure."""
    env: "object"     # Gamma (immutable mapping name -> store address)
    param: str
    body: LuaTerm


@dataclass(frozen=True)
class FuncDef:
    """A defined Terra function ``(x̄, T1, T2, ē)``."""
    symbol: int
    param_type: CoreType
    return_type: CoreType
    body: SpecTerm


UNDEFINED = None  # the function store maps undefined addresses to None
