"""The big-step semantics of Terra Core — paper Figures 1–3.

Three judgments, implemented as three evaluators over a shared state
``Σ = (Γ, S, F)``:

* ``eval_lua``    — ``e Σ →L v Σ'``  (Figure 1: LBAS..LTAPP)
* ``specialize``  — ``ê Σ →S ē Σ'``  (Figure 2: SBAS..SESC)
* ``eval_terra``  — ``ē F →T v``     (Figure 3: TBAS..TLET)

Key fidelity points, each tested in tests/corecalc/:

* LTDEFN specializes the body **eagerly** at definition time and renames
  the formal parameter to a fresh symbol (hygiene);
* SLET renames ``tlet``-bound variables to fresh symbols (hygiene);
* SVAR resolves variables through the *shared* environment Γ: a name may
  denote a Lua value (embedded as a constant/spliced term) or a renamed
  Terra variable;
* LTAPP typechecks the callee's connected component lazily, right before
  the call (Figure 4), and passes only base values;
* eval_terra runs with **no access** to Γ or S — separate evaluation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..errors import LinkError, SpecializeError, TerraError, TypeCheckError
from . import terms as t


class CoreError(TerraError):
    pass


@dataclass
class State:
    """Σ = Γ, S, F.  Γ is per-evaluation (passed separately); S and F are
    threaded through."""
    store: dict = field(default_factory=dict)        # S: addr -> value
    functions: dict = field(default_factory=dict)    # F: l -> FuncDef | None
    _addr: itertools.count = field(default_factory=lambda: itertools.count(1))
    _sym: itertools.count = field(default_factory=lambda: itertools.count(1))
    _fun: itertools.count = field(default_factory=lambda: itertools.count(1))

    def fresh_addr(self) -> int:
        return next(self._addr)

    def fresh_symbol(self) -> int:
        return next(self._sym)

    def fresh_function(self) -> int:
        l = next(self._fun)  # noqa: E741 - the paper's metavariable
        self.functions[l] = t.UNDEFINED
        return l


EMPTY_ENV: dict = {}


def bind(env: dict, name: str, addr: int) -> dict:
    new = dict(env)
    new[name] = addr
    return new


# ===========================================================================
# →L : Lua evaluation (Figure 1)
# ===========================================================================

def eval_lua(e: t.LuaTerm, env: dict, state: State):
    """``e Σ →L v Σ`` (the state is mutated in place; Γ is ``env``)."""
    if isinstance(e, t.LBase):                                   # LBAS
        return e.value
    if isinstance(e, t.LType):
        return e.type
    if isinstance(e, t.LVar):                                    # LVAR
        if e.name not in env:
            raise CoreError(f"unbound Lua variable {e.name!r}")
        return state.store[env[e.name]]
    if isinstance(e, t.LLet):                                    # LLET
        value = eval_lua(e.init, env, state)
        addr = state.fresh_addr()
        state.store[addr] = value
        return eval_lua(e.body, bind(env, e.name, addr), state)
    if isinstance(e, t.LAssign):                                 # LASN
        if e.name not in env:
            raise CoreError(f"assignment to unbound variable {e.name!r}")
        value = eval_lua(e.value, env, state)
        state.store[env[e.name]] = value
        return value
    if isinstance(e, t.LFun):                                    # LFUN
        return t.Closure(dict(env), e.param, e.body)
    if isinstance(e, t.LTDecl):                                  # LTDECL
        return t.SFunc(state.fresh_function())
    if isinstance(e, t.LQuote):                                  # LTQUOTE
        return specialize(e.body, env, state)
    if isinstance(e, t.LTDefn):                                  # LTDEFN
        return _eval_tdefn(e, env, state)
    if isinstance(e, t.LApp):
        return _eval_app(e, env, state)
    raise CoreError(f"not a Lua term: {e!r}")


def _eval_tdefn(e: t.LTDefn, env: dict, state: State):
    target = eval_lua(e.target, env, state)
    if not isinstance(target, t.SFunc):
        raise CoreError("ter: target is not a Terra function address")
    if state.functions.get(target.address) is not t.UNDEFINED:
        raise CoreError(
            f"ter: function l{target.address} is already defined "
            f"(definitions are immutable)")
    ptype = eval_lua(e.param_type, env, state)
    rtype = eval_lua(e.return_type, env, state)
    if not isinstance(ptype, t.CoreType) or not isinstance(rtype, t.CoreType):
        raise SpecializeError("ter: annotations must evaluate to Terra types")
    # hygiene: the formal parameter is renamed to a fresh symbol, which is
    # what Lua code evaluated during specialization observes
    sym = state.fresh_symbol()
    addr = state.fresh_addr()
    state.store[addr] = t.SVar(sym)
    body = specialize(e.body, bind(env, e.param, addr), state)
    state.functions[target.address] = t.FuncDef(sym, ptype, rtype, body)
    return target


def _eval_app(e: t.LApp, env: dict, state: State):
    fn = eval_lua(e.fn, env, state)
    arg = eval_lua(e.arg, env, state)
    if isinstance(fn, t.Closure):                                # LAPP
        addr = state.fresh_addr()
        state.store[addr] = arg
        return eval_lua(fn.body, bind(fn.env, fn.param, addr), state)
    if isinstance(fn, t.SFunc):                                  # LTAPP
        ftype = typecheck_function(fn.address, state)
        if not _is_base(arg):
            raise CoreError(
                "LTAPP: only base values may cross into Terra")
        if ftype.param is not t.B:
            raise TypeCheckError(
                "LTAPP: Terra Core functions called from Lua take base "
                "values")
        return call_terra(fn.address, arg, state)
    raise CoreError(f"cannot apply non-function value {fn!r}")


def _is_base(v) -> bool:
    return isinstance(v, (int, float, bool, str))


# ===========================================================================
# →S : specialization (Figure 2)
# ===========================================================================

def specialize(e: t.TerraTerm, env: dict, state: State) -> t.SpecTerm:
    if isinstance(e, t.TBase):                                   # SBAS
        return t.SBase(e.value)
    if isinstance(e, t.TVar):                                    # SVAR
        if e.name not in env:
            raise SpecializeError(f"unbound variable {e.name!r} in Terra code")
        value = state.store[env[e.name]]
        return _embed(value)
    if isinstance(e, t.TApp):                                    # SAPP
        fn = specialize(e.fn, env, state)
        arg = specialize(e.arg, env, state)
        return t.SApp(fn, arg)
    if isinstance(e, t.TLet):                                    # SLET
        type_value = eval_lua(e.type_expr, env, state)
        if not isinstance(type_value, t.CoreType):
            raise SpecializeError("tlet: annotation is not a Terra type")
        init = specialize(e.init, env, state)
        sym = state.fresh_symbol()                  # hygiene: fresh name
        addr = state.fresh_addr()
        state.store[addr] = t.SVar(sym)
        body = specialize(e.body, bind(env, e.name, addr), state)
        return t.SLet(sym, type_value, init, body)
    if isinstance(e, t.TEscape):                                 # SESC
        value = eval_lua(e.code, env, state)
        return _embed(value)
    raise CoreError(f"not a Terra term: {e!r}")


def _embed(value) -> t.SpecTerm:
    """The side-condition of SESC/SVAR: the value must be (embeddable as)
    a specialized Terra term."""
    if isinstance(value, t.SpecTerm):
        return value
    if isinstance(value, t.SFunc):
        return value
    if _is_base(value):
        return t.SBase(value)
    raise SpecializeError(
        f"value {value!r} is not a Terra term (escapes must produce base "
        f"values, function addresses, or specialized terms)")


# ===========================================================================
# typechecking (Figure 4: TYFUN1 / TYFUN2)
# ===========================================================================

def typecheck_function(address: int, state: State,
                       assumptions: Optional[dict] = None) -> t.Arrow:
    """Typecheck ``l`` and (transitively) every function it references —
    the connected component rule.  ``assumptions`` is the paper's F̄: the
    types already assumed for in-progress functions, which is what makes
    mutually recursive components check (TYFUN2)."""
    if assumptions is None:
        assumptions = {}
    if address in assumptions:
        return assumptions[address]
    fdef = state.functions.get(address)
    if fdef is t.UNDEFINED:
        raise LinkError(
            f"function l{address} is declared but not defined")
    ftype = t.Arrow(fdef.param_type, fdef.return_type)
    assumptions[address] = ftype                       # TYFUN2 assumption
    env = {fdef.symbol: fdef.param_type}
    body_type = _type_of(fdef.body, env, state, assumptions)
    if body_type != fdef.return_type:
        raise TypeCheckError(
            f"function l{address}: body has type {body_type}, declared "
            f"{fdef.return_type}")
    return ftype


def _type_of(e: t.SpecTerm, env: dict, state: State,
             assumptions: dict) -> t.CoreType:
    if isinstance(e, t.SBase):
        return t.B
    if isinstance(e, t.SVar):
        if e.symbol not in env:
            raise TypeCheckError(f"variable x{e.symbol} not in scope")
        return env[e.symbol]
    if isinstance(e, t.SFunc):
        return typecheck_function(e.address, state, assumptions)
    if isinstance(e, t.SLet):
        init_type = _type_of(e.init, env, state, assumptions)
        if init_type != e.type:
            raise TypeCheckError(
                f"tlet: initializer has type {init_type}, annotation says "
                f"{e.type}")
        inner = dict(env)
        inner[e.symbol] = e.type
        return _type_of(e.body, inner, state, assumptions)
    if isinstance(e, t.SApp):
        fn_type = _type_of(e.fn, env, state, assumptions)
        arg_type = _type_of(e.arg, env, state, assumptions)
        if not isinstance(fn_type, t.Arrow):
            raise TypeCheckError(f"cannot apply value of type {fn_type}")
        if fn_type.param != arg_type:
            raise TypeCheckError(
                f"argument type {arg_type} does not match parameter "
                f"{fn_type.param}")
        return fn_type.result
    raise CoreError(f"not a specialized term: {e!r}")


# ===========================================================================
# →T : Terra evaluation (Figure 3)
# ===========================================================================

def call_terra(address: int, arg, state: State):
    """``l(b)`` after typechecking: run the function body in an
    environment containing only its parameter — independently of Γ and S
    (separate evaluation)."""
    fdef = state.functions[address]
    assert fdef is not t.UNDEFINED
    return eval_terra(fdef.body, {fdef.symbol: arg}, state.functions)


def eval_terra(e: t.SpecTerm, tenv: dict, functions: dict):
    if isinstance(e, t.SBase):                                   # TBAS
        return e.value
    if isinstance(e, t.SVar):                                    # TVAR
        return tenv[e.symbol]
    if isinstance(e, t.SFunc):                                   # TFUN
        return e
    if isinstance(e, t.SLet):                                    # TLET
        value = eval_terra(e.init, tenv, functions)
        inner = dict(tenv)
        inner[e.symbol] = value
        return eval_terra(e.body, inner, functions)
    if isinstance(e, t.SApp):                                    # TAPP
        fn = eval_terra(e.fn, tenv, functions)
        arg = eval_terra(e.arg, tenv, functions)
        if not isinstance(fn, t.SFunc):
            raise CoreError(f"TAPP: {fn!r} is not a function address")
        fdef = functions[fn.address]
        if fdef is t.UNDEFINED:
            raise LinkError(f"TAPP: l{fn.address} is undefined")
        return eval_terra(fdef.body, {fdef.symbol: arg}, functions)
    raise CoreError(f"not a specialized term: {e!r}")


# ===========================================================================
# convenience driver
# ===========================================================================

def run(program: t.LuaTerm):
    """Evaluate a closed Lua Core program; returns (value, state)."""
    state = State()
    value = eval_lua(program, EMPTY_ENV, state)
    return value, state
