"""Request coalescing: many chunked requests, one ``parallel_for``-style
dispatch.

When concurrent clients ask for the *same* chunk-marked kernel with the
*same* arguments but different ``[lo, hi)`` ranges, running each request
as its own dispatch would pay one worker-pool round-trip (and one
argument conversion) per request.  The coalescer instead groups them: the
first arrival opens a batch and schedules a flush (on the next loop tick,
or after ``window_s`` when a window is configured); every same-key
arrival in that window joins the batch; the flush converts arguments
**once**, then drives all ranges through
:func:`repro.parallel.dispatch_chunks` — one pool round-trip for the
whole batch.

Error isolation is per range: ``dispatch_chunks`` returns one error slot
per chunk, so a kernel that traps on request 7's range fails request 7
with a ``trap`` response while requests 0–6 and 8–N succeed.  (This is
the serve-level face of the PR 5 guarantee that a worker trap never
wedges the pool.)

Batch keys include the tenant: two tenants never share a dispatch, even
for byte-identical kernels — their arguments reference tenant-owned
buffers anyway, and keeping the batches apart keeps the per-request
accounting honest.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from .. import trace as _trace
from ..parallel import dispatch_chunks
from ..trace.metrics import registry
from .state import WarmKernel

#: flush a batch once it holds this many requests, window or not
MAX_BATCH = 256


class _Batch:
    """One open group of same-(tenant, kernel, args) chunked requests."""

    __slots__ = ("kernel", "args", "entries", "opened", "flushed")

    def __init__(self, kernel: WarmKernel, args: list):
        self.kernel = kernel
        self.args = args
        self.entries: list[tuple[tuple[int, int], asyncio.Future]] = []
        self.opened = time.perf_counter()
        self.flushed = False


class Coalescer:
    """Groups chunked executions by (tenant, kernel, args) identity."""

    def __init__(self, loop: asyncio.AbstractEventLoop, executor,
                 window_s: float = 0.0):
        self._loop = loop
        self._executor = executor
        self.window_s = max(0.0, window_s)
        self._open: dict[tuple, _Batch] = {}

    async def submit(self, batch_key: tuple, kernel: WarmKernel, args: list,
                     rng: tuple[int, int]) -> Optional[BaseException]:
        """Queue one chunked execution; resolves to the request's error
        slot (None on success) once its batch has run."""
        batch = self._open.get(batch_key)
        if batch is None:
            batch = _Batch(kernel, args)
            self._open[batch_key] = batch
            if self.window_s > 0:
                self._loop.call_later(self.window_s, self._flush, batch_key)
            else:
                # next-tick flush: every request already readable in this
                # loop iteration joins the batch before it runs
                self._loop.call_soon(self._flush, batch_key)
        fut: asyncio.Future = self._loop.create_future()
        batch.entries.append((rng, fut))
        if len(batch.entries) >= MAX_BATCH:
            self._flush(batch_key)
        return await fut

    # -- flushing -----------------------------------------------------------
    def _flush(self, batch_key: tuple) -> None:
        batch = self._open.pop(batch_key, None)
        if batch is None or batch.flushed:
            return
        batch.flushed = True
        self._loop.create_task(self._run(batch))

    async def _run(self, batch: _Batch) -> None:
        ranges = [rng for rng, _ in batch.entries]
        reg = registry()
        reg.add("serve.batches")
        reg.add("serve.batched_requests", len(ranges))
        reg.track_max("serve.batch_max", len(ranges))
        try:
            errors = await self._loop.run_in_executor(
                self._executor, self._execute, batch.kernel, batch.args,
                ranges)
        except BaseException as exc:  # argument conversion failed: fail all
            for _, fut in batch.entries:
                if not fut.done():
                    fut.set_result(exc)
            return
        for (_, fut), err in zip(batch.entries, errors):
            if not fut.done():
                fut.set_result(err)

    def _execute(self, kernel: WarmKernel, args: list,
                 ranges: list) -> list:
        """Executor-thread body: convert arguments once, dispatch every
        range in one pool round-trip (spans land in this worker's lane)."""
        with _trace.span(f"serve.batch:{kernel.entry}", cat="serve",
                         kernel=kernel.entry, key=kernel.key,
                         requests=len(ranges)):
            run = kernel.handle.chunk_caller(*args)
            return dispatch_chunks(run, ranges, name=kernel.entry)
