"""The blocking client for :mod:`repro.serve`.

One socket, one request in flight at a time — deliberately the simplest
thing that exercises the server, because it is also the *model* of a
served user: the load generator opens thousands of these, and the tests
drive every protocol path through one.

>>> from repro.serve.client import ServeClient        # doctest: +SKIP
>>> c = ServeClient()                                  # doctest: +SKIP
>>> c.call("terra add(a : int, b : int) : int return a + b end",
...        "add", [2, 3])                              # doctest: +SKIP
5

Server-side errors raise :class:`~repro.serve.protocol.ServeError` with
the machine-readable ``code`` preserved, so callers can distinguish a
``trap`` from ``tenant-over-quota`` without string matching.
"""

from __future__ import annotations

import socket
import time
from typing import Optional

from . import protocol
from .protocol import ServeError
from .server import default_socket_path


class ServeClient:
    """A blocking newline-delimited-JSON client (one request at a time)."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: Optional[str] = None, port: Optional[int] = None,
                 tenant: str = "default", timeout: float = 60.0):
        self.tenant = tenant
        self.timeout = timeout
        if port is not None:
            self._addr = ((host or "127.0.0.1"), port)
            self._family = socket.AF_INET
        else:
            self._addr = socket_path or default_socket_path()
            self._family = socket.AF_UNIX
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 1

    # -- connection management ----------------------------------------------
    def connect(self) -> "ServeClient":
        if self._sock is None:
            sock = socket.socket(self._family, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self._addr)
            self._sock = sock
            self._file = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the request/response cycle ------------------------------------------
    def request(self, req: dict) -> dict:
        """Send one request object, wait for its response object.  Raises
        :class:`ServeError` when the server answers ``ok: false``, and
        ``ConnectionError`` when the stream dies mid-cycle."""
        self.connect()
        req = dict(req)
        req.setdefault("id", self._next_id)
        self._next_id += 1
        self._sock.sendall(protocol.encode(req))
        line = self._file.readline()
        if not line:
            self.close()
            raise ConnectionError("server closed the connection")
        resp = protocol.decode(line)
        if resp.get("ok"):
            return resp
        err = resp.get("error") or {}
        code = err.get("code", "internal")
        if code not in protocol.ERROR_CODES:
            code = "internal"
        # framing errors leave the connection unusable server-side
        if code in ("oversized", "bad-json"):
            self.close()
        raise ServeError(code, err.get("message", "unknown server error"))

    def send_raw(self, payload: bytes) -> dict:
        """Ship raw bytes (tests: malformed JSON, oversized lines) and
        read back one response object."""
        self.connect()
        self._sock.sendall(payload)
        line = self._file.readline()
        if not line:
            self.close()
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    # -- convenience ops ----------------------------------------------------
    def ping(self) -> bool:
        return self.request({"op": "ping"})["result"] == "pong"

    def stats(self) -> dict:
        return self.request({"op": "stats"})["result"]

    def call(self, source: str, entry: str, args: Optional[list] = None,
             tenant: Optional[str] = None,
             chunk: Optional[tuple[int, int]] = None):
        req = {"op": "call", "source": source, "entry": entry,
               "args": list(args or []), "tenant": tenant or self.tenant}
        if chunk is not None:
            req["chunk"] = [int(chunk[0]), int(chunk[1])]
        return protocol.from_wire_result(self.request(req)["result"])

    def alloc(self, dtype: str, count: int,
              tenant: Optional[str] = None) -> int:
        return self.request({"op": "alloc", "dtype": dtype, "count": count,
                             "tenant": tenant or self.tenant})["result"]["buf"]

    def write(self, buf: int, values: list, start: int = 0,
              tenant: Optional[str] = None) -> int:
        return self.request({"op": "write", "buf": buf, "start": start,
                             "values": list(values),
                             "tenant": tenant or self.tenant})["result"]

    def read(self, buf: int, count: int, start: int = 0,
             tenant: Optional[str] = None) -> list:
        raw = self.request({"op": "read", "buf": buf, "start": start,
                            "count": count,
                            "tenant": tenant or self.tenant})["result"]
        return [protocol.from_wire_result(v) for v in raw]

    def free(self, buf: int, tenant: Optional[str] = None) -> None:
        self.request({"op": "free", "buf": buf,
                      "tenant": tenant or self.tenant})


def wait_until_ready(socket_path: Optional[str] = None,
                     port: Optional[int] = None,
                     timeout: float = 30.0) -> None:
    """Poll until a server answers ``ping`` (startup synchronization for
    tests, the load generator, and CI scripts)."""
    deadline = time.monotonic() + timeout
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(socket_path=socket_path, port=port,
                             timeout=5.0) as c:
                if c.ping():
                    return
        except (OSError, ConnectionError, ServeError) as exc:
            last = exc
        time.sleep(0.05)
    raise TimeoutError(f"no repro.serve server became ready within "
                       f"{timeout}s (last error: {last})")
