"""The asyncio front door: accept, admit, compile, execute, respond.

One event loop owns all bookkeeping (tenants, warm pools, admission,
batches) — every mutation of that state happens on the loop thread, so
none of it is locked.  The two kinds of real work leave the loop:

* **compilation** (parse → specialize → typecheck → emit) runs on the
  ``repro-serve-<i>`` executor threads; the gcc stage is then *awaited*
  on the loop through buildd's async submission hook
  (:meth:`~repro.backend.base.CompileTicket.aresult`), so a cold request
  occupies an executor thread only for the Python-side staging, never for
  the compiler run;
* **execution** (one ctypes call, GIL released) also runs on the
  executor — a long kernel never stalls the accept loop, and because the
  per-request spans are emitted on those named threads, the exported
  trace renders one lane per serve worker (`python -m repro.trace view`).

Tenant source is specialized against an **empty environment** (Terra
primitives and Python builtins only): a request's escapes cannot see the
server's modules or another tenant's state through lexical capture.  The
service trusts its local-socket clients with *compute* (escapes still
evaluate Python), but name capture is not part of the protocol surface.

Identical cold requests racing is handled serve-side too: the second
request for a (tenant, kernel) already compiling awaits the first's
future instead of staging again (``serve.compile_dedup``), mirroring
buildd's in-flight dedup one layer up.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

from .. import trace as _trace
from ..buildd import service as _buildd_service
from ..errors import FFIError, TerraError, TrapError
from ..trace.metrics import registry
from . import protocol
from .admission import Admission
from .batch import Coalescer
from .protocol import ServeError
from .state import TenantState, WarmKernel, kernel_key


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name, "")
    if raw:
        try:
            return max(minimum, int(raw))
        except ValueError:
            pass
    return default


def default_socket_path() -> str:
    base = os.environ.get("REPRO_SERVE_SOCKET")
    if base:
        return base
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-serve-{uid}.sock")


@dataclass
class ServeConfig:
    """Server knobs; every default is overridable by an environment
    variable (``REPRO_SERVE_WORKERS``, ``REPRO_SERVE_QUEUE``, and
    friends — see docs/ENVIRONMENT.md)."""

    socket_path: Optional[str] = None     # unix socket (the default transport)
    port: Optional[int] = None            # TCP on 127.0.0.1 instead, if set
    workers: int = 0                      # executor threads (0: cpu count)
    queue_limit: int = 1024               # global in-flight bound
    tenant_concurrency: int = 64          # per-tenant in-flight cap
    tenant_kernels: int = 32              # warm-pool quota per tenant
    max_request_bytes: int = 1 << 20      # per-line framing cap
    batch_window_s: float = 0.0           # 0: same-tick coalescing only
    backend: Optional[str] = None         # None: the process default

    @classmethod
    def from_env(cls) -> "ServeConfig":
        port_raw = os.environ.get("REPRO_SERVE_PORT", "")
        port = None
        if port_raw:
            try:
                port = int(port_raw)
            except ValueError:
                port = None
        window_ms_raw = os.environ.get("REPRO_SERVE_BATCH_WINDOW_MS", "")
        try:
            window_s = max(0.0, float(window_ms_raw) / 1000.0) \
                if window_ms_raw else 0.0
        except ValueError:
            window_s = 0.0
        return cls(
            socket_path=None if port else default_socket_path(),
            port=port,
            workers=_env_int("REPRO_SERVE_WORKERS",
                             max(4, os.cpu_count() or 1)),
            queue_limit=_env_int("REPRO_SERVE_QUEUE", 1024),
            tenant_concurrency=_env_int("REPRO_SERVE_TENANT_CONCURRENCY", 64),
            tenant_kernels=_env_int("REPRO_SERVE_TENANT_KERNELS", 32),
            max_request_bytes=_env_int("REPRO_SERVE_MAX_REQUEST_BYTES",
                                       1 << 20, minimum=1024),
            batch_window_s=window_s,
        )

    def resolved_workers(self) -> int:
        return self.workers if self.workers > 0 else max(4, os.cpu_count() or 1)


class ServeServer:
    """The multi-tenant compile-and-execute service."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig.from_env()
        self._tenants: dict[str, TenantState] = {}
        self._admission = Admission(self.config.queue_limit,
                                    self.config.tenant_concurrency)
        self._compiling: dict[tuple[str, str], asyncio.Future] = {}
        self._exec = ThreadPoolExecutor(
            max_workers=self.config.resolved_workers(),
            thread_name_prefix="repro-serve")
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._batcher: Optional[Coalescer] = None
        self._started = time.time()
        self._connections = 0

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> str:
        """Bind and start serving; returns the bound address (socket path,
        or ``host:port``)."""
        self._loop = asyncio.get_running_loop()
        self._batcher = Coalescer(self._loop, self._exec,
                                  self.config.batch_window_s)
        limit = self.config.max_request_bytes
        if self.config.port is not None:
            self._server = await asyncio.start_server(
                self._client_loop, host="127.0.0.1", port=self.config.port,
                limit=limit)
            port = self._server.sockets[0].getsockname()[1]
            self.config.port = port
            self.address = f"127.0.0.1:{port}"
        else:
            path = self.config.socket_path or default_socket_path()
            try:
                os.unlink(path)
            except OSError:
                pass
            self._server = await asyncio.start_unix_server(
                self._client_loop, path=path, limit=limit)
            self.config.socket_path = path
            self.address = path
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._exec.shutdown(wait=True)
        if self.config.socket_path:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass

    # -- per-connection loop ------------------------------------------------
    async def _client_loop(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._connections += 1
        registry().add("serve.connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # line exceeded the stream limit: answer, then close —
                    # the stream position is unrecoverable
                    writer.write(protocol.encode(protocol.error_response(
                        None, "oversized",
                        f"request exceeds "
                        f"{self.config.max_request_bytes} bytes")))
                    await writer.drain()
                    return
                if not line:
                    return
                if line.strip() == b"":
                    continue
                response = await self._handle_line(line)
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # loop shutdown cancelled us mid-read: finish normally so the
            # streams teardown callback has nothing to log
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _handle_line(self, line: bytes) -> dict:
        req_id = None
        try:
            req = protocol.decode(line)
            req_id = req.get("id")
            return await self._dispatch(req, req_id)
        except ServeError as exc:
            registry().add("serve.errors")
            return protocol.error_response(req_id, exc.code, exc.message)
        except Exception as exc:  # never kill the connection loop
            registry().add("serve.errors")
            return protocol.error_response(
                req_id, "internal", f"{type(exc).__name__}: {exc}")

    # -- request dispatch ---------------------------------------------------
    async def _dispatch(self, req: dict, req_id) -> dict:
        op = protocol.field(req, "op", str, required=True)
        if op == "ping":
            return protocol.ok_response(req_id, "pong")
        if op == "stats":
            return protocol.ok_response(req_id, self.stats())
        tenant = self._tenant(protocol.field(req, "tenant", str,
                                             default="default"))
        if op == "call":
            return await self._op_call(req, req_id, tenant)
        if op == "alloc":
            buf = tenant.alloc(
                protocol.field(req, "dtype", str, required=True),
                protocol.field(req, "count", int, required=True))
            return protocol.ok_response(req_id, {"buf": buf.id,
                                                 "nbytes": buf.nbytes})
        if op == "write":
            n = tenant.write(
                protocol.field(req, "buf", int, required=True),
                protocol.field(req, "start", int, default=0),
                protocol.field(req, "values", list, required=True))
            return protocol.ok_response(req_id, n)
        if op == "read":
            values = tenant.read(
                protocol.field(req, "buf", int, required=True),
                protocol.field(req, "start", int, default=0),
                protocol.field(req, "count", int, required=True))
            return protocol.ok_response(req_id, values)
        if op == "free":
            tenant.free(protocol.field(req, "buf", int, required=True))
            return protocol.ok_response(req_id, True)
        raise ServeError("unknown-op", f"unknown op {op!r}")

    def _tenant(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = TenantState(name, self.config.tenant_kernels)
            self._tenants[name] = state
        return state

    # -- the call op --------------------------------------------------------
    async def _op_call(self, req: dict, req_id, tenant: TenantState) -> dict:
        source = protocol.field(req, "source", str, required=True)
        entry = protocol.field(req, "entry", str, required=True)
        raw_args = protocol.field(req, "args", list, default=[])
        rng = protocol.chunk_range(req)
        rejection = self._admission.try_admit(tenant)
        if rejection is not None:
            return protocol.error_response(req_id, *rejection)
        reg = registry()
        reg.add("serve.requests")
        tenant.requests += 1
        t_admit = time.perf_counter()
        try:
            kernel = await self._warm_kernel(tenant, source, entry,
                                             chunked=rng is not None)
            args = tenant.resolve_args(raw_args)
            if rng is not None:
                result = await self._call_chunked(tenant, kernel, args, rng,
                                                  raw_args, t_admit)
            else:
                result = await self._call_plain(tenant, kernel, args, t_admit)
            reg.record_time("serve.request", time.perf_counter() - t_admit)
            return protocol.ok_response(req_id, result)
        except TrapError as exc:
            reg.add("serve.traps")
            return protocol.error_response(req_id, "trap", str(exc))
        except ServeError as exc:
            reg.add("serve.errors")
            return protocol.error_response(req_id, exc.code, exc.message)
        except FFIError as exc:
            reg.add("serve.errors")
            return protocol.error_response(req_id, "bad-request", str(exc))
        except TerraError as exc:
            reg.add("serve.errors")
            return protocol.error_response(
                req_id, "compile-error", f"{type(exc).__name__}: {exc}")
        finally:
            self._admission.release(tenant)

    async def _call_plain(self, tenant: TenantState, kernel: WarmKernel,
                          args: list, t_admit: float):
        def job():
            registry().record_time("serve.queue_wait",
                                   time.perf_counter() - t_admit)
            with _trace.span(f"serve.exec:{kernel.entry}", cat="serve",
                             tenant=tenant.name, key=kernel.key):
                return kernel.handle(*args)

        result = await self._loop.run_in_executor(self._exec, job)
        return protocol.jsonable_result(result, kernel.entry)

    async def _call_chunked(self, tenant: TenantState, kernel: WarmKernel,
                            args: list, rng: tuple[int, int], raw_args: list,
                            t_admit: float):
        if not kernel.chunked or getattr(kernel.handle, "chunk_caller",
                                         None) is None:
            raise ServeError("unsupported",
                             f"{kernel.entry} has no chunked entry on this "
                             f"backend")
        registry().record_time("serve.queue_wait",
                               time.perf_counter() - t_admit)
        batch_key = (tenant.name, kernel.key,
                     protocol.encode({"args": raw_args}))
        err = await self._batcher.submit(batch_key, kernel, args, rng)
        if err is None:
            return None
        raise err

    # -- compilation (warm pool miss) ---------------------------------------
    async def _warm_kernel(self, tenant: TenantState, source: str,
                           entry: str, chunked: bool) -> WarmKernel:
        backend = self.config.backend
        if chunked:
            backend = "c"  # chunked entries exist only on the C backend
        key_backend = backend or "default"
        if not chunked and self._tiered_policy():
            # tiered kernels carry live tier state; keep them apart from
            # any ahead-of-time compile of the same source
            key_backend = "tiered"
        key = kernel_key(source, entry, chunked, key_backend)
        kernel = tenant.kernels.get(key)
        reg = registry()
        if kernel is not None:
            reg.add("serve.cache_hit")
            _trace.instant("serve.cache_hit", cat="serve",
                           tenant=tenant.name, key=key)
            return kernel
        compile_key = (tenant.name, key)
        pending = self._compiling.get(compile_key)
        if pending is not None:
            reg.add("serve.compile_dedup")
            return await asyncio.shield(pending)
        fut = self._loop.create_future()
        self._compiling[compile_key] = fut
        try:
            kernel = await self._compile(tenant, source, entry, chunked,
                                         backend, key)
            evicted = tenant.kernels.put(kernel)
            if evicted:
                reg.add("serve.evicted", len(evicted))
            fut.set_result(kernel)
            return kernel
        except BaseException as exc:
            fut.set_exception(exc)
            # mark the exception retrieved: if no dedup waiter ever awaits
            # this future, its GC must not log a spurious traceback
            fut.exception()
            raise
        finally:
            self._compiling.pop(compile_key, None)

    @staticmethod
    def _tiered_policy() -> bool:
        from ..exec import current_policy
        return current_policy().name == "tiered"

    def _tier_up_hook(self, tenant: TenantState):
        """The dispatcher's on_tier_up hook for one tenant's kernels:
        count and trace each background tier-up (runs on buildd's
        tier-up thread)."""
        tenant_name = tenant.name

        def hook(dispatcher):
            registry().add("serve.tier_up")
            _trace.instant("serve.tier_up", cat="serve", tenant=tenant_name,
                           fn=dispatcher.fn.name,
                           respecialized=dispatcher.tier_info()
                           ["respecialized"])

        return hook

    async def _compile(self, tenant: TenantState, source: str, entry: str,
                       chunked: bool, backend: Optional[str],
                       key: str) -> WarmKernel:
        reg = registry()
        reg.add("serve.compile")
        t0 = time.perf_counter()
        tiered = not chunked and self._tiered_policy()

        def stage():
            """Executor-thread half: everything up to the buildd submit."""
            with _trace.span(f"serve.compile:{entry}", cat="serve",
                             tenant=tenant.name, key=key, chunked=chunked,
                             tiered=tiered):
                with _buildd_service.cache_namespace(tenant.name):
                    fn = self._resolve_entry(source, entry)
                    if chunked:
                        fn.mark_chunked()
                    if tiered:
                        # tier 0: the warm "handle" is the dispatcher
                        # itself — calls start interpreted, the tiered
                        # policy compiles C in the background, and the
                        # pool entry speeds up in place
                        dispatcher = fn.dispatcher
                        dispatcher.on_tier_up = self._tier_up_hook(tenant)
                        dispatcher.compiled_handle("interp")
                        return fn, "tiered", None
                    from ..backend.base import resolve_backend
                    be = resolve_backend(backend)
                    return fn, be.name, fn.compile_async(be)

        fn, backend_name, ticket = await self._loop.run_in_executor(
            self._exec, stage)
        if ticket is None:
            handle = fn.dispatcher
        else:
            # the gcc run is awaited on the loop (buildd's async hook),
            # then the dlopen/ctypes binding goes back to the executor
            await ticket.await_built()
            with _buildd_service.cache_namespace(tenant.name):
                handle = await self._loop.run_in_executor(self._exec,
                                                          ticket.result)
        dt = time.perf_counter() - t0
        reg.record_time("serve.compile", dt)
        return WarmKernel(key, entry, fn, handle, chunked, dt, tiered=tiered)

    @staticmethod
    def _resolve_entry(source: str, entry: str):
        """Stage tenant source in a clean environment and pick the entry
        point; every front-end failure becomes a protocol error."""
        from .. import Namespace, terra
        from ..core.env import Environment
        from ..core.function import TerraFunction
        from ..errors import TerraError as _TerraError
        env = Environment({}, {}, "<repro.serve sandbox>")
        try:
            defined = terra(source, env=env, filename=f"<serve:{entry}>")
        except _TerraError as exc:
            raise ServeError("compile-error",
                             f"{type(exc).__name__}: {exc}")
        if isinstance(defined, Namespace):
            fn = dict.get(defined, entry)
        else:
            fn = defined if getattr(defined, "name", None) == entry else None
        if not isinstance(fn, TerraFunction):
            have = sorted(defined) if isinstance(defined, Namespace) \
                else [getattr(defined, "name", "?")]
            raise ServeError(
                "unknown-entry",
                f"source defines no Terra function {entry!r} "
                f"(found: {', '.join(have)})")
        return fn

    # -- reporting ----------------------------------------------------------
    def stats(self) -> dict:
        reg = registry()
        return {
            "uptime_s": round(time.time() - self._started, 3),
            "address": getattr(self, "address", None),
            "connections": self._connections,
            "inflight": self._admission.inflight,
            "inflight_peak": self._admission.peak,
            "workers": self.config.resolved_workers(),
            "tenants": {name: t.summary()
                        for name, t in sorted(self._tenants.items())},
            "counters": reg.counters("serve."),
            "timings": reg.timings("serve."),
        }


async def run_server(config: Optional[ServeConfig] = None,
                     ready=None) -> None:
    """Start a server and serve until cancelled (the ``python -m
    repro.serve`` entry).  ``ready``, if given, is called with the bound
    address once the socket is listening."""
    server = ServeServer(config)
    address = await server.start()
    if ready is not None:
        ready(address)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
