"""``python -m repro.serve`` — run the service, or smoke-test it.

Default mode binds the socket and serves until interrupted::

    python -m repro.serve --socket /tmp/kernels.sock --workers 8

``--smoke`` instead starts an in-process server, drives a short
multi-tenant load against it (cold and warm scalar calls per tenant,
plus a coalesced chunked saxpy over server-resident buffers), verifies
the results and the serve counters, prints the stats snapshot, and exits
nonzero on any failure.  ``make serve-smoke`` and CI run exactly this;
``--trace out.json`` additionally exports the Chrome trace of the run.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from concurrent.futures import ThreadPoolExecutor

from .. import trace as _trace
from .protocol import ServeError
from .server import ServeConfig, run_server
from .testing import ServerThread


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-tenant Terra kernel compile-and-execute service")
    p.add_argument("--socket", metavar="PATH",
                   help="unix socket path (default: $TMPDIR/repro-serve-"
                        "<uid>.sock, or REPRO_SERVE_SOCKET)")
    p.add_argument("--port", type=int,
                   help="serve TCP on 127.0.0.1:PORT instead of a unix "
                        "socket (0 picks a free port)")
    p.add_argument("--workers", type=int,
                   help="executor threads (default: cpu count)")
    p.add_argument("--queue", type=int,
                   help="global in-flight request bound")
    p.add_argument("--tenant-concurrency", type=int,
                   help="per-tenant in-flight request cap")
    p.add_argument("--tenant-kernels", type=int,
                   help="warm-kernel pool quota per tenant")
    p.add_argument("--batch-window-ms", type=float,
                   help="coalescing window for chunked requests")
    p.add_argument("--backend", choices=["c", "interp"],
                   help="execution backend (default: process default)")
    p.add_argument("--smoke", action="store_true",
                   help="run the self-check load instead of serving")
    p.add_argument("--smoke-tenants", type=int, default=4, metavar="N",
                   help="tenants the smoke load drives (default: 4)")
    p.add_argument("--trace", metavar="PATH",
                   help="export a Chrome trace of the run to PATH")
    return p


def _config_from(ns: argparse.Namespace) -> ServeConfig:
    cfg = ServeConfig.from_env()
    if ns.port is not None:
        cfg.port, cfg.socket_path = ns.port, None
    elif ns.socket:
        cfg.socket_path = ns.socket
    if ns.workers is not None:
        cfg.workers = max(1, ns.workers)
    if ns.queue is not None:
        cfg.queue_limit = max(1, ns.queue)
    if ns.tenant_concurrency is not None:
        cfg.tenant_concurrency = max(1, ns.tenant_concurrency)
    if ns.tenant_kernels is not None:
        cfg.tenant_kernels = max(1, ns.tenant_kernels)
    if ns.batch_window_ms is not None:
        cfg.batch_window_s = max(0.0, ns.batch_window_ms / 1000.0)
    if ns.backend:
        cfg.backend = ns.backend
    return cfg


# -- the smoke load -----------------------------------------------------------

SQ_SOURCE = """
terra sq(x : double) : double
  return x * x
end
"""

SAXPY_SOURCE = """
terra saxpy(n : int64, a : double, x : &double, y : &double) : {}
  for i = 0, n do
    y[i] = a * x[i] + y[i]
  end
end
"""


def _smoke_tenant(srv: ServerThread, tenant: str, n: int) -> list[str]:
    """One tenant's worth of load; returns the failures it observed."""
    bad: list[str] = []
    with srv.client(tenant=tenant) as c:
        # cold then warm scalar call
        for x in (3.0, 4.0):
            got = c.call(SQ_SOURCE, "sq", [x])
            if got != x * x:
                bad.append(f"{tenant}: sq({x}) returned {got!r}")
        # server-resident buffers + coalesced chunked dispatch
        xs = c.alloc("double", n)
        ys = c.alloc("double", n)
        c.write(xs, [float(i) for i in range(n)])
        c.write(ys, [1.0] * n)
        args = [n, 2.0, {"buf": xs}, {"buf": ys}]
        quarter = n // 4
        cuts = [(i * quarter, n if i == 3 else (i + 1) * quarter)
                for i in range(4)]

        def one_chunk(rng):
            with srv.client(tenant=tenant) as cc:
                cc.call(SAXPY_SOURCE, "saxpy", args, chunk=rng)

        with ThreadPoolExecutor(max_workers=4) as pool:
            for fut in [pool.submit(one_chunk, rng) for rng in cuts]:
                fut.result()
        got = c.read(ys, n)
        want = [2.0 * i + 1.0 for i in range(n)]
        if got != want:
            bad.append(f"{tenant}: saxpy mismatch "
                       f"(first difference at index "
                       f"{next(i for i, (g, w) in enumerate(zip(got, want)) if g != w)})")
        c.free(xs)
        c.free(ys)
        # a trap must come back as the 'trap' error code, not a hang
        try:
            c.call("terra boom(x : int) : int return 1 / (x - x) end",
                   "boom", [5])
            bad.append(f"{tenant}: expected a trap, got a result")
        except ServeError as exc:
            if exc.code != "trap":
                bad.append(f"{tenant}: trap surfaced as {exc.code!r}")
    return bad


def run_smoke(config: ServeConfig, tenants: int, trace_out=None) -> int:
    _trace.enable()
    n = 64
    failures: list[str] = []
    with ServerThread(config) as srv:
        print(f"serve-smoke: server on {srv.address}, "
              f"{tenants} tenants", flush=True)
        with ThreadPoolExecutor(max_workers=tenants) as pool:
            futs = [pool.submit(_smoke_tenant, srv, f"tenant-{i}", n)
                    for i in range(tenants)]
            for fut in futs:
                failures.extend(fut.result())
        stats = srv.stats()
        counters = stats.get("counters", {})
        # every tenant's second sq call must have hit the warm pool
        if counters.get("serve.cache_hit", 0) < tenants:
            failures.append(
                f"warm pool never hit: serve.cache_hit = "
                f"{counters.get('serve.cache_hit', 0)} < {tenants}")
        if counters.get("serve.traps", 0) < tenants:
            failures.append("trap requests were not counted")
        if len(stats.get("tenants", {})) < tenants:
            failures.append(
                f"expected {tenants} tenants in stats, saw "
                f"{len(stats.get('tenants', {}))}")
        print(json.dumps(stats, indent=2, default=str), flush=True)
    if trace_out:
        path = _trace.export_chrome(trace_out)
        print(f"serve-smoke: trace written to {path}", flush=True)
    if failures:
        for f in failures:
            print(f"serve-smoke FAIL: {f}", file=sys.stderr, flush=True)
        return 1
    print("serve-smoke: OK", flush=True)
    return 0


def main(argv=None) -> int:
    ns = _build_parser().parse_args(argv)
    config = _config_from(ns)
    if ns.smoke:
        return run_smoke(config, max(1, ns.smoke_tenants), ns.trace)
    if ns.trace:
        _trace.enable()

    def ready(address: str) -> None:
        print(f"repro.serve listening on {address}", flush=True)

    try:
        asyncio.run(run_server(config, ready=ready))
    except KeyboardInterrupt:
        pass
    finally:
        if ns.trace:
            print(f"trace written to {_trace.export_chrome(ns.trace)}",
                  flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
