"""Per-tenant server state: the warm kernel pool and resident buffers.

**Warm pool.**  A kernel that has been compiled for a tenant stays
*resident* — its :class:`~repro.core.function.TerraFunction` and compiled
handle are kept in an LRU-ordered per-tenant pool, so a warm request
skips the entire parse → specialize → typecheck → emit → buildd path and
goes straight to one ctypes call.  (buildd's artifact cache already makes
the *gcc* step free for identical source; the warm pool also makes the
Python-side staging free, which dominates once artifacts are cached.)
Each tenant holds at most ``quota`` kernels; inserting beyond that evicts
the least-recently-used one.  Pools are per-tenant by design: one noisy
tenant can evict only its own kernels, never a neighbour's — the
cross-tenant sharing happens one layer down, in the content-addressed
artifact cache, where identical source still compiles once.

**Buffers.**  Kernels operate on pointers, and pointers cannot cross a
JSON boundary, so tenants allocate *server-resident* typed buffers
(``alloc``/``write``/``read``/``free`` ops) and pass ``{"buf": id}``
where a kernel expects a pointer.  Buffers are ctypes arrays owned by the
tenant that allocated them; referencing another tenant's buffer id is an
``unknown-buffer`` error (tenant isolation is by construction: ids are
looked up in the requesting tenant's table only).
"""

from __future__ import annotations

import ctypes
import hashlib
import time
from collections import OrderedDict
from typing import Optional

from ..core import types as T
from .protocol import ServeError

#: JSON dtype name -> (Terra element type, ctypes element type)
DTYPES = {
    "int8": (T.int8, ctypes.c_int8),
    "int16": (T.int16, ctypes.c_int16),
    "int32": (T.int32, ctypes.c_int32),
    "int64": (T.int64, ctypes.c_int64),
    "uint8": (T.uint8, ctypes.c_uint8),
    "uint16": (T.uint16, ctypes.c_uint16),
    "uint32": (T.uint32, ctypes.c_uint32),
    "uint64": (T.uint64, ctypes.c_uint64),
    "float": (T.float32, ctypes.c_float),
    "float32": (T.float32, ctypes.c_float),
    "double": (T.float64, ctypes.c_double),
    "float64": (T.float64, ctypes.c_double),
}

#: hard cap on one tenant buffer, independent of every other knob
MAX_BUFFER_BYTES = 1 << 28  # 256 MiB


def kernel_key(source: str, entry: str, chunked: bool, backend: str) -> str:
    """Identity of one servable kernel: the full staging input."""
    h = hashlib.sha256()
    for part in (backend, entry, "chunk" if chunked else "plain", source):
        h.update(part.encode())
        h.update(b"\0")
    return h.hexdigest()[:16]


class WarmKernel:
    """One resident compiled kernel.

    ``handle`` is whatever one call invokes: a backend handle under
    ahead-of-time policies, or the function's
    :class:`~repro.exec.dispatch.Dispatcher` under the ``tiered``
    execution policy (``tiered=True``), in which case calls start
    interpreted and the kernel climbs tiers in place while staying
    resident in the pool."""

    __slots__ = ("key", "entry", "fn", "handle", "chunked", "tiered",
                 "hits", "compile_s", "created", "last_use")

    def __init__(self, key: str, entry: str, fn, handle, chunked: bool,
                 compile_s: float, tiered: bool = False):
        self.key = key
        self.entry = entry
        self.fn = fn            # the TerraFunction (kept alive with the lib)
        self.handle = handle    # backend callable handle, or the dispatcher
        self.chunked = chunked
        self.tiered = tiered
        self.compile_s = compile_s
        self.hits = 0
        self.created = time.time()
        self.last_use = self.created

    def tier_info(self) -> Optional[dict]:
        """Tiering snapshot for stats, or None for ahead-of-time kernels."""
        if not self.tiered:
            return None
        return self.fn.dispatcher.tier_info()


class KernelPool:
    """An LRU pool of :class:`WarmKernel`, bounded by ``quota``."""

    def __init__(self, quota: int):
        self.quota = max(1, int(quota))
        self._kernels: OrderedDict[str, WarmKernel] = OrderedDict()
        self.evictions = 0

    def get(self, key: str) -> Optional[WarmKernel]:
        kernel = self._kernels.get(key)
        if kernel is not None:
            self._kernels.move_to_end(key)
            kernel.hits += 1
            kernel.last_use = time.time()
        return kernel

    def put(self, kernel: WarmKernel) -> list[WarmKernel]:
        """Insert (or refresh) a kernel; returns any evicted ones."""
        self._kernels[kernel.key] = kernel
        self._kernels.move_to_end(kernel.key)
        evicted = []
        while len(self._kernels) > self.quota:
            _, old = self._kernels.popitem(last=False)
            self.evictions += 1
            evicted.append(old)
        return evicted

    def __len__(self) -> int:
        return len(self._kernels)

    def keys(self) -> list[str]:
        return list(self._kernels)

    def values(self) -> list[WarmKernel]:
        return list(self._kernels.values())


class Buffer:
    """A server-resident typed array owned by one tenant."""

    __slots__ = ("id", "dtype", "elem", "cdata", "count")

    def __init__(self, buf_id: int, dtype: str, count: int):
        elem_terra, elem_ctypes = DTYPES[dtype]
        self.id = buf_id
        self.dtype = dtype
        self.elem = elem_terra
        self.count = count
        self.cdata = (elem_ctypes * count)()

    @property
    def nbytes(self) -> int:
        return ctypes.sizeof(self.cdata)


class TenantState:
    """Everything the server holds for one tenant id."""

    def __init__(self, name: str, kernel_quota: int):
        self.name = name
        self.kernels = KernelPool(kernel_quota)
        self.buffers: dict[int, Buffer] = {}
        self._next_buf = 1
        self.inflight = 0          # admission-controlled concurrent requests
        self.requests = 0

    # -- buffers ------------------------------------------------------------
    def alloc(self, dtype: str, count: int) -> Buffer:
        if dtype not in DTYPES:
            raise ServeError("bad-request",
                             f"unknown dtype {dtype!r} (one of: "
                             f"{', '.join(sorted(DTYPES))})")
        if count <= 0:
            raise ServeError("bad-request", f"count must be positive, "
                                            f"got {count}")
        _, elem_ctypes = DTYPES[dtype]
        if count * ctypes.sizeof(elem_ctypes) > MAX_BUFFER_BYTES:
            raise ServeError("bad-request",
                             f"buffer of {count} x {dtype} exceeds the "
                             f"{MAX_BUFFER_BYTES >> 20} MiB per-buffer cap")
        buf = Buffer(self._next_buf, dtype, count)
        self._next_buf += 1
        self.buffers[buf.id] = buf
        return buf

    def buffer(self, buf_id) -> Buffer:
        if not isinstance(buf_id, int) or isinstance(buf_id, bool):
            raise ServeError("bad-request",
                             f"buffer id must be an integer, got {buf_id!r}")
        buf = self.buffers.get(buf_id)
        if buf is None:
            raise ServeError("unknown-buffer",
                             f"tenant {self.name!r} owns no buffer {buf_id}")
        return buf

    def free(self, buf_id: int) -> None:
        self.buffer(buf_id)
        del self.buffers[buf_id]

    def write(self, buf_id: int, start: int, values: list) -> int:
        buf = self.buffer(buf_id)
        if start < 0 or start + len(values) > buf.count:
            raise ServeError("bad-request",
                             f"write [{start}, {start + len(values)}) is out "
                             f"of bounds for buffer of {buf.count}")
        integral = buf.elem.isintegral()
        for i, v in enumerate(values):
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise ServeError("bad-request",
                                 f"buffer values must be numbers, got "
                                 f"{type(v).__name__}")
            buf.cdata[start + i] = int(v) if integral else float(v)
        return len(values)

    def read(self, buf_id: int, start: int, count: int) -> list:
        buf = self.buffer(buf_id)
        if start < 0 or count < 0 or start + count > buf.count:
            raise ServeError("bad-request",
                             f"read [{start}, {start + count}) is out of "
                             f"bounds for buffer of {buf.count}")
        out = []
        for i in range(start, start + count):
            v = buf.cdata[i]
            if isinstance(v, float) and (v != v or v in (float("inf"),
                                                         float("-inf"))):
                out.append({"float": "nan" if v != v
                            else ("inf" if v > 0 else "-inf")})
            else:
                out.append(v)
        return out

    # -- argument resolution ------------------------------------------------
    def resolve_args(self, raw_args: list) -> list:
        """Map wire arguments onto FFI-ready Python values: numbers pass
        through, ``{"buf": id}`` becomes the tenant's ctypes array (the
        FFI takes its address), None becomes a null pointer."""
        out = []
        for a in raw_args:
            if a is None or isinstance(a, (bool, int, float, str)):
                out.append(a)
            elif isinstance(a, dict) and set(a) == {"buf"}:
                out.append(self.buffer(a["buf"]).cdata)
            elif isinstance(a, dict) and set(a) == {"float"}:
                out.append(float(a["float"]))
            else:
                raise ServeError(
                    "bad-request",
                    f"argument {a!r} is not a number, string, null, or "
                    f'{{"buf": id}} reference')
        return out

    def summary(self) -> dict:
        tiers = {"tier0": 0, "tier1": 0, "respecialized": 0}
        for kernel in self.kernels.values():
            info = kernel.tier_info()
            if info is None:
                continue
            if info["tier"] == 0:
                tiers["tier0"] += 1
            else:
                tiers["tier1"] += 1
                if info["respecialized"]:
                    tiers["respecialized"] += 1
        return {
            "kernels": len(self.kernels),
            "kernel_evictions": self.kernels.evictions,
            "buffers": len(self.buffers),
            "buffer_bytes": sum(b.nbytes for b in self.buffers.values()),
            "inflight": self.inflight,
            "requests": self.requests,
            "tiers": tiers,
        }
