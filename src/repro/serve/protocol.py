"""The repro.serve wire protocol: newline-delimited JSON over a stream.

One request per line, one response per line, in order, per connection.
Concurrency comes from *connections* (each simulated user holds one), not
from pipelining — which keeps the framing trivial and the blocking client
(:mod:`repro.serve.client`) a dozen lines.

Requests are JSON objects with an ``op`` field::

    {"op": "ping"}
    {"op": "call", "tenant": "t0", "source": "terra f...", "entry": "f",
     "args": [4], "id": 7}
    {"op": "call", ..., "chunk": [0, 1024]}        # chunked dispatch
    {"op": "alloc", "tenant": "t0", "dtype": "double", "count": 1024}
    {"op": "write", "tenant": "t0", "buf": 1, "start": 0, "values": [...]}
    {"op": "read",  "tenant": "t0", "buf": 1, "start": 0, "count": 8}
    {"op": "free",  "tenant": "t0", "buf": 1}
    {"op": "stats"}

Responses echo the request's ``id`` (when present) and carry either a
result or a structured error::

    {"id": 7, "ok": true, "result": 42}
    {"id": 7, "ok": false, "error": {"code": "trap", "message": "..."}}

Error codes are a closed set (:data:`ERROR_CODES`) so clients can switch
on them; the ``message`` is human-oriented and free-form.  A framing
error (non-JSON bytes, or a line longer than the server's
``max_request_bytes``) still produces one well-formed error response,
after which the server closes the connection — the stream position is no
longer trustworthy.
"""

from __future__ import annotations

import json
from typing import Optional

from ..errors import TerraError

#: the closed set of machine-readable error codes
ERROR_CODES = frozenset({
    "bad-json",         # the request line was not a JSON object
    "bad-request",      # JSON, but missing/ill-typed fields
    "oversized",        # request line exceeded max_request_bytes
    "overloaded",       # global admission queue full (fast-reject)
    "tenant-over-quota",  # per-tenant concurrency cap hit (fast-reject)
    "unknown-op",       # unrecognized "op"
    "unknown-entry",    # source compiled, but no such entry point
    "unknown-buffer",   # buffer id not owned by this tenant
    "compile-error",    # Terra front end / gcc rejected the source
    "trap",             # kernel trapped at runtime (%0 etc.)
    "unsupported",      # argument/return type not expressible in JSON
    "internal",         # unexpected server-side failure
})


class ServeError(TerraError):
    """A structured serve-side failure (also raised by the client when a
    response carries ``ok: false``)."""

    def __init__(self, code: str, message: str):
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message


def encode(obj: dict) -> bytes:
    """One protocol line: compact JSON plus the terminating newline."""
    return (json.dumps(obj, separators=(",", ":"),
                       sort_keys=False) + "\n").encode("utf-8")


def decode(line: bytes) -> dict:
    """Parse one request line; raises :class:`ServeError` on bad framing."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeError("bad-json", f"request is not valid JSON: {exc}")
    if not isinstance(obj, dict):
        raise ServeError("bad-json",
                         f"request must be a JSON object, got "
                         f"{type(obj).__name__}")
    return obj


def ok_response(req_id, result) -> dict:
    out: dict = {"ok": True, "result": result}
    if req_id is not None:
        out["id"] = req_id
    return out


def error_response(req_id, code: str, message: str) -> dict:
    assert code in ERROR_CODES, code
    out: dict = {"ok": False, "error": {"code": code, "message": message}}
    if req_id is not None:
        out["id"] = req_id
    return out


# -- request field validation --------------------------------------------------

def field(req: dict, name: str, types, default=None, required: bool = False):
    """Fetch and type-check one request field; :class:`ServeError` on
    missing/ill-typed values (``bool`` is not accepted where a number is
    expected, despite being an ``int`` subclass)."""
    value = req.get(name, None)
    if value is None:
        if required:
            raise ServeError("bad-request", f"missing field {name!r}")
        return default
    if not isinstance(value, types) or (isinstance(value, bool)
                                        and bool not in _astuple(types)):
        raise ServeError(
            "bad-request",
            f"field {name!r} must be {_typenames(types)}, "
            f"got {type(value).__name__}")
    return value


def chunk_range(req: dict) -> Optional[tuple[int, int]]:
    """The request's ``chunk: [lo, hi]`` range, validated, or None."""
    raw = req.get("chunk")
    if raw is None:
        return None
    if (not isinstance(raw, (list, tuple)) or len(raw) != 2
            or not all(isinstance(v, int) and not isinstance(v, bool)
                       for v in raw)):
        raise ServeError("bad-request",
                         "field 'chunk' must be [lo, hi] with integer bounds")
    lo, hi = raw
    if hi < lo:
        raise ServeError("bad-request", f"empty chunk range [{lo}, {hi})")
    return (lo, hi)


def _astuple(types) -> tuple:
    return types if isinstance(types, tuple) else (types,)


def _typenames(types) -> str:
    return "/".join(t.__name__ for t in _astuple(types))


def jsonable_result(value, fn_name: str):
    """Map a kernel's Python-level return value onto JSON, or raise
    ``unsupported``: only None, booleans, numbers, and tuples of those
    cross the service boundary (pointers and aggregates do not)."""
    if value is None or isinstance(value, (bool, int)):
        return value
    if isinstance(value, float):
        # JSON has no inf/nan literals; encode as strings the client maps back
        if value != value:
            return {"float": "nan"}
        if value in (float("inf"), float("-inf")):
            return {"float": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, tuple):
        return [jsonable_result(v, fn_name) for v in value]
    raise ServeError(
        "unsupported",
        f"{fn_name} returned {type(value).__name__}, which does not "
        f"cross the JSON service boundary (return scalars, or write "
        f"through a server-resident buffer)")


def from_wire_result(value):
    """Client-side inverse of :func:`jsonable_result`."""
    if isinstance(value, dict) and set(value) == {"float"}:
        return float(value["float"])
    if isinstance(value, list):
        return tuple(from_wire_result(v) for v in value)
    return value
