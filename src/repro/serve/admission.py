"""Admission control: fast-reject before any work is queued.

Two limits, both checked on the event loop at arrival time (no locks —
every mutation happens on the loop thread):

* a **global in-flight bound** (``queue_limit``): the total number of
  admitted-but-unanswered requests across all tenants.  Beyond it the
  server answers ``overloaded`` immediately instead of queueing — bounded
  queue depth keeps tail latency bounded too (a request that would wait
  seconds is better told "no" in microseconds, and the client's retry
  policy, not the server's memory, absorbs the burst);
* a **per-tenant concurrency cap** (``tenant_limit``): one tenant
  flooding the service hits ``tenant-over-quota`` while the other
  tenants' requests keep being admitted — the multi-tenant fairness
  floor.

Both rejections are counted (``serve.rejected.overloaded`` /
``serve.rejected.tenant``) and traced as instants, so a load generator
can verify fast-reject behaviour from the metrics alone.
"""

from __future__ import annotations

from typing import Optional

from .. import trace as _trace
from ..trace.metrics import registry
from .state import TenantState


class Admission:
    """Loop-confined admission state (not thread-safe by design)."""

    def __init__(self, queue_limit: int, tenant_limit: int):
        self.queue_limit = max(1, int(queue_limit))
        self.tenant_limit = max(1, int(tenant_limit))
        self.inflight = 0
        self.peak = 0

    def try_admit(self, tenant: TenantState) -> Optional[tuple[str, str]]:
        """Admit the request (returns None) or return a fast-reject
        ``(code, message)`` without mutating any state."""
        reg = registry()
        if self.inflight >= self.queue_limit:
            reg.add("serve.rejected.overloaded")
            _trace.instant("serve.reject", cat="serve", code="overloaded",
                           inflight=self.inflight)
            return ("overloaded",
                    f"server at queue limit ({self.queue_limit} requests "
                    f"in flight); retry with backoff")
        if tenant.inflight >= self.tenant_limit:
            reg.add("serve.rejected.tenant")
            _trace.instant("serve.reject", cat="serve",
                           code="tenant-over-quota", tenant=tenant.name)
            return ("tenant-over-quota",
                    f"tenant {tenant.name!r} at its concurrency cap "
                    f"({self.tenant_limit})")
        self.inflight += 1
        tenant.inflight += 1
        if self.inflight > self.peak:
            self.peak = self.inflight
            reg.track_max("serve.inflight_peak", self.peak)
        return None

    def release(self, tenant: TenantState) -> None:
        self.inflight -= 1
        tenant.inflight -= 1
        assert self.inflight >= 0 and tenant.inflight >= 0
