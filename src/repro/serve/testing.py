"""In-process server harness for tests and the smoke driver.

:class:`ServerThread` runs a :class:`~repro.serve.server.ServeServer` on
a private event loop in a daemon thread, exposes the bound address once
the socket is listening, and tears everything down on :meth:`stop`.
Tests use it so the full socket → asyncio → executor → ctypes path is
exercised without a subprocess (the throughput benchmark, which *wants*
process isolation, spawns ``python -m repro.serve`` instead).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from .client import ServeClient
from .server import ServeConfig, ServeServer


class ServerThread:
    """A live server on a background thread; use as a context manager."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config
        self.server: Optional[ServeServer] = None
        self.address: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-loop", daemon=True)

    # -- lifecycle ----------------------------------------------------------
    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("serve test server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("serve test server failed to start") \
                from self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- conveniences -------------------------------------------------------
    def client(self, tenant: str = "default", timeout: float = 60.0) \
            -> ServeClient:
        assert self.server is not None and self.address is not None
        cfg = self.server.config
        if cfg.port is not None:
            return ServeClient(port=cfg.port, tenant=tenant, timeout=timeout)
        return ServeClient(socket_path=cfg.socket_path, tenant=tenant,
                           timeout=timeout)

    def stats(self) -> dict:
        with self.client() as c:
            return c.stats()

    # -- the loop thread ----------------------------------------------------
    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = ServeServer(self.config)
        try:
            self.address = await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.server.close()
