"""repro.serve — the multi-tenant kernel compile-and-execute service.

Terra's thesis is that kernels are *data*: programs construct, specialize
and compile them at runtime.  This package takes the obvious next step
and puts that runtime behind a socket — a long-running server that
accepts (Terra source, entry point, arguments, tenant id) as
newline-delimited JSON over a local socket, compiles through the shared
buildd dedup/artifact-cache path, keeps per-tenant pools of warm compiled
kernels, and executes with the GIL released on a worker pool.

The moving parts, one module each:

* :mod:`.protocol` — the wire format, the closed error-code set, and
  argument/result marshalling rules;
* :mod:`.state`   — per-tenant state: warm-kernel LRU pools and
  server-resident typed buffers (pointers cannot cross JSON);
* :mod:`.admission` — load shedding: a global in-flight bound and
  per-tenant concurrency caps, both fast-rejecting;
* :mod:`.batch`   — request coalescing: concurrent calls to the same
  chunk-marked kernel merge into one ``parallel.dispatch_chunks`` round;
* :mod:`.server`  — the asyncio front door tying those together;
* :mod:`.client`  — a small blocking client (tests, load generator);
* :mod:`.testing` — an in-process server-on-a-thread harness.

Start a server with ``python -m repro.serve`` (see docs/SERVING.md), or
in-process::

    from repro.serve import ServeConfig, ServerThread
    with ServerThread(ServeConfig(socket_path="/tmp/kernels.sock")) as srv:
        with srv.client(tenant="alice") as c:
            c.call("terra sq(x : double) : double return x * x end",
                   "sq", [3.0])
"""

from .client import ServeClient, wait_until_ready
from .protocol import ERROR_CODES, ServeError
from .server import ServeConfig, ServeServer, default_socket_path, run_server
from .testing import ServerThread

__all__ = [
    "ERROR_CODES",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeServer",
    "ServerThread",
    "default_socket_path",
    "run_server",
    "wait_until_ready",
]
