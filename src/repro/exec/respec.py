"""Profile-guided respecialization — splice observed-stable arguments
into a staged variant, guarded at entry.

This is the paper's core claim ("staging *is* the optimization
mechanism") exercised dynamically: tier-0 value profiling
(:func:`repro.trace.profile.note_args`) finds scalar parameters that hold
the same value on every observed call — loop trip counts, strides,
radii — and we build a *variant* function whose specialized tree is the
original's with those parameter reads replaced by literal
:class:`~repro.core.sast.SConst` nodes.  The variant compiles through the
normal pipeline (fold/simplify see real constants, gcc sees fixed trip
counts it can unroll and vectorize), and the dispatcher calls it only
when an entry guard re-checks the observed values; a guard miss is a
counted *deoptimization* that falls back to the generic compiled entry.

Safety rules (a parameter is only spliced when all hold):

* its type is integral or bool — float equality is treacherous
  (``-0.0 == 0.0``, NaN) and would let a guard pass values the constant
  does not represent;
* it is never assigned in the body and never has its address taken —
  a written parameter is a local variable, not a constant;
* the guard compares *converted* machine values (`python_to_primitive`),
  so wrapped out-of-range Python ints guard exactly like they convert.
"""

from __future__ import annotations

from typing import Optional

from ..core import sast
from ..core import types as T
from ..ffi import convert


def guardable_type(ty) -> bool:
    """Types whose equality guard is exact: integral + bool primitives."""
    return isinstance(ty, T.PrimitiveType) and (ty.isintegral()
                                                or ty.islogical())


# -- body analysis -----------------------------------------------------------

def _param_mutated(node, symbol) -> bool:
    """True if ``symbol`` is ever assigned or address-taken in ``node``."""
    if isinstance(node, sast.SAssign):
        for target in node.lhs:
            if isinstance(target, sast.SVar) and target.symbol is symbol:
                return True
        return any(_param_mutated(getattr(node, f), symbol)
                   for f in node._fields)
    if isinstance(node, sast.SUnOp) and node.op == "&":
        operand = node.operand
        if isinstance(operand, sast.SVar) and operand.symbol is symbol:
            return True
        return _param_mutated(operand, symbol)
    if isinstance(node, sast.SMethodCall):
        # obj:m(...) takes obj's address implicitly when resolving methods
        obj = node.obj
        if isinstance(obj, sast.SVar) and obj.symbol is symbol:
            return True
    if isinstance(node, sast.SNode):
        return any(_param_mutated(getattr(node, f), symbol)
                   for f in node._fields)
    if isinstance(node, (list, tuple)):
        return any(_param_mutated(x, symbol) for x in node)
    if isinstance(node, sast.SCtorField):
        return _param_mutated(node.value, symbol)
    return False


def _substitute(node, symbol, make_const):
    """Replace every read of ``symbol`` with a fresh constant node."""
    if isinstance(node, sast.SVar) and node.symbol is symbol:
        return make_const()
    if isinstance(node, sast.SNode):
        for field in node._fields:
            setattr(node, field,
                    _substitute(getattr(node, field), symbol, make_const))
        return node
    if isinstance(node, list):
        return [_substitute(x, symbol, make_const) for x in node]
    if isinstance(node, tuple):
        return tuple(_substitute(x, symbol, make_const) for x in node)
    if isinstance(node, sast.SCtorField):
        node.value = _substitute(node.value, symbol, make_const)
        return node
    return node


# -- constant selection ------------------------------------------------------

def stable_consts(fn, arg_stats, min_observations: int = 1) -> dict[int, object]:
    """Pick ``{param index: machine value}`` worth splicing from the value
    profile (:func:`repro.trace.profile.arg_stats` output).  Only stable,
    guardable, never-mutated scalar parameters qualify."""
    if not arg_stats or fn.body is None:
        return {}
    consts: dict[int, object] = {}
    for i, ty in enumerate(fn.param_types):
        if i >= len(arg_stats):
            break
        st = arg_stats[i]
        if st is None or not st["stable"]:
            continue
        if st["observations"] < min_observations:
            continue
        if not guardable_type(ty):
            continue
        value = st["value"]
        if not isinstance(value, (bool, int)):
            continue
        try:
            machine = convert.python_to_primitive(value, ty)
        except Exception:
            continue
        if _param_mutated(fn.body, fn.param_symbols[i]):
            continue
        consts[i] = machine
    return consts


# -- variant construction ----------------------------------------------------

_variant_ids = {}


def specialize_variant(fn, consts: dict[int, object]):
    """Build an (uncompiled) variant of ``fn`` with the parameters in
    ``consts`` spliced as literals.  The variant keeps the full parameter
    list — callers pass the same arguments, the spliced ones are simply
    ignored — so the generic and specialized entries are drop-in
    interchangeable.  Returns None when nothing can be spliced."""
    from ..core.function import TerraFunction

    if not consts or fn.body is None or fn.is_external:
        return None
    body = sast.copy_tree(fn.body)
    for i, machine in consts.items():
        ty = fn.param_types[i]
        symbol = fn.param_symbols[i]
        body = _substitute(
            body, symbol,
            lambda m=machine, t=ty: sast.SConst(m, t, fn.location))
    n = _variant_ids.get(fn.uid, 0) + 1
    _variant_ids[fn.uid] = n
    variant = TerraFunction(f"{fn.name}_spec{n}", fn.location)
    variant.define(list(fn.param_symbols), list(fn.param_types),
                   fn.declared_rettype, body)
    return variant


class Respecialized:
    """A guarded specialized variant: the variant function, the guard
    values, and (once compiled) its handle."""

    __slots__ = ("fn", "variant", "consts", "param_types", "ticket",
                 "handle", "hits")

    def __init__(self, fn, variant, consts: dict[int, object],
                 ticket=None, handle=None) -> None:
        self.fn = fn
        self.variant = variant
        self.consts = consts
        self.param_types = fn.param_types
        self.ticket = ticket      # in-flight compile of the variant
        self.handle = handle      # compiled handle once ready
        self.hits = 0

    def ready(self) -> bool:
        """True once the variant's compiled handle is available (resolves
        a finished ticket on the way)."""
        if self.handle is not None:
            return True
        ticket = self.ticket
        if ticket is not None and ticket.done():
            try:
                self.handle = ticket.result()
            except Exception:
                self.ticket = None  # variant failed to build; stay generic
                return False
            self.ticket = None
            return True
        return False

    def matches(self, args) -> bool:
        """The entry guard: do ``args`` convert to exactly the machine
        values that were spliced?  Conversion errors guard as a miss (the
        generic entry then raises the identical FFI error)."""
        if len(args) != len(self.param_types):
            return False
        for i, machine in self.consts.items():
            try:
                got = convert.python_to_primitive(args[i],
                                                  self.param_types[i])
            except Exception:
                return False
            if got != machine:
                return False
        return True

    def __repr__(self) -> str:
        state = "ready" if self.handle is not None else "building"
        return (f"<Respecialized {self.variant.name!r} "
                f"consts={self.consts} {state} hits={self.hits}>")


def respecialize(fn, arg_stats, min_observations: int = 1):
    """Convenience: pick constants and build the variant in one step.
    Returns ``(variant, consts)`` or ``(None, {})``."""
    consts = stable_consts(fn, arg_stats, min_observations)
    variant = specialize_variant(fn, consts) if consts else None
    return (variant, consts) if variant is not None else (None, {})
