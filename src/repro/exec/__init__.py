"""repro.exec — the execution-policy layer.

Every :class:`~repro.core.function.TerraFunction` call from Python routes
through its per-function :class:`~repro.exec.dispatch.Dispatcher`, which
consults the *process-wide execution policy* chosen here:

=========== =================================================================
``aot``     compile on first call on the default backend (historical
            behavior; the default policy)
``c``       ahead-of-time on the C backend, regardless of the default
``interp``  ahead-of-time on the reference interpreter
``tiered``  start interpreted, profile values, tier hot functions up to C
            in the background, respecialize on observed-stable arguments
            (guarded, with counted deoptimization)
=========== =================================================================

Select with ``REPRO_TERRA_EXEC_POLICY`` (read once, at first use), or at
runtime with :func:`set_policy` / the :func:`policy_override` context
manager.  Tiered knobs: ``REPRO_TERRA_TIER_THRESHOLD`` (tier-0 calls
before tier-up, default 10), ``REPRO_TERRA_TIER_SYNC`` (complete
tier-ups inline — determinism for tests/fuzzing), and
``REPRO_TERRA_TIER_RESPEC`` (``0`` disables respecialization).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Union

from .dispatch import Dispatcher, TierState
from .policy import AheadOfTimePolicy, ExecutionPolicy, TieredPolicy

__all__ = [
    "AheadOfTimePolicy", "Dispatcher", "ExecutionPolicy", "TieredPolicy",
    "TierState", "current_policy", "make_policy", "policy_override",
    "set_policy",
]

POLICY_NAMES = ("aot", "c", "interp", "tiered")

_current: Optional[ExecutionPolicy] = None


def make_policy(name: str) -> ExecutionPolicy:
    """Build a fresh policy object from its name."""
    if name in ("", "aot", "default"):
        return AheadOfTimePolicy()
    if name in ("c", "interp"):
        return AheadOfTimePolicy(name, name=name)
    if name == "tiered":
        return TieredPolicy.from_env()
    raise ValueError(f"unknown execution policy {name!r} "
                     f"(available: {', '.join(POLICY_NAMES)})")


def current_policy() -> ExecutionPolicy:
    """The active policy; first use reads ``REPRO_TERRA_EXEC_POLICY``."""
    global _current
    if _current is None:
        _current = make_policy(os.environ.get("REPRO_TERRA_EXEC_POLICY", ""))
    return _current


def set_policy(policy: Union[str, ExecutionPolicy]) -> ExecutionPolicy:
    """Replace the process-wide policy (by name or instance); returns it."""
    global _current
    if isinstance(policy, str):
        policy = make_policy(policy)
    if not isinstance(policy, ExecutionPolicy):
        raise TypeError(f"not an execution policy: {policy!r}")
    _current = policy
    return policy


@contextmanager
def policy_override(policy: Union[str, ExecutionPolicy]):
    """Temporarily switch the execution policy::

        with exec.policy_override("tiered"):
            fn(...)  # tier-0 interp, may tier up

    Yields the active policy object (handy for asserting on its knobs).
    """
    global _current
    prev = _current
    active = set_policy(policy)
    try:
        yield active
    finally:
        _current = prev
