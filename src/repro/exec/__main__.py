"""Tiered-execution demo: watch a kernel climb the tiers.

    python -m repro.exec [--n 4096] [--radius 5] [--threshold 8] [--sync]

Runs a small blur kernel under the ``tiered`` policy: the first calls
execute on the reference interpreter while the value profiler watches the
arguments; crossing the threshold schedules a background tier-up through
buildd, and the stable scalar arguments (``n``, ``radius``) are spliced
into a guarded respecialized variant.  The demo then violates the guard
once to show a counted deoptimization, and prints the tier trajectory,
the per-call profile, and buildd's tier-up counter.

With ``REPRO_TERRA_TRACE=1`` the run emits ``exec.tier_up`` /
``exec.respecialize`` / ``exec.deopt`` events into the trace — this is
what ``make tier-smoke`` records and validates.
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="tiered execution + respecialization demo")
    ap.add_argument("--n", type=int, default=4096, help="buffer length")
    ap.add_argument("--radius", type=int, default=5, help="blur radius")
    ap.add_argument("--threshold", type=int, default=8,
                    help="tier-0 calls before tier-up")
    ap.add_argument("--calls", type=int, default=40,
                    help="total calls to make")
    ap.add_argument("--sync", action="store_true",
                    help="complete tier-ups inline (deterministic)")
    args = ap.parse_args(argv)

    from .. import terra
    from ..buildd import get_service
    from ..trace import profile
    from . import TieredPolicy, policy_override

    fn = terra("""
    terra blur(src: &float, dst: &float, n: int32, radius: int32): int32
      var writes: int32 = 0
      for i = radius, n - radius do
        var acc: float = 0.0f
        for j = -radius, radius + 1 do
          acc = acc + src[i + j]
        end
        dst[i] = acc / ([float](2 * radius + 1))
        writes = writes + 1
      end
      return writes
    end
    """)

    try:
        import numpy as np
        src = np.arange(args.n, dtype=np.float32)
        dst = np.zeros(args.n, dtype=np.float32)
        call_args = (src, dst, args.n, args.radius)
    except ImportError:
        src = [float(i) for i in range(args.n)]
        dst = [0.0] * args.n
        call_args = (src, dst, args.n, args.radius)

    policy = TieredPolicy(threshold=args.threshold, sync=args.sync)
    profile.enable()
    last_tier = -1
    with policy_override(policy):
        for i in range(args.calls):
            t0 = time.perf_counter()
            fn(*call_args)
            dt = (time.perf_counter() - t0) * 1e3
            info = fn.dispatcher.tier_info()
            if info["tier"] != last_tier or i in (0, args.calls - 1):
                marker = " <respecialized>" if info["respecialized"] else ""
                print(f"call {i:>3}: {dt:8.3f} ms  tier {info['tier']}"
                      f"{marker}")
                last_tier = info["tier"]
        # give a background tier-up a moment, then show the fast tier
        if not args.sync:
            deadline = time.time() + 10.0
            while (fn.dispatcher.tier_info()["tier"] == 0
                   and time.time() < deadline):
                time.sleep(0.02)
                fn(*call_args)
        t0 = time.perf_counter()
        fn(*call_args)
        warm_ms = (time.perf_counter() - t0) * 1e3
        info = fn.dispatcher.tier_info()
        print(f"warm:     {warm_ms:8.3f} ms  tier {info['tier']}"
              f"{' <respecialized>' if info['respecialized'] else ''}")
        # violate the guard once: radius changes, the respecialized
        # variant must deopt to the generic entry
        fn(src, dst, args.n, args.radius + 1)
        info = fn.dispatcher.tier_info()
        print(f"guard miss on radius={args.radius + 1}: "
              f"deopts={info['deopts']}")

    print()
    print(profile.report(limit=5))
    stats = get_service().stats
    print(f"\nbuildd tier_ups: {stats.tier_ups}")
    st = fn.dispatcher.tier
    if st is not None and st.respec is not None:
        print(f"respecialized variant: {st.respec!r}")
    ok = info["tier"] >= 1 or not _cc_available()
    if not ok:
        print("error: function never tiered up", file=sys.stderr)
    return 0 if ok else 1


def _cc_available() -> bool:
    from ..buildd import toolchain
    return toolchain.cc_available()


if __name__ == "__main__":
    sys.exit(main())
