"""Execution policies — *what runs* when a Terra function is called.

A policy is consulted by :class:`~repro.exec.dispatch.Dispatcher` on
every Python-level call:

* :class:`AheadOfTimePolicy` — the historical behavior: resolve one
  backend (the default, or a pinned one) and call its compiled handle.
* :class:`TieredPolicy` — start interpreted (tier 0) while the value
  profiler watches arguments; once a function crosses the call-count
  threshold, schedule a background tier-up through
  :meth:`repro.buildd.service.CompileService.tier_up` that compiles the
  generic C entry — and, when the profile shows stable scalar arguments,
  a guarded respecialized variant with those values spliced as constants
  (:mod:`repro.exec.respec`).  Calls never block on the compiler (unless
  ``sync`` is set, which tests and the fuzzer use for determinism); a
  guard miss at tier 1 is a counted deoptimization that runs the generic
  entry, so observable behavior is identical at every tier.
"""

from __future__ import annotations

import os
from typing import Optional

from .. import trace as _trace
from ..trace import profile as _profile
from ..trace.metrics import registry as _registry


class ExecutionPolicy:
    """Decides how one call of ``dispatcher.fn`` executes."""

    name = "abstract"

    def call(self, dispatcher, args):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<policy {self.name}>"


class AheadOfTimePolicy(ExecutionPolicy):
    """Compile on first call, on one backend, and keep calling that
    handle — the pre-tiering behavior.  ``backend_name=None`` means the
    process default backend (``REPRO_TERRA_BACKEND`` / autodetect)."""

    def __init__(self, backend_name: Optional[str] = None,
                 name: Optional[str] = None) -> None:
        self.backend_name = backend_name
        self.name = name or (backend_name or "aot")

    def call(self, dispatcher, args):
        return dispatcher.compiled_handle(self.backend_name)(*args)


class TieredPolicy(ExecutionPolicy):
    """Interp first, C when hot, respecialized when predictable."""

    name = "tiered"

    def __init__(self, threshold: int = 10, sync: bool = False,
                 respec: bool = True, min_observations: int = 1) -> None:
        #: tier-0 calls before a tier-up is scheduled
        self.threshold = max(1, int(threshold))
        #: complete tier-ups inline instead of in the background — used
        #: by tests/fuzzing, where determinism beats latency
        self.sync = bool(sync)
        #: build guarded constant-spliced variants from stable profiles
        self.respec = bool(respec)
        self.min_observations = max(1, int(min_observations))
        self._cc_checked = False
        self._cc_ok = False

    @classmethod
    def from_env(cls) -> "TieredPolicy":
        def flag(name: str, default: bool) -> bool:
            raw = os.environ.get(name)
            if raw is None or raw == "":
                return default
            return raw not in ("0", "no", "off", "false")
        raw = os.environ.get("REPRO_TERRA_TIER_THRESHOLD", "")
        try:
            threshold = int(raw) if raw else 10
        except ValueError:
            raise ValueError(
                f"REPRO_TERRA_TIER_THRESHOLD must be an integer, "
                f"got {raw!r}") from None
        return cls(threshold=threshold,
                   sync=flag("REPRO_TERRA_TIER_SYNC", False),
                   respec=flag("REPRO_TERRA_TIER_RESPEC", True))

    # -- the per-call decision ----------------------------------------------
    def call(self, dispatcher, args):
        fn = dispatcher.fn
        if fn.is_external:
            # externals have no interpretable body worth tiering; use the
            # ahead-of-time path on the default backend
            return dispatcher.compiled_handle(None)(*args)
        st = dispatcher.tier_state()
        if st.tier == 0:
            if not st.failed and st.ticket is None:
                with st.lock:
                    if st.tier == 0 and st.ticket is None and not st.failed:
                        st.calls += 1
                        _profile.note_args(fn, args)
                        if st.calls >= self.threshold and self._compiler_ok():
                            self._begin_tier_up(dispatcher, st)
            ticket = st.ticket
            if st.tier == 0 and ticket is not None and ticket.done():
                with st.lock:
                    self._finish_tier_up(dispatcher, st)
            if st.tier == 0:
                return dispatcher.compiled_handle("interp")(*args)
        # tier >= 1: guarded respecialized entry when it applies, else the
        # generic compiled entry
        rs = st.respec
        if rs is not None and rs.ready():
            if rs.matches(args):
                rs.hits += 1
                return rs.handle(*args)
            with st.lock:
                st.deopts += 1
            _registry().add("exec.deopt")
            _trace.instant("exec.deopt", cat="exec", fn=fn.name)
        return st.generic(*args)

    # -- tier-up machinery ---------------------------------------------------
    def _compiler_ok(self) -> bool:
        if not self._cc_checked:
            from ..buildd import toolchain
            self._cc_ok = toolchain.cc_available()
            self._cc_checked = True
        return self._cc_ok

    def _stage(self, dispatcher):
        """The tier-up job: compile the generic C entry and, if the value
        profile supports it, a guarded respecialized variant.  Runs on
        buildd's tier-up thread (or inline under ``sync``)."""
        from . import respec as _respec
        fn = dispatcher.fn
        generic = dispatcher.compiled_handle("c")
        specialized = None
        if self.respec:
            variant, consts = _respec.respecialize(
                fn, _profile.arg_stats(fn), self.min_observations)
            if variant is not None:
                handle = variant.dispatcher.compiled_handle("c")
                specialized = _respec.Respecialized(fn, variant, consts,
                                                    handle=handle)
                _registry().add("exec.respecialize")
                _trace.instant("exec.respecialize", cat="exec", fn=fn.name,
                               variant=variant.name,
                               consts={str(k): v
                                       for k, v in consts.items()})
        return generic, specialized

    def _begin_tier_up(self, dispatcher, st) -> None:
        """Schedule (or, under ``sync``, run) the tier-up.  Called with
        ``st.lock`` held and ``st.ticket`` None."""
        fn = dispatcher.fn
        from ..buildd import get_service
        if self.sync:
            with _trace.span(f"exec.tier_up:{fn.name}", cat="exec",
                             mode="sync", calls=st.calls):
                get_service().stats.record_tier_up()
                try:
                    st.generic, st.respec = self._stage(dispatcher)
                except Exception:
                    st.failed = True
                    _registry().add("exec.tier_up_failed")
                    return
            self._announce(dispatcher, st)
            return
        st.ticket = get_service().tier_up(
            fn.name, lambda: self._stage(dispatcher))

    def _finish_tier_up(self, dispatcher, st) -> None:
        """Install a completed background tier-up.  Called with
        ``st.lock`` held; a failed build parks the function at tier 0
        permanently (calls stay interpreted, semantics unchanged)."""
        ticket = st.ticket
        if ticket is None or st.tier != 0:
            return
        try:
            st.generic, st.respec = ticket.result()
        except Exception:
            st.failed = True
            st.ticket = None
            _registry().add("exec.tier_up_failed")
            return
        st.ticket = None
        self._announce(dispatcher, st)

    def _announce(self, dispatcher, st) -> None:
        st.tier = 1
        _registry().add("exec.tier_up")
        _trace.instant("exec.tier_up", cat="exec", fn=dispatcher.fn.name,
                       calls=st.calls,
                       respecialized=st.respec is not None)
        hook = dispatcher.on_tier_up
        if hook is not None:
            try:
                hook(dispatcher)
            except Exception:
                pass  # observability hooks must not break execution
