"""The per-function call dispatcher — one object that owns *how* a
Terra function executes from Python.

Before :mod:`repro.exec`, the compiled-handle cache, the pending-ticket
table and the backend-selection logic lived directly on
:class:`~repro.core.function.TerraFunction` (and both backends poked at
them).  They now live here: every ``TerraFunction`` creates one
:class:`Dispatcher` at construction, ``fn(...)``/``fn.compile()`` /
``fn.compile_async()`` delegate to it, and backends install the handles
they bind through :meth:`Dispatcher.install`.

What to run on a call is decided by the process-wide
:class:`~repro.exec.policy.ExecutionPolicy` (see :mod:`repro.exec`):
ahead-of-time policies resolve a backend handle and call it; the tiered
policy additionally keeps per-dispatcher tier state (interpreted tier-0,
background tier-up to C, optional respecialized variant guarded on
observed argument values) in :class:`TierState`.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional


class _InstallingTicket:
    """A CompileTicket wrapper that installs the resolved handle in the
    dispatcher's per-backend cache (so later ``compile()`` calls and
    direct calls reuse it instead of recompiling)."""

    def __init__(self, dispatcher: "Dispatcher", backend_name: str, inner):
        self._dispatcher = dispatcher
        self._name = backend_name
        self._inner = inner

    def done(self) -> bool:
        return self._inner.done()

    def result(self, timeout=None):
        handle = self._inner.result(timeout)
        handle = self._dispatcher.install(self._name, handle)
        self._dispatcher.pending.pop(self._name, None)
        return handle

    async def await_built(self) -> None:
        await self._inner.await_built()


class TierState:
    """Mutable tiering state for one dispatcher under the tiered policy.

    ``tier`` is 0 while calls run interpreted, 1 once the generic C entry
    is installed.  ``respec`` (a :class:`repro.exec.respec.Respecialized`)
    appears when stable tier-0 argument observations produced a guarded,
    constant-spliced variant.  ``deopts`` counts guard failures that fell
    back to the generic entry.
    """

    __slots__ = ("lock", "calls", "tier", "ticket", "generic", "respec",
                 "deopts", "failed")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.calls = 0          # tier-0 calls observed so far
        self.tier = 0
        self.ticket = None      # in-flight tier-up (Future-like), if any
        self.generic = None     # compiled C handle once tier >= 1
        self.respec = None      # Respecialized variant, if any
        self.deopts = 0         # guard failures -> generic fallback
        self.failed = False     # tier-up failed; stay interpreted


class Dispatcher:
    """Owns one function's execution state: compiled handles per backend,
    pending compile tickets, and (under the tiered policy) tier state.

    Calls route ``Dispatcher.__call__ -> current policy -> backend
    handle``; the policy is consulted per call, so flipping the policy
    (tests, ``REPRO_TERRA_EXEC_POLICY``) affects already-built functions.
    """

    __slots__ = ("fn", "handles", "pending", "tier", "on_tier_up")

    def __init__(self, fn) -> None:
        self.fn = fn
        #: backend name -> callable handle (ExecutableHandle)
        self.handles: dict[str, object] = {}
        #: backend name -> CompileTicket for an in-flight compile
        self.pending: dict[str, object] = {}
        #: TierState, lazily created by the tiered policy
        self.tier: Optional[TierState] = None
        #: hook fired (with this dispatcher) when a tier-up completes —
        #: repro.serve uses it to count/trace per-tenant tier-ups
        self.on_tier_up: Optional[Callable[["Dispatcher"], None]] = None

    # -- handle management --------------------------------------------------
    def install(self, backend_name: str, handle):
        """Install ``handle`` for ``backend_name``; first install wins
        (concurrent binds of the same unit are idempotent).  Returns the
        installed handle."""
        return self.handles.setdefault(backend_name, handle)

    def compiled_handle(self, backend=None):
        """The callable handle for ``backend`` (default backend if None),
        compiling on demand.  Joins a pending async compile instead of
        compiling twice."""
        from ..backend.base import resolve_backend
        backend = resolve_backend(backend)
        handle = self.handles.get(backend.name)
        if handle is None:
            ticket = self.pending.pop(backend.name, None)
            if ticket is not None:
                handle = ticket.result()
            else:
                from ..core.linker import ensure_compiled
                handle = ensure_compiled(self.fn, backend)
            handle = self.handles.setdefault(backend.name, handle)
        return handle

    def compile_async(self, backend=None):
        """Start compiling on ``backend`` without waiting; returns a
        ``CompileTicket`` whose ``result()`` yields (and installs) the
        callable handle.  A later :meth:`compiled_handle` or direct call
        joins the pending build."""
        from ..backend.base import CompileTicket, resolve_backend
        backend = resolve_backend(backend)
        handle = self.handles.get(backend.name)
        if handle is not None:
            return CompileTicket.completed(handle)
        ticket = self.pending.get(backend.name)
        if ticket is None:
            from ..core.linker import ensure_compiled_async
            inner = ensure_compiled_async(self.fn, backend)
            ticket = _InstallingTicket(self, backend.name, inner)
            self.pending[backend.name] = ticket
        return ticket

    # -- calling ------------------------------------------------------------
    def __call__(self, *args):
        from . import current_policy
        return current_policy().call(self, args)

    # -- introspection -------------------------------------------------------
    def tier_state(self) -> TierState:
        """The tier state, creating it on first use (tiered policy only)."""
        st = self.tier
        if st is None:
            st = self.tier = TierState()
        return st

    def tier_info(self) -> dict:
        """A snapshot of tiering state: ``{"tier", "calls",
        "respecialized", "deopts"}``.  ``tier`` is 0 until a tier-up has
        completed, even under ahead-of-time policies (where it simply
        never advances)."""
        st = self.tier
        if st is None:
            return {"tier": 0, "calls": 0, "respecialized": False,
                    "deopts": 0}
        respec = st.respec
        return {
            "tier": st.tier,
            "calls": st.calls,
            "respecialized": respec is not None and respec.ready(),
            "deopts": st.deopts,
        }

    def __repr__(self) -> str:
        tiers = f", tier={self.tier.tier}" if self.tier is not None else ""
        return (f"<Dispatcher {self.fn.name!r} "
                f"handles={sorted(self.handles)}{tiers}>")
