"""A flat, byte-addressable memory for the reference interpreter.

Compiled Terra (the gcc backend) uses the real process heap; the
interpreter backend reproduces the same semantics on top of this module: a
single address space starting at a non-zero base (so that address 0 is a
genuine NULL), with explicit bookkeeping of live regions so that wild
pointers, out-of-bounds accesses and use-after-free become
:class:`~repro.errors.TrapError` instead of silent corruption.

Regions are the unit of validity: every allocation (heap block, stack
frame, global) is one region, and a load/store must fall entirely inside a
single live region — exactly the checkable subset of C's effective-bounds
rules.
"""

from __future__ import annotations

import bisect

from ..errors import TrapError

#: the lowest valid address; [0, _BASE) is an unmapped guard zone.
_BASE = 0x10000


class Region:
    __slots__ = ("start", "size", "kind", "live")

    def __init__(self, start: int, size: int, kind: str):
        self.start = start
        self.size = size
        self.kind = kind  # "heap" | "stack" | "global" | "foreign"
        self.live = True

    @property
    def end(self) -> int:
        return self.start + self.size

    def __repr__(self) -> str:
        state = "live" if self.live else "freed"
        return f"<Region {self.kind} [{self.start:#x},{self.end:#x}) {state}>"


class Memory:
    """The interpreter's address space."""

    def __init__(self, initial_size: int = 1 << 20):
        self._data = bytearray(initial_size)
        self._limit = _BASE  # next never-used address (bump watermark)
        #: sorted list of region start addresses, parallel to _regions
        self._starts: list[int] = []
        self._regions: list[Region] = []

    # -- region management --------------------------------------------------
    def map_region(self, size: int, kind: str, align: int = 16) -> Region:
        """Carve a fresh region of ``size`` bytes out of the address space."""
        if size < 0:
            raise TrapError(f"cannot map region of negative size {size}")
        start = (self._limit + align - 1) & ~(align - 1)
        end = start + max(size, 1)  # zero-size regions still get an address
        while end > len(self._data):
            self._data.extend(bytearray(len(self._data)))
        self._limit = end
        region = Region(start, size, kind)
        idx = bisect.bisect_left(self._starts, start)
        self._starts.insert(idx, start)
        self._regions.insert(idx, region)
        return region

    def unmap_region(self, region: Region) -> None:
        if not region.live:
            raise TrapError(f"double free of {region!r}")
        region.live = False

    def region_at(self, addr: int) -> Region | None:
        """The region containing ``addr``, live or not (for diagnostics)."""
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        region = self._regions[idx]
        if addr < region.start + max(region.size, 1):
            return region
        return None

    def check_access(self, addr: int, nbytes: int, write: bool) -> None:
        op = "store to" if write else "load from"
        if addr == 0:
            raise TrapError(f"{op} NULL pointer")
        if addr < _BASE:
            raise TrapError(f"{op} unmapped address {addr:#x}")
        region = self.region_at(addr)
        if region is None:
            raise TrapError(f"{op} unmapped address {addr:#x}")
        if not region.live:
            raise TrapError(f"{op} freed memory at {addr:#x} ({region.kind})")
        if addr + nbytes > region.end:
            raise TrapError(
                f"{op} {addr:#x}+{nbytes} overruns {region!r}")

    # -- raw access ----------------------------------------------------------
    def read(self, addr: int, nbytes: int) -> bytes:
        self.check_access(addr, nbytes, write=False)
        return bytes(self._data[addr:addr + nbytes])

    def write(self, addr: int, data: bytes) -> None:
        self.check_access(addr, len(data), write=True)
        self._data[addr:addr + len(data)] = data

    def read_unchecked(self, addr: int, nbytes: int) -> bytes:
        """For diagnostics/tests only: bypass validity checking."""
        return bytes(self._data[addr:addr + nbytes])

    # -- string helpers (for rawstring interop) ------------------------------
    def write_cstring(self, addr: int, text: bytes) -> None:
        self.write(addr, text + b"\x00")

    def read_cstring(self, addr: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string, respecting region bounds."""
        self.check_access(addr, 1, write=False)
        region = self.region_at(addr)
        assert region is not None
        end = min(region.end, addr + limit)
        chunk = self._data[addr:end]
        nul = chunk.find(0)
        if nul < 0:
            raise TrapError(f"unterminated string at {addr:#x}")
        return bytes(chunk[:nul])

    def live_regions(self, kind: str | None = None) -> list[Region]:
        return [r for r in self._regions
                if r.live and (kind is None or r.kind == kind)]
