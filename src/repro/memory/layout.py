"""Typed load/store: converting Terra values to/from raw bytes.

The interpreter backend represents every lvalue as an address in flat
memory; this module packs and unpacks values of any Terra type at those
addresses using exactly the layout rules of :mod:`repro.core.types`
(which in turn match the x86-64 C ABI that the gcc backend uses).  The
differential tests rely on the two backends agreeing byte-for-byte.

Primitive values are plain Python ``int``/``float``/``bool``; pointers are
integers (addresses); vectors are lists; aggregates (structs, arrays) are
raw ``bytes`` blobs so that aggregate copy semantics match C.
"""

from __future__ import annotations

import math as _math
import struct as _struct

from ..core import types as T
from ..errors import TrapError

_INT_FORMATS = {
    (1, True): "<b", (1, False): "<B",
    (2, True): "<h", (2, False): "<H",
    (4, True): "<i", (4, False): "<I",
    (8, True): "<q", (8, False): "<Q",
}


def wrap_int(value: int, ty: T.PrimitiveType) -> int:
    """Reduce ``value`` modulo the type's range (C wrap-around semantics)."""
    bits = ty.bytes * 8
    value &= (1 << bits) - 1
    if ty.signed and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def round_float(value: float, ty: T.PrimitiveType) -> float:
    """Round a Python float to the precision of the Terra float type.

    Values whose magnitude exceeds the float32 range overflow to ±inf,
    exactly as a hardware double→float conversion does; CPython's
    ``struct.pack`` would raise ``OverflowError`` instead."""
    if ty is T.float32:
        try:
            return _struct.unpack("<f", _struct.pack("<f", value))[0]
        except OverflowError:
            return _math.inf if value > 0 else -_math.inf
    return float(value)


def pack_primitive(value, ty: T.PrimitiveType) -> bytes:
    if ty.islogical():
        return b"\x01" if value else b"\x00"
    if ty.isintegral():
        return _struct.pack(_INT_FORMATS[(ty.bytes, ty.signed)],
                            wrap_int(int(value), ty))
    fmt = "<f" if ty is T.float32 else "<d"
    return _struct.pack(fmt, round_float(float(value), ty))


def unpack_primitive(data: bytes, ty: T.PrimitiveType):
    if ty.islogical():
        return data[0] != 0
    if ty.isintegral():
        return _struct.unpack(_INT_FORMATS[(ty.bytes, ty.signed)], data)[0]
    fmt = "<f" if ty is T.float32 else "<d"
    return _struct.unpack(fmt, data)[0]


def pack_value(value, ty: T.Type) -> bytes:
    """Serialize ``value`` of Terra type ``ty`` to exactly ``ty.sizeof()`` bytes."""
    if isinstance(ty, T.PrimitiveType):
        return pack_primitive(value, ty)
    if ty.ispointer():
        return _struct.pack("<Q", int(value) & 0xFFFFFFFFFFFFFFFF)
    if ty.isvector():
        assert isinstance(ty, T.VectorType)
        if len(value) != ty.count:
            raise TrapError(
                f"vector value of length {len(value)} for type {ty}")
        raw = b"".join(pack_primitive(v, ty.elem) for v in value)
        return raw.ljust(ty.sizeof(), b"\x00")
    if ty.isaggregate():
        if not isinstance(value, (bytes, bytearray)):
            raise TrapError(f"aggregate value for {ty} must be bytes, got {type(value)}")
        if len(value) != ty.sizeof():
            raise TrapError(
                f"aggregate blob of {len(value)} bytes for {ty} "
                f"(expected {ty.sizeof()})")
        return bytes(value)
    raise TrapError(f"cannot pack value of type {ty}")


def unpack_value(data: bytes, ty: T.Type):
    if isinstance(ty, T.PrimitiveType):
        return unpack_primitive(data, ty)
    if ty.ispointer():
        return _struct.unpack("<Q", data)[0]
    if ty.isvector():
        assert isinstance(ty, T.VectorType)
        esize = ty.elem.sizeof()
        return [unpack_primitive(data[i * esize:(i + 1) * esize], ty.elem)
                for i in range(ty.count)]
    if ty.isaggregate():
        return bytes(data)
    raise TrapError(f"cannot unpack value of type {ty}")


def zero_value(ty: T.Type):
    """The zero-initialized value of a type (Terra zero-initializes ``var``
    declarations without initializers, matching real Terra's behaviour)."""
    if isinstance(ty, T.PrimitiveType):
        if ty.islogical():
            return False
        return 0 if ty.isintegral() else 0.0
    if ty.ispointer():
        return 0
    if ty.isvector():
        assert isinstance(ty, T.VectorType)
        z = False if ty.elem.islogical() else (0 if ty.elem.isintegral() else 0.0)
        return [z] * ty.count
    if ty.isaggregate():
        return bytes(ty.sizeof())
    raise TrapError(f"no zero value for type {ty}")


class TypedMemory:
    """Convenience wrapper: typed load/store over a flat memory."""

    def __init__(self, memory):
        self.memory = memory

    def load(self, addr: int, ty: T.Type):
        return unpack_value(self.memory.read(addr, ty.sizeof()), ty)

    def store(self, addr: int, value, ty: T.Type) -> None:
        self.memory.write(addr, pack_value(value, ty))

    def load_field(self, base: int, struct_ty: T.StructType, field: str):
        off = struct_ty.offsetof(field)
        return self.load(base + off, struct_ty.entry_type(field))

    def store_field(self, base: int, struct_ty: T.StructType, field: str,
                    value) -> None:
        off = struct_ty.offsetof(field)
        self.store(base + off, value, struct_ty.entry_type(field))
