"""malloc/free/realloc for the interpreter backend.

Terra is manually managed ("Terra, on the other hand, is a statically-typed
language similar to C with manual memory management").  The compiled
backend uses the real libc allocator; this module gives the interpreter
backend the same surface with full checking.

The implementation favours checkability over speed: every block is its own
:class:`~repro.memory.flatmem.Region`, and freed regions are recycled
through a size-bucketed free list.
"""

from __future__ import annotations

from ..errors import TrapError
from .flatmem import Memory, Region


class Allocator:
    """A checking allocator over a :class:`Memory`."""

    def __init__(self, memory: Memory):
        self.memory = memory
        #: freed heap regions by exact size, reused LIFO.
        self._free_by_size: dict[int, list[Region]] = {}
        self._by_addr: dict[int, Region] = {}
        self.total_allocated = 0
        self.live_bytes = 0

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the address (0 for size<0 is a trap)."""
        if size < 0:
            raise TrapError(f"malloc of negative size {size}")
        size = max(size, 1)
        bucket = self._free_by_size.get(size)
        if bucket:
            region = bucket.pop()
            region.live = True
        else:
            region = self.memory.map_region(size, "heap")
        self._by_addr[region.start] = region
        self.total_allocated += size
        self.live_bytes += size
        return region.start

    def calloc(self, count: int, size: int) -> int:
        total = count * size
        addr = self.malloc(total)
        if total:
            self.memory.write(addr, bytes(total))
        return addr

    def free(self, addr: int) -> None:
        if addr == 0:  # free(NULL) is a no-op, as in C
            return
        region = self._by_addr.pop(addr, None)
        if region is None:
            owning = self.memory.region_at(addr)
            if owning is not None and owning.kind == "heap" and not owning.live:
                raise TrapError(f"double free at {addr:#x}")
            raise TrapError(f"free of non-heap or interior pointer {addr:#x}")
        self.memory.unmap_region(region)
        self.live_bytes -= region.size
        self._free_by_size.setdefault(region.size, []).append(region)

    def realloc(self, addr: int, new_size: int) -> int:
        if addr == 0:
            return self.malloc(new_size)
        region = self._by_addr.get(addr)
        if region is None:
            raise TrapError(f"realloc of non-heap pointer {addr:#x}")
        if new_size <= region.size:
            return addr
        new_addr = self.malloc(new_size)
        self.memory.write(new_addr, self.memory.read(addr, region.size))
        self.free(addr)
        return new_addr

    def block_size(self, addr: int) -> int:
        region = self._by_addr.get(addr)
        if region is None:
            raise TrapError(f"{addr:#x} is not the start of a live heap block")
        return region.size

    def live_block_count(self) -> int:
        return len(self._by_addr)
