"""``python -m repro.trace`` — record, summarize, and validate traces.

* ``run [-o OUT] [--tree] [--profile] script.py [args...]`` — execute a
  Python script with tracing enabled and write the Chrome-trace JSON
  (default ``repro-trace.json``); ``--tree`` also prints the span tree,
  ``--profile`` enables the per-call profiler and prints its table.
* ``view TRACE.json [--tree] [--limit N]`` — summarize an existing trace
  file (totals by category; ``--tree`` for the full nested view).
* ``validate TRACE.json`` — structural trace_event validation; exit 1 on
  problems.  Used by ``make trace-demo`` and CI.
"""

from __future__ import annotations

import argparse
import json
import runpy
import sys

from . import (enable, export_chrome, format_tree, profile, summarize,
               tree, validate_chrome)


def _cmd_run(args) -> int:
    enable()
    if args.profile:
        profile.enable()
    sys.argv = [args.script] + args.script_args
    code = 0
    try:
        runpy.run_path(args.script, run_name="__main__")
    except SystemExit as exc:
        code = exc.code if isinstance(exc.code, int) else 0
    path = export_chrome(args.out)
    print(f"[repro.trace] wrote {path}")
    if args.tree:
        print(tree(min_ms=args.min_ms))
    if args.profile:
        print(profile.report())
    return code


def _load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _cmd_view(args) -> int:
    doc = _load(args.trace)
    if args.tree:
        print(format_tree(doc, max_children=args.limit,
                          min_ms=args.min_ms))
        return 0
    summary = summarize(doc)
    print(f"{summary['spans']} spans")
    print(f"{'category':<14} {'count':>8} {'total ms':>12}")
    for cat, entry in sorted(summary["by_category"].items(),
                             key=lambda kv: kv[1]["ms"], reverse=True):
        print(f"{cat:<14} {entry['count']:>8} {entry['ms']:>12.3f}")
    return 0


def _cmd_validate(args) -> int:
    try:
        doc = _load(args.trace)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"INVALID: {exc}")
        return 1
    errors = validate_chrome(doc)
    if errors:
        print(f"INVALID trace_event document ({len(errors)} problems):")
        for err in errors:
            print(f"  {err}")
        return 1
    summary = summarize(doc)
    cats = ", ".join(sorted(summary["by_category"]))
    print(f"OK: {len(doc['traceEvents'])} events, {summary['spans']} "
          f"spans, categories: {cats or '(none)'}")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Record, summarize, and validate repro traces.")
    sub = ap.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a script with tracing enabled")
    run.add_argument("-o", "--out", default="repro-trace.json",
                     help="trace output path (default repro-trace.json)")
    run.add_argument("--tree", action="store_true",
                     help="also print the span tree")
    run.add_argument("--profile", action="store_true",
                     help="enable the per-call profiler, print its table")
    run.add_argument("--min-ms", type=float, default=0.0,
                     help="hide leaf spans shorter than this (tree)")
    run.add_argument("script")
    run.add_argument("script_args", nargs=argparse.REMAINDER)

    view = sub.add_parser("view", help="summarize an existing trace file")
    view.add_argument("trace")
    view.add_argument("--tree", action="store_true",
                      help="full nested view instead of category totals")
    view.add_argument("--limit", type=int, default=24,
                      help="max children shown per node (tree)")
    view.add_argument("--min-ms", type=float, default=0.0,
                      help="hide leaf spans shorter than this (tree)")

    val = sub.add_parser("validate",
                         help="check a trace_event JSON file; exit 1 if bad")
    val.add_argument("trace")

    args = ap.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "view":
        return _cmd_view(args)
    return _cmd_validate(args)


if __name__ == "__main__":
    sys.exit(main())
