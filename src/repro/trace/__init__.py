"""repro.trace — end-to-end staging/compile/runtime observability.

The paper's argument is that staging Terra from a dynamic language keeps
the *where-does-the-time-go* question answerable.  This subsystem makes
that literal: every stage of the lifecycle —

    parse → eager specialization → connected-component typecheck →
    each repro.passes pass → C emission → buildd submit / cache-hit /
    compile / link → dlopen + ctypes bind → per-call execution

— is instrumented as nested **spans** with attributes (function name,
component size, pass outcome, cache key, backend, pipeline level), plus
a unified **metrics registry** (:mod:`repro.trace.metrics`) and a
per-call **profiler** (:mod:`repro.trace.profile`).

Quick use::

    import repro.trace as trace
    trace.enable()
    ... define and call Terra functions ...
    print(trace.tree())                 # human nested summary
    trace.export_chrome("trace.json")   # open in chrome://tracing / Perfetto

Environment:

* ``REPRO_TERRA_TRACE=1`` — enable tracing for the whole process and
  write a Chrome-trace JSON at exit (path: ``REPRO_TERRA_TRACE_OUT``,
  default ``repro-trace.json``);
* ``REPRO_TERRA_PROFILE=1`` — per-call runtime profiling
  (``fn.report()``, ``repro.trace.profile.report()``).

Cost when disabled (the default): instrumented call sites check one
module-level flag and receive a shared no-op span — no environment reads,
no allocation, no locking.  ``benchmarks/test_trace_overhead.py`` holds
that to "in the noise".

Command line::

    python -m repro.trace run  script.py [args...]   # run traced, dump
    python -m repro.trace view trace.json --tree     # summarize a trace
    python -m repro.trace validate trace.json        # structural check

See ``docs/OBSERVABILITY.md`` for the full guide.
"""

from __future__ import annotations

import atexit
import os
import time
from typing import Optional

from . import metrics, profile
from .collector import Collector, NULL_SPAN, Span
from .export import (format_tree, summarize, to_chrome, validate_chrome,
                     write_chrome)

__all__ = [
    "Collector", "Span", "NULL_SPAN", "enable", "disable", "enabled",
    "span", "instant", "events", "clear", "tree", "export_chrome",
    "to_chrome", "format_tree", "summarize", "validate_chrome",
    "write_chrome", "metrics", "profile", "timed_call",
]

_collector = Collector()
_enabled = False

#: fast-path switch for the per-call execution hook: true when tracing
#: OR profiling is on.  Backends read this module attribute directly —
#: one global lookup per call, no env reads (see CompiledFunction).
_runtime_active = False


def _sync_runtime() -> None:
    global _runtime_active
    _runtime_active = _enabled or profile._enabled


def enabled() -> bool:
    """Whether span collection is on."""
    return _enabled


def enable() -> None:
    """Turn span collection on (idempotent)."""
    global _enabled
    _enabled = True
    _sync_runtime()


def disable() -> None:
    global _enabled
    _enabled = False
    _sync_runtime()


def collector() -> Collector:
    return _collector


def span(name: str, cat: str = "stage", **args):
    """Open a span (use as a context manager, or call ``.set``/close via
    ``with``).  Returns the shared no-op span when tracing is off."""
    if not _enabled:
        return NULL_SPAN
    return _collector.begin(name, cat, args or None)


def instant(name: str, cat: str = "stage", **args) -> None:
    """Record a zero-duration marker (cache hit, dedup, divergence...)."""
    if _enabled:
        _collector.instant(name, cat, args or None)


def events() -> list[Span]:
    return _collector.events()


def clear() -> None:
    """Drop all recorded spans (does not change enabled/disabled)."""
    _collector.clear()


def tree(max_children: int = 24, min_ms: float = 0.0) -> str:
    """The recorded spans as a human nested summary."""
    return format_tree(to_chrome(_collector.events()),
                       max_children=max_children, min_ms=min_ms)


def export_chrome(path: Optional[str] = None):
    """Export recorded spans as Chrome trace_event JSON.  With ``path``,
    writes the file (atomically) and returns the path; without, returns
    the document as a dict."""
    spans = _collector.events()
    if path is None:
        return to_chrome(spans)
    return write_chrome(path, spans)


# -- the per-call execution hook ----------------------------------------------

def timed_call(fn, thunk):
    """Run ``thunk`` as one timed call of TerraFunction ``fn``: an
    execution span when tracing, a profile sample when profiling.  Called
    by the backends' handles only while :data:`_runtime_active` is set."""
    sp = _collector.begin(f"call:{fn.name}", "exec", None) if _enabled \
        else NULL_SPAN
    t0 = time.perf_counter()
    try:
        with sp:
            return thunk()
    finally:
        if profile._enabled:
            profile.record(fn, time.perf_counter() - t0)


# -- environment activation ---------------------------------------------------

def _dump_at_exit() -> None:
    out = os.environ.get("REPRO_TERRA_TRACE_OUT") or "repro-trace.json"
    try:
        path = export_chrome(out)
        n = len(_collector)
        print(f"[repro.trace] wrote {n} events to {path}")
    except OSError as exc:  # never let teardown mask the real exit
        print(f"[repro.trace] could not write trace: {exc}")


if os.environ.get("REPRO_TERRA_TRACE", "") not in ("", "0"):
    enable()
    atexit.register(_dump_at_exit)

_sync_runtime()
