"""Per-function runtime profiling — where did *execution* time go.

With ``REPRO_TERRA_PROFILE=1`` (or :func:`enable`), every call of a
compiled Terra function — through either backend's Python-callable
handle — records one timing sample into the process metrics registry
under ``call.<name>#<uid>``: call count, cumulative wall seconds, min and
max.  The cost per call is one clock pair plus one locked dict update,
cheap enough to leave on in long-running processes; when disabled the
handles skip the hook entirely via a module-level flag
(:data:`repro.trace._runtime_active`), not per-call environment reads.

Read the results with :meth:`repro.core.function.TerraFunction.report`
(one function) or :func:`report` (every profiled function, sorted by
cumulative time).
"""

from __future__ import annotations

import os
from typing import Optional

from .metrics import registry

_PREFIX = "call."

#: module-level switch (seeded from the environment once, at import)
_enabled = os.environ.get("REPRO_TERRA_PROFILE", "") not in ("", "0")


def enabled() -> bool:
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True
    from . import _sync_runtime
    _sync_runtime()


def disable() -> None:
    global _enabled
    _enabled = False
    from . import _sync_runtime
    _sync_runtime()


def _key(fn) -> str:
    return f"{_PREFIX}{fn.name}#{fn.uid}"


def record(fn, seconds: float) -> None:
    """Fold one call of ``fn`` (a TerraFunction) into its profile."""
    registry().record_time(_key(fn), seconds)


def stats_for(fn) -> Optional[dict]:
    """Profile stats for one function: ``{"calls", "seconds", "min",
    "mean", "max"}``, or None if it was never profiled."""
    entry = registry().timing(_key(fn))
    if entry is None:
        return None
    return _present(entry)


def _present(entry: dict) -> dict:
    runs = entry["runs"]
    return {
        "calls": runs,
        "seconds": entry["seconds"],
        "min": entry["min"],
        "mean": entry["seconds"] / runs if runs else 0.0,
        "max": entry["max"],
    }


def all_stats() -> dict[str, dict]:
    """``{"name#uid": stats}`` for every profiled function."""
    return {name[len(_PREFIX):]: _present(entry)
            for name, entry in registry().timings(_PREFIX).items()}


def clear() -> None:
    registry().reset(_PREFIX)


def report(limit: int = 30) -> str:
    """A table of every profiled function, hottest first."""
    rows = sorted(all_stats().items(),
                  key=lambda kv: kv[1]["seconds"], reverse=True)
    if not rows:
        return ("no profiled calls recorded "
                "(set REPRO_TERRA_PROFILE=1 or call "
                "repro.trace.profile.enable())")
    lines = [f"{'function':<28} {'calls':>8} {'total s':>10} "
             f"{'mean us':>10} {'min us':>10} {'max us':>10}"]
    for name, st in rows[:limit]:
        lines.append(
            f"{name:<28} {st['calls']:>8} {st['seconds']:>10.4f} "
            f"{st['mean'] * 1e6:>10.2f} {st['min'] * 1e6:>10.2f} "
            f"{st['max'] * 1e6:>10.2f}")
    if len(rows) > limit:
        lines.append(f"... and {len(rows) - limit} more")
    return "\n".join(lines)
