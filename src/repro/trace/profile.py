"""Per-function runtime profiling — where did *execution* time go.

With ``REPRO_TERRA_PROFILE=1`` (or :func:`enable`), every call of a
compiled Terra function — through either backend's Python-callable
handle — records one timing sample into the process metrics registry
under ``call.<name>#<uid>``: call count, cumulative wall seconds, min and
max.  The cost per call is one clock pair plus one locked dict update,
cheap enough to leave on in long-running processes; when disabled the
handles skip the hook entirely via a module-level flag
(:data:`repro.trace._runtime_active`), not per-call environment reads.

Read the results with :meth:`repro.core.function.TerraFunction.report`
(one function) or :func:`report` (every profiled function, sorted by
cumulative time).
"""

from __future__ import annotations

import os
import threading
from typing import Optional

from .metrics import registry

_PREFIX = "call."

#: module-level switch (seeded from the environment once, at import)
_enabled = os.environ.get("REPRO_TERRA_PROFILE", "") not in ("", "0")


def enabled() -> bool:
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True
    from . import _sync_runtime
    _sync_runtime()


def disable() -> None:
    global _enabled
    _enabled = False
    from . import _sync_runtime
    _sync_runtime()


def _key(fn) -> str:
    return f"{_PREFIX}{fn.name}#{fn.uid}"


def record(fn, seconds: float) -> None:
    """Fold one call of ``fn`` (a TerraFunction) into its profile."""
    registry().record_time(_key(fn), seconds)


def stats_for(fn) -> Optional[dict]:
    """Profile stats for one function: ``{"calls", "seconds", "min",
    "mean", "max"}``, or None if it was never profiled."""
    entry = registry().timing(_key(fn))
    if entry is None:
        return None
    return _present(entry)


def _present(entry: dict) -> dict:
    runs = entry["runs"]
    return {
        "calls": runs,
        "seconds": entry["seconds"],
        "min": entry["min"],
        "mean": entry["seconds"] / runs if runs else 0.0,
        "max": entry["max"],
    }


def all_stats() -> dict[str, dict]:
    """``{"name#uid": stats}`` for every profiled function."""
    return {name[len(_PREFIX):]: _present(entry)
            for name, entry in registry().timings(_PREFIX).items()}


def clear() -> None:
    registry().reset(_PREFIX)


# -- value profiling (tier-0 argument observation) ---------------------------
#
# The tiered execution policy (repro.exec) watches the *values* flowing
# into a function while it is still interpreted, looking for scalar
# parameters that are the same on every call — respecialization
# candidates.  This is separate from the timing profile above: it is fed
# explicitly by the policy (not by the _runtime_active hook), costs one
# locked list update per observed call, and keeps only a per-position
# lattice (unseen -> one value -> varying), never a value history.

#: lattice top: this position has held more than one distinct value
VARYING = "<varying>"

_args_lock = threading.Lock()
#: fn.uid -> per-position slots; each slot is [observations, value|VARYING]
_arg_profiles: dict[int, list] = {}


def _observe(value):
    """Project an argument to its profiled observation: scalars observe
    their value, array-likes observe (dtype, shape) — so stable *shapes*
    are visible even where values vary — everything else is VARYING."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    shape = getattr(value, "shape", None)
    dtype = getattr(value, "dtype", None)
    if shape is not None and dtype is not None:
        return ("array", str(dtype), tuple(shape))
    return VARYING


def _same(a, b) -> bool:
    return type(a) is type(b) and a == b


def note_args(fn, args) -> None:
    """Fold one call's argument tuple into ``fn``'s value profile."""
    with _args_lock:
        slots = _arg_profiles.get(fn.uid)
        if slots is None:
            slots = _arg_profiles[fn.uid] = [None] * len(args)
        for i in range(min(len(args), len(slots))):
            obs = _observe(args[i])
            slot = slots[i]
            if slot is None:
                slots[i] = [1, obs]
            else:
                slot[0] += 1
                if slot[1] is not VARYING and not _same(slot[1], obs):
                    slot[1] = VARYING


def arg_stats(fn) -> list:
    """Per-position value profile for ``fn``: a list (one entry per
    parameter position, None if never observed) of ``{"observations",
    "stable", "value"}`` — ``value`` is None when unstable."""
    with _args_lock:
        slots = _arg_profiles.get(fn.uid)
        if slots is None:
            return []
        out = []
        for slot in slots:
            if slot is None:
                out.append(None)
            else:
                count, value = slot
                stable = value is not VARYING
                out.append({"observations": count, "stable": stable,
                            "value": value if stable else None})
        return out


def clear_args(fn=None) -> None:
    """Drop value profiles — for one function, or all of them."""
    with _args_lock:
        if fn is None:
            _arg_profiles.clear()
        else:
            _arg_profiles.pop(fn.uid, None)


def report(limit: int = 30) -> str:
    """A table of every profiled function, hottest first."""
    rows = sorted(all_stats().items(),
                  key=lambda kv: kv[1]["seconds"], reverse=True)
    if not rows:
        return ("no profiled calls recorded "
                "(set REPRO_TERRA_PROFILE=1 or call "
                "repro.trace.profile.enable())")
    lines = [f"{'function':<28} {'calls':>8} {'total s':>10} "
             f"{'mean us':>10} {'min us':>10} {'max us':>10}"]
    for name, st in rows[:limit]:
        lines.append(
            f"{name:<28} {st['calls']:>8} {st['seconds']:>10.4f} "
            f"{st['mean'] * 1e6:>10.2f} {st['min'] * 1e6:>10.2f} "
            f"{st['max'] * 1e6:>10.2f}")
    if len(rows) > limit:
        lines.append(f"... and {len(rows) - limit} more")
    return "\n".join(lines)
