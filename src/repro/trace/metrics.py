"""The process metrics registry — one home for every counter in repro.

Before this module existed, counters were scattered: the buildd service
kept private compile counters, the pass manager pushed per-pass timings
into *buildd's* stats object, the fuzzer pushed its totals there too, and
the runtime profiler had nowhere to live at all.  Now there is exactly
one metrics substrate:

* a :class:`MetricsRegistry` holds named **counters** (monotonic or
  signed numbers), **timings** (run count + cumulative seconds + min/max)
  and bounded **rings** (recent-item buffers), all behind one lock;
* the process-wide registry (:func:`registry`) carries every
  cross-cutting series — per-pass pipeline time (``pass.*``),
  differential-fuzz totals (``fuzz.*``) and compiled-function call
  profiles (``call.*``);
* per-service counters (one :class:`~repro.buildd.stats.BuildStats` per
  :class:`~repro.buildd.service.CompileService`) live in a *private*
  registry instance so tests can build isolated services, while
  ``BuildStats.snapshot()`` stays a **view** that merges the service's
  own registry with the process-wide series.

Increments are cheap (one lock, one dict op) relative to anything they
measure — a gcc run, an IR pass, an FFI call — so contention and overhead
are irrelevant in practice.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import Iterator, Optional


class MetricsRegistry:
    """Thread-safe named counters, timings, and bounded rings."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, float] = {}
        self._timings: dict[str, dict] = {}
        self._rings: dict[str, deque] = {}

    # -- counters -----------------------------------------------------------
    def add(self, name: str, value: float = 1) -> float:
        """Add ``value`` to counter ``name`` (created at 0); returns the
        new total."""
        with self._lock:
            total = self._counters.get(name, 0) + value
            self._counters[name] = total
            return total

    def track_max(self, name: str, value: float) -> None:
        """Keep counter ``name`` at the maximum value ever observed."""
        with self._lock:
            if value > self._counters.get(name, 0):
                self._counters[name] = value

    def get(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def counters(self, prefix: str = "") -> dict[str, float]:
        with self._lock:
            return {k: v for k, v in self._counters.items()
                    if k.startswith(prefix)}

    # -- timings ------------------------------------------------------------
    def record_time(self, name: str, seconds: float) -> None:
        """Fold one run of ``seconds`` into timing ``name``."""
        with self._lock:
            entry = self._timings.get(name)
            if entry is None:
                entry = {"runs": 0, "seconds": 0.0,
                         "min": seconds, "max": seconds}
                self._timings[name] = entry
            entry["runs"] += 1
            entry["seconds"] += seconds
            if seconds < entry["min"]:
                entry["min"] = seconds
            if seconds > entry["max"]:
                entry["max"] = seconds

    def timing(self, name: str) -> Optional[dict]:
        with self._lock:
            entry = self._timings.get(name)
            return dict(entry) if entry is not None else None

    def timings(self, prefix: str = "") -> dict[str, dict]:
        with self._lock:
            return {k: dict(v) for k, v in self._timings.items()
                    if k.startswith(prefix)}

    # -- rings --------------------------------------------------------------
    def append(self, name: str, item, maxlen: int = 64) -> None:
        with self._lock:
            ring = self._rings.get(name)
            if ring is None:
                ring = deque(maxlen=maxlen)
                self._rings[name] = ring
            ring.append(item)

    def ring(self, name: str) -> list:
        with self._lock:
            return list(self._rings.get(name, ()))

    # -- maintenance --------------------------------------------------------
    def reset(self, prefix: str = "") -> None:
        """Drop every series whose name starts with ``prefix`` (all of
        them for the default empty prefix)."""
        with self._lock:
            for store in (self._counters, self._timings, self._rings):
                for key in [k for k in store if k.startswith(prefix)]:
                    del store[key]

    @contextmanager
    def locked(self) -> Iterator[None]:
        """Hold the registry lock across several updates (the lock is
        reentrant, so the primitives above remain usable inside)."""
        with self._lock:
            yield

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timings": {k: dict(v) for k, v in self._timings.items()},
                "rings": {k: list(v) for k, v in self._rings.items()},
            }


#: the process-wide registry: cross-cutting series (pass.*, fuzz.*, call.*)
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY
