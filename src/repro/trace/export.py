"""Trace export: Chrome ``trace_event`` JSON and the ``--tree`` summary.

The JSON format is the Trace Event Format consumed by ``chrome://tracing``
and https://ui.perfetto.dev — an object with a ``traceEvents`` list of
complete (``"ph": "X"``), instant (``"ph": "i"``) and metadata
(``"ph": "M"``) events, timestamps and durations in **microseconds**.
The tree renderer works from that same event list (live spans or a loaded
JSON file), reconstructing nesting per thread from timestamp containment,
so ``python -m repro.trace view`` can summarize any trace file it did not
itself record.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from .collector import Span


def to_chrome(spans: list[Span], process_name: str = "repro-terra") -> dict:
    """Render collected spans as a Chrome/Perfetto trace_event document."""
    pid = os.getpid()
    events: list[dict] = []
    tids: dict[int, int] = {}
    thread_names: dict[int, str] = {}
    for span in spans:
        tid = tids.setdefault(span.tid, len(tids))
        thread_names.setdefault(tid, span.thread_name)
        event = {
            "name": span.name,
            "cat": span.cat,
            "pid": pid,
            "tid": tid,
            "ts": span.start_ns / 1000.0,
        }
        if span.args:
            event["args"] = _jsonable(span.args)
        if span.dur_ns == -1:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            # open spans (process still inside them) export zero-length
            event["dur"] = (span.dur_ns or 0) / 1000.0
        events.append(event)
    meta = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": process_name}}]
    for tid, name in sorted(thread_names.items()):
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tid, "args": {"name": name}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def _jsonable(args: dict) -> dict:
    return {k: (v if isinstance(v, (int, float, bool, str, type(None)))
                else str(v))
            for k, v in args.items()}


def write_chrome(path: str, spans: list[Span],
                 process_name: str = "repro-terra") -> str:
    doc = to_chrome(spans, process_name)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as fh:
        json.dump(doc, fh)
    os.replace(tmp, path)
    return path


# -- validation ---------------------------------------------------------------

_KNOWN_PHASES = {"X", "B", "E", "i", "I", "M", "C", "b", "e", "n", "s",
                 "t", "f"}


def validate_chrome(doc) -> list[str]:
    """Structural validation of a trace_event document; returns a list of
    problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing event name")
        if ph != "M":
            if not isinstance(ev.get("ts"), (int, float)):
                errors.append(f"{where}: missing numeric 'ts'")
            if not isinstance(ev.get("pid"), int) \
                    or not isinstance(ev.get("tid"), int):
                errors.append(f"{where}: missing integer pid/tid")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'X' event needs 'dur' >= 0")
        if len(errors) >= 20:
            errors.append("... (more suppressed)")
            break
    return errors


# -- the tree summary ---------------------------------------------------------

class _Node:
    __slots__ = ("event", "children")

    def __init__(self, event: dict) -> None:
        self.event = event
        self.children: list["_Node"] = []


def _build_forest(events: list[dict]) -> dict[tuple, list[_Node]]:
    """Reconstruct nesting per (pid, tid) from timestamp containment."""
    lanes: dict[tuple, list[dict]] = {}
    names: dict[tuple, str] = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "thread_name":
                names[(ev.get("pid"), ev.get("tid"))] = \
                    (ev.get("args") or {}).get("name", "")
            continue
        if ph in ("X", "i", "I"):
            lanes.setdefault((ev.get("pid"), ev.get("tid")), []).append(ev)
    forest: dict[tuple, list[_Node]] = {}
    for lane, evs in sorted(lanes.items(), key=lambda kv: str(kv[0])):
        evs.sort(key=lambda e: (e["ts"], -e.get("dur", 0)))
        roots: list[_Node] = []
        stack: list[_Node] = []
        for ev in evs:
            node = _Node(ev)
            end = ev["ts"] + ev.get("dur", 0)
            while stack:
                top = stack[-1].event
                if ev["ts"] >= top["ts"] + top.get("dur", 0) - 1e-9:
                    stack.pop()
                else:
                    break
            (stack[-1].children if stack else roots).append(node)
            if ev.get("ph") == "X" and end > ev["ts"]:
                stack.append(node)
        label = names.get(lane, "")
        forest[(lane, label)] = roots
    return forest


def format_tree(doc: dict, max_children: int = 24,
                min_ms: float = 0.0) -> str:
    """A human nested summary of a trace_event document."""
    events = doc.get("traceEvents", [])
    forest = _build_forest(events)
    lines: list[str] = []
    for (lane, label), roots in forest.items():
        title = f"thread {label}" if label else f"thread pid={lane[0]} tid={lane[1]}"
        lines.append(title)
        _format_nodes(roots, "", lines, max_children, min_ms)
    if not lines:
        lines.append("(empty trace)")
    return "\n".join(lines)


def _format_nodes(nodes: list[_Node], indent: str, lines: list[str],
                  max_children: int, min_ms: float) -> None:
    shown = nodes[:max_children]
    for i, node in enumerate(shown):
        last = (i == len(shown) - 1) and len(nodes) <= max_children
        branch, cont = ("└─ ", "   ") if last else ("├─ ", "│  ")
        ev = node.event
        if ev.get("ph") in ("i", "I"):
            lines.append(f"{indent}{branch}• {ev['name']}"
                         f"{_fmt_args(ev)}")
            continue
        dur_ms = ev.get("dur", 0) / 1000.0
        if dur_ms < min_ms and not node.children:
            continue
        lines.append(f"{indent}{branch}{ev['name']}  {dur_ms:.3f} ms"
                     f"{_fmt_args(ev)}")
        _format_nodes(node.children, indent + cont, lines,
                      max_children, min_ms)
    if len(nodes) > max_children:
        rest = nodes[max_children:]
        total = sum(n.event.get("dur", 0) for n in rest) / 1000.0
        lines.append(f"{indent}└─ … {len(rest)} more "
                     f"({total:.3f} ms total)")


def _fmt_args(ev: dict) -> str:
    args = ev.get("args")
    if not args:
        return ""
    parts = [f"{k}={v}" for k, v in list(args.items())[:5]]
    return "  {" + ", ".join(parts) + "}"


def summarize(doc: dict) -> dict:
    """Aggregate totals by category and by span name (for quick looks and
    the CLI's validate output)."""
    by_cat: dict[str, dict] = {}
    by_name: dict[str, dict] = {}
    count = 0
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        if ph not in ("X", "i", "I"):
            continue
        if ph == "X":
            count += 1
        # instants contribute to the counts (a trace full of cache-hit
        # instants should still show "buildd" in the summary) but no time
        for key, store in ((ev.get("cat", "?"), by_cat),
                           (ev.get("name", "?"), by_name)):
            entry = store.setdefault(key, {"count": 0, "ms": 0.0})
            entry["count"] += 1
            if ph == "X":
                entry["ms"] += ev.get("dur", 0) / 1000.0
    return {"spans": count, "by_category": by_cat, "by_name": by_name}
