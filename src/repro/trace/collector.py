"""The in-process span collector.

A **span** is one timed region of the staging/compile/run lifecycle —
``specialize:gemm``, ``pass:fold``, ``buildd.compile`` — with a category,
key/value attributes, and a parent (the span that was open on the same
thread when it began).  The collector records spans from any thread into
one buffer; nesting is tracked per thread, so spans emitted by buildd
worker threads form their own well-nested lanes rather than corrupting
the main thread's stack.

Cost model: when tracing is disabled (the default) no :class:`Span` is
ever created — call sites receive the shared :data:`NULL_SPAN`, whose
``__enter__``/``__exit__``/``set`` are empty methods.  When enabled, each
span is one small object, two clock reads, and two short critical
sections.
"""

from __future__ import annotations

import threading
import time
from typing import Optional


class Span:
    """One timed, attributed region.  Context manager: ``with`` closes it."""

    __slots__ = ("name", "cat", "args", "start_ns", "dur_ns", "tid",
                 "thread_name", "parent", "index", "_collector")

    def __init__(self, collector: "Collector", name: str, cat: str,
                 args: Optional[dict]) -> None:
        self._collector = collector
        self.name = name
        self.cat = cat
        self.args = dict(args) if args else {}
        self.tid = threading.get_ident()
        self.thread_name = threading.current_thread().name
        self.parent: Optional[int] = None
        self.index: Optional[int] = None
        self.dur_ns: Optional[int] = None
        self.start_ns = 0  # set by the collector at begin()

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (component size, cache
        outcome, GFLOPS...)."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._collector.end(self)


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Collector:
    """Thread-safe buffer of spans and instants for one process."""

    def __init__(self, max_events: int = 1_000_000) -> None:
        self._lock = threading.Lock()
        self._events: list[Span] = []
        self._tls = threading.local()
        self.epoch_ns = time.perf_counter_ns()
        self.max_events = max_events
        self.dropped = 0

    def _stack(self) -> list:
        try:
            return self._tls.stack
        except AttributeError:
            self._tls.stack = []
            return self._tls.stack

    # -- recording ----------------------------------------------------------
    def begin(self, name: str, cat: str, args: Optional[dict]) -> Span:
        span = Span(self, name, cat, args)
        span.start_ns = time.perf_counter_ns() - self.epoch_ns
        stack = self._stack()
        if stack:
            span.parent = stack[-1].index
        stack.append(span)
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1  # still on the stack, just not exported
            else:
                span.index = len(self._events)
                self._events.append(span)
        return span

    def end(self, span: Span) -> None:
        if span.dur_ns is None:
            span.dur_ns = time.perf_counter_ns() - self.epoch_ns \
                - span.start_ns
        stack = self._stack()
        # pop through anything left open below this span (a child that
        # escaped without closing must not corrupt later nesting)
        while stack:
            top = stack.pop()
            if top is span:
                break

    def instant(self, name: str, cat: str, args: Optional[dict]) -> None:
        span = Span(self, name, cat, args)
        span.start_ns = time.perf_counter_ns() - self.epoch_ns
        span.dur_ns = -1  # marker: instant event
        stack = self._stack()
        if stack:
            span.parent = stack[-1].index
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return
            span.index = len(self._events)
            self._events.append(span)

    # -- reading ------------------------------------------------------------
    def events(self) -> list[Span]:
        """A snapshot of the recorded spans (open spans included, with
        ``dur_ns`` still None)."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0
        self.epoch_ns = time.perf_counter_ns()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
