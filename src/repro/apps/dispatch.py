"""Virtual-dispatch micro-benchmark — paper §6.3.1.

    "We measured the overhead of function invocation in our implementation
    using a micro-benchmark, and found it performed within 1% of analogous
    C++ code."

The Terra side uses the :mod:`repro.lib.javalike` class system (vtable
dispatch through ``obj:value(x)``); the baseline is the same loop in C
dispatching through an explicit vtable — which is exactly what C++ single
inheritance compiles to, so the comparison measures the same machine
operation (load vtable pointer, load slot, indirect call).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import struct, terra
from ..bench.cbaseline import compile_c
from ..lib import javalike as J


@dataclass
class DispatchKernels:
    make: object     # () -> &Counter (heap object, initialized)
    free: object
    loop_virtual: object   # (&Counter, iters) -> float
    loop_direct: object    # (&Counter, iters) -> float


def build_terra_dispatch() -> DispatchKernels:
    """A class with one virtual method and the timing loops."""
    Counter = struct("struct Counter { a : float, b : float }")
    J._info(Counter)  # register as a class (installs finalize hook)
    terra("""
    terra Counter:value(x : float) : float
      return self.a * x + self.b
    end
    """, env={"Counter": Counter})
    direct_value = Counter.methods["value"]  # pre-finalize concrete method

    from .. import includec
    env = {"Counter": Counter, "std": includec("stdlib.h"),
           "direct_value": direct_value}
    ns = terra("""
    terra make(a : float, b : float) : &Counter
      var c = [&Counter](std.malloc(sizeof(Counter)))
      c:init()
      c.a = a
      c.b = b
      return c
    end

    terra release(c : &Counter) : {}
      std.free(c)
    end

    terra loop_virtual(c : &Counter, iters : int64) : float
      var acc = 0.5f
      for i = 0, iters do
        acc = c:value(acc)
        if acc > 1000.0f then acc = acc - 1000.0f end
      end
      return acc
    end

    terra loop_direct(c : &Counter, iters : int64) : float
      var acc = 0.5f
      for i = 0, iters do
        acc = direct_value(c, acc)
        if acc > 1000.0f then acc = acc - 1000.0f end
      end
      return acc
    end
    """, env=env)
    return DispatchKernels(ns["make"], ns["release"], ns["loop_virtual"],
                           ns["loop_direct"])


_C_SOURCE = r"""
#include <stdlib.h>

typedef struct Counter Counter;
typedef struct {
    float (*value)(Counter *, float);
} CounterVT;
struct Counter {
    const CounterVT *vt;
    float a, b;
};

static float counter_value(Counter *c, float x) { return c->a * x + c->b; }
static const CounterVT counter_vt = { counter_value };

void *c_make(float a, float b) {
    Counter *c = malloc(sizeof *c);
    c->vt = &counter_vt;
    c->a = a;
    c->b = b;
    return c;
}

void c_release(void *p) { free(p); }

float c_loop_virtual(void *p, long iters) {
    Counter *c = p;
    float acc = 0.5f;
    for (long i = 0; i < iters; i++) {
        acc = c->vt->value(c, acc);
        if (acc > 1000.0f) acc -= 1000.0f;
    }
    return acc;
}

float c_loop_direct(void *p, long iters) {
    Counter *c = p;
    float acc = 0.5f;
    for (long i = 0; i < iters; i++) {
        acc = counter_value(c, acc);
        if (acc > 1000.0f) acc -= 1000.0f;
    }
    return acc;
}
"""


def build_c_dispatch():
    return compile_c(_C_SOURCE, {
        "c_make": (["float", "float"], "ptr"),
        "c_release": (["ptr"], "void"),
        "c_loop_virtual": (["ptr", "long"], "float"),
        "c_loop_direct": (["ptr", "long"], "float"),
    })


def build_fatptr_dispatch():
    """The §6.3.1 alternative: dispatch through fat-pointer interfaces
    (object pointer + vtable pointer carried together)."""
    from .. import float_
    from ..lib import fatptr

    Valuer = fatptr.interface({"value": ([float_], float_)}, name="Valuer")
    Counter = struct("struct FPCounter { a : float, b : float }")
    concrete = terra("""
    terra(self : &FPCounter, x : float) : float
      return self.a * x + self.b
    end
    """, env={"FPCounter": Counter})
    Valuer.implement(Counter, {"value": concrete})

    from .. import includec
    env = {"Counter": Counter, "IFace": Valuer.type,
           "wrap": Valuer.wrap(Counter), "std": includec("stdlib.h")}
    ns = terra("""
    terra make(a : float, b : float) : &FPC
      var c = [&FPC](std.malloc(sizeof(FPC)))
      c.a = a
      c.b = b
      return c
    end

    terra release(c : &FPC) : {}
      std.free(c)
    end

    terra loop_fat(c : &FPC, iters : int64) : float
      var handle = wrap(c)
      var acc = 0.5f
      for i = 0, iters do
        acc = handle:value(acc)
        if acc > 1000.0f then acc = acc - 1000.0f end
      end
      return acc
    end
    """, env={**env, "FPC": Counter})
    return DispatchKernels(ns["make"], ns["release"], ns["loop_fat"],
                           ns["loop_fat"])
