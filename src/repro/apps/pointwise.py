"""The point-wise image pipeline — paper §6.2's inlining demonstration.

    "we implemented a pipeline of four simple memory-bound point-wise
    image processing kernels (blacklevel offset, brightness, clamp, and
    invert).  In a traditional image processing library, these functions
    would likely be written separately so they could be composed in an
    arbitrary order.  In Orion, the schedule can be changed independently
    of the algorithm.  For example, we can choose to inline the four
    functions, reducing the accesses to main memory by a factor of 4 and
    resulting in a 3.8x speedup."

``build_pipeline(N, policy=...)`` compiles the same four-kernel pipeline
with every intermediate either materialized (the library-of-functions
structure) or inlined (one fused pass).
"""

from __future__ import annotations

import numpy as np

from ..orion import lang as L
from ..orion.compile import CompiledStencil, compile_pipeline

BLACKLEVEL = 0.05
BRIGHTNESS = 1.4


def build_pipeline(N: int, policy: str = L.MATERIALIZE,
                   vectorize: int = 0) -> CompiledStencil:
    f = L.image("f")
    blacklevel = L.stage(L.max_(f(0, 0) - BLACKLEVEL, 0.0), "blacklevel",
                         policy=policy)
    brightness = L.stage(blacklevel(0, 0) * BRIGHTNESS, "brightness",
                         policy=policy)
    clamped = L.stage(L.clamp(brightness(0, 0), 0.0, 1.0), "clamp",
                      policy=policy)
    inverted = 1.0 - clamped(0, 0)
    return compile_pipeline(inverted, N, vectorize=vectorize)


def reference_numpy(image: np.ndarray) -> np.ndarray:
    x = np.maximum(image.astype(np.float32) - np.float32(BLACKLEVEL),
                   np.float32(0.0))
    x = x * np.float32(BRIGHTNESS)
    x = np.clip(x, np.float32(0.0), np.float32(1.0))
    return np.float32(1.0) - x
