"""The 2-D real-time fluid simulation — paper §6.2 / Figure 8 (top).

    "We also implemented a simple real-time 2D fluid simulation based on
    an existing C implementation [Stam, GDC 2003].  We converted the
    solver from Gauss-Seidel to Gauss-Jacobi so that images are not
    modified in place and use a zero boundary condition. ... the fluid
    simulation that we ported included a semi-Lagrangian advection step,
    which is not a stencil computation.  In this case, we were able to
    allow the user to pass a Terra function to do the necessary
    computation, and easily integrate this code with generated Terra
    code."

Two implementations with identical numerics:

* :func:`make_c_fluid` — the hand-written C reference (compiled with the
  same gcc flags as generated Terra code);
* :func:`make_orion_fluid` — diffuse and project as Orion pipelines
  (schedulable: scalar / vectorized / line-buffered), advection as a plain
  Terra function interleaved with the generated stencil code.

Both operate on velocity fields (u, v) and a density field d over an N×N
grid with zero boundaries, running Stam's step:
``diffuse(u) diffuse(v) → project → advect(u,v,d) → project``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import terra
from ..bench.cbaseline import compile_c
from ..orion import lang as L
from ..orion.compile import compile_pipeline

DIFFUSE_ITERS = 10
PROJECT_ITERS = 10


@dataclass
class FluidParams:
    N: int
    dt: float = 0.1
    diff: float = 0.0001
    visc: float = 0.0001
    diffuse_iters: int = DIFFUSE_ITERS
    project_iters: int = PROJECT_ITERS


# ===========================================================================
# Orion pipelines
# ===========================================================================

def _jacobi_chain(x0: L.Stage, a: float, iters: int,
                  linebuffer: bool) -> L.Stage:
    """``x_{i+1} = (x0 + a*(x_i(-1,0)+x_i(1,0)+x_i(0,-1)+x_i(0,1)))/(1+4a)``
    starting from x_0 = x0 — the paper's diffuse kernel (Figure 7)."""
    x = x0
    for i in range(iters):
        nxt = (x0 + a * (x(-1, 0) + x(1, 0) + x(0, -1) + x(0, 1))) / (1 + 4 * a)
        policy = None
        if linebuffer and i % 2 == 0 and i != iters - 1:
            # "line buffering pairs of the iterations of the diffuse and
            # project kernels" — every odd stage fuses into the next
            policy = L.LINEBUFFER
        x = L.stage(nxt, f"jac{i}", policy=policy, bounded=True)
    return x


def _advect_terra(chunked: bool = False):
    """Semi-Lagrangian advection as a plain Terra function (not a stencil):
    trace velocity backwards, bilinearly sample.  With ``chunked=True``
    the C backend also emits a chunked entry so rows can be dispatched
    across workers (each output row is independent)."""
    fn = _make_advect()
    if chunked:
        fn.mark_chunked()
    return fn


def _make_advect():
    return terra("""
    terra advect(dst : &float, src : &float, u : &float, v : &float,
                 N : int, W : int, P : int, dt : float) : {}
      var dt0 = dt * [float](N)
      for i = 0, N do
        for j = 0, N do
          var idx = i * W + P + j
          var x = [float](j) - dt0 * u[idx]
          var y = [float](i) - dt0 * v[idx]
          if x < 0.0f then x = 0.0f end
          if x > [float](N) - 1.001f then x = [float](N) - 1.001f end
          if y < 0.0f then y = 0.0f end
          if y > [float](N) - 1.001f then y = [float](N) - 1.001f end
          var j0 = [int](x)
          var i0 = [int](y)
          var sx = x - [float](j0)
          var sy = y - [float](i0)
          var r0 = src[i0 * W + P + j0]
          var r1 = src[i0 * W + P + j0 + 1]
          var r2 = src[(i0 + 1) * W + P + j0]
          var r3 = src[(i0 + 1) * W + P + j0 + 1]
          dst[idx] = (1.0f - sy) * ((1.0f - sx) * r0 + sx * r1)
                   + sy * ((1.0f - sx) * r2 + sx * r3)
        end
      end
    end
    """)


class OrionFluid:
    """The Orion/Terra fluid solver with a schedulable stencil core."""

    def __init__(self, params: FluidParams, vectorize: int = 0,
                 linebuffer: bool = False, parallel=None):
        from ..orion.compile import _resolve_parallel
        self.params = params
        N = params.N
        self.N = N
        p = params
        # effective worker count; <= 1 compiles the exact serial solver
        # (byte-identical generated code, no chunked entries)
        self._nt = _resolve_parallel(parallel)
        par = self._nt if self._nt > 1 else None

        a_visc = p.dt * p.visc * N * N
        a_diff = p.dt * p.diff * N * N

        x0 = L.image("x0")
        self.diffuse_visc = compile_pipeline(
            _jacobi_chain(x0, a_visc, p.diffuse_iters, linebuffer), N,
            vectorize=vectorize, parallel=par)
        x0d = L.image("x0")
        self.diffuse_diff = compile_pipeline(
            _jacobi_chain(x0d, a_diff, p.diffuse_iters, linebuffer), N,
            vectorize=vectorize, parallel=par)

        # projection — ONE fused multi-output pipeline: divergence,
        # pressure Jacobi chain, and both gradient subtractions
        u_in, v_in = L.image("u"), L.image("v")
        h = 1.0 / N
        div = L.stage(
            -0.5 * h * (u_in(1, 0) - u_in(-1, 0) + v_in(0, 1) - v_in(0, -1)),
            "div", bounded=True)
        pstage = L.stage(div(0, 0) * 0.25, "p0", bounded=True)
        for i in range(p.project_iters - 1):
            nxt = (div(0, 0) + pstage(-1, 0) + pstage(1, 0)
                   + pstage(0, -1) + pstage(0, 1)) * 0.25
            policy = L.LINEBUFFER if (linebuffer and i % 2 == 0
                                      and i != p.project_iters - 2) else None
            pstage = L.stage(nxt, f"p{i+1}", policy=policy, bounded=True)
        u_out = u_in(0, 0) - 0.5 * N * (pstage(1, 0) - pstage(-1, 0))
        v_out = v_in(0, 0) - 0.5 * N * (pstage(0, 1) - pstage(0, -1))
        self.project_pipe = compile_pipeline([u_out, v_out], N,
                                             vectorize=vectorize,
                                             parallel=par)

        self.advect = _advect_terra(chunked=self._nt > 1)

        # every pipeline shares geometry (P=1 footprint), so buffers are
        # interchangeable as long as W matches
        self.P = self.project_pipe.P
        self.W = self.project_pipe.W
        for pipe in (self.diffuse_visc, self.diffuse_diff):
            assert pipe.W == self.W and pipe.P == self.P

        z = lambda: np.zeros((N, self.W), dtype=np.float32)  # noqa: E731
        self.u, self.v, self.d = z(), z(), z()
        self._u1, self._v1, self._d1 = z(), z(), z()

    # -- state ------------------------------------------------------------------
    def set_state(self, u, v, d) -> None:
        P, N = self.P, self.N
        for buf, arr in ((self.u, u), (self.v, v), (self.d, d)):
            buf[:, :] = 0
            buf[:, P:P + N] = arr

    def get_state(self):
        P, N = self.P, self.N
        return (self.u[:, P:P + N].copy(), self.v[:, P:P + N].copy(),
                self.d[:, P:P + N].copy())

    # -- one solver step ------------------------------------------------------------
    def _advect_into(self, dst, src, u, v) -> None:
        p = self.params
        N, W, P = self.N, self.W, self.P
        if self._nt > 1:
            # rows are independent: chunk the outer i loop across workers
            from ..parallel import parallel_for
            parallel_for(self.advect, 0, N, dst, src, u, v, N, W, P, p.dt,
                         nthreads=self._nt)
        else:
            self.advect(dst, src, u, v, N, W, P, p.dt)

    def step(self) -> None:
        # diffuse velocities (CompiledStencil.__call__ dispatches worker
        # strips for parallel schedules, calls the Terra function for
        # serial ones)
        self.diffuse_visc(self._u1, self.u)
        self.diffuse_visc(self._v1, self.v)
        self.u, self._u1 = self._u1, self.u
        self.v, self._v1 = self._v1, self.v
        # project (one fused multi-output pipeline)
        self.project_pipe(self._u1, self._v1, self.u, self.v)
        self.u, self._u1 = self._u1, self.u
        self.v, self._v1 = self._v1, self.v
        # advect velocities and density (semi-Lagrangian Terra function)
        self._advect_into(self._u1, self.u, self.u, self.v)
        self._advect_into(self._v1, self.v, self.u, self.v)
        self.u, self._u1 = self._u1, self.u
        self.v, self._v1 = self._v1, self.v
        # final projection
        self.project_pipe(self._u1, self._v1, self.u, self.v)
        self.u, self._u1 = self._u1, self.u
        self.v, self._v1 = self._v1, self.v
        # density: diffuse then advect
        self.diffuse_diff(self._d1, self.d)
        self.d, self._d1 = self._d1, self.d
        self._advect_into(self._d1, self.d, self.u, self.v)
        self.d, self._d1 = self._d1, self.d


def make_orion_fluid(params: FluidParams, vectorize: int = 0,
                     linebuffer: bool = False, parallel=None) -> OrionFluid:
    return OrionFluid(params, vectorize, linebuffer, parallel)


# ===========================================================================
# the hand-written C reference
# ===========================================================================

_C_SOURCE_TEMPLATE = r"""
#include <string.h>

/* Buffers are (N+2) x W with one zero row above/below and a zero column
 * left/right, so the zero boundary needs no branches in the inner loops —
 * the same technique the Orion-generated code uses. */
#define N {N}
#define P 1
#define W (P + N + P + 1)
#define ROWS (N + 2)
#define BYTES (ROWS * W * 4)
#define IX(i, j) (((i) + 1) * W + P + (j))

static void jacobi(float *x, const float *x0, float a, float c, int iters) {{
    /* Gauss-Jacobi with a zero boundary; ping-pongs two scratch buffers
     * (the SWAP idiom of the original Stam solver) */
    static float bufA[ROWS * W], bufB[ROWS * W];
    static int initialized = 0;
    if (!initialized) {{ memset(bufA, 0, BYTES); memset(bufB, 0, BYTES);
                         initialized = 1; }}
    const float *src = x0;
    float *dst = bufA;
    for (int k = 0; k < iters; k++) {{
        if (k == iters - 1) dst = x;  /* final iteration writes the output */
        for (int i = 0; i < N; i++) {{
            for (int j = 0; j < N; j++) {{
                dst[IX(i, j)] = (x0[IX(i, j)]
                    + a * (src[IX(i, j - 1)] + src[IX(i, j + 1)]
                         + src[IX(i - 1, j)] + src[IX(i + 1, j)])) / c;
            }}
        }}
        src = dst;
        dst = (dst == bufA) ? bufB : bufA;
    }}
    if (iters == 0) memcpy(x, x0, BYTES);
}}

static void project(float *u, float *v, float *p, float *div, int iters) {{
    float h = 1.0f / N;
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            div[IX(i, j)] = -0.5f * h * (u[IX(i, j + 1)] - u[IX(i, j - 1)]
                                       + v[IX(i + 1, j)] - v[IX(i - 1, j)]);
    /* pressure Jacobi from p=0, ping-ponged like diffuse */
    static float bufA[ROWS * W], bufB[ROWS * W];
    static int initialized = 0;
    if (!initialized) {{ memset(bufA, 0, BYTES); memset(bufB, 0, BYTES);
                         initialized = 1; }}
    float *src = (iters == 1) ? p : bufA;
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            src[IX(i, j)] = div[IX(i, j)] * 0.25f;
    float *dst = (src == bufA) ? bufB : bufA;
    for (int k = 0; k < iters - 1; k++) {{
        if (k == iters - 2) dst = p;
        for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
                dst[IX(i, j)] = (div[IX(i, j)]
                    + src[IX(i, j - 1)] + src[IX(i, j + 1)]
                    + src[IX(i - 1, j)] + src[IX(i + 1, j)]) * 0.25f;
        src = dst;
        dst = (dst == bufA) ? bufB : bufA;
    }}
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {{
            u[IX(i, j)] -= 0.5f * N * (p[IX(i, j + 1)] - p[IX(i, j - 1)]);
            v[IX(i, j)] -= 0.5f * N * (p[IX(i + 1, j)] - p[IX(i - 1, j)]);
        }}
}}

static void advect(float *dst, const float *src, const float *u,
                   const float *v, float dt) {{
    float dt0 = dt * N;
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {{
            float x = j - dt0 * u[IX(i, j)];
            float y = i - dt0 * v[IX(i, j)];
            if (x < 0.0f) x = 0.0f;
            if (x > N - 1.001f) x = N - 1.001f;
            if (y < 0.0f) y = 0.0f;
            if (y > N - 1.001f) y = N - 1.001f;
            int j0 = (int)x, i0 = (int)y;
            float sx = x - j0, sy = y - i0;
            float r0 = src[IX(i0, j0)], r1 = src[IX(i0, j0 + 1)];
            float r2 = src[IX(i0 + 1, j0)], r3 = src[IX(i0 + 1, j0 + 1)];
            dst[IX(i, j)] = (1.0f - sy) * ((1.0f - sx) * r0 + sx * r1)
                          + sy * ((1.0f - sx) * r2 + sx * r3);
        }}
}}

#define SWAP(a, b) do {{ float *_t = (a); (a) = (b); (b) = _t; }} while (0)

void fluid_step(float *u, float *v, float *d, float *u1, float *v1,
                float *d1, float *p, float *div, float dt, float diff,
                float visc, int diffuse_iters, int project_iters) {{
    /* pointer-swapping step in the style of the original Stam solver;
     * final results are copied back into (u, v, d) once at the end */
    float *cu = u, *cu1 = u1, *cv = v, *cv1 = v1, *cd = d, *cd1 = d1;
    float a_visc = dt * visc * N * N;
    float a_diff = dt * diff * N * N;
    jacobi(cu1, cu, a_visc, 1.0f + 4.0f * a_visc, diffuse_iters);
    jacobi(cv1, cv, a_visc, 1.0f + 4.0f * a_visc, diffuse_iters);
    SWAP(cu, cu1); SWAP(cv, cv1);
    project(cu, cv, p, div, project_iters);
    advect(cu1, cu, cu, cv, dt);
    advect(cv1, cv, cu, cv, dt);
    SWAP(cu, cu1); SWAP(cv, cv1);
    project(cu, cv, p, div, project_iters);
    jacobi(cd1, cd, a_diff, 1.0f + 4.0f * a_diff, diffuse_iters);
    SWAP(cd, cd1);
    advect(cd1, cd, cu, cv, dt);
    SWAP(cd, cd1);
    if (cu != u) memcpy(u, cu, BYTES);
    if (cv != v) memcpy(v, cv, BYTES);
    if (cd != d) memcpy(d, cd, BYTES);
}}
"""


class CFluid:
    """The hand-written C reference solver (paper's baseline)."""

    def __init__(self, params: FluidParams, flags: tuple[str, ...] = ()):
        self.params = params
        N = params.N
        self.N = N
        self.P = 1
        self.W = 1 + N + 1 + 1
        source = _C_SOURCE_TEMPLATE.format(N=N)
        self.lib = compile_c(source, {
            "fluid_step": (["ptr"] * 8 + ["float", "float", "float",
                                          "int", "int"], "void"),
        }, flags=flags)
        # (N+2) x W: one zero pad row above and below
        z = lambda: np.zeros((N + 2, self.W), dtype=np.float32)  # noqa: E731
        self.u, self.v, self.d = z(), z(), z()
        self._u1, self._v1, self._d1 = z(), z(), z()
        self._p, self._div = z(), z()

    def set_state(self, u, v, d) -> None:
        P, N = self.P, self.N
        for buf, arr in ((self.u, u), (self.v, v), (self.d, d)):
            buf[:, :] = 0
            buf[1:N + 1, P:P + N] = arr

    def get_state(self):
        P, N = self.P, self.N
        return (self.u[1:N + 1, P:P + N].copy(),
                self.v[1:N + 1, P:P + N].copy(),
                self.d[1:N + 1, P:P + N].copy())

    def step(self) -> None:
        p = self.params
        self.lib.fluid_step(self.u, self.v, self.d, self._u1, self._v1,
                            self._d1, self._p, self._div, p.dt, p.diff,
                            p.visc, p.diffuse_iters, p.project_iters)


def make_c_fluid(params: FluidParams, flags: tuple[str, ...] = ()) -> CFluid:
    return CFluid(params, flags)


def initial_conditions(N: int, seed: int = 0):
    """A smooth random initial state shared by correctness tests."""
    rng = np.random.RandomState(seed)
    yy, xx = np.mgrid[0:N, 0:N].astype(np.float32) / N
    u = (np.sin(2 * np.pi * yy) * 0.1 + rng.randn(N, N) * 0.001).astype(np.float32)
    v = (np.cos(2 * np.pi * xx) * 0.1 + rng.randn(N, N) * 0.001).astype(np.float32)
    d = np.exp(-((xx - 0.5) ** 2 + (yy - 0.5) ** 2) * 40).astype(np.float32)
    return u, v, d
