"""int8 → float32 dequantize-GEMM — a tile-schedule workload family.

Weight-quantized matmul ``C = A · dequant(B)`` with row-major float32
``A (n×kk)``, int8 ``B (kk×m)``, one float32 ``scale``, and float32
``C (n×m)`` (caller-zeroed).  The naive kernel is the natural
triple-loop dot product (the same shape as ``autotune.naive_matmul``):

    for i: for j: for k:  sum += a[i,k] * (scale * float(b[k,j]))

— a scalar float reduction over stride-``m`` int8 loads that neither
gcc (no reassociation without fast-math) nor our vectorizer (float
reduction) can vectorize, with ``n·kk·m`` per-access conversions.

Any non-empty schedule restages to the schedulable i→k→j traversal
(axis ``j`` innermost and unit-stride), which accumulates each element
in the *same k order* — bit-identical, including the leading ``0 +``
term.  ``Pack("b", "panel")`` is consumed by this builder (not the
generic lowering): B is dequantized *once* into a contiguous float32
scratch panel (``kk·m`` conversions) before the compute loops run; both
variants round ``scale * float(b)`` to float32 first, so packing never
changes results either.

Axes of the restaged form: ``i`` rows (Block/Unroll/Parallel), ``k``
depth (Block/Unroll), ``j`` columns (Vectorize — innermost), and in the
packed variant ``kp``/``jp`` for the dequant pass (``jp`` vectorizes).
"""

from __future__ import annotations

import numpy as np

from .. import includec, terra
from ..schedule import (Block, Pack, Parallel, Schedule, Unroll, Vectorize,
                        apply)


def make_dequant_gemm(schedule=None):
    """Build ``dqgemm(n, m, kk, a, b, scale, c)``; ``schedule`` may
    contain ``Pack("b", "panel")`` (consumed here) plus any generic
    directives over the axes in the module docstring."""
    schedule = schedule or Schedule([])
    packs, rest = schedule.partition(lambda d: isinstance(d, Pack))
    for p in packs:
        if p.operand != "b":
            raise p._bad("only operand 'b' (the int8 matrix) can be "
                         "packed in this kernel")
    if packs:
        std = includec("stdlib.h")
        fn = terra("""
        terra dqgemm(n : int64, m : int64, kk : int64, a : &float,
                     b : &int8, scale : float, c : &float) : {}
          var db = [&float](std.malloc(kk * m * sizeof(float)))
          for kp = 0, kk do
            var brow = b + kp * m
            var drow = db + kp * m
            for jp = 0, m do drow[jp] = scale * [float](brow[jp]) end
          end
          for i = 0, n do
            var crow = c + i * m
            for k = 0, kk do
              var aik = a[i * kk + k]
              var drow = db + k * m
              for j = 0, m do
                crow[j] = crow[j] + aik * drow[j]
              end
            end
          end
          std.free(db)
        end
        """, env=dict(std=std))
    elif schedule:
        fn = terra("""
        terra dqgemm(n : int64, m : int64, kk : int64, a : &float,
                     b : &int8, scale : float, c : &float) : {}
          for i = 0, n do
            var crow = c + i * m
            for k = 0, kk do
              var aik = a[i * kk + k]
              var brow = b + k * m
              for j = 0, m do
                crow[j] = crow[j] + aik * (scale * [float](brow[j]))
              end
            end
          end
        end
        """)
    else:
        return terra("""
        terra dqgemm(n : int64, m : int64, kk : int64, a : &float,
                     b : &int8, scale : float, c : &float) : {}
          for i = 0, n do
            for j = 0, m do
              var sum = 0.0f
              for k = 0, kk do
                sum = sum + a[i * kk + k] * (scale * [float](b[k * m + j]))
              end
              c[i * m + j] = sum
            end
          end
        end
        """)
    if rest:
        return apply(fn, rest)
    return fn


def reference(a: np.ndarray, b: np.ndarray, scale: float) -> np.ndarray:
    """float64 numpy reference (sanity bounds, not bit-identity)."""
    db = np.float64(np.float32(scale)) * b.astype(np.float64)
    return a.astype(np.float64) @ db


def schedule_points() -> list[Schedule]:
    return [
        Schedule([Vectorize("j", 8)]),
        Schedule([Block("k", 64), Vectorize("j", 8)]),
        Schedule([Pack("b", "panel")]),
        Schedule([Pack("b", "panel"), Vectorize("j", 8),
                  Vectorize("jp", 8)]),
        Schedule([Pack("b", "panel"), Block("i", 32), Unroll("k", 2),
                  Vectorize("j", 8), Vectorize("jp", 8)]),
        # Parallel needs the row loop as the kernel's *final* top-level
        # statement — true of the naive form (the packed form ends with
        # the scratch free), so the parallel point rides the naive body
        Schedule([Vectorize("j", 8), Parallel("i")]),
    ]
