"""FlashAttention-style fused attention — a tile-schedule workload family.

Single-head scaled-dot-product attention ``O = softmax(Q Kᵀ) V`` computed
in one pass with *online rescaling* (the FlashAttention recurrence): for
each query row the key loop maintains the running row maximum ``m``, the
running normalizer ``l``, and the unnormalized output row — every new
key rescales the accumulated state by ``exp(m_old - m_new)`` — so the
N×N score matrix is never materialized.

The staged kernel exposes named axes to :mod:`repro.schedule`:

========  =========================================================
``i``     query rows (``Block`` / ``Unroll`` / ``Parallel``)
``j``     keys (``Unroll`` — carries the softmax state, no reorder)
``d``     the q·k dot product (float reduction — **not** vectorizable)
``dz``    output-row zeroing (``Vectorize``)
``dv``    the output-row update/rescale (``Vectorize``)
``dn``    the final 1/l normalization (``Vectorize``)
========  =========================================================

Every legal point is bit-identical to the naive kernel: Block/Unroll/
Parallel preserve per-element arithmetic order exactly, and Vectorize on
the elementwise ``dz``/``dv``/``dn`` axes performs the same scalar
operations per lane.
"""

from __future__ import annotations

import numpy as np

from .. import constant, float_, includec, terra
from ..schedule import Block, Parallel, Schedule, Unroll, Vectorize, apply

mathh = includec("math.h")

#: softmax state starts at an effective -inf row maximum
_NEG_BIG = -1e30


def make_attention(D: int = 64, schedule=None):
    """Build ``attn(n, q, k, v, o)`` over row-major ``n×D`` float32
    matrices (``o`` need not be initialized).  ``schedule`` is a
    :class:`~repro.schedule.Schedule` over the axes in the module
    docstring; None or an empty schedule is the naive kernel."""
    fn = terra("""
    terra attn(n : int64, q : &float, k : &float, v : &float,
               o : &float) : {}
      for i = 0, n do
        var qrow = q + i * D
        var orow = o + i * D
        for dz = 0, D do orow[dz] = 0.0f end
        var m = [negbig]
        var l = 0.0f
        for j = 0, n do
          var krow = k + j * D
          var s = 0.0f
          for d = 0, D do s = s + qrow[d] * krow[d] end
          var mnew = m
          if s > mnew then mnew = s end
          var corr = mathh.expf(m - mnew)
          var p = mathh.expf(s - mnew)
          var vrow = v + j * D
          for dv = 0, D do
            orow[dv] = orow[dv] * corr + p * vrow[dv]
          end
          l = l * corr + p
          m = mnew
        end
        var inv = 1.0f / l
        for dn = 0, D do orow[dn] = orow[dn] * inv end
      end
    end
    """, env=dict(D=D, mathh=mathh, negbig=constant(float_, _NEG_BIG)))
    if schedule:
        return apply(fn, schedule)
    return fn


def reference(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
    """float64 numpy reference (for sanity bounds, not bit-identity)."""
    s = q.astype(np.float64) @ k.astype(np.float64).T
    s -= s.max(axis=1, keepdims=True)
    p = np.exp(s)
    p /= p.sum(axis=1, keepdims=True)
    return p @ v.astype(np.float64)


def schedule_points(D: int = 64) -> list[Schedule]:
    """The legal schedule points the differential suite and the ablation
    benchmark sweep (the naive point is ``Schedule([])``)."""
    return [
        Schedule([Block("i", 8)]),
        Schedule([Unroll("j", 2)]),
        Schedule([Vectorize("dv", 8)]),
        Schedule([Vectorize("dz", 8), Vectorize("dv", 8),
                  Vectorize("dn", 8)]),
        Schedule([Block("i", 8), Unroll("j", 2), Vectorize("dv", 8),
                  Vectorize("dn", 8)]),
        Schedule([Vectorize("dv", 8), Parallel("i")]),
    ]
