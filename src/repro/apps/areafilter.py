"""The separable 5×5 area filter — paper §6.2 / Figure 8 (bottom).

    "The area filter is a common image processing operation that averages
    the pixels in a 5x5 window.  Area filtering is separable, so it is
    normally implemented as a 1-D area filter first in Y then in X."

Orion expresses it as a two-stage pipeline (Y pass then X pass); the
schedule then chooses whether the Y pass is materialized (the C
reference's structure), vectorized, or line-buffered into the X pass.
"""

from __future__ import annotations

import numpy as np

from ..bench.cbaseline import compile_c
from ..orion import lang as L
from ..orion.compile import CompiledStencil, compile_pipeline


def build_area_filter(N: int, vectorize: int = 0,
                      linebuffer: bool = False) -> CompiledStencil:
    f = L.image("f")
    ypass = L.stage(
        (f(0, -2) + f(0, -1) + f(0, 0) + f(0, 1) + f(0, 2)) / 5.0, "ypass",
        policy=L.LINEBUFFER if linebuffer else None)
    out = (ypass(-2, 0) + ypass(-1, 0) + ypass(0, 0)
           + ypass(1, 0) + ypass(2, 0)) / 5.0
    return compile_pipeline(out, N, vectorize=vectorize)


_C_SOURCE = r"""
#include <string.h>

#define N {N}
#define P 2
#define W (P + N + P + 1)
#define ROWS (N + 4)
#define IX(i, j) (((i) + 2) * W + P + (j))

void area_filter(const float *src, float *dst) {{
    static float tmp[ROWS * W];
    static int initialized = 0;
    if (!initialized) {{ memset(tmp, 0, sizeof tmp); initialized = 1; }}
    /* Y pass */
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            tmp[IX(i, j)] = (src[IX(i - 2, j)] + src[IX(i - 1, j)]
                           + src[IX(i, j)] + src[IX(i + 1, j)]
                           + src[IX(i + 2, j)]) / 5.0f;
    /* X pass */
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            dst[IX(i, j)] = (tmp[IX(i, j - 2)] + tmp[IX(i, j - 1)]
                           + tmp[IX(i, j)] + tmp[IX(i, j + 1)]
                           + tmp[IX(i, j + 2)]) / 5.0f;
}}
"""


class CAreaFilter:
    """The hand-written C baseline: two materialized passes over padded
    branch-free buffers ((N+4) rows, zero boundary)."""

    def __init__(self, N: int, flags: tuple[str, ...] = ()):
        self.N = N
        self.P = 2
        self.W = 2 + N + 2 + 1
        self.lib = compile_c(_C_SOURCE.format(N=N),
                             {"area_filter": (["ptr", "ptr"], "void")},
                             flags=flags)

    def pad(self, array: np.ndarray) -> np.ndarray:
        N, P, W = self.N, self.P, self.W
        buf = np.zeros((N + 4, W), dtype=np.float32)
        buf[2:2 + N, P:P + N] = array
        return buf

    def alloc_out(self) -> np.ndarray:
        return np.zeros((self.N + 4, self.W), dtype=np.float32)

    def unpad(self, buf: np.ndarray) -> np.ndarray:
        N, P = self.N, self.P
        return buf[2:2 + N, P:P + N].copy()

    def run(self, image: np.ndarray) -> np.ndarray:
        src = self.pad(np.asarray(image, dtype=np.float32))
        dst = self.alloc_out()
        self.lib.area_filter(src, dst)
        return self.unpad(dst)

    def __call__(self, src_padded, dst_padded) -> None:
        self.lib.area_filter(src_padded, dst_padded)


def reference_numpy(image: np.ndarray) -> np.ndarray:
    """NumPy reference with zero boundary, for correctness checks."""
    N = image.shape[0]
    padded = np.zeros((N + 4, N + 4), dtype=np.float64)
    padded[2:-2, 2:-2] = image
    ypass = sum(padded[2 + dy:2 + dy + N, :] for dy in (-2, -1, 0, 1, 2)) / 5.0
    out = sum(ypass[:, 2 + dx:2 + dx + N] for dx in (-2, -1, 0, 1, 2)) / 5.0
    return out.astype(np.float32)
