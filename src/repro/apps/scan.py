"""Multi-stream inclusive scan — a tile-schedule workload family.

``R`` interleaved float32 streams, ``n`` time steps, time-major layout
``x[i*R + r]``: each stream's inclusive prefix sum
``out[i,r] = x[0,r] + ... + x[i,r]``.

The naive kernel is the classic per-stream loop — streams outer, time
inner — whose inner loop is a loop-carried float accumulation over
stride-``R`` accesses: neither our vectorizer nor gcc can vectorize it.
Any non-empty schedule stages the *time-major* traversal instead — time
outer, streams inner — where the stream axis ``r`` is unit-stride and
independent, so it blocks, unrolls, and vectorizes:

    for i:  cur[r] = prev[r] + xi[r]   for every r   (axis "r" innermost)

Per element the adds are the same chain in the same order in both
traversals (stream ``r``'s sum never mixes with another stream's), so
every schedule point is bit-identical to the naive kernel.  Axes:
``i`` time (Block), ``r`` streams (Unroll/Vectorize), ``r0`` the first
time step (Vectorize).
"""

from __future__ import annotations

import numpy as np

from .. import terra
from ..schedule import Block, Schedule, Unroll, Vectorize, apply


def make_scan(R: int = 64, schedule=None):
    """Build ``scan(n, x, out)`` over ``n×R`` time-major float32 arrays
    (``n >= 1``; ``out`` need not be initialized)."""
    if not schedule:
        return terra("""
        terra scan(n : int64, x : &float, out : &float) : {}
          if n < 1 then return end
          for r = 0, R do
            var acc = x[r]
            out[r] = acc
            for i = 1, n do
              acc = acc + x[i * R + r]
              out[i * R + r] = acc
            end
          end
        end
        """, env=dict(R=R))
    fn = terra("""
    terra scan(n : int64, x : &float, out : &float) : {}
      if n < 1 then return end
      for r0 = 0, R do out[r0] = x[r0] end
      for i = 1, n do
        var prev = out + (i - 1) * R
        var cur = out + i * R
        var xi = x + i * R
        for r = 0, R do cur[r] = prev[r] + xi[r] end
      end
    end
    """, env=dict(R=R))
    return apply(fn, schedule)


def reference(x: np.ndarray) -> np.ndarray:
    """float64 numpy reference over the ``(n, R)`` view."""
    return np.cumsum(x.astype(np.float64), axis=0)


def schedule_points(R: int = 64) -> list[Schedule]:
    return [
        Schedule([Unroll("r", 4)]),
        Schedule([Vectorize("r", 8)]),
        Schedule([Vectorize("r0", 8), Vectorize("r", 8)]),
        Schedule([Block("i", 256), Vectorize("r", 8)]),
        Schedule([Block("r", 16)]),
    ]
