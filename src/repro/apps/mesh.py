"""Mesh micro-benchmarks over DataTable — paper §6.3.2 / Figure 9.

    "We implemented two micro-benchmarks based on mesh processing.  Each
    vertex of the mesh stores its position, and the vector normal to the
    surface at that position.  The first benchmark calculates the vector
    normal as the average normal of the faces incident to the vertex.
    The second simply performs a translation on the position of every
    vertex."

Both kernels are written *once* against the DataTable row interface; the
layout (AoS vs SoA) is chosen by a single argument, which is the paper's
point.  Expected shape: the gather-heavy normals kernel favours AoS
(spatial locality of whole vertices), the streaming translate favours SoA
(no wasted bandwidth on normals).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import float_, int32, terra
from ..lib.datatable import DataTable

VERTEX_FIELDS = {"px": float_, "py": float_, "pz": float_,
                 "nx": float_, "ny": float_, "nz": float_}


@dataclass
class MeshKernels:
    layout: str
    table_type: object
    ns: object             # the Namespace of all generated Terra functions
    alloc: object          # () -> &Vertex (heap-allocated, init'd later)
    init: object           # (&Vertex, n) -> {}
    release: object        # (&Vertex) -> {}  (frees storage and the table)
    fill: object
    readback: object
    calc_normals: object
    translate: object


def build_mesh_kernels(layout: str) -> MeshKernels:
    """Build the vertex table type and the two Figure-9 kernels."""
    Vertex = DataTable(dict(VERTEX_FIELDS), layout)

    from .. import includec
    env = {"Vertex": Vertex, "std": includec("stdlib.h")}
    ns = terra("""
    terra fill(t : &Vertex, pos : &float, n : int64) : {}
      for i = 0, n do
        var r = t:row(i)
        r:setpx(pos[i * 3 + 0])
        r:setpy(pos[i * 3 + 1])
        r:setpz(pos[i * 3 + 2])
        r:setnx(0.0f) r:setny(0.0f) r:setnz(0.0f)
      end
    end

    terra readback(t : &Vertex, pos : &float, nrm : &float, n : int64) : {}
      for i = 0, n do
        var r = t:row(i)
        pos[i * 3 + 0] = r:px()
        pos[i * 3 + 1] = r:py()
        pos[i * 3 + 2] = r:pz()
        nrm[i * 3 + 0] = r:nx()
        nrm[i * 3 + 1] = r:ny()
        nrm[i * 3 + 2] = r:nz()
      end
    end

    -- Figure 9, benchmark 1: accumulate face normals onto vertices
    terra calc_normals(t : &Vertex, tris : &int32, ntris : int64) : {}
      for k = 0, ntris do
        var i0 = tris[k * 3 + 0]
        var i1 = tris[k * 3 + 1]
        var i2 = tris[k * 3 + 2]
        var a = t:row(i0)
        var b = t:row(i1)
        var c = t:row(i2)
        var e1x = b:px() - a:px()
        var e1y = b:py() - a:py()
        var e1z = b:pz() - a:pz()
        var e2x = c:px() - a:px()
        var e2y = c:py() - a:py()
        var e2z = c:pz() - a:pz()
        var fx = e1y * e2z - e1z * e2y
        var fy = e1z * e2x - e1x * e2z
        var fz = e1x * e2y - e1y * e2x
        a:setnx(a:nx() + fx) a:setny(a:ny() + fy) a:setnz(a:nz() + fz)
        b:setnx(b:nx() + fx) b:setny(b:ny() + fy) b:setnz(b:nz() + fz)
        c:setnx(c:nx() + fx) c:setny(c:ny() + fy) c:setnz(c:nz() + fz)
      end
    end

    -- Figure 9, benchmark 2: translate every vertex position
    terra translate(t : &Vertex, dx : float, dy : float, dz : float,
                    n : int64) : {}
      for i = 0, n do
        var r = t:row(i)
        r:setpx(r:px() + dx)
        r:setpy(r:py() + dy)
        r:setpz(r:pz() + dz)
      end
    end

    terra alloc(n : int64) : &Vertex
      var t = [&Vertex](std.malloc(sizeof(Vertex)))
      t:init(n)
      return t
    end

    terra release(t : &Vertex) : {}
      t:free()
      std.free(t)
    end

    terra tinit(t : &Vertex, n : int64) : {}
      t:init(n)
    end
    """, env=env)
    return MeshKernels(layout, Vertex, ns, ns["alloc"], ns["tinit"],
                       ns["release"], ns["fill"], ns["readback"],
                       ns["calc_normals"], ns["translate"])


def random_mesh(nverts: int, ntris: int, seed: int = 0):
    """A synthetic mesh with *randomized* triangle order, reproducing the
    paper's low-temporal-locality vertex access pattern."""
    rng = np.random.RandomState(seed)
    positions = rng.rand(nverts, 3).astype(np.float32)
    tris = rng.randint(0, nverts, size=(ntris, 3)).astype(np.int32)
    return positions, tris


def normals_reference(positions: np.ndarray, tris: np.ndarray) -> np.ndarray:
    """NumPy float32 reference for calc_normals (same accumulation order
    is not guaranteed, so compare with a tolerance)."""
    p = positions.astype(np.float32)
    normals = np.zeros_like(p)
    e1 = p[tris[:, 1]] - p[tris[:, 0]]
    e2 = p[tris[:, 2]] - p[tris[:, 0]]
    face = np.cross(e1, e2).astype(np.float32)
    for col in range(3):
        np.add.at(normals, tris[:, col], face)
    return normals
