"""The content-addressed artifact cache.

Compiled shared objects are stored under a cache root (``REPRO_TERRA_CACHE``
or ``$TMPDIR/repro-terra-<uid>``) keyed by SHA-256 of the *full build
input*: the C source, every compiler flag, and the compiler's identity
hash (path + ``--version`` — see :mod:`repro.buildd.toolchain`).  Identical
code never rebuilds, and a compiler upgrade can never serve stale objects.

Publication is atomic and race-free across processes: builders write to a
``tempfile.mkstemp`` unique name in the cache root and ``os.replace`` it
over the final path, so a concurrent reader sees either nothing or a
complete artifact — never a half-written one.  (The pre-buildd runtime
wrote a *shared* ``<path>.tmp`` name, which two racing processes could
interleave; that race is gone by construction.)

A JSON index (``buildd-index.json``) records per-artifact metadata (size,
flags, compile time, last use) and drives LRU eviction against a byte cap
(``REPRO_BUILDD_CACHE_BYTES``, default 1 GiB).  The index is advisory: if
it is missing, stale, or corrupted, it is rebuilt by scanning the cache
directory, so a pre-populated or damaged cache dir degrades to a rebuild,
never to an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from typing import Iterable, Optional

DEFAULT_MAX_BYTES = 1 << 30  # 1 GiB
INDEX_NAME = "buildd-index.json"
INDEX_VERSION = 1

#: A temp file younger than this is assumed to belong to an in-flight
#: build (possibly in another process) and is left alone by :meth:`gc`.
DEFAULT_TEMP_TTL_S = 3600.0

#: length of the hex key used in artifact file names (matches the
#: pre-buildd runtime so old cache dirs stay recognizable)
KEY_LEN = 24


def default_root() -> str:
    base = os.environ.get("REPRO_TERRA_CACHE")
    if base is None:
        uid = os.getuid() if hasattr(os, "getuid") else 0
        base = os.path.join(tempfile.gettempdir(), f"repro-terra-{uid}")
    return base


def default_max_bytes() -> int:
    raw = os.environ.get("REPRO_BUILDD_CACHE_BYTES")
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_MAX_BYTES


def default_max_entries() -> int:
    """Entry-count cap (``REPRO_BUILDD_CACHE_ENTRIES``); 0 = unbounded."""
    raw = os.environ.get("REPRO_BUILDD_CACHE_ENTRIES")
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return 0


class ArtifactCache:
    """Content-addressed store of compiled shared objects."""

    #: throttle for persisting pure-hit ``last_use`` bumps: save at most
    #: every this many seconds ...
    HIT_SAVE_INTERVAL_S = 5.0
    #: ... unless this many bumps are already pending.
    HIT_SAVE_MAX_PENDING = 64

    def __init__(self, root: Optional[str] = None,
                 max_bytes: Optional[int] = None,
                 temp_ttl_s: Optional[float] = None,
                 max_entries: Optional[int] = None,
                 namespace_quota: Optional[int] = None) -> None:
        self.root = os.path.abspath(root or default_root())
        self.max_bytes = default_max_bytes() if max_bytes is None else max_bytes
        self.temp_ttl_s = DEFAULT_TEMP_TTL_S if temp_ttl_s is None \
            else temp_ttl_s
        #: entry-count LRU cap across all namespaces (0 = unbounded)
        self.max_entries = default_max_entries() if max_entries is None \
            else max(0, max_entries)
        #: per-namespace entry quota (0/None = unbounded); namespaces come
        #: from publish(..., namespace=...) — repro.serve passes tenant ids
        self.namespace_quota = 0 if namespace_quota is None \
            else max(0, namespace_quota)
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()
        self._index: Optional[dict] = None  # key -> metadata dict
        self._pending_hits = 0      # last_use bumps not yet on disk
        self._last_hit_save = 0.0   # monotonic-ish wall time of last save

    # -- keys and paths -----------------------------------------------------
    @staticmethod
    def key_for(source: str, flags: Iterable[str], cc_identity: str) -> str:
        h = hashlib.sha256()
        h.update(cc_identity.encode())
        h.update(b"\0")
        h.update("\0".join(flags).encode())
        h.update(b"\0\0")
        h.update(source.encode())
        return h.hexdigest()[:KEY_LEN]

    def artifact_path(self, key: str) -> str:
        return os.path.join(self.root, f"unit_{key}.so")

    def source_path(self, key: str) -> str:
        return os.path.join(self.root, f"unit_{key}.c")

    def _index_path(self) -> str:
        return os.path.join(self.root, INDEX_NAME)

    # -- index persistence --------------------------------------------------
    def _load_index_locked(self) -> dict:
        if self._index is not None:
            return self._index
        entries: dict = {}
        try:
            with open(self._index_path()) as f:
                data = json.load(f)
            if isinstance(data, dict) and isinstance(data.get("entries"), dict):
                entries = data["entries"]
        except (OSError, ValueError):
            entries = {}  # missing or corrupted: rebuild from the dir scan
        # adopt artifacts the index does not know about (pre-populated dir,
        # another process's builds, or a lost/corrupted index)
        try:
            names = os.listdir(self.root)
        except OSError:
            names = []
        for name in names:
            if not (name.startswith("unit_") and name.endswith(".so")):
                continue
            key = name[len("unit_"):-len(".so")]
            if key in entries:
                continue
            path = os.path.join(self.root, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries[key] = {"size": st.st_size, "flags": [],
                            "compile_s": None, "created": st.st_mtime,
                            "last_use": st.st_mtime}
        # drop index entries whose artifact vanished
        entries = {k: v for k, v in entries.items()
                   if os.path.exists(self.artifact_path(k))}
        self._index = entries
        return entries

    def _save_index_locked(self) -> None:
        assert self._index is not None
        payload = {"version": INDEX_VERSION, "entries": self._index}
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".index-")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, indent=0, sort_keys=True)
            os.replace(tmp, self._index_path())
            self._pending_hits = 0
            self._last_hit_save = time.time()
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- lookup / publish ---------------------------------------------------
    def lookup(self, key: str) -> Optional[str]:
        """Path of a cached artifact, or None.  Bumps the LRU clock.

        The bump is persisted (throttled — see :meth:`_maybe_save_hits_locked`)
        so that a warm-cache process, which never publishes, still refreshes
        ``last_use`` on disk; otherwise a later ``gc()`` in any process would
        LRU-evict the hottest artifacts as if they were never used.
        """
        path = self.artifact_path(key)
        with self._lock:
            entries = self._load_index_locked()
            if not os.path.exists(path):
                entries.pop(key, None)
                return None
            entry = entries.get(key)
            if entry is None:
                try:
                    size = os.path.getsize(path)
                except OSError:
                    return None
                entry = {"size": size, "flags": [], "compile_s": None,
                         "created": time.time()}
                entries[key] = entry
            entry["last_use"] = time.time()
            self._pending_hits += 1
            self._maybe_save_hits_locked()
            return path

    def _maybe_save_hits_locked(self) -> None:
        """Persist pending pure-hit ``last_use`` bumps, batched: the first
        bump after a load saves immediately, later ones at most every
        ``HIT_SAVE_INTERVAL_S`` seconds or ``HIT_SAVE_MAX_PENDING`` bumps."""
        if not self._pending_hits:
            return
        if (self._pending_hits >= self.HIT_SAVE_MAX_PENDING
                or time.time() - self._last_hit_save >= self.HIT_SAVE_INTERVAL_S):
            self._save_index_locked()

    def flush(self) -> None:
        """Persist any pending hit-path ``last_use`` bumps right now."""
        with self._lock:
            if self._index is not None and self._pending_hits:
                self._save_index_locked()

    def publish(self, key: str, built_path: str, *, source: str = "",
                flags: Iterable[str] = (),
                compile_s: Optional[float] = None,
                namespace: Optional[str] = None) -> str:
        """Atomically install ``built_path`` (a unique temp file, consumed)
        as the artifact for ``key``; returns the final path.

        ``namespace`` attributes the entry for the per-namespace quota
        (multi-tenant churn control); None files it under ``"default"``.
        """
        final = self.artifact_path(key)
        if source:
            self._write_atomic(self.source_path(key), source)
        # stat before the rename, and rename under the lock: once the final
        # name exists, a concurrent first-load dir scan would adopt it into
        # the index (with its temp-file mtime) where eviction could delete
        # it before *this* thread records the entry
        size = os.path.getsize(built_path)
        now = time.time()
        with self._lock:
            entries = self._load_index_locked()
            os.replace(built_path, final)
            entries[key] = {"size": size, "flags": list(flags),
                            "compile_s": compile_s, "created": now,
                            "last_use": now,
                            "ns": namespace or "default"}
            self._evict_locked()
            self._save_index_locked()
        return final

    def _write_atomic(self, path: str, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".src-")
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)

    def make_temp(self, suffix: str = ".so.tmp") -> str:
        """A unique closed temp file inside the cache root (same filesystem
        as the final path, so ``os.replace`` is atomic)."""
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".build-",
                                   suffix=suffix)
        os.close(fd)
        return tmp

    # -- eviction / maintenance ---------------------------------------------
    def _evict_locked(self) -> list[str]:
        """Apply every configured limit, oldest-``last_use`` first within
        each: per-namespace entry quotas, then the global entry-count cap,
        then the byte cap."""
        entries = self._load_index_locked()
        evicted: list[str] = []
        if self.namespace_quota > 0:
            by_ns: dict[str, list] = {}
            for key, entry in entries.items():
                by_ns.setdefault(entry.get("ns", "default"), []).append(key)
            for ns_keys in by_ns.values():
                over = len(ns_keys) - self.namespace_quota
                if over <= 0:
                    continue
                ns_keys.sort(key=lambda k: entries[k].get("last_use", 0.0))
                for key in ns_keys[:over]:
                    self._drop_locked(key, entries, evicted)
        if self.max_entries > 0 and len(entries) > self.max_entries:
            by_age = sorted(entries,
                            key=lambda k: entries[k].get("last_use", 0.0))
            for key in by_age[:len(entries) - self.max_entries]:
                self._drop_locked(key, entries, evicted)
        total = sum(e.get("size", 0) for e in entries.values())
        if self.max_bytes > 0 and total > self.max_bytes:
            by_age = sorted(entries.items(),
                            key=lambda kv: kv[1].get("last_use", 0.0))
            for key, entry in by_age:
                if total <= self.max_bytes:
                    break
                total -= entry.get("size", 0)
                self._drop_locked(key, entries, evicted)
        return evicted

    def _drop_locked(self, key: str, entries: dict,
                     evicted: list[str]) -> None:
        for path in (self.artifact_path(key), self.source_path(key)):
            try:
                os.unlink(path)
            except OSError:
                pass
        del entries[key]
        evicted.append(key)

    def gc(self) -> dict:
        """Evict over-cap artifacts, drop stale index entries, and delete
        *orphaned* temp files; returns a summary.

        A temp file younger than ``temp_ttl_s`` may belong to an in-flight
        build in this or another process — deleting it would make that
        build's ``os.replace`` publish fail with ENOENT — so only temps
        older than the threshold are treated as orphans.
        """
        removed_tmp = 0
        now = time.time()
        with self._lock:
            if self._index is not None and self._pending_hits:
                self._save_index_locked()  # don't drop unsaved LRU bumps
            self._index = None  # force a fresh scan
            entries = self._load_index_locked()
            evicted = self._evict_locked()
            for name in os.listdir(self.root):
                if name.startswith((".build-", ".src-", ".index-")) \
                        or name.endswith(".so.tmp"):
                    path = os.path.join(self.root, name)
                    try:
                        if now - os.stat(path).st_mtime < self.temp_ttl_s:
                            continue  # likely an in-flight build's temp
                        os.unlink(path)
                        removed_tmp += 1
                    except OSError:
                        pass
            self._save_index_locked()
            kept = len(entries)
        return {"evicted": len(evicted), "temp_files_removed": removed_tmp,
                "artifacts": kept}

    def clear(self) -> int:
        """Delete every cached artifact; returns how many were removed."""
        removed = 0
        with self._lock:
            self._index = None
            for name in os.listdir(self.root):
                if name == INDEX_NAME or name.startswith("unit_") \
                        or name.startswith((".build-", ".src-", ".index-")):
                    try:
                        os.unlink(os.path.join(self.root, name))
                        removed += 1
                    except OSError:
                        pass
            self._index = {}
            self._save_index_locked()
        return removed

    def summary(self) -> dict:
        with self._lock:
            entries = self._load_index_locked()
            total = sum(e.get("size", 0) for e in entries.values())
            namespaces: dict[str, int] = {}
            for e in entries.values():
                ns = e.get("ns", "default")
                namespaces[ns] = namespaces.get(ns, 0) + 1
            return {"root": self.root, "artifacts": len(entries),
                    "bytes_cached": total, "max_bytes": self.max_bytes,
                    "max_entries": self.max_entries,
                    "namespace_quota": self.namespace_quota,
                    "namespaces": namespaces}
