"""``python -m repro.buildd`` — inspect and maintain the artifact cache.

* ``--stats`` (default): print the cache and service configuration —
  compiler identity, cache root, artifact count, bytes cached vs. the cap,
  configured job count.  (Hit/miss counters are per-process, so a fresh
  CLI process reports zeros for them; they matter when queried in-process
  via ``repro.buildd.stats()``.)
* ``--gc``: evict artifacts beyond the size cap (LRU), drop stale index
  entries and orphaned temp files.
* ``--clear``: delete every cached artifact.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import get_service, stats


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.buildd",
        description="Inspect and maintain the Terra-repro compile cache.")
    group = ap.add_mutually_exclusive_group()
    group.add_argument("--stats", action="store_true",
                       help="print cache/service stats (default)")
    group.add_argument("--gc", action="store_true",
                       help="evict over-cap artifacts and stale entries")
    group.add_argument("--clear", action="store_true",
                       help="delete every cached artifact")
    ap.add_argument("--json", action="store_true",
                    help="machine-readable output")
    args = ap.parse_args(argv)

    svc = get_service()
    if args.clear:
        removed = svc.cache.clear()
        out = {"cleared": removed, "root": svc.cache.root}
    elif args.gc:
        out = svc.cache.gc()
        out["root"] = svc.cache.root
    else:
        out = stats()
        out.pop("recent_builds", None)

    if args.json:
        print(json.dumps(out, indent=2, sort_keys=True))
    else:
        width = max((len(k) for k in out), default=0)
        for key, value in out.items():
            print(f"{key:<{width}}  {value}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # output piped into a closed reader (e.g. `... --json | head`)
        sys.exit(0)
