"""Compile telemetry for the buildd service.

Every native-code production in the process flows through one
:class:`BuildStats` instance (owned by the :class:`~repro.buildd.service.
CompileService`), so a tuner sweep, a test run, or a long-lived server can
ask *after the fact* where its compile time went:

* per-unit compile wall time (a bounded ring of recent builds plus totals),
* cache hit rate (hits / misses / in-flight dedups),
* queue depth (builds submitted but not yet finished, and the high-water
  mark),
* bytes cached (reported by the artifact cache at snapshot time).

All counters are guarded by one lock; increments are cheap relative to a
gcc run, so contention is irrelevant.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

#: how many per-unit build records the ring buffer keeps
RECENT_BUILDS = 64


class BuildStats:
    """Thread-safe counters for one compile service."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0          # compile requests (any outcome)
        self.cache_hits = 0         # served from the artifact cache
        self.cache_misses = 0       # needed a real compiler run
        self.inflight_dedup = 0     # joined an identical in-flight build
        self.compiles = 0           # compiler runs that succeeded
        self.failures = 0           # compiler runs that failed
        self.compile_seconds = 0.0  # total wall time inside the compiler
        self.queue_depth = 0        # builds submitted but not finished
        self.max_queue_depth = 0
        self.recent: deque = deque(maxlen=RECENT_BUILDS)
        # per-IR-pass totals (name -> {"runs", "seconds"}), fed by the
        # repro.passes manager so one report covers IR time and gcc time
        self.pass_runs: dict = {}
        # differential-fuzzing totals, fed by repro.fuzz.runner so one
        # snapshot covers compiles *and* what the fuzzer did with them
        self.fuzz_programs = 0      # programs executed differentially
        self.fuzz_divergences = 0   # programs where backends disagreed
        self.fuzz_traps = 0         # programs that trapped (on all configs)
        self.fuzz_crashes = 0       # child-process crashes (signals)

    # -- event hooks (called by the service) --------------------------------
    def record_hit(self) -> None:
        with self._lock:
            self.submitted += 1
            self.cache_hits += 1

    def record_dedup(self) -> None:
        with self._lock:
            self.submitted += 1
            self.inflight_dedup += 1

    def record_submit(self) -> None:
        with self._lock:
            self.submitted += 1
            self.cache_misses += 1
            self.queue_depth += 1
            self.max_queue_depth = max(self.max_queue_depth, self.queue_depth)

    def record_compile(self, key: str, seconds: float, size: int) -> None:
        with self._lock:
            self.compiles += 1
            self.compile_seconds += seconds
            self.queue_depth -= 1
            self.recent.append(
                {"key": key, "seconds": round(seconds, 4), "bytes": size})

    def record_failure(self, key: str, seconds: float) -> None:
        with self._lock:
            self.failures += 1
            self.compile_seconds += seconds
            self.queue_depth -= 1

    def record_pass(self, name: str, seconds: float) -> None:
        """One IR pass ran for ``seconds`` (called by the pass manager)."""
        with self._lock:
            entry = self.pass_runs.setdefault(
                name, {"runs": 0, "seconds": 0.0})
            entry["runs"] += 1
            entry["seconds"] += seconds

    def record_fuzz(self, programs: int, divergences: int,
                    traps: int = 0, crashes: int = 0) -> None:
        """One differential-fuzzing run finished (called by
        :func:`repro.fuzz.runner.run_differential`)."""
        with self._lock:
            self.fuzz_programs += programs
            self.fuzz_divergences += divergences
            self.fuzz_traps += traps
            self.fuzz_crashes += crashes

    def record_already_built(self) -> None:
        """A scheduled build found the artifact already published (by
        another process) — not a compile, not a failure."""
        with self._lock:
            self.queue_depth -= 1

    # -- reporting ----------------------------------------------------------
    def hit_rate(self) -> Optional[float]:
        """Cache hit rate over all requests, or None before any request."""
        with self._lock:
            total = self.cache_hits + self.cache_misses + self.inflight_dedup
            if total == 0:
                return None
            return self.cache_hits / total

    def snapshot(self) -> dict:
        with self._lock:
            total = self.cache_hits + self.cache_misses + self.inflight_dedup
            return {
                "submitted": self.submitted,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "inflight_dedup": self.inflight_dedup,
                "compiles": self.compiles,
                "failures": self.failures,
                "compile_seconds": round(self.compile_seconds, 4),
                "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
                "hit_rate": (self.cache_hits / total) if total else None,
                "recent_builds": list(self.recent),
                "fuzz": {
                    "programs": self.fuzz_programs,
                    "divergences": self.fuzz_divergences,
                    "traps": self.fuzz_traps,
                    "crashes": self.fuzz_crashes,
                },
                "passes": {
                    name: {"runs": entry["runs"],
                           "seconds": round(entry["seconds"], 4)}
                    for name, entry in sorted(self.pass_runs.items())
                },
            }
