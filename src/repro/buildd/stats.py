"""Compile telemetry for the buildd service — a view over repro.trace.metrics.

Every native-code production in the process flows through one
:class:`BuildStats` instance (owned by the :class:`~repro.buildd.service.
CompileService`), so a tuner sweep, a test run, or a long-lived server can
ask *after the fact* where its compile time went:

* per-unit compile wall time (a bounded ring of recent builds plus totals),
* cache hit rate (hits / misses / in-flight dedups),
* queue depth (builds submitted but not yet finished, and the high-water
  mark),
* bytes cached (reported by the artifact cache at snapshot time).

Since the ``repro.trace`` subsystem, the numbers themselves live in
metrics registries (:mod:`repro.trace.metrics`) and this class is the
**view** that keeps the historical public API:

* per-service counters (submitted / hits / misses / compiles / queue)
  live in a registry private to this instance, so independently-built
  services (tests, a reconfigured singleton) stay isolated;
* cross-cutting series — per-IR-pass timings (``pass.*``, fed by the
  :mod:`repro.passes` manager) and differential-fuzzing totals
  (``fuzz.*``, fed by :mod:`repro.fuzz.runner`) — live in the
  **process-wide** registry, because they are properties of the process,
  not of one compile service.  ``snapshot()`` merges both, so one report
  still covers IR time, gcc time, and what the fuzzer did with them.
"""

from __future__ import annotations

from typing import Optional

from ..trace.metrics import MetricsRegistry, registry as _global_registry

#: how many per-unit build records the ring buffer keeps
RECENT_BUILDS = 64

_P = "buildd."  # per-service counter prefix inside the private registry


class BuildStats:
    """Thread-safe counters for one compile service (a metrics view)."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        #: per-service counters; private by default
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- per-service counters, as attributes (historical API) ----------------
    @property
    def submitted(self) -> int:
        return int(self.registry.get(_P + "submitted"))

    @property
    def cache_hits(self) -> int:
        return int(self.registry.get(_P + "cache_hits"))

    @property
    def cache_misses(self) -> int:
        return int(self.registry.get(_P + "cache_misses"))

    @property
    def inflight_dedup(self) -> int:
        return int(self.registry.get(_P + "inflight_dedup"))

    @property
    def compiles(self) -> int:
        return int(self.registry.get(_P + "compiles"))

    @property
    def failures(self) -> int:
        return int(self.registry.get(_P + "failures"))

    @property
    def compile_seconds(self) -> float:
        return float(self.registry.get(_P + "compile_seconds"))

    @property
    def queue_depth(self) -> int:
        return int(self.registry.get(_P + "queue_depth"))

    @property
    def max_queue_depth(self) -> int:
        return int(self.registry.get(_P + "max_queue_depth"))

    @property
    def tier_ups(self) -> int:
        return int(self.registry.get(_P + "tier_ups"))

    @property
    def recent(self) -> list:
        return self.registry.ring(_P + "recent")

    # -- cross-cutting series (process-wide registry) ------------------------
    @property
    def pass_runs(self) -> dict:
        return {name[len("pass."):]: entry
                for name, entry in _global_registry().timings("pass.").items()}

    @property
    def fuzz_programs(self) -> int:
        return int(_global_registry().get("fuzz.programs"))

    @property
    def fuzz_divergences(self) -> int:
        return int(_global_registry().get("fuzz.divergences"))

    @property
    def fuzz_traps(self) -> int:
        return int(_global_registry().get("fuzz.traps"))

    @property
    def fuzz_crashes(self) -> int:
        return int(_global_registry().get("fuzz.crashes"))

    # -- event hooks (called by the service) --------------------------------
    def record_hit(self) -> None:
        with self.registry.locked():
            self.registry.add(_P + "submitted")
            self.registry.add(_P + "cache_hits")

    def record_dedup(self) -> None:
        with self.registry.locked():
            self.registry.add(_P + "submitted")
            self.registry.add(_P + "inflight_dedup")

    def record_submit(self) -> None:
        with self.registry.locked():
            self.registry.add(_P + "submitted")
            self.registry.add(_P + "cache_misses")
            depth = self.registry.add(_P + "queue_depth")
            self.registry.track_max(_P + "max_queue_depth", depth)

    def record_compile(self, key: str, seconds: float, size: int) -> None:
        with self.registry.locked():
            self.registry.add(_P + "compiles")
            self.registry.add(_P + "compile_seconds", seconds)
            self.registry.add(_P + "queue_depth", -1)
            self.registry.append(
                _P + "recent",
                {"key": key, "seconds": round(seconds, 4), "bytes": size},
                maxlen=RECENT_BUILDS)

    def record_failure(self, key: str, seconds: float) -> None:
        with self.registry.locked():
            self.registry.add(_P + "failures")
            self.registry.add(_P + "compile_seconds", seconds)
            self.registry.add(_P + "queue_depth", -1)

    def record_pass(self, name: str, seconds: float) -> None:
        """One IR pass ran for ``seconds`` (called by the pass manager;
        recorded process-wide)."""
        _global_registry().record_time(f"pass.{name}", seconds)

    def record_fuzz(self, programs: int, divergences: int,
                    traps: int = 0, crashes: int = 0) -> None:
        """One differential-fuzzing run finished (called by
        :func:`repro.fuzz.runner.run_differential`; recorded
        process-wide)."""
        reg = _global_registry()
        with reg.locked():
            reg.add("fuzz.programs", programs)
            reg.add("fuzz.divergences", divergences)
            reg.add("fuzz.traps", traps)
            reg.add("fuzz.crashes", crashes)

    def record_tier_up(self) -> None:
        """One tiered-execution tier-up was scheduled (called by
        :meth:`~repro.buildd.service.CompileService.tier_up` and the
        sync path of :class:`repro.exec.policy.TieredPolicy`)."""
        self.registry.add(_P + "tier_ups")

    def record_already_built(self) -> None:
        """A scheduled build found the artifact already published (by
        another process) — not a compile, not a failure."""
        self.registry.add(_P + "queue_depth", -1)

    # -- reporting ----------------------------------------------------------
    def hit_rate(self) -> Optional[float]:
        """Cache hit rate over all requests, or None before any request."""
        with self.registry.locked():
            total = self.cache_hits + self.cache_misses + self.inflight_dedup
            if total == 0:
                return None
            return self.cache_hits / total

    def snapshot(self) -> dict:
        with self.registry.locked():
            total = self.cache_hits + self.cache_misses + self.inflight_dedup
            return {
                "submitted": self.submitted,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "inflight_dedup": self.inflight_dedup,
                "compiles": self.compiles,
                "failures": self.failures,
                "compile_seconds": round(self.compile_seconds, 4),
                "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
                "tier_ups": self.tier_ups,
                "hit_rate": (self.cache_hits / total) if total else None,
                "recent_builds": self.recent,
                "fuzz": {
                    "programs": self.fuzz_programs,
                    "divergences": self.fuzz_divergences,
                    "traps": self.fuzz_traps,
                    "crashes": self.fuzz_crashes,
                },
                "passes": {
                    name: {"runs": entry["runs"],
                           "seconds": round(entry["seconds"], 4)}
                    for name, entry in sorted(self.pass_runs.items())
                },
            }
