"""The in-process compile service.

``CompileService`` owns all native-code production: callers hand it C
source and flags and get back the path of a compiled shared object —
either immediately from the content-addressed cache, or after a compiler
run on the service's thread pool.  Because the actual work is a gcc
subprocess, worker threads spend their time in ``subprocess.run`` with the
GIL released, so ``REPRO_BUILDD_JOBS`` compiles genuinely overlap.

Guarantees:

* **blocking and future APIs** — ``compile(source, flags)`` waits;
  ``compile_async(source, flags)`` returns a ``concurrent.futures.Future``
  resolving to the artifact path;
* **in-flight dedup** — two threads requesting the same key while a build
  is running share one compiler run (and one failure, if it fails);
* **telemetry** — every request is recorded in :class:`~repro.buildd.
  stats.BuildStats` (hits, misses, dedups, per-unit wall time, queue
  depth).

The module-level :func:`get_service` singleton is what the backends use;
:func:`configure` rebuilds it with explicit settings (tests, servers).
"""

from __future__ import annotations

import os
import subprocess
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Iterable, Optional

from ..errors import CompileError
from .. import trace
from . import toolchain as _toolchain
from .cache import ArtifactCache
from .stats import BuildStats

# -fwrapv: Terra's integer semantics wrap at the type's width (LLVM adds
# without nsw); the reference interpreter implements exactly that, so the
# C backend must not treat signed overflow as undefined.
# -ffp-contract=off: per-operation IEEE semantics (LLVM's default, and
# what the interpreter computes); gcc would otherwise fuse a*b+c into FMA.
# Pass extra flags ("-ffp-contract=fast") to opt back in per unit.
DEFAULT_CFLAGS = ["-O3", "-march=native", "-fPIC", "-shared",
                  "-fno-strict-aliasing", "-fno-semantic-interposition",
                  "-fwrapv", "-ffp-contract=off", "-w"]


#: thread-local holding the artifact-cache namespace for builds submitted
#: by the current thread (see cache_namespace)
_ns_ctx = threading.local()


@contextmanager
def cache_namespace(namespace: Optional[str]):
    """Attribute builds submitted inside the block to ``namespace``.

    The namespace travels to :meth:`ArtifactCache.publish`, where it is
    recorded on the entry and drives the per-namespace entry quota —
    :mod:`repro.serve` wraps each tenant's compile in
    ``cache_namespace(tenant_id)`` so one tenant's churn evicts that
    tenant's artifacts first.  Attribution is advisory: the cache stays
    content-addressed, so identical source from two namespaces still
    builds once (owned by whichever submitted first)."""
    prev = getattr(_ns_ctx, "namespace", None)
    _ns_ctx.namespace = namespace
    try:
        yield
    finally:
        _ns_ctx.namespace = prev


def current_namespace() -> Optional[str]:
    return getattr(_ns_ctx, "namespace", None)


def default_jobs() -> int:
    raw = os.environ.get("REPRO_BUILDD_JOBS")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


class CompileService:
    """A thread-pooled, cache-backed C compiler front end."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ArtifactCache] = None,
                 tc: Optional[_toolchain.Toolchain] = None,
                 base_flags: Optional[list[str]] = None) -> None:
        self.jobs = jobs if jobs is not None else default_jobs()
        self.cache = cache if cache is not None else ArtifactCache()
        self._tc = tc
        self.base_flags = list(DEFAULT_CFLAGS if base_flags is None
                               else base_flags)
        self.stats = BuildStats()
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self._pool = ThreadPoolExecutor(max_workers=self.jobs,
                                        thread_name_prefix="buildd")
        self._tier_pool: Optional[ThreadPoolExecutor] = None

    # -- toolchain ----------------------------------------------------------
    def toolchain(self) -> _toolchain.Toolchain:
        if self._tc is not None:
            return self._tc
        return _toolchain.require_toolchain()

    def _cc_identity(self) -> str:
        if self._tc is not None:
            return self._tc.identity
        return _toolchain.cc_identity()

    # -- the main entry points ----------------------------------------------
    def key_for(self, source: str, flags: Iterable[str] = ()) -> str:
        all_flags = (*self.base_flags, *flags)
        return self.cache.key_for(source, all_flags, self._cc_identity())

    def compile(self, source: str, flags: Iterable[str] = ()) -> str:
        """Compile (or fetch) ``source``; blocks; returns the .so path."""
        return self.compile_async(source, flags).result()

    def compile_async(self, source: str, flags: Iterable[str] = ()) -> Future:
        """Schedule a compile; returns a Future resolving to the .so path.

        Identical concurrent requests (same source, flags, and compiler)
        share a single build; cached keys resolve immediately.
        """
        flags = tuple(flags)
        key = self.key_for(source, flags)
        with self._lock:
            cached = self.cache.lookup(key)
            if cached is not None:
                self.stats.record_hit()
                trace.instant("buildd.cache_hit", cat="buildd",
                              key=key[:12])
                done: Future = Future()
                done.set_result(cached)
                return done
            fut = self._inflight.get(key)
            if fut is not None:
                self.stats.record_dedup()
                trace.instant("buildd.dedup", cat="buildd", key=key[:12])
                return fut
            self.stats.record_submit()
            trace.instant("buildd.submit", cat="buildd", key=key[:12])
            fut = self._pool.submit(self._build, key, source, flags,
                                    current_namespace())
            self._inflight[key] = fut
            return fut

    def compile_asyncio(self, source: str, flags: Iterable[str] = ()):
        """The asyncio submission hook: schedule a compile from a running
        event loop and get an *awaitable* resolving to the artifact path.
        The build itself still runs on the buildd pool; only the waiting
        moves onto the loop (this is how :mod:`repro.serve` overlaps gcc
        runs with request handling without tying up a thread)."""
        import asyncio
        return asyncio.wrap_future(self.compile_async(source, flags))

    # -- the worker ---------------------------------------------------------
    def _build(self, key: str, source: str, flags: tuple[str, ...],
               namespace: Optional[str] = None) -> str:
        with trace.span("buildd.compile", cat="buildd",
                        key=key[:12], source_bytes=len(source)) as sp:
            return self._build_traced(sp, key, source, flags, namespace)

    def _build_traced(self, sp, key: str, source: str,
                      flags: tuple[str, ...],
                      namespace: Optional[str] = None) -> str:
        t0 = time.perf_counter()
        try:
            # another process may have published this key since lookup
            existing = self.cache.lookup(key)
            if existing is not None:
                self.stats.record_already_built()
                sp.set(already_built=True)
                return existing
            tc = self.toolchain()
            c_path = self.cache.source_path(key)
            self.cache._write_atomic(c_path, source)
            tmp = self.cache.make_temp()
            cmd = [tc.path, *self.base_flags, *flags, c_path, "-o", tmp,
                   "-lm"]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise CompileError(
                    f"{os.path.basename(tc.path)} failed "
                    f"({proc.returncode}):\n{proc.stderr}\n"
                    f"--- generated C ({c_path}) ---\n{source}")
            dt = time.perf_counter() - t0
            size = os.path.getsize(tmp)
            final = self.cache.publish(key, tmp, source=source, flags=flags,
                                       compile_s=dt, namespace=namespace)
            self.stats.record_compile(key, dt, size)
            sp.set(artifact_bytes=size)
            return final
        except BaseException:
            self.stats.record_failure(key, time.perf_counter() - t0)
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    # -- tier-up scheduling (repro.exec tiered policy) -----------------------
    def tier_up(self, label: str, thunk) -> Future:
        """Schedule a tier-up *staging* job — emit + compile + bind a hot
        function's C entry (and possibly a respecialized variant) — and
        return its Future.

        Staging runs on a dedicated single worker (``repro-tierup``), NOT
        on the compile pool: the job itself blocks on :meth:`compile`
        futures, so running it on the pool would deadlock at
        ``REPRO_BUILDD_JOBS=1`` (the job would hold the only worker while
        waiting for its own gcc run).  One lane also keeps tier-ups from
        starving interactive compiles."""
        with self._lock:
            if self._tier_pool is None:
                self._tier_pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-tierup")
            pool = self._tier_pool
        self.stats.record_tier_up()
        trace.instant("buildd.tier_up", cat="buildd", fn=label)

        def job():
            with trace.span(f"exec.tier_up:{label}", cat="exec",
                            mode="async"):
                return thunk()

        return pool.submit(job)

    # -- one-off builds to a caller-chosen path (saveobj) --------------------
    def compile_to(self, out_path: str, source: str,
                   flags: Iterable[str]) -> str:
        """Compile ``source`` with exactly ``flags`` (no base flags) to
        ``out_path``.  Runs on the pool (so it is counted and can overlap
        with other builds) but is not cached: the output lives outside the
        cache root.  Used by ``saveobj`` for .o/.so outputs."""

        def job() -> str:
            with trace.span("buildd.compile_to", cat="buildd",
                            out=os.path.basename(out_path)):
                return run_build()

        def run_build() -> str:
            t0 = time.perf_counter()
            tc = self.toolchain()
            tmp = out_path + f".{os.getpid()}.{threading.get_ident()}.tmp"
            cmd = [tc.path, *flags, "-o", tmp]
            try:
                proc = subprocess.run(cmd, capture_output=True, text=True)
                if proc.returncode != 0:
                    raise CompileError(
                        f"{os.path.basename(tc.path)} failed "
                        f"({proc.returncode}):\n{proc.stderr}")
                os.replace(tmp, out_path)
            finally:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            self.stats.record_compile(f"saveobj:{os.path.basename(out_path)}",
                                      time.perf_counter() - t0,
                                      os.path.getsize(out_path))
            return out_path

        self.stats.record_submit()
        fut = self._pool.submit(job)
        try:
            return fut.result()
        except BaseException:
            self.stats.record_failure(f"saveobj:{out_path}", 0.0)
            raise

    # -- reporting / lifecycle ----------------------------------------------
    def snapshot(self) -> dict:
        out = {"jobs": self.jobs}
        tc = _toolchain.default_toolchain() if self._tc is None else self._tc
        out["compiler"] = str(tc) if tc is not None else None
        out.update(self.cache.summary())
        out.update(self.stats.snapshot())
        return out

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            tier_pool, self._tier_pool = self._tier_pool, None
        if tier_pool is not None:
            tier_pool.shutdown(wait=wait)
        self._pool.shutdown(wait=wait)


# -- the process-wide service ------------------------------------------------
_service: Optional[CompileService] = None
_service_lock = threading.Lock()


def get_service() -> CompileService:
    global _service
    if _service is None:
        with _service_lock:
            if _service is None:
                _service = CompileService()
    return _service


def configure(jobs: Optional[int] = None, cache_root: Optional[str] = None,
              max_bytes: Optional[int] = None,
              max_entries: Optional[int] = None,
              namespace_quota: Optional[int] = None) -> CompileService:
    """Replace the process-wide service (tests, servers).  The old pool is
    drained first; its cache directory is untouched."""
    global _service
    with _service_lock:
        if _service is not None:
            _service.shutdown(wait=True)
        _service = CompileService(
            jobs=jobs, cache=ArtifactCache(cache_root, max_bytes,
                                           max_entries=max_entries,
                                           namespace_quota=namespace_quota))
        return _service
