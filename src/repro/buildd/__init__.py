"""repro.buildd — the parallel compile service.

The paper's headline engineering property is that staged kernels are
JIT-compiled *in-process* (the §6.1 auto-tuner "JIT-compiles the code,
runs it on a user-provided test case").  ``buildd`` makes that compile
step a **service** rather than a blocking helper: a thread pool of
compiler jobs, a content-addressed artifact cache shared by every
consumer (the C backend, ``saveobj``, Orion, the benchmark baselines),
and telemetry that reports where compile time went.

Quick use::

    import repro.buildd as buildd
    so = buildd.compile(c_source)                  # blocking
    fut = buildd.compile_async(c_source)           # concurrent.futures.Future
    print(buildd.stats()["hit_rate"])

Command line::

    python -m repro.buildd --stats     # cache + service summary
    python -m repro.buildd --gc        # evict over-cap artifacts, drop temps
    python -m repro.buildd --clear     # wipe the artifact cache

Environment:

* ``REPRO_TERRA_CACHE``        — cache root (default ``$TMPDIR/repro-terra-<uid>``)
* ``REPRO_TERRA_CC``           — pin the C compiler (default: probe gcc, cc)
* ``REPRO_BUILDD_JOBS``        — concurrent compiler jobs (default: cpu count)
* ``REPRO_BUILDD_CACHE_BYTES`` — artifact cache size cap (default 1 GiB)
"""

from __future__ import annotations

from typing import Iterable

from .cache import ArtifactCache
from .service import (CompileService, DEFAULT_CFLAGS, configure, default_jobs,
                      get_service)
from .stats import BuildStats
from .toolchain import (Toolchain, cc_available, cc_identity, find_cc,
                        require_toolchain)

__all__ = [
    "ArtifactCache", "BuildStats", "CompileService", "Toolchain",
    "DEFAULT_CFLAGS", "cc_available", "cc_identity", "compile",
    "compile_async", "configure", "default_jobs", "find_cc", "get_service",
    "require_toolchain", "stats",
]


def compile(source: str, flags: Iterable[str] = ()) -> str:  # noqa: A001
    """Compile C ``source`` (blocking); returns the cached .so path."""
    return get_service().compile(source, flags)


def compile_async(source: str, flags: Iterable[str] = ()):
    """Schedule a compile; returns a Future resolving to the .so path."""
    return get_service().compile_async(source, flags)


def stats() -> dict:
    """Service + cache telemetry: jobs, hit rate, queue depth, per-unit
    compile times, bytes cached."""
    return get_service().snapshot()
