"""Compiler discovery — the single source of truth for "which cc?".

Previously both ``backend.base`` (for backend selection) and
``backend.c.runtime`` (for the actual compile) probed ``PATH``
independently; they now both ask this module.  Besides the path, the
toolchain records the compiler's *identity* — a short hash of its resolved
path and ``--version`` output — which the artifact cache folds into every
cache key, so upgrading gcc can never silently reuse stale ``.so``
artifacts built by the old compiler.

Override discovery with ``REPRO_TERRA_CC=/path/to/cc`` (useful for tests
and for pinning a specific compiler).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import threading
from dataclasses import dataclass
from typing import Optional

from ..errors import CompileError

#: probed in order when REPRO_TERRA_CC is not set
CC_CANDIDATES = ("gcc", "cc")


@dataclass(frozen=True)
class Toolchain:
    """A resolved C compiler: absolute path, version banner, identity hash."""

    path: str
    version: str
    identity: str

    def __str__(self) -> str:
        first_line = self.version.splitlines()[0] if self.version else "?"
        return f"{self.path} ({first_line})"


_lock = threading.Lock()
_cached: Optional[Toolchain] = None
_probed = False


def _probe() -> Optional[Toolchain]:
    env_cc = os.environ.get("REPRO_TERRA_CC")
    candidates = (env_cc,) if env_cc else CC_CANDIDATES
    for cc in candidates:
        path = shutil.which(cc)
        if path is None:
            continue
        try:
            proc = subprocess.run([path, "--version"], capture_output=True,
                                  text=True, timeout=30)
            version = proc.stdout.strip() or proc.stderr.strip()
        except OSError:
            continue
        ident = hashlib.sha256(
            f"{path}\0{version}".encode()).hexdigest()[:12]
        return Toolchain(path=path, version=version, identity=ident)
    return None


def default_toolchain() -> Optional[Toolchain]:
    """The host toolchain, or None when no C compiler is installed.
    Probed once per process; :func:`reset` re-probes (tests)."""
    global _cached, _probed
    if not _probed:
        with _lock:
            if not _probed:
                _cached = _probe()
                _probed = True
    return _cached


def require_toolchain() -> Toolchain:
    tc = default_toolchain()
    if tc is None:
        raise CompileError(
            "no C compiler found (need gcc or cc in PATH, or set "
            "REPRO_TERRA_CC); the interpreter backend "
            "(REPRO_TERRA_BACKEND=interp) runs without one")
    return tc


def find_cc() -> str:
    """Path of the C compiler (raises :class:`CompileError` if none)."""
    return require_toolchain().path


def cc_available() -> bool:
    return default_toolchain() is not None


def cc_identity() -> str:
    """Short hash identifying the compiler build (empty if none found) —
    part of every artifact-cache key."""
    tc = default_toolchain()
    return tc.identity if tc is not None else ""


def reset() -> None:
    """Forget the probed toolchain (tests change PATH / REPRO_TERRA_CC)."""
    global _cached, _probed
    with _lock:
        _cached = None
        _probed = False
