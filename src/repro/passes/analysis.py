"""Shared analyses and traversal helpers for the mid-level IR passes.

Two facilities every transform pass needs:

* :func:`is_pure` — may an expression be deleted, duplicated, or evaluated
  early without changing observable behaviour?  "Observable" includes
  interpreter *traps*: the reference backend turns division by zero and
  out-of-bounds accesses into :class:`~repro.errors.TrapError`, and the
  differential test suite asserts traps are preserved, so purity here
  means *side-effect free and trap free*.
* :func:`transform_exprs` / :func:`transform_stat` — a generic in-place
  bottom-up expression rewriter over the typed tree, so peephole passes
  (algebraic simplification) do not each reimplement statement traversal.
"""

from __future__ import annotations

from ..core import tast
from ..core import types as T

#: binary operators that can never trap in either backend (integer
#: division and modulo trap on zero; shifts are masked to the type width
#: by the interpreter, matching x86 semantics, so they cannot trap).
_NONTRAP_BINOPS = frozenset([
    "+", "-", "*", "&", "|", "^", "and", "or", "<<", ">>",
    "<", ">", "<=", ">=", "==", "~=",
])


def is_const(e) -> bool:
    """A scalar compile-time constant (the shape the folder produces)."""
    return isinstance(e, tast.TConst) and isinstance(e.type, T.PrimitiveType)


def binop_may_trap(e: tast.TBinOp) -> bool:
    """Division/modulo by a possibly-zero divisor may trap; float division
    never traps (it yields inf/nan in both backends)."""
    if e.op in ("/", "%"):
        lt = e.lhs.type
        if isinstance(lt, T.PrimitiveType) and lt.isfloat():
            return False
        if isinstance(lt, T.VectorType) and lt.isfloat():
            return False
        return not (is_const(e.rhs) and e.rhs.value != 0)
    return e.op not in _NONTRAP_BINOPS


def _pure_lvalue_chain(e: tast.TExpr) -> bool:
    """An lvalue chain rooted at a local variable: loads from it cannot
    trap (frame slots are always live while the function runs)."""
    if isinstance(e, tast.TVar):
        return True
    if isinstance(e, tast.TSelect):
        return _pure_lvalue_chain(e.obj)
    return False


def is_pure(e: tast.TExpr) -> bool:
    """True when evaluating ``e`` has no side effects and cannot trap."""
    if isinstance(e, (tast.TConst, tast.TString, tast.TNull, tast.TVar,
                      tast.TGlobal, tast.TFuncLit, tast.TCallback)):
        return True
    if isinstance(e, tast.TUnOp):
        return is_pure(e.operand)
    if isinstance(e, tast.TBinOp):
        if binop_may_trap(e):
            return False
        return is_pure(e.lhs) and is_pure(e.rhs)
    if isinstance(e, tast.TLogical):
        return is_pure(e.lhs) and is_pure(e.rhs)
    if isinstance(e, tast.TCast):
        return is_pure(e.expr)
    if isinstance(e, tast.TSelect):
        if _pure_lvalue_chain(e.obj):
            return True
        return not e.obj.lvalue and is_pure(e.obj)
    if isinstance(e, tast.TIndex):
        oty = e.obj.type
        if isinstance(oty, T.ArrayType) and is_const(e.index) \
                and 0 <= e.index.value < oty.count:
            return _pure_lvalue_chain(e.obj) or \
                (not e.obj.lvalue and is_pure(e.obj))
        return False  # pointer indexing / runtime index: loads may trap
    if isinstance(e, tast.TVectorIndex):
        oty = e.obj.type
        if isinstance(oty, T.VectorType) and is_const(e.index) \
                and 0 <= e.index.value < oty.count:
            return _pure_lvalue_chain(e.obj) or \
                (not e.obj.lvalue and is_pure(e.obj))
        return False
    if isinstance(e, tast.TAddressOf):
        return isinstance(e.operand, tast.TVar)
    if isinstance(e, tast.TCtor):
        return all(is_pure(x) for x in e.inits)
    # TCall, TIntrinsic, TDeref, TLetIn and anything unknown: conservative
    return False


# -- generic in-place expression rewriting ----------------------------------------

def transform_exprs(e: tast.TExpr, fn) -> tast.TExpr:
    """Rewrite an expression bottom-up: children first, then ``fn(e)``.

    ``fn`` receives every expression node and returns its replacement
    (usually the node itself).  Blocks nested inside expressions
    (``TLetIn``) have their statements rewritten too.
    """
    for field in e._fields:
        child = getattr(e, field)
        if isinstance(child, tast.TExpr):
            setattr(e, field, transform_exprs(child, fn))
        elif isinstance(child, tast.TBlock):
            transform_block(child, fn)
        elif isinstance(child, list):
            setattr(e, field, [
                transform_exprs(c, fn) if isinstance(c, tast.TExpr) else c
                for c in child])
    return fn(e)


def transform_stat(s: tast.TStat, fn) -> None:
    """Rewrite every expression under one statement (in place)."""
    if isinstance(s, tast.TIf):
        s.branches = [(transform_exprs(cond, fn), body)
                      for cond, body in s.branches]
        for _, body in s.branches:
            transform_block(body, fn)
        if s.orelse is not None:
            transform_block(s.orelse, fn)
        return
    for field in s._fields:
        child = getattr(s, field)
        if isinstance(child, tast.TExpr):
            setattr(s, field, transform_exprs(child, fn))
        elif isinstance(child, tast.TBlock):
            transform_block(child, fn)
        elif isinstance(child, list):
            setattr(s, field, [
                transform_exprs(c, fn) if isinstance(c, tast.TExpr) else c
                for c in child])


def transform_block(block: tast.TBlock, fn) -> None:
    for s in block.statements:
        transform_stat(s, fn)
