"""Shared analyses and traversal helpers for the mid-level IR passes.

Two facilities every transform pass needs:

* :func:`is_pure` — may an expression be deleted, duplicated, or evaluated
  early without changing observable behaviour?  "Observable" includes
  interpreter *traps*: the reference backend turns division by zero and
  out-of-bounds accesses into :class:`~repro.errors.TrapError`, and the
  differential test suite asserts traps are preserved, so purity here
  means *side-effect free and trap free*.
* :func:`transform_exprs` / :func:`transform_stat` — a generic in-place
  bottom-up expression rewriter over the typed tree, so peephole passes
  (algebraic simplification) do not each reimplement statement traversal.
"""

from __future__ import annotations

from ..core import tast
from ..core import types as T

#: binary operators that can never trap in either backend (integer
#: division and modulo trap on zero; shifts are masked to the type width
#: by the interpreter, matching x86 semantics, so they cannot trap).
_NONTRAP_BINOPS = frozenset([
    "+", "-", "*", "&", "|", "^", "and", "or", "<<", ">>",
    "<", ">", "<=", ">=", "==", "~=",
])


def is_const(e) -> bool:
    """A scalar compile-time constant (the shape the folder produces)."""
    return isinstance(e, tast.TConst) and isinstance(e.type, T.PrimitiveType)


def binop_may_trap(e: tast.TBinOp) -> bool:
    """Division/modulo by a possibly-zero divisor may trap; float division
    never traps (it yields inf/nan in both backends)."""
    if e.op in ("/", "%"):
        lt = e.lhs.type
        if isinstance(lt, T.PrimitiveType) and lt.isfloat():
            return False
        if isinstance(lt, T.VectorType) and lt.isfloat():
            return False
        return not (is_const(e.rhs) and e.rhs.value != 0)
    return e.op not in _NONTRAP_BINOPS


def _pure_lvalue_chain(e: tast.TExpr) -> bool:
    """An lvalue chain rooted at a local variable: loads from it cannot
    trap (frame slots are always live while the function runs)."""
    if isinstance(e, tast.TVar):
        return True
    if isinstance(e, tast.TSelect):
        return _pure_lvalue_chain(e.obj)
    return False


#: expression nodes that are values by themselves: no effects, no traps
_LEAF_EXPRS = (tast.TConst, tast.TString, tast.TNull, tast.TVar,
               tast.TGlobal, tast.TFuncLit, tast.TCallback)


def has_side_effects(e: tast.TExpr) -> bool:
    """May evaluating ``e`` do anything observable *besides* producing a
    value or trapping — write memory, call out, advance external state?

    The expression grammar is nearly effect-free: only calls, intrinsics
    (which may fence or prefetch), and statement-carrying ``TLetIn``
    blocks can write.  Anything unrecognized is conservatively effectful.
    Traps are deliberately NOT side effects here — use
    :func:`expr_may_trap` for those; LICM and the vectorizer need the
    two questions separately (a trapping-but-effect-free expression may
    be *sunk* or *guarded*, never *hoisted*).
    """
    if isinstance(e, _LEAF_EXPRS):
        return False
    if isinstance(e, tast.TUnOp):
        return has_side_effects(e.operand)
    if isinstance(e, (tast.TBinOp, tast.TLogical)):
        return has_side_effects(e.lhs) or has_side_effects(e.rhs)
    if isinstance(e, tast.TCast):
        return has_side_effects(e.expr)
    if isinstance(e, tast.TSelect):
        return has_side_effects(e.obj)
    if isinstance(e, (tast.TIndex, tast.TVectorIndex)):
        return has_side_effects(e.obj) or has_side_effects(e.index)
    if isinstance(e, tast.TAddressOf):
        return has_side_effects(e.operand)
    if isinstance(e, tast.TCtor):
        return any(has_side_effects(x) for x in e.inits)
    # TCall, TIntrinsic, TDeref, TLetIn and anything unknown: conservative
    return True


def expr_may_trap(e: tast.TExpr) -> bool:
    """May evaluating ``e`` raise a runtime trap?

    Traps are *defined* behaviour here (``docs/LANGUAGE.md``): integer
    division/modulo by zero and out-of-bounds accesses abort the call in
    both backends, and the differential suite asserts they are preserved.
    A pass must never hoist a possibly-trapping expression past a branch
    or out of a loop whose trip count can be zero — that would introduce
    a trap the program never executed (see ``passes/licm.py``).
    """
    if isinstance(e, _LEAF_EXPRS):
        return False
    if isinstance(e, tast.TUnOp):
        return expr_may_trap(e.operand)
    if isinstance(e, tast.TBinOp):
        return binop_may_trap(e) or expr_may_trap(e.lhs) \
            or expr_may_trap(e.rhs)
    if isinstance(e, tast.TLogical):
        return expr_may_trap(e.lhs) or expr_may_trap(e.rhs)
    if isinstance(e, tast.TCast):
        # casts never trap: float->int saturates, sub-int wraps
        return expr_may_trap(e.expr)
    if isinstance(e, tast.TSelect):
        if _pure_lvalue_chain(e.obj):
            return False
        if not e.obj.lvalue:
            return expr_may_trap(e.obj)
        return True  # loads through pointer-rooted lvalues may trap
    if isinstance(e, tast.TIndex):
        oty = e.obj.type
        if isinstance(oty, T.ArrayType) and is_const(e.index) \
                and 0 <= e.index.value < oty.count:
            if _pure_lvalue_chain(e.obj):
                return expr_may_trap(e.index)
            if not e.obj.lvalue:
                return expr_may_trap(e.obj) or expr_may_trap(e.index)
        return True  # pointer indexing / runtime index: loads may trap
    if isinstance(e, tast.TVectorIndex):
        oty = e.obj.type
        if isinstance(oty, T.VectorType) and is_const(e.index) \
                and 0 <= e.index.value < oty.count:
            if _pure_lvalue_chain(e.obj):
                return expr_may_trap(e.index)
            if not e.obj.lvalue:
                return expr_may_trap(e.obj) or expr_may_trap(e.index)
        return True
    if isinstance(e, tast.TAddressOf):
        return not isinstance(e.operand, tast.TVar)
    if isinstance(e, tast.TCtor):
        return any(expr_may_trap(x) for x in e.inits)
    # TCall, TIntrinsic, TDeref, TLetIn and anything unknown: conservative
    return True


def is_pure(e: tast.TExpr) -> bool:
    """True when evaluating ``e`` has no side effects and cannot trap —
    the expression may be deleted, duplicated, or evaluated early."""
    return not has_side_effects(e) and not expr_may_trap(e)


# -- generic in-place expression rewriting ----------------------------------------

def transform_exprs(e: tast.TExpr, fn) -> tast.TExpr:
    """Rewrite an expression bottom-up: children first, then ``fn(e)``.

    ``fn`` receives every expression node and returns its replacement
    (usually the node itself).  Blocks nested inside expressions
    (``TLetIn``) have their statements rewritten too.
    """
    for field in e._fields:
        child = getattr(e, field)
        if isinstance(child, tast.TExpr):
            setattr(e, field, transform_exprs(child, fn))
        elif isinstance(child, tast.TBlock):
            transform_block(child, fn)
        elif isinstance(child, list):
            setattr(e, field, [
                transform_exprs(c, fn) if isinstance(c, tast.TExpr) else c
                for c in child])
    return fn(e)


def transform_stat(s: tast.TStat, fn) -> None:
    """Rewrite every expression under one statement (in place)."""
    if isinstance(s, tast.TIf):
        s.branches = [(transform_exprs(cond, fn), body)
                      for cond, body in s.branches]
        for _, body in s.branches:
            transform_block(body, fn)
        if s.orelse is not None:
            transform_block(s.orelse, fn)
        return
    for field in s._fields:
        child = getattr(s, field)
        if isinstance(child, tast.TExpr):
            setattr(s, field, transform_exprs(child, fn))
        elif isinstance(child, tast.TBlock):
            transform_block(child, fn)
        elif isinstance(child, list):
            setattr(s, field, [
                transform_exprs(c, fn) if isinstance(c, tast.TExpr) else c
                for c in child])


def transform_block(block: tast.TBlock, fn) -> None:
    for s in block.statements:
        transform_stat(s, fn)
