"""Auto-vectorization of innermost countable loops.

Terra's thesis is that staged kernels reach hand-tuned performance; until
now SIMD only appeared when the user (or an Orion schedule) explicitly
asked for vector types.  This pass closes that gap at the IR level:
qualifying innermost ``for`` loops are rewritten into a *guarded* vector
loop over ``vector(T, W)`` values plus a scalar epilogue, so every
frontend and every execution path (serve, tiered dispatch, plain calls)
gets SIMD with zero schedule annotations.

The rewrite of ``for i = start, limit do body end`` is::

    do
      var _s = start              -- bounds evaluated once, in source order
      var _l = limit
      var _n = _l - _s            -- trip count (wraps negative -> guarded)
      var _e = _s
      if (_s < _l) and (_n >= W) and <store/load ranges disjoint> then
        var _m = _n & ~(W-1)      -- multiple-of-W prefix
        _e = _s + _m
        [vector accumulators = identity]
        for i = _s, _e, W do <vector body> end
        [scalar accumulators merged lane by lane]
      end
      for i = _e, _l do body end  -- epilogue AND the guard-failed path
    end

Correctness rests on three facts checked here and enforced by the
differential fuzzer (``make autovec-smoke``):

* **Lane-exact memory model.**  Every memory access in a vectorized body
  is ``p[i]`` at exactly the loop index through a pointer-typed local, so
  iteration ``i`` touches element ``i`` of each base and the vector loop
  touches exactly the addresses the scalar loop would have.  Distinct
  bases are runtime-checked for disjointness over ``[&p[_s], &p[_l])``;
  accesses through the *same* base need no check.
* **Trap-free bodies.**  Anything that can trap (integer div/mod, array
  indexing) or that the interpreter and C could order differently
  (calls, branches) is a bailout — :func:`repro.passes.analysis` is the
  single source of truth for trap/effect classification.
* **Exact reductions only.**  Integer ``+ * & | ^`` reductions are
  reassociable modulo 2^n, so splitting them across lanes is
  bit-exact; float reductions are NOT reassociable and always bail.

Environment knobs (see docs/ENVIRONMENT.md):

* ``REPRO_TERRA_VEC=1`` — make the C backend compile at pipeline level 3
  (this pass); otherwise level 3 only runs when requested explicitly via
  ``REPRO_TERRA_PIPELINE=3`` / ``pipeline_override(3)``.
* ``REPRO_TERRA_VEC_BYTES`` — vector register width in bytes (default
  64: on AVX-512 hardware gcc's own autovectorizer stops at 256-bit
  vectors for these kernels, so the explicit 512-bit width is where the
  measured win comes from; must be a power of two).
* ``REPRO_TERRA_VEC_WIDTH`` — force the lane count instead of deriving
  it from ``REPRO_TERRA_VEC_BYTES // max-element-size``.

Observability: each vectorized loop counts ``vec.loops``; each rejected
loop counts ``vec.bailouts`` plus ``vec.bailouts.<reason>``; pass timing
appears as ``pass.vectorize`` like every pass (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import os

from ..core import tast
from ..core import types as T
from ..core.symbols import Symbol
from .analysis import expr_may_trap, has_side_effects
from .manager import Pass, register_pass

#: reduction operators that are exact under reassociation mod 2^n,
#: mapped to their identity element (signed identity; unsigned wraps)
_REDUCTION_IDENTITY = {"+": 0, "*": 1, "&": -1, "|": 0, "^": 0}

#: elementwise binary operators a vector body may contain (float ``/``
#: is allowed — it cannot trap; integer ``/`` and any ``%`` bail)
_VECTOR_BINOPS = frozenset(["+", "-", "*", "&", "|", "^", "<<", ">>"])

#: float intrinsics with elementwise vector forms in both backends
_VECTOR_INTRINSICS = frozenset(["sqrt", "fabs", "floor", "ceil",
                                "fmin", "fmax"])


class _Bail(Exception):
    """Raised anywhere during analysis/construction to reject a loop."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _env_vec_width() -> int | None:
    raw = os.environ.get("REPRO_TERRA_VEC_WIDTH", "")
    if not raw:
        return None
    try:
        width = int(raw)
    except ValueError:
        return None
    return width if width >= 2 and (width & (width - 1)) == 0 else None


def _env_vec_bytes() -> int:
    raw = os.environ.get("REPRO_TERRA_VEC_BYTES", "")
    try:
        nbytes = int(raw) if raw else 64
    except ValueError:
        nbytes = 64
    if nbytes < 4 or (nbytes & (nbytes - 1)) != 0:
        nbytes = 64
    return nbytes


def _is_vec_scalar(ty) -> bool:
    """A type vector lanes can hold: primitive, arithmetic, not bool."""
    return isinstance(ty, T.PrimitiveType) and not ty.islogical() \
        and (ty.isintegral() or ty.isfloat())


def _value_preserving_int_cast(dst, src) -> bool:
    """True when every value of integral ``src`` maps to itself in
    integral ``dst`` — the only casts allowed around the loop index
    (a wrapping index cast breaks unit stride at the wrap point)."""
    if not (isinstance(dst, T.PrimitiveType) and dst.isintegral()
            and isinstance(src, T.PrimitiveType) and src.isintegral()
            and not dst.islogical() and not src.islogical()):
        return False
    if dst.signed == src.signed:
        return dst.bytes >= src.bytes
    return dst.signed and dst.bytes > src.bytes


def _addr_taken_symbols(block) -> set:
    """Every local whose address escapes anywhere in the function: a
    store through any pointer may alias it, so it can be neither an
    invariant broadcast nor a reduction accumulator nor a base."""
    taken: set = set()
    for node in tast.walk(block):
        if isinstance(node, tast.TAddressOf) \
                and isinstance(node.operand, tast.TVar):
            taken.add(node.operand.symbol)
    return taken


def _contains_loop(block) -> bool:
    return any(isinstance(n, (tast.TForNum, tast.TWhile, tast.TRepeat))
               for n in tast.walk(block))


def _count_bail(reason: str) -> None:
    from ..trace.metrics import registry
    registry().add("vec.bailouts")
    registry().add(f"vec.bailouts.{reason}")


class _LoopVectorizer:
    """One attempt at vectorizing one innermost ``TForNum``.

    Runs twice per loop: a *trial* build at ``width=2`` that validates
    every statement and records which scalar types actually become
    vectors, then (after the real lane count is derived from those
    types) the definitive build.  Construction never mutates the
    original body — the epilogue reuses it as-is.
    """

    def __init__(self, loop: tast.TForNum, width: int, addr_taken: set):
        self.loop = loop
        self.width = width
        self.addr_taken = addr_taken
        self.var_type = loop.var_type
        self.loop_sym = loop.symbol
        #: scalar types that became vector lanes (drives width choice)
        self.lane_types: set = set()
        #: loop-local scalar temp -> its vector twin Symbol
        self.vecmap: dict = {}
        #: pointer base Symbol -> (pointer type, element type, stored?)
        self.bases: dict = {}
        #: symbols assigned anywhere in the body (incl. decls + loop var)
        self.assigned: set = {loop.symbol}
        #: reduction accumulator Symbol -> (op, vector twin Symbol)
        self.reductions: dict = {}

    # -- structural qualification ------------------------------------------

    def qualify(self) -> None:
        loop = self.loop
        step = loop.step
        if step is not None and not (
                isinstance(step, tast.TConst) and step.value == 1):
            raise _Bail("step")
        if not (isinstance(self.var_type, T.PrimitiveType)
                and self.var_type.isintegral()
                and not self.var_type.islogical()):
            raise _Bail("loop-var-type")
        if self.loop_sym in self.addr_taken:
            raise _Bail("addr-taken")
        if has_side_effects(loop.start) or has_side_effects(loop.limit) \
                or expr_may_trap(loop.start) or expr_may_trap(loop.limit):
            # bounds are evaluated once either way, but a trapping bound
            # plus our extra _n/_e arithmetic is not worth reasoning about
            raise _Bail("bounds")
        for s in loop.body.statements:
            if isinstance(s, tast.TVarDecl):
                if len(s.symbols) != 1 or not _is_vec_scalar(s.types[0]):
                    raise _Bail("decl")
                self.assigned.add(s.symbols[0])
            elif isinstance(s, tast.TAssign):
                if len(s.lhs) != 1 or len(s.rhs) != 1:
                    raise _Bail("multi-assign")
                lhs = s.lhs[0]
                if isinstance(lhs, tast.TVar):
                    if lhs.symbol is self.loop_sym:
                        raise _Bail("loop-var-assigned")
                    self.assigned.add(lhs.symbol)
                elif not isinstance(lhs, tast.TIndex):
                    raise _Bail("store-shape")
            else:
                raise _Bail("statement")

    # -- the loop index ----------------------------------------------------

    def _is_loop_index(self, idx) -> bool:
        e = idx
        while isinstance(e, tast.TCast) and e.kind == "numeric" \
                and _value_preserving_int_cast(e.type, e.expr.type):
            e = e.expr
        return isinstance(e, tast.TVar) and e.symbol is self.loop_sym

    def _base_of(self, access: tast.TIndex, stored: bool):
        """Validate ``p[i]`` unit-stride access; record and return its
        base symbol and element type."""
        obj = access.obj
        if not (isinstance(obj, tast.TVar)
                and isinstance(obj.type, T.PointerType)):
            raise _Bail("base")
        elem = obj.type.pointee
        if not _is_vec_scalar(elem):
            raise _Bail("elem-type")
        if not self._is_loop_index(access.index):
            raise _Bail("stride")
        sym = obj.symbol
        if sym in self.addr_taken or sym in self.assigned:
            raise _Bail("base-mutable")
        ptr_ty, _, was_stored = self.bases.get(sym, (obj.type, elem, False))
        self.bases[sym] = (ptr_ty, elem, was_stored or stored)
        return sym, elem

    # -- expression vectorization ------------------------------------------

    def _vty(self, scalar) -> T.VectorType:
        self.lane_types.add(scalar)
        return T.VectorType(scalar, self.width)

    def vec(self, e: tast.TExpr) -> tast.TExpr:
        """A vector-typed expression computing ``e`` for lanes
        ``i .. i+W-1``; raises :class:`_Bail` on anything unsupported."""
        ty = e.type
        if isinstance(e, tast.TConst):
            if not _is_vec_scalar(ty):
                raise _Bail("const-type")
            vty = self._vty(ty)
            return tast.TConst([e.value] * self.width, vty)
        if isinstance(e, tast.TVar):
            sym = e.symbol
            if sym is self.loop_sym:
                vty = self._vty(self.var_type)
                broadcast = tast.TCast(
                    vty, tast.TVar(sym, self.var_type), "broadcast")
                iota = tast.TConst(list(range(self.width)), vty)
                return tast.TBinOp("+", broadcast, iota, vty)
            twin = self.vecmap.get(sym)
            if twin is not None:
                return tast.TVar(twin, twin.type)
            if sym in self.reductions:
                raise _Bail("reduction-use")
            if sym in self.assigned:
                raise _Bail("carried")
            if not _is_vec_scalar(ty):
                raise _Bail("scalar-type")
            if sym in self.addr_taken:
                raise _Bail("addr-taken")
            return tast.TCast(self._vty(ty), tast.TVar(sym, ty), "broadcast")
        if isinstance(e, tast.TIndex):
            sym, elem = self._base_of(e, stored=False)
            addr = tast.TAddressOf(tast.TIndex(
                tast.clone(e.obj), tast.clone(e.index), elem))
            return tast.TIntrinsic("vload", [addr], self._vty(elem))
        if isinstance(e, tast.TBinOp):
            if not _is_vec_scalar(ty):
                raise _Bail("binop-type")
            op = e.op
            if op == "/" and ty.isfloat():
                pass  # float division cannot trap (inf/nan semantics)
            elif op not in _VECTOR_BINOPS:
                raise _Bail("binop")
            elif op in ("&", "|", "^", "<<", ">>") and not ty.isintegral():
                raise _Bail("binop")
            return tast.TBinOp(op, self.vec(e.lhs), self.vec(e.rhs),
                               self._vty(ty))
        if isinstance(e, tast.TUnOp):
            if e.op != "-" and not (e.op == "not" and ty.isintegral()
                                    and not ty.islogical()):
                raise _Bail("unop")
            if not _is_vec_scalar(ty):
                raise _Bail("unop-type")
            return tast.TUnOp(e.op, self.vec(e.operand), self._vty(ty))
        if isinstance(e, tast.TCast):
            if e.kind != "numeric" or not _is_vec_scalar(ty) \
                    or not _is_vec_scalar(e.expr.type):
                raise _Bail("cast")
            return tast.TCast(self._vty(ty), self.vec(e.expr), "vector")
        if isinstance(e, tast.TIntrinsic):
            if e.name not in _VECTOR_INTRINSICS:
                raise _Bail("intrinsic")
            if not (isinstance(ty, T.PrimitiveType) and ty.isfloat()):
                raise _Bail("intrinsic-type")
            if any(a.type is not ty for a in e.args):
                raise _Bail("intrinsic-args")
            return tast.TIntrinsic(e.name, [self.vec(a) for a in e.args],
                                   self._vty(ty))
        raise _Bail("expr")

    # -- statements --------------------------------------------------------

    def _classify_reduction(self, lhs_sym, rhs):
        """``acc = acc op rest`` (or ``rest op acc``) with an integral,
        reassociable op and ``acc`` nowhere in ``rest`` — else None."""
        if not isinstance(rhs, tast.TBinOp) \
                or rhs.op not in _REDUCTION_IDENTITY:
            return None
        acc_ty = rhs.type
        if not (isinstance(acc_ty, T.PrimitiveType) and acc_ty.isintegral()
                and not acc_ty.islogical()):
            return None

        def uses(e):
            return any(isinstance(n, tast.TVar) and n.symbol is lhs_sym
                       for n in tast.walk(e))

        if isinstance(rhs.lhs, tast.TVar) and rhs.lhs.symbol is lhs_sym \
                and not uses(rhs.rhs):
            return rhs.op, rhs.rhs
        if isinstance(rhs.rhs, tast.TVar) and rhs.rhs.symbol is lhs_sym \
                and not uses(rhs.lhs):
            return rhs.op, rhs.lhs
        return None

    def _acc_uses_elsewhere(self, acc_sym, home_stat) -> int:
        """Occurrences of ``acc_sym`` in body statements other than its
        own reduction statement (any -> not a private accumulator)."""
        count = 0
        for s in self.loop.body.statements:
            if s is home_stat:
                continue
            for node in tast.walk(s):
                if isinstance(node, tast.TVar) and node.symbol is acc_sym:
                    count += 1
        return count

    def build_body(self) -> list:
        """The vector loop's statements (new nodes only)."""
        out: list = []
        locals_here = {s.symbols[0] for s in self.loop.body.statements
                       if isinstance(s, tast.TVarDecl)}
        for s in self.loop.body.statements:
            if isinstance(s, tast.TVarDecl):
                sym, ty = s.symbols[0], s.types[0]
                vty = self._vty(ty)
                twin = Symbol(vty, (sym.displayname or "t") + "v")
                self.vecmap[sym] = twin
                init = None if s.inits is None else [self.vec(s.inits[0])]
                out.append(tast.TVarDecl([twin], [vty], init))
                continue
            assert isinstance(s, tast.TAssign)
            lhs, rhs = s.lhs[0], s.rhs[0]
            if isinstance(lhs, tast.TIndex):
                sym, elem = self._base_of(lhs, stored=True)
                value = self.vec(rhs)
                addr = tast.TAddressOf(tast.TIndex(
                    tast.clone(lhs.obj), tast.clone(lhs.index), elem))
                out.append(tast.TExprStat(tast.TIntrinsic(
                    "vstore", [addr, value], T.unit)))
                continue
            sym = lhs.symbol
            if sym in self.vecmap:            # loop-local temp
                out.append(tast.TAssign(
                    [tast.TVar(self.vecmap[sym], self.vecmap[sym].type)],
                    [self.vec(rhs)]))
                continue
            if sym in locals_here:
                # assignment before the decl cannot typecheck; defensive
                raise _Bail("decl-order")
            red = self._classify_reduction(sym, rhs)
            if red is None or sym in self.addr_taken \
                    or sym in self.reductions \
                    or self._acc_uses_elsewhere(sym, s):
                raise _Bail("reduction")
            op, rest = red
            acc_ty = lhs.type
            vty = self._vty(acc_ty)
            vacc = Symbol(vty, (sym.displayname or "acc") + "v")
            self.reductions[sym] = (op, vacc, acc_ty)
            out.append(tast.TAssign(
                [tast.TVar(vacc, vty)],
                [tast.TBinOp(op, tast.TVar(vacc, vty), self.vec(rest),
                             vty)]))
        if not self.bases:
            raise _Bail("no-memory")   # nothing to vectorize over
        if not any(stored for _, _, stored in self.bases.values()) \
                and not self.reductions:
            raise _Bail("no-effect")   # body computes nothing observable
        return out

    # -- whole-rewrite construction ----------------------------------------

    def _identity_const(self, op, ty) -> tast.TConst:
        value = _REDUCTION_IDENTITY[op]
        if value < 0 and not ty.signed:
            value &= (1 << (ty.bytes * 8)) - 1
        vty = T.VectorType(ty, self.width)
        return tast.TConst([value] * self.width, vty)

    def _range_end(self, base_sym, which_var, elem):
        """``(uint64)&base[bound]`` for the disjointness guard."""
        ptr_ty, _, _ = self.bases[base_sym]
        idx = tast.TVar(which_var, self.var_type)
        if self.var_type is not T.int64:
            # TIndex always indexes with int64 (the typechecker inserts
            # this conversion for source-level indexing)
            idx = tast.TCast(T.int64, idx, "numeric")
        access = tast.TIndex(tast.TVar(base_sym, ptr_ty), idx, elem)
        return tast.TCast(T.uint64, tast.TAddressOf(access), "ptr-int")

    def _alias_guards(self, s_var, l_var) -> list:
        """One disjointness test per (stored base, other base) pair over
        the accessed ranges ``[&p[_s], &p[_l])``."""
        guards = []
        syms = list(self.bases)
        for store_sym in syms:
            if not self.bases[store_sym][2]:
                continue
            for other in syms:
                if other is store_sym:
                    continue
                if self.bases[other][2] and syms.index(other) < \
                        syms.index(store_sym):
                    continue  # store/store pair already guarded once
                a_el = self.bases[store_sym][1]
                b_el = self.bases[other][1]
                a_lo = self._range_end(store_sym, s_var, a_el)
                a_hi = self._range_end(store_sym, l_var, a_el)
                b_lo = self._range_end(other, s_var, b_el)
                b_hi = self._range_end(other, l_var, b_el)
                disjoint = tast.TLogical(
                    "or",
                    tast.TBinOp("<=", a_hi, b_lo, T.bool_),
                    tast.TBinOp("<=", b_hi, a_lo, T.bool_))
                guards.append(disjoint)
        return guards

    def rewrite(self, vector_stmts: list) -> tast.TDoStat:
        loop, vt, W = self.loop, self.var_type, self.width
        s_var = Symbol(vt, "vs")
        l_var = Symbol(vt, "vl")
        n_var = Symbol(vt, "vn")
        e_var = Symbol(vt, "ve")
        m_var = Symbol(vt, "vm")

        def var(sym):
            return tast.TVar(sym, vt)

        def const(value):
            return tast.TConst(value, vt)

        stmts: list = [
            tast.TVarDecl([s_var], [vt], [loop.start]),
            tast.TVarDecl([l_var], [vt], [loop.limit]),
            tast.TVarDecl([n_var], [vt],
                          [tast.TBinOp("-", var(l_var), var(s_var), vt)]),
            tast.TVarDecl([e_var], [vt], [var(s_var)]),
        ]

        # guard: nonempty, at least one full vector, and disjoint arrays
        mask = -W if vt.signed else ((1 << (vt.bytes * 8)) - W)
        conds = [tast.TBinOp("<", var(s_var), var(l_var), T.bool_),
                 tast.TBinOp(">=", var(n_var), const(W), T.bool_)]
        conds.extend(self._alias_guards(s_var, l_var))
        cond = conds[0]
        for extra in conds[1:]:
            cond = tast.TLogical("and", cond, extra)

        then: list = [
            tast.TVarDecl([m_var], [vt],
                          [tast.TBinOp("&", var(n_var), const(mask), vt)]),
            tast.TAssign([var(e_var)],
                         [tast.TBinOp("+", var(s_var), var(m_var), vt)]),
        ]
        for acc_sym, (op, vacc, acc_ty) in self.reductions.items():
            then.append(tast.TVarDecl(
                [vacc], [vacc.type], [self._identity_const(op, acc_ty)]))

        vloop = tast.TForNum(loop.symbol, vt, var(s_var), var(e_var),
                             const(W), tast.TBlock(vector_stmts),
                             step_sign=1)
        vloop._vec_generated = True
        then.append(vloop)

        for acc_sym, (op, vacc, acc_ty) in self.reductions.items():
            merged = tast.TVar(acc_sym, acc_ty)
            for lane in range(W):
                lane_val = tast.TVectorIndex(
                    tast.TVar(vacc, vacc.type),
                    tast.TConst(lane, T.int64), acc_ty)
                merged = tast.TBinOp(op, merged, lane_val, acc_ty)
            then.append(tast.TAssign([tast.TVar(acc_sym, acc_ty)], [merged]))

        stmts.append(tast.TIf([(cond, tast.TBlock(then))], None))

        epilogue = tast.TForNum(loop.symbol, vt, var(e_var), var(l_var),
                                None, loop.body, step_sign=1,
                                location=loop.location)
        epilogue._vec_generated = True
        stmts.append(epilogue)

        replacement = tast.TDoStat(tast.TBlock(stmts),
                                   location=loop.location)
        replacement._vec_generated = True
        return replacement


def vectorize_loop(loop: tast.TForNum, addr_taken: set,
                   width: int = 0) -> tast.TDoStat:
    """Vectorize one innermost loop, raising :class:`_Bail` on failure.

    ``width=0`` derives the lane count from the widest lane type and
    ``REPRO_TERRA_VEC_WIDTH``/``REPRO_TERRA_VEC_BYTES``; an explicit
    width forces it.  No bailout accounting happens here — the pass
    walker (and :mod:`repro.schedule.lower`, which forwards the bail as
    a ``ScheduleError``) decide how a failure is reported."""
    forced = width or _env_vec_width()
    # trial build: validates the loop and discovers the lane types
    trial = _LoopVectorizer(loop, forced or 2, addr_taken)
    trial.qualify()
    trial.build_body()
    if not forced:
        widest = max(ty.sizeof() for ty in trial.lane_types)
        forced = _env_vec_bytes() // widest
        if forced < 2:
            raise _Bail("width")
    final = _LoopVectorizer(loop, forced, addr_taken)
    final.qualify()
    body = final.build_body()
    return final.rewrite(body)


def _try_vectorize(loop: tast.TForNum, addr_taken: set):
    """``(replacement, None)`` on success, ``(None, reason)`` on bail."""
    try:
        return vectorize_loop(loop, addr_taken), None
    except _Bail as bail:
        return None, bail.reason


@register_pass
class VectorizePass(Pass):
    """Rewrite innermost countable loops into vector IR + epilogue."""

    name = "vectorize"

    def run(self, typed) -> bool:
        addr_taken = _addr_taken_symbols(typed.body)
        self.changed = False
        #: schedule-origin tokens whose bail was already counted this
        #: run — a Block/Tile/Unroll rewrite clones one source loop into
        #: several instances sharing an ``_sched_origin``; metrics must
        #: count one bail per *original* loop (PR 8 semantics) or
        #: schedules would inflate ``vec.bailouts.*`` incomparably
        self._bailed_origins: set = set()
        self._walk_block(typed.body, addr_taken)
        return self.changed

    def _walk_block(self, block: tast.TBlock, addr_taken: set) -> None:
        for pos, stat in enumerate(block.statements):
            if isinstance(stat, tast.TForNum) \
                    and not getattr(stat, "_vec_generated", False) \
                    and not _contains_loop(stat.body):
                replacement, reason = _try_vectorize(stat, addr_taken)
                if replacement is not None:
                    block.statements[pos] = replacement
                    self.changed = True
                    from ..trace.metrics import registry
                    registry().add("vec.loops")
                    continue
                origin = getattr(stat, "_sched_origin", None)
                if origin is None or id(origin) not in self._bailed_origins:
                    _count_bail(reason)
                    if origin is not None:
                        self._bailed_origins.add(id(origin))
            self._walk_children(stat, addr_taken)

    def _walk_children(self, node, addr_taken: set) -> None:
        if isinstance(node, tast.TIf):
            for _, body in node.branches:
                self._walk_block(body, addr_taken)
            if node.orelse is not None:
                self._walk_block(node.orelse, addr_taken)
            return
        for field in node._fields:
            child = getattr(node, field, None)
            if isinstance(child, tast.TBlock):
                self._walk_block(child, addr_taken)
