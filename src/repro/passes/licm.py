"""Loop-invariant code motion.

Staged kernels (the autotuner's blocked GEMM, for instance) index with
expressions like ``i * N + kb`` inside triply-nested loops; when the
inner loop does not change ``i`` or ``kb``, the multiply is recomputed
every iteration.  This pass hoists such expressions to a temporary
declared just before the loop.

Deliberately conservative — a hoisted expression must be

* **effect-free** (:func:`~repro.passes.analysis.has_side_effects`) and
  **trap-free** (:func:`~repro.passes.analysis.expr_may_trap`), checked
  separately so neither requirement can be weakened by accident:
  hoisting moves evaluation to before the first iteration, and for
  ``while``/``for`` loops the body may run *zero* times, so a hoisted
  ``x / y`` would introduce a division-by-zero trap the original program
  never executes;
* **scalar arithmetic over invariants**: built only from constants and
  local variables that the loop provably never mutates (no direct
  assignment inside the loop, not the loop variable, not declared in the
  loop, and never address-taken anywhere in the function — a store
  through a pointer could alias any address-taken local).  Globals and
  memory loads are never treated as invariant because a call inside the
  loop could mutate them;
* **non-trivial**: it contains at least one variable (pure-constant
  expressions are the fold pass's job) and at least one operation.

Loops are processed innermost-first so an expression invariant in several
nested loops is hoisted out of all of them, one level per step.  The
rewritten loop is wrapped in a ``do`` block holding the temporaries, so
their scope stays tight.
"""

from __future__ import annotations

from ..core import tast
from ..core import types as T
from ..core.symbols import Symbol
from .analysis import expr_may_trap, has_side_effects, transform_exprs
from .manager import Pass, register_pass


@register_pass
class LoopInvariantPass(Pass):
    """Hoist invariant scalar arithmetic out of loops."""

    name = "licm"

    def run(self, typed) -> bool:
        addr_taken: set[Symbol] = set()
        for node in tast.walk(typed.body):
            if isinstance(node, tast.TAddressOf) \
                    and isinstance(node.operand, tast.TVar):
                addr_taken.add(node.operand.symbol)
        changed = _rewrite_block(typed.body, addr_taken)
        return changed


_LOOPS = (tast.TWhile, tast.TRepeat, tast.TForNum)


def _rewrite_block(block: tast.TBlock, addr_taken: set[Symbol]) -> bool:
    changed = False
    out: list[tast.TStat] = []
    for s in block.statements:
        # innermost loops first
        for child in _child_blocks(s):
            changed |= _rewrite_block(child, addr_taken)
        if isinstance(s, _LOOPS):
            replacement = _hoist_loop(s, addr_taken)
            if replacement is not None:
                out.append(replacement)
                changed = True
                continue
        out.append(s)
    block.statements = out
    return changed


def _child_blocks(s: tast.TStat):
    if isinstance(s, tast.TIf):
        for _, body in s.branches:
            yield body
        if s.orelse is not None:
            yield s.orelse
    else:
        for field in s._fields:
            child = getattr(s, field)
            if isinstance(child, tast.TBlock):
                yield child


def _hoist_loop(loop: tast.TStat, addr_taken: set[Symbol]):
    """Hoist invariant subexpressions out of one loop.  Returns the
    replacement statement (a ``do`` block: temp decls + the loop), or
    None when nothing was hoisted."""
    mutated = _mutated_symbols(loop)

    def invariant_var(e: tast.TExpr) -> bool:
        return isinstance(e, tast.TVar) and e.symbol not in mutated \
            and e.symbol not in addr_taken

    def hoistable(e: tast.TExpr) -> bool:
        """Invariant scalar arithmetic built from invariant locals."""
        if isinstance(e, tast.TConst):
            return isinstance(e.type, T.PrimitiveType)
        if invariant_var(e):
            return isinstance(e.type, T.PrimitiveType)
        if isinstance(e, tast.TUnOp):
            return isinstance(e.type, T.PrimitiveType) \
                and not has_side_effects(e) and not expr_may_trap(e) \
                and hoistable(e.operand)
        if isinstance(e, tast.TBinOp):
            # trap-freedom is load-bearing, not just purity: the loop may
            # run zero times, and a hoisted `x / y` would evaluate a
            # division the original program never reaches
            return isinstance(e.type, T.PrimitiveType) \
                and not has_side_effects(e) and not expr_may_trap(e) \
                and hoistable(e.lhs) and hoistable(e.rhs)
        if isinstance(e, tast.TCast):
            return e.kind == "numeric" \
                and isinstance(e.type, T.PrimitiveType) \
                and hoistable(e.expr)
        return False

    def nontrivial(e: tast.TExpr) -> bool:
        """Worth a temporary: an operation that reads >= 1 variable."""
        if not isinstance(e, (tast.TBinOp, tast.TUnOp, tast.TCast)):
            return False
        return any(isinstance(n, tast.TVar) for n in tast.walk(e))

    hoisted: dict[tuple, tuple[Symbol, tast.TExpr]] = {}

    def visit(e: tast.TExpr) -> tast.TExpr:
        # children were already rewritten (bottom-up), so a maximal
        # invariant expression is seen after its pieces; only replace
        # maximal ones by checking at every node and letting outer
        # replacements subsume inner temps via the dedup key
        if not (hoistable(e) and nontrivial(e)):
            return e
        key = _structural_key(e)
        found = hoisted.get(key)
        if found is None:
            sym = Symbol(e.type, "licm")
            hoisted[key] = (sym, e)
        else:
            sym = found[0]
        return tast.TVar(sym, e.type, e.location)

    _rewrite_loop_exprs(loop, visit)
    if not hoisted:
        return None
    # temps that ended up used only inside other temps' initializers are
    # harmless: dce runs after licm and sweeps them
    decls: list[tast.TStat] = []
    for sym, expr in hoisted.values():
        decls.append(tast.TVarDecl([sym], [expr.type], [expr],
                                   loop.location))
    return tast.TDoStat(tast.TBlock(decls + [loop], loop.location),
                        loop.location)


def _rewrite_loop_exprs(loop: tast.TStat, visit) -> None:
    """Rewrite the loop's own invariant-evaluation points: the body, the
    condition, and (for ``for``) the bound expressions.  All of these are
    evaluated after the hoisted temps would be, so replacing them with
    temp reads is safe even for zero-trip loops (the temps are pure)."""
    if isinstance(loop, tast.TWhile):
        loop.cond = transform_exprs(loop.cond, visit)
        _rewrite_body(loop.body, visit)
    elif isinstance(loop, tast.TRepeat):
        _rewrite_body(loop.body, visit)
        loop.cond = transform_exprs(loop.cond, visit)
    elif isinstance(loop, tast.TForNum):
        loop.start = transform_exprs(loop.start, visit)
        loop.limit = transform_exprs(loop.limit, visit)
        if loop.step is not None:
            loop.step = transform_exprs(loop.step, visit)
        _rewrite_body(loop.body, visit)


def _rewrite_body(block: tast.TBlock, visit) -> None:
    # inner loops were already hoisted (innermost-first); their remaining
    # expressions still get rewritten here, since anything invariant in
    # the outer loop is invariant in the inner one too
    from .analysis import transform_stat
    for s in block.statements:
        transform_stat(s, visit)


def _mutated_symbols(loop: tast.TStat) -> set[Symbol]:
    """Locals the loop may change: direct assignment targets, symbols
    declared inside (their lifetime is per-iteration), and the loop
    variable itself."""
    mutated: set[Symbol] = set()
    if isinstance(loop, tast.TForNum):
        mutated.add(loop.symbol)
    for node in tast.walk(loop):
        if isinstance(node, tast.TAssign):
            for target in node.lhs:
                if isinstance(target, tast.TVar):
                    mutated.add(target.symbol)
        elif isinstance(node, tast.TVarDecl):
            mutated.update(node.symbols)
        elif isinstance(node, tast.TForNum):
            mutated.add(node.symbol)
    return mutated


def _structural_key(e: tast.TExpr):
    """A hashable structural identity for dedup (symbols by identity)."""
    if isinstance(e, tast.TConst):
        return ("const", e.type, e.value)
    if isinstance(e, tast.TVar):
        return ("var", e.symbol)
    if isinstance(e, tast.TUnOp):
        return ("unop", e.op, e.type, _structural_key(e.operand))
    if isinstance(e, tast.TBinOp):
        return ("binop", e.op, e.type, _structural_key(e.lhs),
                _structural_key(e.rhs))
    if isinstance(e, tast.TCast):
        return ("cast", e.kind, e.type, _structural_key(e.expr))
    return ("node", id(e))
