"""The pass-managed mid-level IR pipeline.

Every backend obtains its IR through this package: the linker runs
:func:`run_function_pipeline` over each member of a connected component
before handing the component to a backend, and the result is cached per
function (``TypedFunction.pipeline_level``), so the C emitter and the
reference interpreter always compile the *same* optimized tree.

See :mod:`repro.passes.manager` for the environment switches
(``REPRO_TERRA_PIPELINE``, ``REPRO_TERRA_DISABLE_PASSES``,
``REPRO_TERRA_DUMP_IR``, ``REPRO_TERRA_VERIFY_IR``).
"""

from .manager import (  # noqa: F401
    LEVEL_PASSES,
    PIPELINE_CANON,
    PIPELINE_FULL,
    PIPELINE_NONE,
    PIPELINE_VEC,
    Pass,
    PassManager,
    available_passes,
    create_pass,
    pipeline_override,
    pipelined_body,
    register_pass,
    resolve_level,
    run_function_pipeline,
    run_pipeline,
)
from .verify import verify_function  # noqa: F401

__all__ = [
    "LEVEL_PASSES",
    "PIPELINE_CANON",
    "PIPELINE_FULL",
    "PIPELINE_NONE",
    "PIPELINE_VEC",
    "Pass",
    "PassManager",
    "available_passes",
    "create_pass",
    "pipeline_override",
    "pipelined_body",
    "register_pass",
    "resolve_level",
    "run_function_pipeline",
    "run_pipeline",
    "verify_function",
]
