"""Algebraic simplification of typed IR.

Safe identities only — exact on wrapping integers, never applied to
floats where they would change NaN/signed-zero behaviour (``x*0`` is NOT
folded for floats, and ``x*0 → 0`` for integers only when ``x`` is pure,
since the operand's side effects and traps must be preserved):

* ``x+0, x-0, x|0, x^0, x<<0, x>>0, x*1, x/1 → x`` (and symmetric forms);
* ``x*0, 0*x → 0`` for integers when ``x`` is pure and trap-free;
* ``-(-x) → x`` for integers (exact mod 2^n), ``not not b → b``;
* reassociation ``(a + c1) + c2 → a + (c1+c2)`` — exact for wrapping
  integers (associativity mod 2^n), never applied to floats.

Canonicalizing these shapes matters beyond speed: tuner-generated kernels
that differ only in how constants were staged fold to identical trees,
emit byte-identical C, and therefore hit the buildd artifact cache.
"""

from __future__ import annotations

from ..backend.interp import values as V
from ..core import tast
from ..core import types as T
from .analysis import is_const, is_pure, transform_block
from .manager import Pass, register_pass


@register_pass
class SimplifyPass(Pass):
    """Apply algebraic identities bottom-up across the whole body."""

    name = "simplify"

    def run(self, typed) -> bool:
        changed = [False]

        def visit(e: tast.TExpr) -> tast.TExpr:
            out = _simplify(e)
            if out is not e:
                changed[0] = True
            return out

        transform_block(typed.body, visit)
        return changed[0]


def _simplify(e: tast.TExpr) -> tast.TExpr:
    if isinstance(e, tast.TBinOp):
        return _binop(e)
    if isinstance(e, tast.TUnOp):
        return _unop(e)
    return e


def _binop(e: tast.TBinOp) -> tast.TExpr:
    lhs, rhs = e.lhs, e.rhs
    ty = e.type
    if not (isinstance(ty, T.PrimitiveType) and ty.isintegral()):
        return e
    if is_const(rhs):
        if e.op in ("+", "-", "|", "^", "<<", ">>") and rhs.value == 0:
            return lhs
        if e.op in ("*", "/") and rhs.value == 1:
            return lhs
        if e.op == "*" and rhs.value == 0 and is_pure(lhs):
            return tast.TConst(0, ty, e.location)
    if is_const(lhs):
        if e.op in ("+", "|", "^") and lhs.value == 0:
            return rhs
        if e.op == "*" and lhs.value == 1:
            return rhs
        if e.op == "*" and lhs.value == 0 and is_pure(rhs):
            return tast.TConst(0, ty, e.location)
    # canonicalize const-on-the-left commutative forms: c + x -> x + c,
    # so reassociation below sees one shape (and equivalent stagings
    # emit identical C); a fresh node, so the caller sees the rewrite
    if e.op in ("+", "*") and is_const(lhs) and not is_const(rhs):
        e = tast.TBinOp(e.op, rhs, lhs, ty, e.location)
        lhs, rhs = e.lhs, e.rhs
    # reassociate (a + c1) + c2 -> a + (c1+c2): exact for wrapping
    # integers (associativity mod 2^n), never applied to floats
    if e.op in ("+", "*") and is_const(rhs) \
            and isinstance(lhs, tast.TBinOp) and lhs.op == e.op \
            and is_const(lhs.rhs) and lhs.type is e.type:
        folded = V.scalar_binop(e.op, lhs.rhs.value, rhs.value, ty)
        return _binop(tast.TBinOp(
            e.op, lhs.lhs, tast.TConst(folded, ty, e.location), ty,
            e.location))
    return e


def _unop(e: tast.TUnOp) -> tast.TExpr:
    inner = e.operand
    ty = e.type
    if e.op == "-" and isinstance(inner, tast.TUnOp) and inner.op == "-" \
            and isinstance(ty, T.PrimitiveType) and ty.isintegral() \
            and inner.type is ty:
        return inner.operand  # -(-x) == x mod 2^n
    if e.op == "not" and ty is T.bool_ \
            and isinstance(inner, tast.TUnOp) and inner.op == "not" \
            and inner.type is T.bool_:
        return inner.operand
    return e
