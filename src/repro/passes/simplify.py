"""Algebraic simplification of typed IR.

Safe identities only — exact on wrapping integers, never applied to
floats where they would change NaN/signed-zero behaviour (``x*0`` is NOT
folded for floats, and ``x*0 → 0`` for integers only when ``x`` is pure,
since the operand's side effects and traps must be preserved):

* ``x+0, x-0, x|0, x^0, x<<0, x>>0, x*1, x/1 → x`` (and symmetric forms);
* ``x*0, 0*x → 0`` for integers when ``x`` is pure and trap-free;
* ``-(-x) → x`` for integers (exact mod 2^n), ``not not b → b``;
* reassociation ``(a + c1) + c2 → a + (c1+c2)`` — exact for wrapping
  integers (associativity mod 2^n), never applied to floats;
* strength reduction: ``x * 2^k → x << k`` for any integer (wrapping
  multiply by a power of two IS a shift mod 2^n), and ``x / 2^k → x >> k``,
  ``x % 2^k → x & (2^k-1)`` for **unsigned** x only — signed division
  rounds toward zero while arithmetic shift rounds toward −∞, so the
  signed forms are NOT equivalent and are left alone.

One opt-in, *result-changing* rewrite: with ``REPRO_TERRA_FMA=1``, a
float ``a*b + c`` whose left operand is the multiply contracts to the
``fma`` intrinsic (single rounding, like ``-ffp-contract=fast``).  It is
off by default because contraction changes bits; the differential fuzzer
never enables it.

Canonicalizing these shapes matters beyond speed: tuner-generated kernels
that differ only in how constants were staged fold to identical trees,
emit byte-identical C, and therefore hit the buildd artifact cache.
"""

from __future__ import annotations

import os

from ..backend.interp import values as V
from ..core import tast
from ..core import types as T
from .analysis import is_const, is_pure, transform_block
from .manager import Pass, register_pass


def _fma_enabled() -> bool:
    return os.environ.get("REPRO_TERRA_FMA", "") not in ("", "0")


@register_pass
class SimplifyPass(Pass):
    """Apply algebraic identities bottom-up across the whole body."""

    name = "simplify"

    def run(self, typed) -> bool:
        changed = [False]

        def visit(e: tast.TExpr) -> tast.TExpr:
            out = _simplify(e)
            if out is not e:
                changed[0] = True
            return out

        transform_block(typed.body, visit)
        return changed[0]


def _simplify(e: tast.TExpr) -> tast.TExpr:
    if isinstance(e, tast.TBinOp):
        return _binop(e)
    if isinstance(e, tast.TUnOp):
        return _unop(e)
    return e


def _binop(e: tast.TBinOp) -> tast.TExpr:
    lhs, rhs = e.lhs, e.rhs
    ty = e.type
    if not (isinstance(ty, T.PrimitiveType) and ty.isintegral()):
        if isinstance(ty, T.PrimitiveType) and ty.isfloat():
            return _contract_fma(e)
        return e
    if is_const(rhs):
        if e.op in ("+", "-", "|", "^", "<<", ">>") and rhs.value == 0:
            return lhs
        if e.op in ("*", "/") and rhs.value == 1:
            return lhs
        if e.op == "*" and rhs.value == 0 and is_pure(lhs):
            return tast.TConst(0, ty, e.location)
    if is_const(lhs):
        if e.op in ("+", "|", "^") and lhs.value == 0:
            return rhs
        if e.op == "*" and lhs.value == 1:
            return rhs
        if e.op == "*" and lhs.value == 0 and is_pure(rhs):
            return tast.TConst(0, ty, e.location)
    # canonicalize const-on-the-left commutative forms: c + x -> x + c,
    # so reassociation below sees one shape (and equivalent stagings
    # emit identical C); a fresh node, so the caller sees the rewrite
    if e.op in ("+", "*") and is_const(lhs) and not is_const(rhs):
        e = tast.TBinOp(e.op, rhs, lhs, ty, e.location)
        lhs, rhs = e.lhs, e.rhs
    # reassociate (a + c1) + c2 -> a + (c1+c2): exact for wrapping
    # integers (associativity mod 2^n), never applied to floats
    if e.op in ("+", "*") and is_const(rhs) \
            and isinstance(lhs, tast.TBinOp) and lhs.op == e.op \
            and is_const(lhs.rhs) and lhs.type is e.type:
        folded = V.scalar_binop(e.op, lhs.rhs.value, rhs.value, ty)
        return _binop(tast.TBinOp(
            e.op, lhs.lhs, tast.TConst(folded, ty, e.location), ty,
            e.location))
    # merge shift chains (x << c1) << c2 -> x << (c1+c2): exact for <<,
    # logical >>, and arithmetic >> alike when the (masked) counts sum
    # below the width; strength-reduced multiply chains land here as
    # (x << 1) << 3 because reduction runs bottom-up
    if e.op in ("<<", ">>") and is_const(rhs) \
            and isinstance(lhs, tast.TBinOp) and lhs.op == e.op \
            and is_const(lhs.rhs) and lhs.type is ty:
        w = ty.bytes * 8
        c1 = lhs.rhs.value & (w - 1)
        c2 = rhs.value & (w - 1)
        if c1 + c2 < w:
            return tast.TBinOp(e.op, lhs.lhs,
                               tast.TConst(c1 + c2, ty, e.location),
                               ty, e.location)
    # strength reduction, after reassociation so `(x*c1)*c2` folds its
    # constants before the final multiply becomes a shift
    if is_const(rhs) and isinstance(rhs.value, int) \
            and not isinstance(rhs.value, bool) and rhs.value >= 2 \
            and rhs.value & (rhs.value - 1) == 0:
        k = rhs.value.bit_length() - 1
        if e.op == "*":
            # exact for signed AND unsigned: wrapping multiply by 2^k is
            # a left shift mod 2^n (the constant is in-range, so k < n);
            # re-enter _binop so a reduced chain merges its shift counts
            return _binop(tast.TBinOp("<<", lhs,
                                      tast.TConst(k, ty, e.location),
                                      ty, e.location))
        if not ty.signed and e.op == "/":
            # unsigned only: signed / truncates toward zero, >> toward −∞
            return _binop(tast.TBinOp(">>", lhs,
                                      tast.TConst(k, ty, e.location),
                                      ty, e.location))
        if not ty.signed and e.op == "%":
            return tast.TBinOp("&", lhs,
                               tast.TConst(rhs.value - 1, ty, e.location),
                               ty, e.location)
    return e


def _contract_fma(e: tast.TBinOp) -> tast.TExpr:
    """Opt-in (``REPRO_TERRA_FMA=1``) float ``a*b + c → fma(a, b, c)``.

    Only the left-operand-multiply form contracts, so a, b, c keep their
    original evaluation order.  Result-changing (single rounding), hence
    off by default and excluded from differential fuzzing."""
    if e.op != "+" or not _fma_enabled():
        return e
    mul = e.lhs
    if isinstance(mul, tast.TBinOp) and mul.op == "*" \
            and mul.type is e.type and not isinstance(e.type, T.VectorType):
        return tast.TIntrinsic("fma", [mul.lhs, mul.rhs, e.rhs], e.type,
                               e.location)
    return e


def _unop(e: tast.TUnOp) -> tast.TExpr:
    inner = e.operand
    ty = e.type
    if e.op == "-" and isinstance(inner, tast.TUnOp) and inner.op == "-" \
            and isinstance(ty, T.PrimitiveType) and ty.isintegral() \
            and inner.type is ty:
        return inner.operand  # -(-x) == x mod 2^n
    if e.op == "not" and ty is T.bool_ \
            and isinstance(inner, tast.TUnOp) and inner.op == "not" \
            and inner.type is T.bool_:
        return inner.operand
    return e
