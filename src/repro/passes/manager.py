"""The pass manager — one verified, pass-managed pipeline over the typed IR.

Terra separates *staging* (Lua builds the program) from *execution* (LLVM
optimizes and runs it).  Our reproduction's analog of the optimizer is
this pipeline: an ordered list of individually-switchable passes that
every backend consumes, run **once per function** and cached on the
:class:`~repro.core.tast.TypedFunction` (``pipeline_level``).  Each
backend reads the tree at *exactly* its declared level through
:func:`pipelined_body` — levels already passed by the in-place tree are
served from per-level snapshots — so what a backend compiles never
depends on which backend compiled first.

Environment switches:

* ``REPRO_TERRA_PIPELINE=<0|1|2|3>`` — force a pipeline level process-wide
  (0 = raw typed IR, 1 = canonicalize: fold/simplify/dce, 2 = full: +licm,
  3 = vectorize: +auto-vectorization of innermost countable loops);
* ``REPRO_TERRA_DISABLE_PASSES=licm,dce`` — drop individual passes;
* ``REPRO_TERRA_DUMP_IR=<pass|all>`` — print the IR before and after the
  named pass (or every pass) to stderr, rendered through
  :mod:`repro.core.prettyprint`;
* ``REPRO_TERRA_VERIFY_IR=1`` — run the IR verifier after typechecking
  and again after every transform, turning silent miscompiles into
  :class:`~repro.errors.IRVerifyError` diagnostics.

Per-pass wall time is merged into the :mod:`repro.buildd` telemetry, so
``python -m repro.buildd --stats`` reports where *IR* time went alongside
where *gcc* time went.
"""

from __future__ import annotations

import os
import sys
import time
from contextlib import contextmanager
from typing import Optional, Sequence

from ..errors import CompileError
from .. import trace

# -- pipeline levels --------------------------------------------------------------

#: raw typed IR, exactly as the typechecker produced it
PIPELINE_NONE = 0
#: canonicalizing cleanups: constant folding, algebraic simplification,
#: dead-local elimination — enough to make equivalent stagings emit
#: byte-identical C (and hit the buildd artifact cache)
PIPELINE_CANON = 1
#: the full pipeline: canonicalization plus loop-invariant hoisting
PIPELINE_FULL = 2
#: the vectorizing pipeline: full, plus auto-vectorization of innermost
#: countable loops (vector IR + scalar epilogue; see passes/vectorize.py)
PIPELINE_VEC = 3

LEVEL_PASSES: dict[int, tuple[str, ...]] = {
    PIPELINE_NONE: (),
    PIPELINE_CANON: ("fold", "simplify", "dce"),
    PIPELINE_FULL: ("fold", "simplify", "licm", "dce"),
    PIPELINE_VEC: ("fold", "simplify", "licm", "vectorize", "dce"),
}


class Pass:
    """One transformation (or analysis) over a typed function body.

    Subclasses set ``name`` and implement :meth:`run`, which transforms
    the function in place and returns True when anything changed.
    """

    name: str = "abstract"

    def run(self, typed) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<pass {self.name}>"


_REGISTRY: dict[str, type] = {}


def register_pass(cls: type) -> type:
    """Class decorator: make a Pass constructible by name."""
    _REGISTRY[cls.name] = cls
    return cls


def available_passes() -> list[str]:
    _ensure_registered()
    return sorted(_REGISTRY)


def create_pass(name: str) -> Pass:
    _ensure_registered()
    cls = _REGISTRY.get(name)
    if cls is None:
        raise CompileError(
            f"unknown IR pass {name!r} (available: "
            f"{', '.join(sorted(_REGISTRY))})")
    return cls()


def _ensure_registered() -> None:
    """Import the pass modules (each registers itself on import)."""
    from . import (dce, fold, licm, simplify, tileschedule,  # noqa: F401
                   vectorize, verify)


# -- env plumbing -----------------------------------------------------------------

def _env_verify() -> bool:
    return os.environ.get("REPRO_TERRA_VERIFY_IR", "") not in ("", "0")


def _env_dump() -> Optional[str]:
    return os.environ.get("REPRO_TERRA_DUMP_IR") or None


def _env_disabled() -> set[str]:
    raw = os.environ.get("REPRO_TERRA_DISABLE_PASSES", "")
    return {part.strip() for part in raw.split(",") if part.strip()}


#: process-wide level override installed by :func:`pipeline_override`
_level_override: Optional[int] = None


@contextmanager
def pipeline_override(level: int):
    """Force every subsequent pipeline run to ``level`` (tests use level 0
    to compile a function with the raw typed IR)."""
    global _level_override
    saved = _level_override
    _level_override = level
    try:
        yield
    finally:
        _level_override = saved


def resolve_level(level: Optional[int] = None) -> int:
    """The effective pipeline level: override > environment > request."""
    if _level_override is not None:
        return _level_override
    env = os.environ.get("REPRO_TERRA_PIPELINE")
    if env is not None and env != "":
        try:
            value = int(env)
        except ValueError:
            value = None
        if value is None or not PIPELINE_NONE <= value <= PIPELINE_VEC:
            raise CompileError(
                f"REPRO_TERRA_PIPELINE must be 0..3, got {env!r}")
        return value
    return PIPELINE_FULL if level is None else level


# -- the manager ------------------------------------------------------------------

class PassManager:
    """An ordered, switchable sequence of IR passes.

    ``passes`` is a sequence of pass names or :class:`Pass` instances;
    names listed in ``REPRO_TERRA_DISABLE_PASSES`` are dropped.  ``verify``
    and ``dump`` default from the environment (see module docstring).
    """

    def __init__(self, passes: Optional[Sequence] = None, *,
                 verify: Optional[bool] = None, dump: Optional[str] = None,
                 record_stats: bool = True):
        if passes is None:
            passes = LEVEL_PASSES[PIPELINE_FULL]
        resolved = [create_pass(p) if isinstance(p, str) else p
                    for p in passes]
        disabled = _env_disabled()
        self.passes: list[Pass] = [p for p in resolved
                                   if p.name not in disabled]
        self.verify = _env_verify() if verify is None else verify
        self.dump = _env_dump() if dump is None else dump
        self.record_stats = record_stats
        #: per-pass records of the most recent :meth:`run`
        self.last_run: list[dict] = []

    def disable(self, name: str) -> None:
        self.passes = [p for p in self.passes if p.name != name]

    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def run(self, typed) -> list[dict]:
        """Run every pass over ``typed`` (a TypedFunction), in order.

        Returns per-pass records ``{"pass", "seconds", "changed"}`` and
        keeps them in :attr:`last_run`.  With verification on, the
        verifier runs on the input tree and again after every transform.
        """
        from .verify import verify_function
        if self.verify:
            verify_function(typed, where="after typechecking")
        records: list[dict] = []
        for p in self.passes:
            self._dump(typed, p.name, "before")
            t0 = time.perf_counter()
            with trace.span(f"pass:{p.name}", cat="passes",
                            function=getattr(typed, "name", "?")) as sp:
                changed = bool(p.run(typed))
                sp.set(changed=changed)
            seconds = time.perf_counter() - t0
            self._dump(typed, p.name, "after")
            if self.verify and p.name != "verify":
                verify_function(typed, where=f"after pass {p.name!r}")
            records.append(
                {"pass": p.name, "seconds": seconds, "changed": changed})
            if self.record_stats:
                _record_pass_time(p.name, seconds)
        self.last_run = records
        return records

    def _dump(self, typed, pass_name: str, when: str) -> None:
        if self.dump is None or self.dump not in (pass_name, "all"):
            return
        from ..core.prettyprint import format_typed_ir
        header = f"-- IR {when} pass {pass_name!r} ({typed.name}) --"
        print(header, file=sys.stderr)
        print(format_typed_ir(typed), file=sys.stderr)


def _record_pass_time(name: str, seconds: float) -> None:
    """Merge pass timing into the process metrics registry — the same
    series ``repro.buildd.stats()["passes"]`` reports, without needing a
    compile service to exist (see :mod:`repro.trace.metrics`)."""
    from ..trace.metrics import registry
    registry().record_time(f"pass.{name}", seconds)


# -- per-function pipeline entry points -------------------------------------------

class _LevelView:
    """A TypedFunction facade exposing an alternate ``body`` (the same
    function at a different pipeline level), so passes and the verifier
    can run over a snapshot without touching the in-place tree."""

    def __init__(self, typed, body):
        self._typed = typed
        self.body = body

    def __getattr__(self, name):
        return getattr(self._typed, name)


def _ensure_scheduled(typed) -> None:
    """Lower an attached :mod:`repro.schedule` Schedule exactly once,
    *before* any level logic touches the tree (pipeline lock held).

    Runs ahead of the first level snapshot so that every pipeline level
    — including level 0, which runs no passes — sees the scheduled
    loops, keeping the per-level snapshot machinery and the scheduled
    rewrite orthogonal.
    """
    if getattr(typed, "_sched_lowered", False):
        return
    func = getattr(typed, "func", None)
    if getattr(func, "schedule", None):
        PassManager(("schedule",)).run(typed)
    typed._sched_lowered = True


def _advance_locked(typed, level: int) -> None:
    """Advance ``typed.body`` in place to ``level`` (pipeline lock held).

    The body is snapshotted (cloned) at its current level first, so a
    later request for a lower level — e.g. the C backend compiling after
    the interpreter already ran LICM — still gets exactly the tree it
    asked for via :func:`pipelined_body`."""
    from ..core.tast import clone
    if typed.pipeline_level not in typed._pipeline_bodies:
        typed._pipeline_bodies[typed.pipeline_level] = clone(typed.body)
    with trace.span(f"pipeline:{typed.name}", cat="passes",
                    level=level, from_level=typed.pipeline_level):
        PassManager(LEVEL_PASSES[level]).run(typed)
    typed.pipeline_level = level


def run_pipeline(typed, level: Optional[int] = None) -> bool:
    """Run the level's pipeline over one TypedFunction, exactly once.

    The result is cached via ``typed.pipeline_level`` under the
    function's pipeline lock, so concurrent compiles (two backends, two
    threads racing through the linker) can neither double-transform the
    tree nor observe it half-rewritten.  Re-entry at the same or a lower
    level is a no-op for the in-place tree (use :func:`pipelined_body`
    to *read* the tree at an exact level); a higher level runs the
    higher pipeline (every transform pass is idempotent).  Returns True
    if passes ran.
    """
    level = resolve_level(level)
    with typed._pipeline_lock:
        _ensure_scheduled(typed)
        if typed.pipeline_level >= level:
            return False
        _advance_locked(typed, level)
    return True


def pipelined_body(typed, level: Optional[int] = None):
    """The function body at *exactly* the resolved ``level``.

    If the in-place tree is below the level, it is advanced as in
    :func:`run_pipeline`.  If another backend already advanced it
    further (pipeline levels are monotonic per function), the requested
    level is rebuilt from the snapshot taken before that advance and
    cached per level — so the C emitter sees the CANON tree whether it
    compiles before or after the interpreter ran LICM, and equivalent
    stagings emit byte-identical C in any compile order.
    """
    level = resolve_level(level)
    with typed._pipeline_lock:
        _ensure_scheduled(typed)
        if typed.pipeline_level < level:
            _advance_locked(typed, level)
        if typed.pipeline_level == level:
            return typed.body
        body = typed._pipeline_bodies.get(level)
        if body is None:
            from ..core.tast import clone
            base = max(lv for lv in typed._pipeline_bodies if lv <= level)
            body = clone(typed._pipeline_bodies[base])
            if LEVEL_PASSES[level]:
                view = _LevelView(typed, body)
                PassManager(LEVEL_PASSES[level]).run(view)
                body = view.body
            typed._pipeline_bodies[level] = body
        return body


def run_function_pipeline(fn, level: Optional[int] = None) -> bool:
    """Pipeline entry point for a TerraFunction (no-op for externals and
    functions that have not been typechecked yet)."""
    typed = getattr(fn, "typed", None)
    if typed is None or getattr(fn, "is_external", False):
        return False
    return run_pipeline(typed, level)
