"""The pass manager — one verified, pass-managed pipeline over the typed IR.

Terra separates *staging* (Lua builds the program) from *execution* (LLVM
optimizes and runs it).  Our reproduction's analog of the optimizer is
this pipeline: an ordered list of individually-switchable passes that
every backend consumes, run **once per function** and cached on the
:class:`~repro.core.tast.TypedFunction` (``pipeline_level``), so the C
emitter and the reference interpreter always see the *same* program text.

Environment switches:

* ``REPRO_TERRA_PIPELINE=<0|1|2>`` — force a pipeline level process-wide
  (0 = raw typed IR, 1 = canonicalize: fold/simplify/dce, 2 = full: +licm);
* ``REPRO_TERRA_DISABLE_PASSES=licm,dce`` — drop individual passes;
* ``REPRO_TERRA_DUMP_IR=<pass|all>`` — print the IR before and after the
  named pass (or every pass) to stderr, rendered through
  :mod:`repro.core.prettyprint`;
* ``REPRO_TERRA_VERIFY_IR=1`` — run the IR verifier after typechecking
  and again after every transform, turning silent miscompiles into
  :class:`~repro.errors.IRVerifyError` diagnostics.

Per-pass wall time is merged into the :mod:`repro.buildd` telemetry, so
``python -m repro.buildd --stats`` reports where *IR* time went alongside
where *gcc* time went.
"""

from __future__ import annotations

import os
import sys
import time
from contextlib import contextmanager
from typing import Optional, Sequence

from ..errors import CompileError

# -- pipeline levels --------------------------------------------------------------

#: raw typed IR, exactly as the typechecker produced it
PIPELINE_NONE = 0
#: canonicalizing cleanups: constant folding, algebraic simplification,
#: dead-local elimination — enough to make equivalent stagings emit
#: byte-identical C (and hit the buildd artifact cache)
PIPELINE_CANON = 1
#: the full pipeline: canonicalization plus loop-invariant hoisting
PIPELINE_FULL = 2

LEVEL_PASSES: dict[int, tuple[str, ...]] = {
    PIPELINE_NONE: (),
    PIPELINE_CANON: ("fold", "simplify", "dce"),
    PIPELINE_FULL: ("fold", "simplify", "licm", "dce"),
}


class Pass:
    """One transformation (or analysis) over a typed function body.

    Subclasses set ``name`` and implement :meth:`run`, which transforms
    the function in place and returns True when anything changed.
    """

    name: str = "abstract"

    def run(self, typed) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<pass {self.name}>"


_REGISTRY: dict[str, type] = {}


def register_pass(cls: type) -> type:
    """Class decorator: make a Pass constructible by name."""
    _REGISTRY[cls.name] = cls
    return cls


def available_passes() -> list[str]:
    _ensure_registered()
    return sorted(_REGISTRY)


def create_pass(name: str) -> Pass:
    _ensure_registered()
    cls = _REGISTRY.get(name)
    if cls is None:
        raise CompileError(
            f"unknown IR pass {name!r} (available: "
            f"{', '.join(sorted(_REGISTRY))})")
    return cls()


def _ensure_registered() -> None:
    """Import the pass modules (each registers itself on import)."""
    from . import dce, fold, licm, simplify, verify  # noqa: F401


# -- env plumbing -----------------------------------------------------------------

def _env_verify() -> bool:
    return os.environ.get("REPRO_TERRA_VERIFY_IR", "") not in ("", "0")


def _env_dump() -> Optional[str]:
    return os.environ.get("REPRO_TERRA_DUMP_IR") or None


def _env_disabled() -> set[str]:
    raw = os.environ.get("REPRO_TERRA_DISABLE_PASSES", "")
    return {part.strip() for part in raw.split(",") if part.strip()}


#: process-wide level override installed by :func:`pipeline_override`
_level_override: Optional[int] = None


@contextmanager
def pipeline_override(level: int):
    """Force every subsequent pipeline run to ``level`` (tests use level 0
    to compile a function with the raw typed IR)."""
    global _level_override
    saved = _level_override
    _level_override = level
    try:
        yield
    finally:
        _level_override = saved


def resolve_level(level: Optional[int] = None) -> int:
    """The effective pipeline level: override > environment > request."""
    if _level_override is not None:
        return _level_override
    env = os.environ.get("REPRO_TERRA_PIPELINE")
    if env is not None and env != "":
        try:
            return max(PIPELINE_NONE, min(PIPELINE_FULL, int(env)))
        except ValueError:
            raise CompileError(
                f"REPRO_TERRA_PIPELINE must be 0..2, got {env!r}")
    return PIPELINE_FULL if level is None else level


# -- the manager ------------------------------------------------------------------

class PassManager:
    """An ordered, switchable sequence of IR passes.

    ``passes`` is a sequence of pass names or :class:`Pass` instances;
    names listed in ``REPRO_TERRA_DISABLE_PASSES`` are dropped.  ``verify``
    and ``dump`` default from the environment (see module docstring).
    """

    def __init__(self, passes: Optional[Sequence] = None, *,
                 verify: Optional[bool] = None, dump: Optional[str] = None,
                 record_stats: bool = True):
        if passes is None:
            passes = LEVEL_PASSES[PIPELINE_FULL]
        resolved = [create_pass(p) if isinstance(p, str) else p
                    for p in passes]
        disabled = _env_disabled()
        self.passes: list[Pass] = [p for p in resolved
                                   if p.name not in disabled]
        self.verify = _env_verify() if verify is None else verify
        self.dump = _env_dump() if dump is None else dump
        self.record_stats = record_stats
        #: per-pass records of the most recent :meth:`run`
        self.last_run: list[dict] = []

    def disable(self, name: str) -> None:
        self.passes = [p for p in self.passes if p.name != name]

    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def run(self, typed) -> list[dict]:
        """Run every pass over ``typed`` (a TypedFunction), in order.

        Returns per-pass records ``{"pass", "seconds", "changed"}`` and
        keeps them in :attr:`last_run`.  With verification on, the
        verifier runs on the input tree and again after every transform.
        """
        from .verify import verify_function
        if self.verify:
            verify_function(typed, where="after typechecking")
        records: list[dict] = []
        for p in self.passes:
            self._dump(typed, p.name, "before")
            t0 = time.perf_counter()
            changed = bool(p.run(typed))
            seconds = time.perf_counter() - t0
            self._dump(typed, p.name, "after")
            if self.verify and p.name != "verify":
                verify_function(typed, where=f"after pass {p.name!r}")
            records.append(
                {"pass": p.name, "seconds": seconds, "changed": changed})
            if self.record_stats:
                _record_pass_time(p.name, seconds)
        self.last_run = records
        return records

    def _dump(self, typed, pass_name: str, when: str) -> None:
        if self.dump is None or self.dump not in (pass_name, "all"):
            return
        from ..core.prettyprint import format_typed_ir
        header = f"-- IR {when} pass {pass_name!r} ({typed.name}) --"
        print(header, file=sys.stderr)
        print(format_typed_ir(typed), file=sys.stderr)


def _record_pass_time(name: str, seconds: float) -> None:
    """Merge pass timing into the buildd telemetry (best-effort: the
    pipeline must keep working even if the compile service cannot start,
    e.g. on a host with no usable temp dir)."""
    try:
        from ..buildd import get_service
        get_service().stats.record_pass(name, seconds)
    except Exception:
        pass


# -- per-function pipeline entry points -------------------------------------------

def run_pipeline(typed, level: Optional[int] = None) -> bool:
    """Run the level's pipeline over one TypedFunction, exactly once.

    The result is cached via ``typed.pipeline_level`` under the
    function's pipeline lock, so concurrent compiles (two backends, two
    threads racing through the linker) can neither double-transform the
    tree nor observe it half-rewritten.  Re-entry at the same or a lower
    level is a no-op; a higher level runs the higher pipeline (every
    transform pass is idempotent).  Returns True if passes ran.
    """
    level = resolve_level(level)
    with typed._pipeline_lock:
        if typed.pipeline_level >= level:
            return False
        manager = PassManager(LEVEL_PASSES[level])
        manager.run(typed)
        typed.pipeline_level = level
    return True


def run_function_pipeline(fn, level: Optional[int] = None) -> bool:
    """Pipeline entry point for a TerraFunction (no-op for externals and
    functions that have not been typechecked yet)."""
    typed = getattr(fn, "typed", None)
    if typed is None or getattr(fn, "is_external", False):
        return False
    return run_pipeline(typed, level)
