"""Constant folding and control-flow pruning (migrated from the old
interp-only ``core/optimize.py``).

Staged programs bake meta-level constants (block sizes, strides, unrolled
indices) into the object program; folding them is what makes the paper's
separation of staging from optimization pay off.  Every fold reuses the
interpreter's own C-semantics scalar operations, so it is
semantics-preserving by construction:

* binary/unary operations over constants → constants (wrapping integers,
  truncation-toward-zero division, float32 rounding);
* numeric casts of constants → constants;
* ``if`` branches with constant conditions → the taken block (or removed);
* ``while false`` loops, zero-trip ``for`` loops, and statements after an
  unconditional exit → removed;
* short-circuit ``and``/``or`` with constant **left** sides → simplified
  (the right side is dropped only when short-circuit semantics guarantee
  it would never run, so a trapping right side is preserved exactly when
  it could trap);
* operations that could trap (``1/0``) are *never* folded away — they are
  left in place to fail at runtime.
"""

from __future__ import annotations

from ..backend.interp import values as V
from ..errors import TrapError
from ..core import tast
from ..core import types as T
from .analysis import is_const
from .manager import Pass, register_pass

_COMPARES = {"<", ">", "<=", ">=", "==", "~="}


@register_pass
class FoldPass(Pass):
    """Fold constants and prune constant control flow, in place."""

    name = "fold"

    def run(self, typed) -> bool:
        before = sum(1 for _ in tast.walk(typed.body))
        typed.body = _block(typed.body)
        return sum(1 for _ in tast.walk(typed.body)) != before


# -- expressions ------------------------------------------------------------------

def _expr(e: tast.TExpr) -> tast.TExpr:
    # recurse into children first
    for field in e._fields:
        child = getattr(e, field)
        if isinstance(child, tast.TExpr):
            setattr(e, field, _expr(child))
        elif isinstance(child, list):
            setattr(e, field, [
                _expr(c) if isinstance(c, tast.TExpr) else c for c in child])
    if isinstance(e, tast.TBinOp):
        return _fold_binop(e)
    if isinstance(e, tast.TUnOp):
        return _fold_unop(e)
    if isinstance(e, tast.TCast):
        return _fold_cast(e)
    if isinstance(e, tast.TLogical):
        return _fold_logical(e)
    if isinstance(e, tast.TLetIn):
        e.block = _block(e.block)
        return e
    return e


def _fold_binop(e: tast.TBinOp) -> tast.TExpr:
    lhs, rhs = e.lhs, e.rhs
    if not (is_const(lhs) and is_const(rhs)):
        return e
    ty = lhs.type
    try:
        if e.op in _COMPARES:
            result = V.scalar_compare(e.op, lhs.value, rhs.value)
            return tast.TConst(result, T.bool_, e.location)
        if ty.islogical() and e.op in ("and", "or", "^"):
            result = V.scalar_binop(e.op, lhs.value, rhs.value, ty)
            return tast.TConst(result, ty, e.location)
        if ty.isarithmetic():
            result = V.scalar_binop(e.op, lhs.value, rhs.value, ty)
            return tast.TConst(result, e.type, e.location)
    except TrapError:
        return e  # division by zero etc: leave it to fail at runtime
    return e


def _fold_unop(e: tast.TUnOp) -> tast.TExpr:
    operand = e.operand
    if not is_const(operand):
        return e
    ty = operand.type
    if e.op == "-" and ty.isarithmetic():
        return tast.TConst(V.scalar_neg(operand.value, ty),
                           e.type, e.location)
    if e.op == "not":
        if ty.islogical():
            return tast.TConst(not operand.value, T.bool_, e.location)
        if ty.isintegral():
            from ..memory.layout import wrap_int
            return tast.TConst(wrap_int(~operand.value, ty), ty, e.location)
    return e


def _fold_cast(e: tast.TCast) -> tast.TExpr:
    if e.kind == "numeric" and is_const(e.expr) \
            and isinstance(e.type, T.PrimitiveType):
        value = V.scalar_cast(e.expr.value, e.expr.type, e.type)
        return tast.TConst(value, e.type, e.location)
    return e


def _fold_logical(e: tast.TLogical) -> tast.TExpr:
    lhs = e.lhs
    if is_const(lhs):
        # short-circuit: when the left side decides, the right side would
        # never have been evaluated, so dropping it preserves traps
        if e.op == "and":
            return e.rhs if lhs.value else tast.TConst(False, T.bool_,
                                                       e.location)
        return tast.TConst(True, T.bool_, e.location) if lhs.value else e.rhs
    return e


# -- statements -------------------------------------------------------------------

def _block(block: tast.TBlock) -> tast.TBlock:
    out: list[tast.TStat] = []
    for stat in block.statements:
        lowered = _stat(stat)
        for s in lowered:
            out.append(s)
            if isinstance(s, (tast.TReturn, tast.TBreak)):
                # everything after an unconditional exit is unreachable
                block.statements = out
                return block
    block.statements = out
    return block


def _stat(s: tast.TStat) -> list[tast.TStat]:
    if isinstance(s, tast.TVarDecl):
        if s.inits is not None:
            s.inits = [_expr(x) for x in s.inits]
        return [s]
    if isinstance(s, tast.TAssign):
        s.lhs = [_expr(x) for x in s.lhs]
        s.rhs = [_expr(x) for x in s.rhs]
        return [s]
    if isinstance(s, tast.TIf):
        return _fold_if(s)
    if isinstance(s, tast.TWhile):
        s.cond = _expr(s.cond)
        if is_const(s.cond) and not s.cond.value:
            return []  # while false: gone
        s.body = _block(s.body)
        return [s]
    if isinstance(s, tast.TRepeat):
        s.body = _block(s.body)
        s.cond = _expr(s.cond)
        return [s]
    if isinstance(s, tast.TForNum):
        s.start = _expr(s.start)
        s.limit = _expr(s.limit)
        if s.step is not None:
            s.step = _expr(s.step)
        if is_const(s.start) and is_const(s.limit) \
                and (s.step is None or is_const(s.step)):
            # only prune when the step's SIGN is known: a non-constant
            # step is not "1" — `for i = 5, 0, s` with a runtime
            # negative s runs, and deleting it would be a miscompile
            step_val = s.step.value if s.step is not None else 1
            if step_val > 0 and s.start.value >= s.limit.value:
                return []  # zero-trip loop
            if step_val < 0 and s.start.value <= s.limit.value:
                return []
        s.body = _block(s.body)
        return [s]
    if isinstance(s, tast.TDoStat):
        s.body = _block(s.body)
        if not s.body.statements:
            return []
        return [s]
    if isinstance(s, tast.TReturn):
        if s.expr is not None:
            s.expr = _expr(s.expr)
        return [s]
    if isinstance(s, tast.TExprStat):
        s.expr = _expr(s.expr)
        if isinstance(s.expr, (tast.TConst, tast.TVar)):
            return []  # a bare constant/variable has no effect
        return [s]
    return [s]


def _fold_if(s: tast.TIf) -> list[tast.TStat]:
    branches = []
    for cond, body in s.branches:
        cond = _expr(cond)
        if is_const(cond):
            if cond.value:
                # this branch always runs; it terminates the chain
                if not branches:
                    return list(_block(body).statements)
                s.branches = branches
                s.orelse = _block(body)
                return [s]
            continue  # branch can never run: drop it
        branches.append((cond, _block(body)))
    if s.orelse is not None:
        s.orelse = _block(s.orelse)
        if not s.orelse.statements:
            s.orelse = None
    if not branches:
        return list(s.orelse.statements) if s.orelse is not None else []
    s.branches = branches
    return [s]
