"""The ``schedule`` pass: lower attached Schedule directives onto typed IR.

Runs once per function *before* any pipeline level (the manager calls it
through ``_ensure_scheduled`` under the pipeline lock), so every level —
including level 0, which runs no optimization passes — sees the
scheduled tree and the per-level snapshots stay consistent.  Registered
as a normal pass so it gets IR dumping (``REPRO_TERRA_DUMP_IR=schedule``),
verifier integration, and ``pass.schedule`` timing for free.
"""

from __future__ import annotations

import os
import sys

from .manager import Pass, register_pass


def _dump_scheduled(typed, schedule) -> None:
    """``REPRO_TERRA_SCHEDULE_DUMP=<path|1>``: write the scheduled IR
    (before any optimization pass touches it) to a file — appending, so
    one dump file collects every scheduled kernel of a run; this is the
    artifact the CI schedule-smoke job uploads — or to stderr for ``1``."""
    dest = os.environ.get("REPRO_TERRA_SCHEDULE_DUMP", "")
    if not dest:
        return
    from ..core.prettyprint import format_typed_ir
    text = (f"-- {typed.name}: {schedule.key()}\n"
            f"{format_typed_ir(typed)}\n")
    if dest == "1":
        sys.stderr.write(text)
    else:
        with open(dest, "a") as fh:
            fh.write(text)


@register_pass
class SchedulePass(Pass):
    """Apply ``typed.func.schedule`` (a :class:`repro.schedule.Schedule`)."""

    name = "schedule"

    def run(self, typed) -> bool:
        if getattr(typed, "_sched_lowered", False):
            return False
        typed._sched_lowered = True
        func = getattr(typed, "func", None)
        schedule = getattr(func, "schedule", None)
        if not schedule:
            return False
        from ..schedule import _env_disabled
        from ..schedule.lower import lower_schedule
        if _env_disabled():
            return False
        changed = lower_schedule(typed, schedule)
        if changed:
            _dump_scheduled(typed, schedule)
        return changed
