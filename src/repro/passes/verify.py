"""The typed-IR verifier.

Every transform pass rewrites the tree in place; a bug there shows up as
a silent miscompile (the C emitter happily prints a tree with the wrong
types).  The verifier turns such bugs into immediate
:class:`~repro.errors.IRVerifyError` diagnostics.  It re-checks the
invariants the typechecker established:

* every expression node carries a resolved Terra ``type``;
* every variable reference is in scope and has its declared type
  (parameters, ``var`` declarations, loop variables, ``let-in`` blocks;
  ``repeat``'s condition sees the body's scope, as in Lua);
* lvalue positions (assignment targets, ``&`` operands) are addressable;
* operator/operand types agree exactly — types are interned, so identity
  comparison is the right notion of equality (pointer arithmetic indexes
  with ``int64``, comparisons produce ``bool`` or a bool vector, shifts
  take their left operand's type, everything else is unified);
* casts are between representable types for their ``kind``;
* calls pass each fixed parameter at exactly the declared type, and
  returns carry exactly the function's return type.

Enable with ``REPRO_TERRA_VERIFY_IR=1`` (the pass manager then runs it
after typechecking and again after every transform), or call
:func:`verify_function` directly.
"""

from __future__ import annotations

from ..core import tast
from ..core import types as T
from ..core.symbols import Symbol
from ..errors import IRVerifyError
from .manager import Pass, register_pass

_CAST_KINDS = ("numeric", "pointer", "broadcast", "vector", "ptr-int",
               "int-ptr", "aggregate")


def verify_function(typed, where: str = "", body=None) -> None:
    """Check one TypedFunction; raises IRVerifyError on the first
    violation, annotated with ``where`` (e.g. "after pass 'fold'").

    ``body`` checks an alternate body for the same function — the C
    emitter passes the per-level snapshot it is about to emit, which may
    differ from the in-place ``typed.body``."""
    _Verifier(typed, where, body).run()


@register_pass
class VerifyPass(Pass):
    """The verifier as a schedulable pass (changes nothing)."""

    name = "verify"

    def run(self, typed) -> bool:
        verify_function(typed)
        return False


class _Verifier:
    def __init__(self, typed, where: str = "", body=None):
        self.typed = typed
        self.where = where
        self.body = typed.body if body is None else body

    def err(self, node, msg: str) -> None:
        ctx = f" {self.where}" if self.where else ""
        loc = getattr(node, "location", None)
        at = f" at {loc}" if loc is not None else ""
        raise IRVerifyError(
            f"IR verification failed in {self.typed.name!r}{ctx}{at}: "
            f"{msg} [{type(node).__name__}]")

    def run(self) -> None:
        typed = self.typed
        if not isinstance(self.body, tast.TBlock):
            self.err(self.body, "function body is not a TBlock")
        params: dict[Symbol, T.Type] = {}
        for sym, ty in zip(typed.param_symbols, typed.type.parameters):
            params[sym] = ty
        self.scopes: list[dict[Symbol, T.Type]] = [params]
        self.block(self.body)

    # -- scope handling ----------------------------------------------------------

    def declare(self, sym: Symbol, ty: T.Type) -> None:
        self.scopes[-1][sym] = ty

    def lookup(self, sym: Symbol):
        for scope in reversed(self.scopes):
            if sym in scope:
                return scope[sym]
        return None

    # -- statements --------------------------------------------------------------

    def block(self, b) -> None:
        if not isinstance(b, tast.TBlock):
            self.err(b, "expected a TBlock")
        self.scopes.append({})
        for s in b.statements:
            self.stat(s)
        self.scopes.pop()

    def stat(self, s) -> None:
        if not isinstance(s, tast.TStat):
            self.err(s, "statement position holds a non-statement")
        if isinstance(s, tast.TVarDecl):
            if len(s.symbols) != len(s.types):
                self.err(s, f"declares {len(s.symbols)} names with "
                            f"{len(s.types)} types")
            if s.inits is not None:
                if len(s.inits) != len(s.symbols):
                    self.err(s, f"declares {len(s.symbols)} names with "
                                f"{len(s.inits)} initializers")
                for init, ty in zip(s.inits, s.types):
                    self.expr(init)
                    if init.type is not ty:
                        self.err(s, f"initializer has type {init.type}, "
                                    f"variable declared {ty}")
            for sym, ty in zip(s.symbols, s.types):
                self.declare(sym, ty)
        elif isinstance(s, tast.TAssign):
            if len(s.lhs) != len(s.rhs):
                self.err(s, f"assigns {len(s.rhs)} values to "
                            f"{len(s.lhs)} targets")
            for target, value in zip(s.lhs, s.rhs):
                self.expr(target)
                self.expr(value)
                if not target.lvalue:
                    self.err(target, "assignment target is not an lvalue")
                if value.type is not target.type:
                    self.err(s, f"assigns {value.type} to an lvalue of "
                                f"type {target.type}")
        elif isinstance(s, tast.TIf):
            for cond, body in s.branches:
                self.cond(cond)
                self.block(body)
            if s.orelse is not None:
                self.block(s.orelse)
        elif isinstance(s, tast.TWhile):
            self.cond(s.cond)
            self.block(s.body)
        elif isinstance(s, tast.TRepeat):
            # repeat/until: the condition sees the body's scope
            self.scopes.append({})
            for inner in s.body.statements:
                self.stat(inner)
            self.cond(s.cond)
            self.scopes.pop()
        elif isinstance(s, tast.TForNum):
            if not s.var_type.isarithmetic():
                self.err(s, f"loop variable has non-arithmetic type "
                            f"{s.var_type}")
            for bound in (s.start, s.limit, s.step):
                if bound is None:
                    continue
                self.expr(bound)
                if bound.type is not s.var_type:
                    self.err(s, f"loop bound has type {bound.type}, "
                                f"loop variable is {s.var_type}")
            self.scopes.append({s.symbol: s.var_type})
            self.block(s.body)
            self.scopes.pop()
        elif isinstance(s, tast.TDoStat):
            self.block(s.body)
        elif isinstance(s, tast.TReturn):
            rt = self.typed.type.returntype
            if s.expr is None:
                if self.typed.type.returns:
                    self.err(s, f"bare return in a function returning {rt}")
            else:
                self.expr(s.expr)
                if s.expr.type is not rt:
                    self.err(s, f"returns {s.expr.type}, function "
                                f"returns {rt}")
        elif isinstance(s, tast.TExprStat):
            self.expr(s.expr)
        elif isinstance(s, tast.TBreak):
            pass
        else:
            self.err(s, "unknown statement node")

    def cond(self, e) -> None:
        self.expr(e)
        if e.type is not T.bool_:
            self.err(e, f"condition has type {e.type}, expected bool")

    # -- expressions -------------------------------------------------------------

    def expr(self, e) -> None:
        if not isinstance(e, tast.TExpr):
            self.err(e, "expression position holds a non-expression")
        ty = getattr(e, "type", None)
        if not isinstance(ty, T.Type):
            self.err(e, f"expression carries no resolved type (got {ty!r})")
        if isinstance(e, tast.TConst):
            self.const(e)
        elif isinstance(e, tast.TString):
            if ty is not T.rawstring:
                self.err(e, f"string constant typed {ty}")
        elif isinstance(e, tast.TNull):
            if not ty.ispointer():
                self.err(e, f"null constant typed {ty} (not a pointer)")
        elif isinstance(e, tast.TVar):
            declared = self.lookup(e.symbol)
            if declared is None:
                self.err(e, f"variable {e.symbol.name} used outside any "
                            f"declaring scope")
            if ty is not declared:
                self.err(e, f"variable {e.symbol.name} used at type {ty}, "
                            f"declared {declared}")
        elif isinstance(e, tast.TGlobal):
            if ty is not e.glob.type:
                self.err(e, f"global reference typed {ty}, global is "
                            f"{e.glob.type}")
        elif isinstance(e, (tast.TFuncLit, tast.TCallback)):
            if not (ty.ispointer()
                    and isinstance(ty.pointee, T.FunctionType)):
                self.err(e, f"function literal typed {ty}")
        elif isinstance(e, tast.TCast):
            self.cast(e)
        elif isinstance(e, tast.TCall):
            self.call(e)
        elif isinstance(e, tast.TSelect):
            self.select(e)
        elif isinstance(e, tast.TIndex):
            self.index(e)
        elif isinstance(e, tast.TVectorIndex):
            self.vector_index(e)
        elif isinstance(e, tast.TDeref):
            self.expr(e.ptr)
            if not e.ptr.type.ispointer():
                self.err(e, f"dereference of non-pointer {e.ptr.type}")
            if ty is not e.ptr.type.pointee:
                self.err(e, f"dereference of {e.ptr.type} typed {ty}")
        elif isinstance(e, tast.TAddressOf):
            self.expr(e.operand)
            if not e.operand.lvalue:
                self.err(e, "address-of a non-lvalue")
            if ty is not T.pointer(e.operand.type):
                self.err(e, f"&{e.operand.type} typed {ty}")
        elif isinstance(e, tast.TUnOp):
            self.unop(e)
        elif isinstance(e, tast.TBinOp):
            self.binop(e)
        elif isinstance(e, tast.TLogical):
            self.expr(e.lhs)
            self.expr(e.rhs)
            if not (e.lhs.type is T.bool_ and e.rhs.type is T.bool_
                    and ty is T.bool_):
                self.err(e, f"short-circuit {e.op} over {e.lhs.type} and "
                            f"{e.rhs.type}")
        elif isinstance(e, tast.TCtor):
            self.ctor(e)
        elif isinstance(e, tast.TLetIn):
            self.scopes.append({})
            for s in e.block.statements:
                self.stat(s)
            self.expr(e.expr)  # the value sees the block's scope
            self.scopes.pop()
            if ty is not e.expr.type:
                self.err(e, f"let-in typed {ty}, value has {e.expr.type}")
        elif isinstance(e, tast.TIntrinsic):
            for a in e.args:
                self.expr(a)
            self.intrinsic(e)
        else:
            self.err(e, "unknown expression node")

    def const(self, e: tast.TConst) -> None:
        ty = e.type
        if isinstance(ty, T.VectorType):
            # vector constants (vectorizer splats/iotas/identities) hold
            # one scalar per lane
            if not isinstance(e.value, (list, tuple)):
                self.err(e, f"vector constant holds {e.value!r}")
            if len(e.value) != ty.count:
                self.err(e, f"vector constant has {len(e.value)} lanes "
                            f"for {ty}")
            for lane in e.value:
                self.const(tast.TConst(lane, ty.elem))
            return
        if not isinstance(ty, T.PrimitiveType):
            self.err(e, f"constant of non-primitive type {ty}")
        if ty.isintegral():
            if not isinstance(e.value, int) or isinstance(e.value, bool):
                self.err(e, f"integer constant holds {e.value!r}")
            bits = ty.bytes * 8
            lo = -(1 << (bits - 1)) if ty.signed else 0
            hi = (1 << (bits - 1)) - 1 if ty.signed else (1 << bits) - 1
            if not lo <= e.value <= hi:
                self.err(e, f"constant {e.value} not representable in {ty}")
        elif ty.islogical():
            if e.value not in (True, False, 0, 1):
                self.err(e, f"bool constant holds {e.value!r}")
        elif ty.isfloat():
            if not isinstance(e.value, (int, float)):
                self.err(e, f"float constant holds {e.value!r}")

    def intrinsic(self, e: tast.TIntrinsic) -> None:
        # vector memory intrinsics are produced only by the vectorizer;
        # their typing is load-bearing for the C emitter's memcpy forms
        if e.name == "vload":
            if len(e.args) != 1 or not e.args[0].type.ispointer():
                self.err(e, "vload takes one pointer argument")
            if not (isinstance(e.type, T.VectorType)
                    and e.type.elem is e.args[0].type.pointee):
                self.err(e, f"vload of {e.args[0].type} typed {e.type}")
        elif e.name == "vstore":
            if len(e.args) != 2 or not e.args[0].type.ispointer():
                self.err(e, "vstore takes a pointer and a vector")
            vty = e.args[1].type
            if not (isinstance(vty, T.VectorType)
                    and vty.elem is e.args[0].type.pointee):
                self.err(e, f"vstore of {vty} through {e.args[0].type}")
            if e.type is not T.unit:
                self.err(e, f"vstore typed {e.type}, expected unit")

    def cast(self, e: tast.TCast) -> None:
        self.expr(e.expr)
        src, dst, kind = e.expr.type, e.type, e.kind
        if kind not in _CAST_KINDS:
            self.err(e, f"unknown cast kind {kind!r}")
        if kind == "numeric":
            if not (isinstance(src, T.PrimitiveType)
                    and isinstance(dst, T.PrimitiveType)):
                self.err(e, f"numeric cast {src} -> {dst}")
        elif kind == "pointer":
            if not (src.ispointer() and dst.ispointer()):
                self.err(e, f"pointer cast {src} -> {dst}")
        elif kind == "ptr-int":
            if not (src.ispointer() and dst.isintegral()):
                self.err(e, f"ptr-int cast {src} -> {dst}")
        elif kind == "int-ptr":
            if not (src.isintegral() and dst.ispointer()):
                self.err(e, f"int-ptr cast {src} -> {dst}")
        elif kind == "broadcast":
            if not (isinstance(dst, T.VectorType) and src is dst.elem):
                self.err(e, f"broadcast cast {src} -> {dst}")
        elif kind == "vector":
            if not (isinstance(src, T.VectorType)
                    and isinstance(dst, T.VectorType)
                    and src.count == dst.count):
                self.err(e, f"vector cast {src} -> {dst}")
        elif kind == "aggregate":
            if not isinstance(dst, T.StructType):
                self.err(e, f"aggregate cast {src} -> {dst}")

    def call(self, e: tast.TCall) -> None:
        self.expr(e.fn)
        fty = e.fn.type
        if not (fty.ispointer() and isinstance(fty.pointee, T.FunctionType)):
            self.err(e, f"call through non-function type {fty}")
        ftype = fty.pointee
        params = ftype.parameters
        if len(e.args) < len(params) or \
                (len(e.args) > len(params) and not ftype.varargs):
            self.err(e, f"call passes {len(e.args)} args to a function of "
                        f"{len(params)} parameters")
        for i, a in enumerate(e.args):
            self.expr(a)
            if i < len(params) and a.type is not params[i]:
                self.err(e, f"argument {i} has type {a.type}, parameter "
                            f"is {params[i]}")
        if e.type is not ftype.returntype:
            self.err(e, f"call typed {e.type}, function returns "
                        f"{ftype.returntype}")

    def select(self, e: tast.TSelect) -> None:
        self.expr(e.obj)
        oty = e.obj.type
        if not isinstance(oty, T.StructType):
            self.err(e, f"field access on non-struct {oty}")
        for entry in oty.entries:
            if entry.field == e.field:
                if e.type is not entry.type:
                    self.err(e, f"field {e.field!r} typed {e.type}, "
                                f"struct declares {entry.type}")
                return
        self.err(e, f"struct {oty} has no field {e.field!r}")

    def index(self, e: tast.TIndex) -> None:
        self.expr(e.obj)
        self.expr(e.index)
        if e.index.type is not T.int64:
            self.err(e, f"index has type {e.index.type}, expected int64")
        oty = e.obj.type
        if oty.ispointer():
            elem = oty.pointee
        elif isinstance(oty, T.ArrayType):
            elem = oty.elem
        else:
            self.err(e, f"indexing non-indexable type {oty}")
        if e.type is not elem:
            self.err(e, f"index into {oty} typed {e.type}")

    def vector_index(self, e: tast.TVectorIndex) -> None:
        self.expr(e.obj)
        self.expr(e.index)
        oty = e.obj.type
        if not isinstance(oty, T.VectorType):
            self.err(e, f"vector-index of non-vector {oty}")
        if e.index.type is not T.int64:
            self.err(e, f"lane index has type {e.index.type}, expected int64")
        if e.type is not oty.elem:
            self.err(e, f"lane of {oty} typed {e.type}")

    def unop(self, e: tast.TUnOp) -> None:
        self.expr(e.operand)
        ot = e.operand.type
        if e.op == "-":
            if not (ot is e.type and ot.isarithmetic()):
                self.err(e, f"negate of {ot} typed {e.type}")
        elif e.op == "not":
            if not (ot is e.type and (ot.islogical() or ot.isintegral())):
                self.err(e, f"'not' of {ot} typed {e.type}")
        else:
            self.err(e, f"unknown unary operator {e.op!r}")

    def binop(self, e: tast.TBinOp) -> None:
        self.expr(e.lhs)
        self.expr(e.rhs)
        op, lt, rt, ty = e.op, e.lhs.type, e.rhs.type, e.type
        if op in ("+", "-", "*", "/", "%"):
            if lt.ispointer():
                if op == "-" and rt.ispointer():
                    if lt is not rt or ty is not T.int64:
                        self.err(e, f"pointer difference {lt} - {rt} "
                                    f"typed {ty}")
                    return
                # pointer arithmetic indexes with int64 (typechecker
                # inserts the conversion)
                if op not in ("+", "-") or rt is not T.int64 \
                        or ty is not lt:
                    self.err(e, f"pointer arithmetic {lt} {op} {rt} "
                                f"typed {ty}")
                return
            if not (lt is rt and lt is ty and ty.isarithmetic()):
                self.err(e, f"arithmetic {op} over {lt} and {rt} typed {ty}")
        elif op in ("<", ">", "<=", ">=", "==", "~="):
            if lt is not rt:
                self.err(e, f"comparison {op} over unequal types "
                            f"{lt} and {rt}")
            if isinstance(lt, T.VectorType):
                if ty is not T.vector(T.bool_, lt.count):
                    self.err(e, f"vector comparison typed {ty}")
            elif ty is not T.bool_:
                self.err(e, f"comparison typed {ty}, expected bool")
        elif op in ("<<", ">>"):
            if not (lt.isintegral() and rt.isintegral() and ty is lt):
                self.err(e, f"shift {op} over {lt} and {rt} typed {ty}")
            if isinstance(lt, T.PrimitiveType) and rt is not lt:
                self.err(e, f"scalar shift amount has type {rt}, "
                            f"expected {lt}")
        elif op in ("&", "|", "^"):
            if not (lt is rt and lt is ty and ty.isintegral()):
                self.err(e, f"bitwise {op} over {lt} and {rt} typed {ty}")
        elif op in ("and", "or"):
            # non-short-circuit and/or: integer or vector-of-bool forms
            # (scalar bools become TLogical)
            ok = lt is rt and lt is ty and \
                (ty.isintegral()
                 or (isinstance(ty, T.VectorType) and ty.islogical()))
            if not ok:
                self.err(e, f"bitwise {op} over {lt} and {rt} typed {ty}")
        else:
            self.err(e, f"unknown binary operator {op!r}")

    def ctor(self, e: tast.TCtor) -> None:
        for init in e.inits:
            self.expr(init)
        ty = e.type
        if isinstance(ty, T.ArrayType):
            if len(e.inits) != ty.count:
                self.err(e, f"array constructor has {len(e.inits)} "
                            f"initializers for {ty}")
            for init in e.inits:
                if init.type is not ty.elem:
                    self.err(e, f"array element init typed {init.type}, "
                                f"element type is {ty.elem}")
        elif isinstance(ty, T.VectorType):
            if len(e.inits) != ty.count:
                self.err(e, f"vector constructor has {len(e.inits)} "
                            f"initializers for {ty}")
            for init in e.inits:
                if init.type is not ty.elem:
                    self.err(e, f"vector lane init typed {init.type}, "
                                f"lane type is {ty.elem}")
        elif isinstance(ty, T.TupleType):
            if len(e.inits) != len(ty.element_types):
                self.err(e, f"tuple constructor has {len(e.inits)} "
                            f"initializers for {ty}")
            for init, et in zip(e.inits, ty.element_types):
                if init.type is not et:
                    self.err(e, f"tuple element init typed {init.type}, "
                                f"element type is {et}")
        elif not isinstance(ty, T.StructType):
            self.err(e, f"constructor of non-aggregate type {ty}")
        # plain structs (possibly unions) are checked loosely: entry
        # count varies with union groups, so only the child expressions
        # themselves are verified
