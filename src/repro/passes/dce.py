"""Dead-local and dead-store elimination.

Constant folding leaves husks behind in staged code: locals that held
meta-level scaffolding, stores whose value is never observed.  This pass
removes

* declarations of locals that are never live (a pure initializer
  disappears with the declaration; an impure one is kept as a bare
  expression statement so its side effects and traps survive);
* assignments to such locals (same purity rule for the right side).

Liveness, not mere read-counting: a read that happens only inside a pure
store to another local is attributed to that local (``var z = y * 2``
makes ``y`` live only if ``z`` is), so chains of dead stores — including
self-references like ``z = z + y`` — collapse in one pass.  Reads inside
*impure* right-hand sides stay unconditionally live, because the
expression is retained for its effects even when the target dies.
Anything that is not a whole-variable store (``x.f = v``, ``x[i] = v``)
keeps ``x`` alive, and taking a variable's address pins it forever
(writes could flow back through the pointer).

Statement removal is all-or-nothing: a multi-target assignment goes only
when *every* target is dead, and any assignment that survives keeps its
targets' declarations alive (``x, y = a, b; return y`` retains both the
store and ``var x``).
"""

from __future__ import annotations

from ..core import tast
from ..core.symbols import Symbol
from .analysis import is_pure
from .manager import Pass, register_pass


@register_pass
class DeadCodePass(Pass):
    """Remove never-live locals and stores to them."""

    name = "dce"

    def run(self, typed) -> bool:
        changed_any = False
        # iterate: removing statements can only shrink the tree, and a
        # removal may expose new dead code in a later round
        for _ in range(16):
            usage = _Usage()
            usage.collect_block(typed.body)
            dead = usage.declared - usage.live()
            if dead:
                # a declaration must outlive every retained store to its
                # symbol: a partially-dead multi-assign (one target live,
                # one dead) is removed all-or-nothing, so its dead
                # targets keep their declarations too
                dead -= _kept_store_targets(typed.body, dead)
            if not dead:
                break
            if not _rewrite_block(typed.body, dead):
                break
            changed_any = True
        return changed_any


class _Usage:
    """Liveness facts for one function body.

    ``base_reads`` are reads that matter unconditionally;
    ``edges[s]`` are symbols read only to compute a pure value stored
    into ``s`` — they become live only if ``s`` does.
    """

    def __init__(self):
        self.declared: set[Symbol] = set()
        self.base_reads: set[Symbol] = set()
        self.addr_taken: set[Symbol] = set()
        self.edges: dict[Symbol, set[Symbol]] = {}

    def live(self) -> set[Symbol]:
        live = set(self.base_reads) | set(self.addr_taken)
        work = list(live)
        while work:
            sym = work.pop()
            for dep in self.edges.get(sym, ()):
                if dep not in live:
                    live.add(dep)
                    work.append(dep)
        return live

    def _attribute(self, targets: list[Symbol], value: tast.TExpr) -> None:
        """Reads inside a whole-variable store: live only if a target is.

        Only pure values are attributed (an impure value survives as an
        expression statement, so its reads are unconditional).  Removal
        of a multi-target statement is all-or-nothing, so the reads hang
        off *every* target: any live target keeps them live.
        """
        if is_pure(value):
            sub = _Usage()
            sub.collect_expr(value)
            # nested address-taking and attributed sub-edges cannot occur
            # in a pure expression's collection (TLetIn is impure), but
            # fold conservatively if they ever do
            self.addr_taken.update(sub.addr_taken)
            for k, v in sub.edges.items():
                self.edges.setdefault(k, set()).update(v)
            for target in targets:
                self.edges.setdefault(target, set()).update(sub.base_reads)
        else:
            self.collect_expr(value)

    def collect_block(self, block: tast.TBlock) -> None:
        for s in block.statements:
            self.collect_stat(s)

    def collect_stat(self, s: tast.TStat) -> None:
        if isinstance(s, tast.TVarDecl):
            self.declared.update(s.symbols)
            if s.inits is not None:
                for init in s.inits:
                    self._attribute(list(s.symbols), init)
            return
        if isinstance(s, tast.TAssign):
            whole = all(isinstance(t, tast.TVar) for t in s.lhs) \
                and len(s.lhs) == len(s.rhs)
            if whole:
                targets = [t.symbol for t in s.lhs]
                for value in s.rhs:
                    self._attribute(targets, value)
                return
            for target in s.lhs:
                if isinstance(target, tast.TVar):
                    continue  # a direct store is not a read
                self.collect_expr(target)
            for e in s.rhs:
                self.collect_expr(e)
            return
        if isinstance(s, tast.TIf):
            for cond, body in s.branches:
                self.collect_expr(cond)
                self.collect_block(body)
            if s.orelse is not None:
                self.collect_block(s.orelse)
            return
        for field in s._fields:
            child = getattr(s, field)
            if isinstance(child, tast.TExpr):
                self.collect_expr(child)
            elif isinstance(child, tast.TBlock):
                self.collect_block(child)
            elif isinstance(child, list):
                for c in child:
                    if isinstance(c, tast.TExpr):
                        self.collect_expr(c)

    def collect_expr(self, e: tast.TExpr) -> None:
        if isinstance(e, tast.TVar):
            self.base_reads.add(e.symbol)
            return
        if isinstance(e, tast.TAddressOf) \
                and isinstance(e.operand, tast.TVar):
            self.addr_taken.add(e.operand.symbol)
            return
        for field in e._fields:
            child = getattr(e, field)
            if isinstance(child, tast.TExpr):
                self.collect_expr(child)
            elif isinstance(child, tast.TBlock):
                self.collect_block(child)
            elif isinstance(child, list):
                for c in child:
                    if isinstance(c, tast.TExpr):
                        self.collect_expr(c)


def _kept_store_targets(block: tast.TBlock, dead: set[Symbol]) -> set[Symbol]:
    """Symbols still stored into by statements this round will keep.

    :func:`_rewrite_stat` only deletes an assignment when *every* target
    is a dead variable; any surviving assignment's targets must therefore
    stay declared, even if never read."""
    kept: set[Symbol] = set()
    for node in tast.walk(block):
        if isinstance(node, tast.TAssign):
            removed = all(isinstance(t, tast.TVar) and t.symbol in dead
                          for t in node.lhs)
            if not removed:
                kept.update(t.symbol for t in node.lhs
                            if isinstance(t, tast.TVar))
    return kept


def _rewrite_block(block: tast.TBlock, dead: set[Symbol]) -> bool:
    changed = False
    out: list[tast.TStat] = []
    for s in block.statements:
        replacement = _rewrite_stat(s, dead)
        if replacement is None:
            out.append(s)
        else:
            changed = True
            out.extend(replacement)
    if changed:
        block.statements = out
    # recurse into nested blocks regardless
    for s in block.statements:
        if isinstance(s, tast.TIf):
            for _, body in s.branches:
                changed |= _rewrite_block(body, dead)
            if s.orelse is not None:
                changed |= _rewrite_block(s.orelse, dead)
        elif isinstance(s, (tast.TWhile, tast.TRepeat, tast.TForNum,
                            tast.TDoStat)):
            changed |= _rewrite_block(s.body, dead)
    return changed


def _rewrite_stat(s: tast.TStat, dead: set[Symbol]):
    """Return None to keep the statement, or its replacement list."""
    if isinstance(s, tast.TVarDecl):
        if not all(sym in dead for sym in s.symbols):
            return None  # partial multi-declarations are kept whole
        kept: list[tast.TStat] = []
        if s.inits is not None:
            for init in s.inits:
                if not is_pure(init):
                    kept.append(tast.TExprStat(init, s.location))
        return kept
    if isinstance(s, tast.TAssign):
        if not all(isinstance(t, tast.TVar) and t.symbol in dead
                   for t in s.lhs):
            return None
        kept = []
        for rhs in s.rhs:
            if not is_pure(rhs):
                kept.append(tast.TExprStat(rhs, s.location))
        return kept
    return None
