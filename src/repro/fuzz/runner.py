"""The differential executor: every program runs on both backends at all
three pipeline levels, in crash-isolated child processes, and any
disagreement is a finding.

One child process per (backend, level) configuration walks the same
deterministic (seed, index) program sequence (see :mod:`repro.fuzz.gen`);
the parent merges their per-index outcomes and reports:

* **divergence** — configurations disagree on a result, a trap, or an
  error (compared bitwise for floats; NaN payloads canonicalized);
* **crash** — a child died mid-program (recorded against the in-flight
  index, child respawned past it; the harness itself never dies);
* **timeout** — a program exceeded the per-program watchdog (generated
  loops are fuel-bounded, so this indicates a backend bug).

Results are folded into the buildd telemetry
(:meth:`repro.buildd.stats.BuildStats.record_fuzz`), so one
``repro.buildd.stats()`` snapshot covers compiles *and* fuzzing.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field

from .. import trace
from .child import encode_args
from .gen import FuzzProgram, generate_program

#: the full differential matrix: both backends at every pipeline level
DEFAULT_CONFIGS = [("interp", 0), ("interp", 1), ("interp", 2),
                   ("c", 0), ("c", 1), ("c", 2)]

#: ride-along configurations running the *tiered execution policy* at
#: every pipeline level: a low synchronous tier-up threshold (see
#: repro.fuzz.child) makes every program cross the interp→C transition —
#: usually through a respecialized, guarded variant — mid-argset-loop,
#: so tier transitions and guard fallbacks are differentially checked
#: against both plain backends.  Opt-in via ``--tiered`` / these consts.
TIERED_CONFIGS = [("tiered", 0), ("tiered", 1), ("tiered", 2)]

#: ride-along configurations for the auto-vectorizer: both real backends
#: at pipeline level 3 (fold/simplify/licm/vectorize/dce).  Vectorized
#: executions must agree *bitwise* with every scalar config — traps,
#: NaNs, signed zeros, and sub-int wrapping included.  Opt-in via
#: ``--autovec`` / these consts.
AUTOVEC_CONFIGS = [("interp", 3), ("c", 3)]

#: ride-along configurations for the tile-schedule lowering: the C
#: backend with the deterministic lenient :func:`repro.schedule
#: .fuzz_schedule` applied to every generated program (loops named
#: ``i``/``i1``/... blocked by a non-dividing size; unprovable loops
#: skipped), at a scalar and the vectorizing level.  Blocking is
#: order-preserving, so scheduled executions must agree bitwise with
#: every unscheduled config.  Opt-in via ``--schedule`` / these consts.
SCHEDULE_CONFIGS = [("sched", 1), ("sched", 3)]

#: seconds a child may spend on one program before the watchdog kills it
DEFAULT_TIMEOUT = 60.0


@dataclass
class Execution:
    """One configuration's outcome for one program."""
    backend: str
    level: int
    outcome: dict   # {"outcomes": [...]} | {"fatal": ...} | {"crash": ...}
                    # | {"timeout": true}

    @property
    def config(self) -> str:
        return f"{self.backend}@{self.level}"

    def canon(self) -> str:
        """Canonical form for cross-configuration comparison."""
        return json.dumps(self.outcome, sort_keys=True)


@dataclass
class Divergence:
    """A program on which the configurations disagreed."""
    seed: int
    index: int
    program: FuzzProgram
    executions: list
    minimized: FuzzProgram = None

    def describe(self) -> str:
        lines = [f"divergence at seed={self.seed} index={self.index} "
                 f"entry={self.program.entry}"]
        for ex in self.executions:
            lines.append(f"  {ex.config:10s} {ex.canon()}")
        src = (self.minimized or self.program).source
        lines.append("  program:")
        lines.extend("    " + ln for ln in src.splitlines())
        return "\n".join(lines)


@dataclass
class FuzzReport:
    seed: int
    count: int
    configs: list
    divergences: list = field(default_factory=list)
    crashes: int = 0
    timeouts: int = 0
    traps: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.crashes and not self.timeouts

    def summary(self) -> str:
        configs = ", ".join(f"{b}@{lv}" for b, lv in self.configs)
        lines = [
            f"fuzz: {self.count} programs, seed {self.seed}, "
            f"configs [{configs}], {self.elapsed:.1f}s",
            f"  divergences: {len(self.divergences)}   "
            f"crashes: {self.crashes}   timeouts: {self.timeouts}   "
            f"trapping programs: {self.traps}",
        ]
        for d in self.divergences:
            lines.append(d.describe())
        lines.append("result: " + ("OK" if self.ok else "FAILURES FOUND"))
        return "\n".join(lines)


def _child_env(level: int) -> dict:
    env = dict(os.environ)
    env["REPRO_TERRA_PIPELINE"] = str(level)
    # the child imports repro the same way the parent did
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    parts = [src_root] + [p for p in env.get("PYTHONPATH", "").split(
        os.pathsep) if p and p != src_root]
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def _spawn(backend: str, level: int, extra_args: list) -> subprocess.Popen:
    cmd = [sys.executable, "-m", "repro.fuzz.child",
           "--backend", backend, "--level", str(level)] + extra_args
    return subprocess.Popen(
        cmd, env=_child_env(level),
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True)


class _Watchdog:
    """Kills a process unless fed within ``timeout`` seconds."""

    def __init__(self, proc: subprocess.Popen, timeout: float):
        self.proc = proc
        self.timeout = timeout
        self.fired = False
        self._timer = None
        self._lock = threading.Lock()

    def _fire(self):
        with self._lock:
            self.fired = True
        self.proc.kill()

    def feed(self):
        with self._lock:
            if self._timer is not None:
                self._timer.cancel()
            self._timer = threading.Timer(self.timeout, self._fire)
            self._timer.daemon = True
            self._timer.start()

    def stop(self):
        with self._lock:
            if self._timer is not None:
                self._timer.cancel()


def _collect(backend: str, level: int, seed: int, count: int,
             timeout: float, results: dict, lock: threading.Lock) -> None:
    """Run one configuration's child over [0, count), respawning past
    crashes; fills ``results[index]`` with this config's outcome."""
    start = 0
    while start < count:
        proc = _spawn(backend, level,
                      ["--seed", str(seed), "--count", str(count),
                       "--start", str(start)])
        watchdog = _Watchdog(proc, timeout)
        watchdog.feed()
        inflight = None
        try:
            for line in proc.stdout:
                watchdog.feed()
                try:
                    msg = json.loads(line)
                except ValueError:
                    continue
                if msg.get("event") == "begin":
                    inflight = msg["index"]
                elif msg.get("event") == "done":
                    outcome = {k: v for k, v in msg.items()
                               if k not in ("event", "index")}
                    with lock:
                        results[msg["index"]] = outcome
                    inflight = None
        finally:
            watchdog.stop()
            proc.wait()
        if inflight is not None:
            # child died (or was killed by the watchdog) mid-program
            outcome = ({"timeout": True} if watchdog.fired
                       else {"crash": proc.returncode})
            with lock:
                results[inflight] = outcome
            start = inflight + 1
        elif proc.returncode == 0:
            return       # clean walk of the whole range
        else:
            # died between programs (startup failure etc.) — without an
            # in-flight index there is nothing to skip; give up on the
            # remaining range rather than loop forever
            with lock:
                for i in range(start, count):
                    results.setdefault(i, {"crash": proc.returncode})
            return


def run_differential(seed: int, count: int, configs=None,
                     timeout: float = DEFAULT_TIMEOUT,
                     record_stats: bool = True) -> FuzzReport:
    """Run ``count`` generated programs through every configuration and
    compare the outcomes.  Never raises on program misbehaviour — traps,
    crashes, and hangs all become report entries."""
    configs = list(configs or DEFAULT_CONFIGS)
    t0 = time.perf_counter()
    with trace.span("fuzz", cat="fuzz", seed=seed, count=count,
                    configs=len(configs)) as fsp:
        per_config: dict = {cfg: {} for cfg in configs}
        lock = threading.Lock()
        threads = []
        for backend, level in configs:
            th = threading.Thread(
                target=_collect,
                args=(backend, level, seed, count, timeout,
                      per_config[(backend, level)], lock),
                daemon=True)
            th.start()
            threads.append(th)
        for th in threads:
            th.join()

        report = FuzzReport(seed=seed, count=count, configs=configs)
        for index in range(count):
            execs = [Execution(b, lv, per_config[(b, lv)].get(
                index, {"missing": True})) for b, lv in configs]
            report.crashes += sum(1 for e in execs if "crash" in e.outcome)
            report.timeouts += sum(1 for e in execs if "timeout" in e.outcome)
            canons = {e.canon() for e in execs}
            if len(canons) > 1:
                report.divergences.append(Divergence(
                    seed=seed, index=index,
                    program=generate_program(seed, index), executions=execs))
            else:
                outcome = execs[0].outcome
                if any("trap" in o for o in outcome.get("outcomes") or []):
                    report.traps += 1
        fsp.set(divergences=len(report.divergences),
                crashes=report.crashes, timeouts=report.timeouts)
    report.elapsed = time.perf_counter() - t0

    if record_stats:
        from ..buildd import get_service
        get_service().stats.record_fuzz(
            programs=count, divergences=len(report.divergences),
            traps=report.traps, crashes=report.crashes)
    return report


def run_program(program: FuzzProgram, configs=None,
                timeout: float = DEFAULT_TIMEOUT) -> list:
    """Run ONE program (not necessarily generator-derived) across the
    configurations, each in its own isolated child.  Used by the
    minimizer and the corpus replayer."""
    configs = list(configs or DEFAULT_CONFIGS)
    spec = json.dumps({
        "source": program.source,
        "entry": program.entry,
        "argsets": [encode_args(a) for a in program.argsets],
    })
    procs = [(b, lv, _spawn(b, lv, ["--one"])) for b, lv in configs]
    execs = []
    for backend, level, proc in procs:
        try:
            out, _ = proc.communicate(spec, timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            execs.append(Execution(backend, level, {"timeout": True}))
            continue
        if proc.returncode != 0:
            execs.append(Execution(backend, level,
                                   {"crash": proc.returncode}))
            continue
        try:
            execs.append(Execution(backend, level,
                                   json.loads(out.strip().splitlines()[-1])))
        except (ValueError, IndexError):
            execs.append(Execution(backend, level, {"crash": proc.returncode}))
    return execs


def executions_diverge(execs) -> bool:
    """True when the executions do not all agree."""
    return len({e.canon() for e in execs}) > 1
