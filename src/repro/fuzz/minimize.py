"""Delta-debugging minimizer for diverging programs.

Classic ddmin over the program's source *lines*, followed by argument-set
reduction: remove ever-smaller chunks of lines as long as the
caller-supplied predicate (``still diverges?``) holds.  Candidates that
no longer parse or typecheck simply fail the predicate — in the
differential setting every configuration reports the same compile error,
which is agreement, not divergence — so the minimizer needs no grammar
knowledge at all.

The predicate runs each candidate in crash-isolated children (see
:func:`repro.fuzz.runner.run_program`), so minimization is safe even
when the divergence under study is a child-killing crash.
"""

from __future__ import annotations

from dataclasses import replace

from .gen import FuzzProgram


def _candidate(program: FuzzProgram, lines, argsets) -> FuzzProgram:
    return replace(program, source="\n".join(lines), argsets=list(argsets))


def _ddmin_lines(program: FuzzProgram, lines: list, predicate) -> list:
    """Greedy ddmin: repeatedly try dropping chunks, halving granularity."""
    n = 2
    while len(lines) >= 2:
        chunk = max(1, len(lines) // n)
        shrunk = False
        i = 0
        while i < len(lines):
            candidate_lines = lines[:i] + lines[i + chunk:]
            if candidate_lines and predicate(
                    _candidate(program, candidate_lines, program.argsets)):
                lines = candidate_lines
                shrunk = True
                # retry the same position: the next chunk shifted into it
            else:
                i += chunk
        if shrunk:
            n = max(2, n - 1)
        elif chunk == 1:
            break
        else:
            n = min(len(lines), n * 2)
    return lines


def _reduce_argsets(program: FuzzProgram, predicate) -> FuzzProgram:
    """Keep the first single argset that still shows the divergence."""
    if len(program.argsets) <= 1:
        return program
    for argset in program.argsets:
        candidate = replace(program, argsets=[argset])
        if predicate(candidate):
            return candidate
    return program


def minimize(program: FuzzProgram, predicate,
             max_tests: int = 500) -> FuzzProgram:
    """Shrink ``program`` while ``predicate(candidate)`` stays true.

    ``predicate`` must be deterministic and must already hold for
    ``program`` itself (if it does not, the program is returned
    unchanged).  At most ``max_tests`` predicate evaluations are spent —
    each one may compile the candidate on every configuration, so this
    bounds minimization wall-time."""
    budget = {"left": max_tests}

    def counted(candidate: FuzzProgram) -> bool:
        if budget["left"] <= 0:
            return False
        budget["left"] -= 1
        return bool(predicate(candidate))

    if not counted(program):
        return program
    program = _reduce_argsets(program, counted)
    lines = _ddmin_lines(program, program.source.splitlines(), counted)
    return replace(program, source="\n".join(lines))
