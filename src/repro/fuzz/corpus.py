"""The reproducer corpus: every divergence the fuzzer ever found, saved
as a JSON file and replayed as a regression test.

Corpus entries live in ``tests/fuzz/corpus/*.json`` (one finding per
file) and record the *minimized* program, the argument sets that showed
the divergence (floats stored as ``float.hex()`` so ``inf``/``nan``/
``-0.0`` survive serialization), and a human-readable note of what used
to go wrong.  ``tests/fuzz/test_corpus.py`` replays each entry across
the full backend × pipeline-level matrix on every tier-1 run, so a fixed
divergence stays fixed.
"""

from __future__ import annotations

import json
import os
import re

from .child import decode_args, encode_args
from .gen import FuzzProgram


def save_entry(directory: str, name: str, program: FuzzProgram,
               note: str = "") -> str:
    """Write one corpus entry; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9_-]+", "-", name).strip("-") or "finding"
    path = os.path.join(directory, slug + ".json")
    entry = {
        "name": slug,
        "note": note,
        "seed": program.seed,
        "index": program.index,
        "entry": program.entry,
        "source": program.source,
        "argsets": [encode_args(a) for a in program.argsets],
    }
    with open(path, "w") as fh:
        json.dump(entry, fh, indent=2)
        fh.write("\n")
    return path


def load_entry(path: str) -> FuzzProgram:
    with open(path) as fh:
        entry = json.load(fh)
    return FuzzProgram(
        seed=int(entry.get("seed", 0)), index=int(entry.get("index", 0)),
        source=entry["source"], entry=entry["entry"],
        argtypes=list(entry.get("argtypes", [])),
        argsets=[decode_args(a) for a in entry["argsets"]])


def load_corpus(directory: str) -> list:
    """All corpus entries in ``directory`` as (name, FuzzProgram) pairs,
    sorted by file name for deterministic replay order."""
    out = []
    if not os.path.isdir(directory):
        return out
    for fname in sorted(os.listdir(directory)):
        if fname.endswith(".json"):
            out.append((fname[:-len(".json")],
                        load_entry(os.path.join(directory, fname))))
    return out


def replay_entry(program: FuzzProgram, configs=None,
                 timeout: float = None) -> list:
    """Run one corpus program across the configuration matrix; returns
    the executions (callers assert they all agree)."""
    from .runner import DEFAULT_TIMEOUT, run_program
    return run_program(program, configs=configs,
                       timeout=timeout or DEFAULT_TIMEOUT)
