"""Seeded, typed random-program generation over the implemented Terra
subset.

Every program is generated from ``random.Random(f"{seed}:{index}")``, so
any (seed, index) pair names exactly one program forever — the parent
process, the crash-isolated children, and a later reproduction run all
regenerate the same source without shipping it around.

Design constraints that keep generated programs *boring to execute* but
*interesting to compile*:

* **Typed construction.**  Expressions are built top-down against a
  required type, so every program typechecks by construction; the fuzzer
  exercises semantics, not the typechecker's error paths.
* **Guaranteed termination.**  Every function threads a ``fuel`` counter:
  ``while``/``repeat`` loops conjoin ``fuel > 0`` into their conditions
  and decrement it each iteration, and numeric ``for`` loops use small
  constant bounds.  A generated program can trap (``% 0`` is a defined
  runtime trap, see docs/LANGUAGE.md) but can never spin.
* **Pinned constant types.**  Bare literals type as ``int32``/``double``;
  constants of any other primitive type are written ``[ty](lit)`` so both
  backends see identical types at every pipeline level.
* **No undefined behaviour.**  The language defines the usual C trouble
  spots (wrapping arithmetic, masked shifts, saturating float→int casts,
  trapping division) — the generator uses all of them freely and the
  differential runner checks the backends agree bit-for-bit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..core import types as T

#: primitive types the generator draws from (name in Terra source -> type)
SCALAR_TYPES = {
    "int8": T.int8, "int16": T.int16, "int32": T.int32, "int64": T.int64,
    "uint8": T.uint8, "uint16": T.uint16, "uint32": T.uint32,
    "uint64": T.uint64,
    "float": T.float32, "double": T.float64,
    "bool": T.bool_,
}

INT_NAMES = ["int8", "int16", "int32", "int64",
             "uint8", "uint16", "uint32", "uint64"]
FLOAT_NAMES = ["float", "double"]
ARITH_NAMES = INT_NAMES + FLOAT_NAMES

#: iterations a single function may spend across all its while/repeat loops
LOOP_FUEL = 48


def fuzz_env() -> dict:
    """The explicit specialization environment for generated programs.

    ``terra()`` normally captures the *caller's* Python frame; generated
    programs must not see whatever locals the harness happens to have, so
    they are specialized against exactly this mapping (the primitive type
    names resolve through the builtin scope either way — the point is to
    pin the environment, not to extend it)."""
    return dict(SCALAR_TYPES)


@dataclass
class FuzzProgram:
    """One generated differential-test case."""
    seed: int
    index: int
    source: str
    entry: str                       # name of the function to call
    argtypes: list = field(default_factory=list)   # Terra type names
    argsets: list = field(default_factory=list)    # list of tuples

    def key(self) -> str:
        return f"{self.seed}:{self.index}"


# ---------------------------------------------------------------------------
# typed expression generation


def _int_literal(rng: random.Random, tyname: str) -> str:
    ty = SCALAR_TYPES[tyname]
    bits = ty.bytes * 8
    lo, hi = ((-(1 << (bits - 1)), (1 << (bits - 1)) - 1) if ty.signed
              else (0, (1 << bits) - 1))
    choice = rng.random()
    if choice < 0.45:
        v = rng.randint(-8, 8) if ty.signed else rng.randint(0, 8)
    elif choice < 0.75:
        v = rng.randint(lo, hi)
    else:
        v = rng.choice([lo, hi, lo + 1, hi - 1, 0, 1])
    # int64 literals near the boundary don't fit the int32 literal grammar
    # before the cast is applied; the cast re-wraps them, which is exactly
    # the wrap-around semantics under test
    if tyname == "int32":
        return f"({v})" if v < 0 else str(v)
    return f"[{tyname}]({v})" if v >= 0 else f"[{tyname}](({v}))"


def _float_literal(rng: random.Random, tyname: str) -> str:
    choice = rng.random()
    if choice < 0.4:
        v = round(rng.uniform(-16.0, 16.0), 3)
    elif choice < 0.7:
        v = rng.choice([0.0, 1.0, -1.0, 0.5, -0.5, 2.0])
    elif choice < 0.9:
        v = round(rng.uniform(-1e6, 1e6), 1)
    else:
        # magnitudes that overflow float32 and stress float->int saturation
        v = rng.choice([1e10, -1e10, 3e9, -3e9, 1e300, -1e300, 1e39, -1e39])
    lit = repr(float(v))
    if tyname == "double":
        return f"({lit})" if v < 0 else lit
    return f"[float](({lit}))" if v < 0 else f"[float]({lit})"


def _literal(rng: random.Random, tyname: str) -> str:
    if tyname == "bool":
        return rng.choice(["true", "false"])
    if tyname in FLOAT_NAMES:
        return _float_literal(rng, tyname)
    return _int_literal(rng, tyname)


class _FnGen:
    """Generates one function body; tracks in-scope variables per type."""

    def __init__(self, rng: random.Random, name: str,
                 params: list, rettype: str, callables: list):
        self.rng = rng
        self.name = name
        self.params = params            # list of (name, tyname)
        self.rettype = rettype
        self.callables = callables      # earlier functions: (name, params, ret)
        self.scopes: list[dict] = []    # each: tyname -> [varnames]
        self.counter = 0
        self.depth = 0                  # statement nesting depth
        self.in_loop = 0

    # -- scope bookkeeping --------------------------------------------------
    def push(self):
        self.scopes.append({})

    def pop(self):
        self.scopes.pop()

    def declare(self, tyname: str) -> str:
        self.counter += 1
        name = f"v{self.counter}"
        self.scopes[-1].setdefault(tyname, []).append(name)
        return name

    def vars_of(self, tyname: str) -> list:
        out = [n for s in self.scopes for n in s.get(tyname, [])]
        out.extend(n for n, t in self.params if t == tyname)
        return out

    # -- expressions --------------------------------------------------------
    def expr(self, tyname: str, depth: int = 0) -> str:
        rng = self.rng
        leaf = depth >= 3 or rng.random() < 0.18 + 0.16 * depth
        if leaf:
            names = self.vars_of(tyname)
            if names and rng.random() < 0.7:
                return rng.choice(names)
            return _literal(rng, tyname)
        if tyname == "bool":
            return self._bool_expr(depth)
        r = rng.random()
        if r < 0.52:
            return self._arith_expr(tyname, depth)
        if r < 0.68 and tyname in INT_NAMES:
            return self._bit_expr(tyname, depth)
        if r < 0.80:
            return self._cast_expr(tyname, depth)
        if r < 0.88:
            return f"(-({self.expr(tyname, depth + 1)}))"
        call = self._call_expr(tyname, depth)
        if call is not None:
            return call
        return self._arith_expr(tyname, depth)

    def _arith_expr(self, tyname: str, depth: int) -> str:
        op = self.rng.choice(["+", "-", "*", "/", "%", "+", "-", "*"])
        a = self.expr(tyname, depth + 1)
        b = self.expr(tyname, depth + 1)
        return f"({a} {op} {b})"

    def _bit_expr(self, tyname: str, depth: int) -> str:
        op = self.rng.choice(["and", "or", "^", "<<", ">>"])
        a = self.expr(tyname, depth + 1)
        if op in ("<<", ">>"):
            # shift counts out of [0, width) are defined (masked); feed
            # them deliberately
            b = self.expr(tyname, depth + 2) if self.rng.random() < 0.5 \
                else _int_literal(self.rng, tyname)
        else:
            b = self.expr(tyname, depth + 1)
        return f"({a} {op} {b})"

    def _cast_expr(self, tyname: str, depth: int) -> str:
        src = self.rng.choice(ARITH_NAMES + ["bool"])
        return f"([{tyname}]({self.expr(src, depth + 1)}))"

    def _bool_expr(self, depth: int) -> str:
        rng = self.rng
        r = rng.random()
        if r < 0.6:
            ty = rng.choice(ARITH_NAMES)
            op = rng.choice(["<", "<=", ">", ">=", "==", "~="])
            return f"({self.expr(ty, depth + 1)} {op} {self.expr(ty, depth + 1)})"
        if r < 0.85:
            op = rng.choice(["and", "or"])
            return f"({self._bool_expr(depth + 1)} {op} {self._bool_expr(depth + 1)})"
        if r < 0.95:
            return f"(not {self._bool_expr(depth + 1)})"
        return f"([bool]({self.expr(rng.choice(ARITH_NAMES), depth + 1)}))"

    def _call_expr(self, tyname: str, depth: int):
        candidates = [c for c in self.callables if c[2] == tyname]
        if not candidates or self.in_loop:
            # calls inside loop bodies multiply the trap surface without
            # adding coverage; keep them at loop depth 0
            return None
        name, params, _ = self.rng.choice(candidates)
        args = ", ".join(self.expr(t, depth + 1) for _, t in params)
        return f"{name}({args})"

    # -- statements ---------------------------------------------------------
    def block(self, indent: str, budget: int) -> list:
        lines = []
        self.push()
        n = self.rng.randint(1, max(1, budget))
        for _ in range(n):
            lines.extend(self.stmt(indent, budget - 1))
        self.pop()
        return lines

    def stmt(self, indent: str, budget: int) -> list:
        rng = self.rng
        r = rng.random()
        nested_ok = budget > 0 and self.depth < 2
        if r < 0.40 or not nested_ok:
            return [self._var_stmt(indent)]
        if r < 0.58:
            ty = rng.choice(ARITH_NAMES + ["bool"])
            writable = [n for n in self.vars_of(ty) if n.startswith("v")]
            if not writable:
                return [self._var_stmt(indent)]
            return [f"{indent}{rng.choice(writable)} = {self.expr(ty)}"]
        self.depth += 1
        try:
            if r < 0.72:
                return self._if_stmt(indent, budget)
            if r < 0.82:
                return self._while_stmt(indent, budget)
            if r < 0.90:
                return self._repeat_stmt(indent, budget)
            if r < 0.96:
                return self._for_stmt(indent, budget)
            lines = [f"{indent}do"]
            lines += self.block(indent + "    ", budget)
            lines.append(f"{indent}end")
            return lines
        finally:
            self.depth -= 1

    def _var_stmt(self, indent: str) -> str:
        ty = self.rng.choice(ARITH_NAMES + ["bool"])
        # build the initializer BEFORE declaring the name: a var is not in
        # scope inside its own initializer
        init = self.expr(ty)
        name = self.declare(ty)
        return f"{indent}var {name} : {ty} = {init}"

    def _if_stmt(self, indent: str, budget: int) -> list:
        lines = [f"{indent}if {self._bool_expr(1)} then"]
        lines += self.block(indent + "    ", budget)
        if self.rng.random() < 0.4:
            lines.append(f"{indent}else")
            lines += self.block(indent + "    ", budget)
        lines.append(f"{indent}end")
        return lines

    def _while_stmt(self, indent: str, budget: int) -> list:
        self.in_loop += 1
        lines = [f"{indent}while ({self._bool_expr(1)}) and (fuel > 0) do",
                 f"{indent}    fuel = fuel - 1"]
        lines += self.block(indent + "    ", budget)
        lines.append(f"{indent}end")
        self.in_loop -= 1
        return lines

    def _repeat_stmt(self, indent: str, budget: int) -> list:
        self.in_loop += 1
        lines = [f"{indent}repeat",
                 f"{indent}    fuel = fuel - 1"]
        lines += self.block(indent + "    ", budget)
        lines.append(f"{indent}until ({self._bool_expr(1)}) or (fuel <= 0)")
        self.in_loop -= 1
        return lines

    def _for_stmt(self, indent: str, budget: int) -> list:
        self.in_loop += 1
        self.counter += 1
        iv = f"i{self.counter}"
        lo = self.rng.randint(-2, 2)
        hi = lo + self.rng.randint(0, 4)
        step = f", {self.rng.choice([1, 2])}" if self.rng.random() < 0.3 else ""
        start = f"({lo})" if lo < 0 else str(lo)
        lines = [f"{indent}for {iv} = {start}, {hi}{step} do"]
        self.push()
        self.scopes[-1].setdefault("int32", []).append(iv)
        lines += [ln for ln in self.block(indent + "    ", budget)]
        self.pop()
        lines.append(f"{indent}end")
        self.in_loop -= 1
        return lines

    # -- whole function -----------------------------------------------------
    def emit(self) -> str:
        plist = ", ".join(f"{n} : {t}" for n, t in self.params)
        lines = [f"terra {self.name}({plist}) : {self.rettype}"]
        self.push()
        lines.append(f"    var fuel : int32 = {LOOP_FUEL}")
        budget = self.rng.randint(2, 5)
        for _ in range(budget):
            lines.extend(self.stmt("    ", 2))
        lines.append(f"    return {self.expr(self.rettype)}")
        lines.append("end")
        self.pop()
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# arguments


def _int_args(rng: random.Random, tyname: str) -> int:
    ty = SCALAR_TYPES[tyname]
    bits = ty.bytes * 8
    lo, hi = ((-(1 << (bits - 1)), (1 << (bits - 1)) - 1) if ty.signed
              else (0, (1 << bits) - 1))
    r = rng.random()
    if r < 0.4:
        return rng.randint(-4, 4) if ty.signed else rng.randint(0, 4)
    if r < 0.7:
        return rng.randint(lo, hi)
    return rng.choice([lo, hi, lo + 1, hi - 1, 0, 1])


def _float_args(rng: random.Random) -> float:
    r = rng.random()
    if r < 0.4:
        return round(rng.uniform(-32.0, 32.0), 4)
    if r < 0.6:
        return rng.choice([0.0, -0.0, 1.0, -1.0, 0.5])
    if r < 0.8:
        return rng.uniform(-1e18, 1e18)
    return rng.choice([math.inf, -math.inf, math.nan,
                       1e300, -1e300, 1e39, -1e39, 5e-324])


def generate_argsets(rng: random.Random, argtypes: list,
                     count: int = 4) -> list:
    """``count`` boundary-biased argument tuples for ``argtypes``."""
    sets = []
    for _ in range(count):
        args = []
        for tyname in argtypes:
            if tyname == "bool":
                args.append(rng.random() < 0.5)
            elif tyname in FLOAT_NAMES:
                args.append(_float_args(rng))
            else:
                args.append(_int_args(rng, tyname))
        sets.append(tuple(args))
    return sets


# ---------------------------------------------------------------------------
# array kernels (the auto-vectorizer's program family)


#: element types array kernels draw from — every lane width the
#: vectorizer supports, plus bool-free sub-int types for wrap coverage
_KERNEL_ELEMS = ["int8", "int16", "int32", "int64",
                 "uint8", "uint16", "uint32", "uint64",
                 "float", "double"]


def _array_kernel_source(rng: random.Random, name: str) -> tuple:
    """One array-processing entry point: local arrays accessed through
    pointer locals with fill / pointwise / reduce loops — the shapes the
    auto-vectorizer rewrites.  Returns (source, argtypes).

    Deliberate variants keep the *bailout* paths covered too: an aliased
    destination (the runtime disjointness guard must fail closed), a
    non-unit step (static bail), an integer-divide body (trapping-op
    bail, and the trap itself is defined behaviour both backends must
    agree on).  The loop bound is a masked argument, so trip counts hit
    0, 1, and epilogue-only cases from the argument generator."""
    elem = rng.choice(_KERNEL_ELEMS)
    size = rng.choice([16, 32, 64])
    is_float = elem in FLOAT_NAMES
    c1 = rng.randint(1, 7)
    c2 = rng.randint(3, 13)
    c3 = rng.randint(0, 9)
    if is_float:
        op = rng.choice(["+", "-", "*", "/"])
        op2 = rng.choice(["+", "-", "*"])
        redop = "+"
    else:
        op = rng.choice(["+", "-", "*", "^", "and", "or", "/"])
        op2 = rng.choice(["+", "-", "*", "^"])
        redop = rng.choice(["+", "^"])
    aliased = rng.random() < 0.25
    step = ", 2" if rng.random() < 0.2 else ""
    dst = "&A[0]" if aliased else "&C[0]"
    lines = [
        f"terra {name}(x : int32, s : {elem}, nn : int32) : {elem}",
        f"    var A : {elem}[{size}]",
        f"    var B : {elem}[{size}]",
        f"    var C : {elem}[{size}]",
        f"    for i = 0, {size} do",
        f"        A[i] = [{elem}]((i * {c1} + x) % {c2})",
        f"        B[i] = [{elem}](i - {c3})",
        f"        C[i] = [{elem}](0)",
        "    end",
        f"    var pa : &{elem} = &A[0]",
        f"    var pb : &{elem} = &B[0]",
        f"    var pc : &{elem} = {dst}",
        f"    var m : int32 = nn and {size - 1}",
        f"    for i = 0, m{step} do",
        f"        pc[i] = (pa[i] {op} pb[i]) {op2} s",
        "    end",
        f"    var acc : {elem} = [{elem}](0)",
        f"    for i = 0, {size} do",
        f"        acc = acc {redop} (A[i] {op2} C[i])",
        "    end",
        "    return acc",
        "end",
    ]
    return "\n".join(lines), ["int32", elem, "int32"]


# ---------------------------------------------------------------------------
# whole programs


def generate_program(seed: int, index: int) -> FuzzProgram:
    """The deterministic program named by ``(seed, index)``.

    Most programs are 1–3 scalar functions; later functions may call
    earlier ones (never recursively), and the *last* function is the
    differential entry point.  About a quarter are array kernels (see
    :func:`_array_kernel_source`) exercising the auto-vectorizer's
    rewrite and bailout paths.  The same (seed, index) always yields the
    same program and the same argument sets."""
    rng = random.Random(f"{seed}:{index}")
    if rng.random() < 0.25:
        name = f"fz{index}_k"
        source, argtypes = _array_kernel_source(rng, name)
        argsets = generate_argsets(rng, argtypes)
        return FuzzProgram(seed=seed, index=index, source=source,
                           entry=name, argtypes=argtypes, argsets=argsets)
    nfuncs = rng.choices([1, 2, 3], weights=[6, 3, 1])[0]
    callables: list = []
    chunks = []
    for i in range(nfuncs):
        name = f"fz{index}_{i}"
        nparams = rng.randint(1, 4)
        params = [(f"a{j}", rng.choice(ARITH_NAMES))
                  for j in range(nparams)]
        rettype = rng.choice(ARITH_NAMES)
        fn = _FnGen(rng, name, params, rettype, list(callables))
        chunks.append(fn.emit())
        callables.append((name, params, rettype))
    entry_name, entry_params, _ = callables[-1]
    argtypes = [t for _, t in entry_params]
    argsets = generate_argsets(rng, argtypes)
    return FuzzProgram(seed=seed, index=index,
                       source="\n".join(chunks),
                       entry=entry_name, argtypes=argtypes,
                       argsets=argsets)
