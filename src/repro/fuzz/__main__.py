"""CLI for the differential fuzzer.

    python -m repro.fuzz --seed 20260806 --count 300
    python -m repro.fuzz --count 50 --backends c --levels 1,2
    python -m repro.fuzz --count 100 --tiered
    python -m repro.fuzz --count 300 --autovec
    python -m repro.fuzz --count 200 --schedule
    python -m repro.fuzz --replay tests/fuzz/corpus --tiered
    python -m repro.fuzz --count 200 --minimize --save findings/

``--tiered`` (or ``--backends tiered``) adds the tiered execution
policy to the matrix: children run with a low synchronous tier-up
threshold so every program crosses the interp→C tier transition — and
its respecialization guards — mid-run, checked bitwise against the
plain backends.

Exit status is 0 when every program agreed across the whole
backend × pipeline-level matrix, 1 when any divergence, crash, or
timeout was found (CI runs this as the ``fuzz-smoke`` job).
"""

from __future__ import annotations

import argparse
import sys

from .corpus import load_corpus, replay_entry, save_entry
from .gen import generate_program
from .minimize import minimize
from .runner import (DEFAULT_CONFIGS, DEFAULT_TIMEOUT, executions_diverge,
                     run_differential, run_program)


def _parse_configs(backends: str, levels: str, tiered: bool,
                   autovec: bool = False, schedule: bool = False) -> list:
    bs = [b.strip() for b in backends.split(",") if b.strip()]
    if tiered and "tiered" not in bs:
        bs.append("tiered")
    lvls = [int(l) for l in levels.split(",") if l.strip()]
    for b in bs:
        if b not in ("interp", "c", "tiered", "sched"):
            raise SystemExit(f"unknown backend {b!r}")
    for lv in lvls:
        if lv not in (0, 1, 2, 3):
            raise SystemExit(f"pipeline level must be 0..3, got {lv}")
    configs = [(b, lv) for b in bs for lv in lvls]
    if autovec:
        # the autovec matrix: both real backends at the vectorizing
        # level, on top of whatever the caller selected, so vectorized
        # executions are compared bitwise against every scalar config
        for cfg in [("interp", 3), ("c", 3)]:
            if cfg not in configs:
                configs.append(cfg)
    if schedule:
        # the tile-schedule matrix: C with the lenient fuzz schedule
        # applied, at a scalar and the vectorizing level, compared
        # bitwise against every unscheduled config
        from .runner import SCHEDULE_CONFIGS
        for cfg in SCHEDULE_CONFIGS:
            if cfg not in configs:
                configs.append(cfg)
    return configs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing of the interp and C backends")
    parser.add_argument("--seed", type=int, default=0,
                        help="generation seed (default 0)")
    parser.add_argument("--count", type=int, default=100,
                        help="number of programs (default 100)")
    parser.add_argument("--backends", default="interp,c",
                        help="comma list: interp,c,tiered (default interp,c)")
    parser.add_argument("--tiered", action="store_true",
                        help="also run the tiered execution policy "
                             "(low-threshold sync tier-up) at each level")
    parser.add_argument("--levels", default="0,1,2",
                        help="comma list of pipeline levels (default 0,1,2)")
    parser.add_argument("--autovec", action="store_true",
                        help="also run interp and c at level 3 (the "
                             "auto-vectorizing pipeline), compared "
                             "bitwise against the scalar configs")
    parser.add_argument("--schedule", action="store_true",
                        help="also run c with the lenient fuzz tile "
                             "schedule applied (repro.schedule), "
                             "compared bitwise against the "
                             "unscheduled configs")
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT,
                        help="per-program watchdog seconds")
    parser.add_argument("--minimize", action="store_true",
                        help="ddmin-shrink each diverging program")
    parser.add_argument("--save", metavar="DIR",
                        help="save (minimized) findings as corpus entries")
    parser.add_argument("--replay", metavar="DIR",
                        help="replay a corpus directory instead of generating")
    parser.add_argument("--show", type=int, metavar="INDEX",
                        help="print the program for (seed, INDEX) and exit")
    opts = parser.parse_args(argv)

    if opts.show is not None:
        program = generate_program(opts.seed, opts.show)
        print(program.source)
        print(f"-- entry: {program.entry}  argsets: {program.argsets}")
        return 0

    configs = _parse_configs(opts.backends, opts.levels, opts.tiered,
                             opts.autovec, opts.schedule)

    if opts.replay:
        failures = 0
        entries = load_corpus(opts.replay)
        for name, program in entries:
            execs = replay_entry(program, configs=configs,
                                 timeout=opts.timeout)
            if executions_diverge(execs):
                failures += 1
                print(f"REGRESSED {name}:")
                for ex in execs:
                    print(f"  {ex.config:10s} {ex.canon()}")
            else:
                print(f"ok {name}")
        print(f"replayed {len(entries)} corpus entries, "
              f"{failures} regressed")
        return 1 if failures else 0

    report = run_differential(opts.seed, opts.count, configs=configs,
                              timeout=opts.timeout)

    if report.divergences and (opts.minimize or opts.save):
        def still_diverges(candidate):
            return executions_diverge(run_program(
                candidate, configs=configs, timeout=opts.timeout))
        for d in report.divergences:
            if opts.minimize:
                d.minimized = minimize(d.program, still_diverges)
            if opts.save:
                path = save_entry(
                    opts.save, f"seed{d.seed}-idx{d.index}",
                    d.minimized or d.program,
                    note="found by python -m repro.fuzz")
                print(f"saved {path}")

    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
