"""repro.fuzz — differential fuzzing of the two execution backends.

The paper's central claim is that staged Terra code runs with C semantics
regardless of how it is evaluated.  This package tests that claim the way
dual-implementation compilers are usually validated (Csmith-style random
differential testing):

* :mod:`repro.fuzz.gen` — a seeded, *typed* random program generator over
  the implemented Terra subset (arithmetic/compare/logical operators on
  every primitive type, casts, assignment, if/while/repeat/for, nested
  blocks, multi-function programs) plus boundary-biased argument sets;
* :mod:`repro.fuzz.child` — the in-subprocess executor: compiles and runs
  the generated programs on one backend at one pipeline level, streaming
  machine-readable results;
* :mod:`repro.fuzz.runner` — the differential executor: runs every
  program on the interp and C backends at pipeline levels NONE/CANON/FULL
  in crash-isolated subprocesses, so a trapping or crashing program is
  recorded as a *finding* instead of killing the harness;
* :mod:`repro.fuzz.minimize` — a delta-debugging minimizer that shrinks a
  diverging program to a minimal reproducer;
* :mod:`repro.fuzz.corpus` — saved reproducers, replayed as regression
  tests from ``tests/fuzz/corpus``;
* ``python -m repro.fuzz`` — the CLI (seed, count, backends, levels,
  minimization, corpus replay) with a summary report wired into the
  buildd-style telemetry (``repro.buildd.stats``).

Every divergence this subsystem found in the seed tree is fixed and kept
as a corpus entry; see docs/LANGUAGE.md "Defined semantics".
"""

from .gen import (FuzzProgram, fuzz_env, generate_argsets,  # noqa: F401
                  generate_program)
from .runner import (Divergence, Execution, FuzzReport,  # noqa: F401
                     run_differential)
from .minimize import minimize  # noqa: F401
from .corpus import (load_corpus, replay_entry,  # noqa: F401
                     save_entry)

__all__ = [
    "FuzzProgram", "fuzz_env", "generate_program", "generate_argsets",
    "Execution", "Divergence", "FuzzReport", "run_differential",
    "minimize", "load_corpus", "replay_entry", "save_entry",
]
