"""The crash-isolated fuzzing child: runs generated programs on ONE
backend at ONE pipeline level, streaming machine-readable results.

The parent (:mod:`repro.fuzz.runner`) spawns one child per
(backend, pipeline-level) configuration.  A child never receives program
text in generate mode — it regenerates each program deterministically
from ``(seed, index)`` — so the only protocol is newline-delimited JSON
on stdout:

    {"event": "begin", "index": 17}
    {"event": "done",  "index": 17, "outcomes": [...]}

``begin`` is flushed *before* the program is compiled or run; if the
child then dies (SIGFPE from a miscompiled trap, SIGSEGV, ...), the
parent attributes the crash to the in-flight index and respawns the
child with ``--start`` past it.  This is the property the whole
subsystem is built around: no generated program — including ones that
trap — can take the harness down.

``--one`` mode instead reads a single ``{"source", "entry", "argsets"}``
JSON object on stdin and prints one result line; the minimizer and the
corpus replayer use it to run arbitrary (not generator-derived)
programs under the same isolation.

The pipeline level is pinned with ``REPRO_TERRA_PIPELINE`` *before*
:mod:`repro` is imported, so every unit the child compiles — whatever
backend defaults say — runs at exactly the requested level.

Besides the two real backends, ``--backend tiered`` runs programs
through the **tiered execution policy** with a deliberately low tier-up
threshold (``REPRO_TERRA_TIER_THRESHOLD=2`` unless the caller already
pinned it) and synchronous tier-ups: the first calls of every program
interpret, then the child tiers up to C — and usually respecializes on
the profiled constants — *in the middle of the argset loop*.  The
differential contract is unchanged (bitwise result equality against the
plain configs), so this config fuzzes exactly the tier-transition and
guard-fallback seams that no single backend exercises.

``--backend sched`` runs the C backend with the deterministic *lenient*
tile schedule (:func:`repro.schedule.fuzz_schedule`) applied to every
program before compilation: every loop named ``i``/``i1``/``i2``/``i3``
is blocked by a deliberately non-dividing size, and loops the lowering
cannot prove safe are silently skipped.  Blocking is order-preserving,
so the differential contract stays bitwise equality against every
unscheduled config — this is how the schedule lowering's clamp and
splice paths get fuzzed against arbitrary generated programs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def encode_result(value) -> list:
    """A canonical, JSON-able encoding of one primitive call result.

    Floats encode as ``float.hex()`` so comparison is *bitwise* — the
    differential contract is bit-equality, not approximate equality —
    with all NaN payloads canonicalized to ``"nan"`` (the backends may
    legitimately produce different payload bits)."""
    if value is None:
        return ["unit"]
    if isinstance(value, bool):
        return ["bool", int(value)]
    if isinstance(value, int):
        return ["int", value]
    if isinstance(value, float):
        if value != value:
            return ["float", "nan"]
        return ["float", value.hex()]
    if isinstance(value, tuple):
        return ["tuple", [encode_result(v) for v in value]]
    return ["repr", repr(value)]


def encode_args(args) -> list:
    """Encode an argument tuple for transport in strict JSON (floats go
    as hex so ``inf``/``nan``/``-0.0`` survive the round trip)."""
    out = []
    for a in args:
        if isinstance(a, bool):
            out.append(["b", int(a)])
        elif isinstance(a, int):
            out.append(["i", a])
        elif isinstance(a, float):
            out.append(["f", "nan" if a != a else a.hex()])
        else:
            raise TypeError(f"cannot encode fuzz argument {a!r}")
    return out


def decode_args(encoded) -> tuple:
    out = []
    for kind, v in encoded:
        if kind == "b":
            out.append(bool(v))
        elif kind == "i":
            out.append(int(v))
        elif kind == "f":
            out.append(float("nan") if v == "nan" else float.fromhex(v))
        else:
            raise ValueError(f"unknown fuzz argument kind {kind!r}")
    return tuple(out)


def _run_program(source: str, entry: str, argsets, backend_name: str):
    """Compile ``entry`` on the selected backend and run every argset.

    Returns the program outcome: ``{"outcomes": [...]}`` with one entry
    per argset, or ``{"fatal": [type, message]}`` when the program fails
    to specialize/typecheck/compile at all."""
    from repro import get_backend, terra
    from repro.errors import TrapError
    from repro.fuzz.gen import fuzz_env

    try:
        ns = terra(source, env=fuzz_env())
        # terra() returns the function itself for single-definition
        # sources and a Namespace for multi-definition ones
        try:
            fn = ns[entry]
        except TypeError:
            fn = ns
        if backend_name == "tiered":
            # calls route through the tiered policy (pinned via the
            # environment in main()); force the tier-0 compile now so a
            # specialize/typecheck failure is a "fatal" here, exactly
            # like the plain configs, not a per-argset "error"
            fn.dispatcher.compiled_handle("interp")
            handle = fn
        elif backend_name == "sched":
            from repro.schedule import apply, fuzz_schedule
            apply(fn, fuzz_schedule())
            handle = fn.compile(get_backend("c"))
        else:
            handle = fn.compile(get_backend(backend_name))
    except Exception as exc:  # compile-time failure: a finding in itself
        return {"fatal": [type(exc).__name__, str(exc)]}
    outcomes = []
    for args in argsets:
        try:
            outcomes.append({"ok": encode_result(handle(*args))})
        except TrapError as exc:
            outcomes.append({"trap": str(exc)})
        except Exception as exc:
            outcomes.append({"error": [type(exc).__name__, str(exc)]})
    return {"outcomes": outcomes}


def _emit(obj) -> None:
    sys.stdout.write(json.dumps(obj) + "\n")
    sys.stdout.flush()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.fuzz.child")
    parser.add_argument("--backend", required=True,
                        choices=["interp", "c", "tiered", "sched"])
    parser.add_argument("--level", required=True, type=int,
                        choices=[0, 1, 2, 3])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--count", type=int, default=0)
    parser.add_argument("--start", type=int, default=0)
    parser.add_argument("--one", action="store_true",
                        help="run one JSON-encoded program from stdin")
    opts = parser.parse_args(argv)

    # pin the pipeline level before repro is imported anywhere
    os.environ["REPRO_TERRA_PIPELINE"] = str(opts.level)
    if opts.backend == "tiered":
        # force tier-up in the middle of every program's argset loop:
        # a low threshold, completed inline so the transition is
        # deterministic (and crashes stay attributable to one index)
        os.environ["REPRO_TERRA_EXEC_POLICY"] = "tiered"
        os.environ["REPRO_TERRA_TIER_SYNC"] = "1"
        os.environ.setdefault("REPRO_TERRA_TIER_THRESHOLD", "2")

    if opts.one:
        spec = json.loads(sys.stdin.read())
        argsets = [decode_args(a) for a in spec["argsets"]]
        _emit(_run_program(spec["source"], spec["entry"], argsets,
                           opts.backend))
        return 0

    from repro.fuzz.gen import generate_program
    for index in range(opts.start, opts.count):
        _emit({"event": "begin", "index": index})
        program = generate_program(opts.seed, index)
        result = _run_program(program.source, program.entry,
                              program.argsets, opts.backend)
        result["event"] = "done"
        result["index"] = index
        _emit(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
