"""ctypes ABI construction for compiled Terra functions.

Maps Terra types onto ctypes so that compiled functions can be called from
Python: primitives map directly, pointers are passed as 64-bit addresses,
and aggregates passed/returned by value get mirrored ctypes.Structure
classes whose layout matches :mod:`repro.core.types` (natural alignment).

Vector types never cross the Python boundary (raise FFIError); they exist
only inside compiled code.
"""

from __future__ import annotations

import ctypes

from ...core import types as T
from ...errors import FFIError

_PRIM_CTYPES = {
    "int8": ctypes.c_int8, "int16": ctypes.c_int16,
    "int32": ctypes.c_int32, "int64": ctypes.c_int64,
    "uint8": ctypes.c_uint8, "uint16": ctypes.c_uint16,
    "uint32": ctypes.c_uint32, "uint64": ctypes.c_uint64,
    "float": ctypes.c_float, "double": ctypes.c_double,
    "bool": ctypes.c_uint8,
}

_struct_cache: dict[int, type] = {}


def ctype_for(ty: T.Type):
    """The ctypes type for a Terra type (for args/returns by value)."""
    if isinstance(ty, T.PrimitiveType):
        return _PRIM_CTYPES[ty.name]
    if ty.ispointer():
        return ctypes.c_uint64
    if isinstance(ty, T.TupleType) and ty.isunit():
        return None
    if isinstance(ty, T.VectorType):
        raise FFIError(
            f"vector type {ty} cannot cross the Python<->Terra boundary; "
            f"pass a pointer instead")
    if isinstance(ty, T.StructType):
        return _struct_ctype(ty)
    if isinstance(ty, T.ArrayType):
        return _array_ctype(ty)
    raise FFIError(f"no ctypes mapping for {ty}")


def _struct_ctype(ty: T.StructType):
    cached = _struct_cache.get(id(ty))
    if cached is not None:
        return cached
    ty.complete()
    fields = []
    anonymous = []
    i = 0
    entries = ty.entries
    while i < len(entries):
        entry = entries[i]
        if entry.union_group is None:
            fields.append((f"f_{entry.field}", ctype_for(entry.type)))
            i += 1
            continue
        group = entry.union_group
        members = []
        while i < len(entries) and entries[i].union_group == group:
            members.append((f"f_{entries[i].field}",
                            ctype_for(entries[i].type)))
            i += 1
        ucls = type(f"CTU_{ty.name}_{group}", (ctypes.Union,),
                    {"_fields_": members})
        uname = f"u_{group}"
        fields.append((uname, ucls))
        anonymous.append(uname)
    if not fields:
        fields = [("f__empty", ctypes.c_uint8 * 0)]
    cls = type(f"CT_{ty.name}", (ctypes.Structure,),
               {"_fields_": fields, "_anonymous_": tuple(anonymous)})
    if ctypes.sizeof(cls) != ty.sizeof():
        raise FFIError(
            f"ctypes layout mismatch for {ty}: ctypes says "
            f"{ctypes.sizeof(cls)}, Terra says {ty.sizeof()}")
    _struct_cache[id(ty)] = cls
    return cls


def _array_ctype(ty: T.ArrayType):
    cached = _struct_cache.get(id(ty))
    if cached is not None:
        return cached
    cls = type(f"CTA_{ty.count}", (ctypes.Structure,),
               {"_fields_": [("data", ctype_for(ty.elem) * ty.count)]})
    _struct_cache[id(ty)] = cls
    return cls
