"""Typed Terra IR → C source.

The analog of Terra's LLVM code generator: each compilation unit is one
connected component of functions, emitted as a self-contained C translation
unit and built by gcc at ``-O3 -march=native``.

Lowering notes:

* Terra vectors → GCC vector extensions (``__attribute__((vector_size))``),
  the same SIMD model Terra gets from LLVM's vector types;
* ``prefetch`` → ``__builtin_prefetch`` (the paper's §6.1 kernel relies on
  this); hint arguments must be compile-time constants, as in C;
* statement-quotes spliced into expressions (``TLetIn``) → GCC statement
  expressions;
* Terra arrays are value types, so ``T[N]`` becomes a one-field wrapper
  struct (arrays then copy/pass/return by value exactly like Terra);
* cross-unit references never happen: the linker hands every backend the
  whole connected component, and globals/callbacks are referenced through
  absolute addresses materialized by the runtime.
"""

from __future__ import annotations

import itertools
import os
from typing import Optional

from ...core import tast
from ...core import types as T
from ...errors import CompileError
from ...passes.analysis import expr_may_trap, has_side_effects

_unit_ids = itertools.count(1)


def _order_sensitive(e: tast.TExpr) -> bool:
    """Must ``e`` be evaluated at its source position relative to its
    siblings?  C leaves binary-operand and argument evaluation order
    unspecified (gcc goes right-to-left on x86-64), so when two sibling
    expressions can both trap or have side effects the emitter pins
    left-to-right order with a statement expression — otherwise
    ``(1 % d) / (1 / d)`` with ``d == 0`` reports the *division* trap
    where the interpreter (and source order) hit the modulo first."""
    return expr_may_trap(e) or has_side_effects(e)

#: runtime trap codes reported by guarded operations (see docs/LANGUAGE.md
#: "Defined semantics"); :mod:`repro.backend.c.runtime` translates them to
#: :class:`~repro.errors.TrapError`, mirroring the interpreter
TRAP_DIV_ZERO = 1
TRAP_MOD_ZERO = 2

TRAP_MESSAGES = {
    TRAP_DIV_ZERO: "integer division by zero",
    TRAP_MOD_ZERO: "integer modulo by zero",
}


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)


class CEmitter:
    def __init__(self, component, backend, freestanding: bool = False):
        """``component`` is a list of TerraFunctions (typechecked, the
        entry function first); ``backend`` provides addresses for globals
        and Python callbacks.

        ``freestanding`` emission (saveobj) must not reference the Python
        process: Terra globals become real C globals in the unit, and
        Python callbacks are rejected."""
        self.component = component
        self.backend = backend
        self.freestanding = freestanding
        self._global_names: dict[int, str] = {}
        self._global_list: list = []
        self.lines: list[str] = []
        self.indent = 0
        self._tmp = itertools.count(1)
        self._sym_names: dict[int, str] = {}
        self._struct_names: dict[int, str] = {}
        self._struct_list: list[T.StructType] = []
        self._array_names: dict[int, str] = {}
        self._array_list: list[T.ArrayType] = []
        self._vector_names: dict[int, str] = {}
        self._vector_list: list[T.VectorType] = []
        # runtime helper functions emitted once per unit, on first use
        # (guarded div/mod, saturating float->int); name -> definition lines
        self._helper_defs: dict[str, list[str]] = {}
        # True once any helper can call trepro_trap(): the unit then gets
        # the setjmp machinery and per-function *_tentry wrappers
        self._trap_used = False
        # deterministic unit-local function names, assigned in component
        # (discovery) order rather than from the process-global uid counter:
        # identically-staged units then emit byte-identical C, so the
        # content-addressed artifact cache hits across reruns and processes.
        self.fn_names: dict[int, str] = {}
        for index, f in enumerate(component):
            if not f.is_external:
                self.fn_names[f.uid] = f"tfn{index}_{_sanitize(f.name)}"

    # ==================================================================
    # naming / type spelling
    # ==================================================================
    def fn_name(self, fn) -> str:
        if fn.is_external:
            return fn.external_name
        name = self.fn_names.get(fn.uid)
        if name is None:  # defensive: everything emitted is in the component
            name = f"tfn{fn.uid}_{_sanitize(fn.name)}"
            self.fn_names[fn.uid] = name
        return name

    def ctype(self, ty: T.Type) -> str:
        """The C spelling of a Terra type (usable in casts and decls)."""
        if isinstance(ty, T.PrimitiveType):
            if ty.islogical():
                return "uint8_t"
            if ty.isfloat():
                return "float" if ty is T.float32 else "double"
            return f"{'' if ty.signed else 'u'}int{ty.bytes * 8}_t"
        if isinstance(ty, T.TupleType) and ty.isunit():
            return "void"
        if isinstance(ty, T.PointerType):
            if isinstance(ty.pointee, T.FunctionType):
                return self._fnptr_type(ty.pointee, "")
            if isinstance(ty.pointee, T.OpaqueType):
                return "void *"
            return f"{self.ctype(ty.pointee)} *"
        if isinstance(ty, T.StructType):
            return self._struct_name(ty)
        if isinstance(ty, T.ArrayType):
            return self._array_name(ty)
        if isinstance(ty, T.VectorType):
            return self._vector_name(ty)
        if isinstance(ty, T.OpaqueType):
            return "void"
        raise CompileError(f"cannot emit C type for {ty}")

    def _fnptr_type(self, ftype: T.FunctionType, name: str) -> str:
        ret = self.ctype(ftype.returntype)
        params = ", ".join(self.ctype(p) for p in ftype.parameters)
        if ftype.varargs:
            params = f"{params}, ..." if params else "..."
        elif not params:
            params = "void"
        return f"{ret} (*{name})({params})"

    def _struct_name(self, ty: T.StructType) -> str:
        name = self._struct_names.get(id(ty))
        if name is None:
            ty.complete()
            ty.layout()
            name = f"ts{len(self._struct_names)}_{_sanitize(ty.name)}"
            self._struct_names[id(ty)] = name
            self._struct_list.append(ty)
            for entry in ty.entries:
                self._register(entry.type)
        return name

    def _array_name(self, ty: T.ArrayType) -> str:
        name = self._array_names.get(id(ty))
        if name is None:
            name = f"ta{len(self._array_names)}"
            self._array_names[id(ty)] = name
            self._array_list.append(ty)
            self._register(ty.elem)
        return name

    def _vector_name(self, ty: T.VectorType) -> str:
        name = self._vector_names.get(id(ty))
        if name is None:
            name = f"tv{len(self._vector_names)}_{self.ctype(ty.elem).rstrip('_t')}"
            name = _sanitize(name)
            self._vector_names[id(ty)] = name
            self._vector_list.append(ty)
        return name

    def _register(self, ty: T.Type) -> None:
        """Make sure a type (and its dependencies) get typedefs."""
        self.ctype(ty)

    # ==================================================================
    # unit emission
    # ==================================================================
    def _fn_body(self, fn) -> tast.TBlock:
        """``fn``'s body at this backend's pipeline level.

        Served through the per-level cache in :mod:`repro.passes`, so the
        emitted C does not depend on whether another backend that wants a
        higher level (the interpreter runs LICM) compiled first."""
        from ...passes import pipelined_body
        return pipelined_body(fn.typed,
                              getattr(self.backend, "pipeline_level", None))

    def emit_unit(self) -> str:
        # pass 0: with REPRO_TERRA_VERIFY_IR=1, re-check the typed trees
        # right before they become C — the last point a broken invariant
        # can be caught as a diagnostic instead of a miscompile
        if os.environ.get("REPRO_TERRA_VERIFY_IR", "") not in ("", "0"):
            from ...passes.verify import verify_function
            for fn in self.component:
                if not fn.is_external and fn.typed is not None:
                    verify_function(fn.typed, where="before C emission",
                                    body=self._fn_body(fn))
        # pass 1: register every type reachable from the component
        for fn in self.component:
            self.fn_name(fn)
            ftype = fn.gettype() if fn.is_external else fn.typed.type
            for p in ftype.parameters:
                self._register(p)
            self._register(ftype.returntype)
            if not fn.is_external:
                for node in tast.walk(self._fn_body(fn)):
                    ty = getattr(node, "type", None)
                    if isinstance(ty, T.Type) and not isinstance(ty, T.FunctionType):
                        self._register(ty)
                    if isinstance(node, tast.TVarDecl):
                        for t in node.types:
                            self._register(t)
        # pass 2: emit bodies into a scratch buffer (may register more
        # types through casts spelled inside expressions)
        body_lines: list[str] = []
        for fn in self.component:
            if fn.is_external:
                continue
            saved = self.lines
            self.lines = body_lines
            self._emit_function(fn)
            if getattr(fn, "emit_chunk", False):
                self._emit_chunk_raw(fn)
            self.lines = saved
        # pass 3: assemble the final translation unit
        out: list[str] = [
            "#include <stdint.h>",
            "#include <stddef.h>",
        ]
        if self._trap_used:
            out.append("#include <setjmp.h>")
        out.append("")
        out.extend(self._emit_typedefs())
        out.append("")
        if self._trap_used:
            out.extend(self._emit_trap_prelude())
        # helper definitions, sorted by name so emission order inside
        # bodies never changes the unit text (content-cache determinism)
        for name in sorted(self._helper_defs):
            out.extend(self._helper_defs[name])
        if self._helper_defs:
            out.append("")
        out.extend(self._emit_freestanding_globals())
        for fn in self.component:
            out.append(self._prototype(fn) + ";")
        out.append("")
        out.extend(body_lines)
        if self._trap_used:
            out.extend(self._emit_entry_wrappers())
        out.extend(self._emit_chunk_wrappers())
        return "\n".join(out) + "\n"

    # ==================================================================
    # runtime trap machinery (guarded operations)
    # ==================================================================
    def _emit_trap_prelude(self) -> list[str]:
        """Thread-local setjmp state + the trap hook.

        Inside a ``*_tentry`` wrapper (armed) a trap longjmps back to the
        wrapper, which reports the code to the caller through an out
        parameter; outside any wrapper (freestanding code, function
        pointers called from C) it falls back to ``__builtin_trap``."""
        return [
            "static __thread jmp_buf trepro_trap_jmp;",
            "static __thread int32_t trepro_trap_code;",
            "static __thread int32_t trepro_trap_armed;",
            "__attribute__((noreturn)) static void trepro_trap(int32_t code) {",
            "  trepro_trap_code = code;",
            "  if (trepro_trap_armed) longjmp(trepro_trap_jmp, 1);",
            "  __builtin_trap();",
            "}",
            "",
        ]

    def _emit_entry_wrappers(self) -> list[str]:
        """``*_tentry`` twins for every function in the unit: same
        signature plus a trailing ``int32_t *trapcode`` out-param.  The
        wrapper arms the trap jump buffer around the real call; a trap
        unwinds straight back here (so execution stops at the trapping
        operation, like the interpreter's TrapError) and the nonzero code
        is reported instead of a result."""
        out: list[str] = []
        for fn in self.component:
            if fn.is_external:
                continue
            typed = fn.typed
            ret = typed.type.returntype
            is_void = isinstance(ret, T.TupleType) and ret.isunit()
            args = ", ".join(self._sym(sym) for sym in typed.param_symbols)
            params = ", ".join(
                self._field_decl(ty, self._sym(sym))
                for sym, ty in zip(typed.param_symbols, typed.type.parameters))
            params = f"{params}, " if params else ""
            rty = self.ctype(ret)
            name = self.fn_name(fn)
            out.append(f"{rty} {name}_tentry({params}int32_t *trapcode) {{")
            out.append("  jmp_buf _saved_jmp;")
            out.append("  int32_t _saved_armed = trepro_trap_armed;")
            out.append("  __builtin_memcpy(&_saved_jmp, &trepro_trap_jmp, "
                       "sizeof(jmp_buf));")
            out.append("  if (setjmp(trepro_trap_jmp)) {")
            out.append("    __builtin_memcpy(&trepro_trap_jmp, &_saved_jmp, "
                       "sizeof(jmp_buf));")
            out.append("    trepro_trap_armed = _saved_armed;")
            out.append("    *trapcode = trepro_trap_code;")
            if is_void:
                out.append("    return;")
            else:
                out.append(f"    {rty} _z;")
                out.append("    __builtin_memset(&_z, 0, sizeof(_z));")
                out.append("    return _z;")
            out.append("  }")
            out.append("  trepro_trap_armed = 1;")
            if is_void:
                out.append(f"  {name}({args});")
            else:
                out.append(f"  {rty} _r = {name}({args});")
            out.append("  __builtin_memcpy(&trepro_trap_jmp, &_saved_jmp, "
                       "sizeof(jmp_buf));")
            out.append("  trepro_trap_armed = _saved_armed;")
            out.append("  *trapcode = 0;")
            out.append("  return;" if is_void else "  return _r;")
            out.append("}")
            out.append("")
        return out

    # ==================================================================
    # chunked entries (repro.parallel dispatch targets)
    # ==================================================================
    def _chunk_loop_of(self, fn) -> tast.TForNum:
        """The final top-level loop of a chunk-marked kernel, validated.

        A chunked entry runs only the iterations of that loop falling in
        ``[lo, hi)``; every statement before it (setup, locals) runs in
        every chunk, so it must be cheap and idempotent — which is the
        shape of all the repo's loop kernels (Orion stages, blocked
        loops, DataTable sweeps, GEMM panels)."""
        typed = fn.typed
        ret = typed.type.returntype
        if not (isinstance(ret, T.TupleType) and ret.isunit()):
            raise CompileError(
                f"mark_chunked: {fn.name!r} returns {ret}; chunked kernels "
                f"must return nothing (results go through out-pointers)")
        if typed.type.varargs:
            raise CompileError(
                f"mark_chunked: {fn.name!r} is varargs")
        stats = self._fn_body(fn).statements
        if not stats or not isinstance(stats[-1], tast.TForNum):
            raise CompileError(
                f"mark_chunked: {fn.name!r}'s body must end in a numeric "
                f"for loop (the axis repro.parallel splits into chunks)")
        loop = stats[-1]
        if loop.step is not None and loop.step_sign <= 0:
            raise CompileError(
                f"mark_chunked: {fn.name!r}'s final loop must ascend "
                f"(constant positive step) to be split into [lo, hi) chunks")
        return loop

    def _emit_chunk_raw(self, fn) -> None:
        """The ``static`` worker body of a chunked kernel: the function's
        prelude statements followed by its final loop clamped to the
        ``[_clo, _chi)`` iteration window."""
        loop = self._chunk_loop_of(fn)
        typed = fn.typed
        params = ", ".join(
            self._field_decl(ty, self._sym(sym))
            for sym, ty in zip(typed.param_symbols, typed.type.parameters))
        params = f", {params}" if params else ""
        self._line(f"static void {self.fn_name(fn)}_chunkraw"
                   f"(int64_t _clo, int64_t _chi{params}) {{")
        self.indent += 1
        for s in self._fn_body(fn).statements[:-1]:
            self._emit_stat(s)
        self._emit_for_chunked(loop)
        self.indent -= 1
        self._line("}")
        self._line("")

    def _emit_for_chunked(self, s: tast.TForNum) -> None:
        """Like :meth:`_emit_for`, but iterating only the loop's own
        iterates that fall inside ``[_clo, _chi)`` — for a strided loop
        the start advances to the first iterate >= ``_clo`` (exactly the
        serial iterate sequence, whatever the chunk alignment)."""
        cty = self.ctype(s.var_type)
        name = self._sym(s.symbol)
        start = f"_sta{next(self._tmp)}"
        lim = f"_lim{next(self._tmp)}"
        self._line("{")
        self.indent += 1
        # source evaluation order: start, then limit (matches _emit_for
        # and the interpreter)
        self._line(f"{cty} {start} = {self._ev(s.start)};")
        self._line(f"{cty} {lim} = {self._ev(s.limit)};")
        self._line(f"if ({lim} > ({cty})_chi) {lim} = ({cty})_chi;")
        if s.step is None:
            self._line(f"if ({start} < ({cty})_clo) {start} = ({cty})_clo;")
            inc = f"++{name}"
        else:
            stp = f"_stp{next(self._tmp)}"
            self._line(f"{cty} {stp} = {self._ev(s.step)};")
            self._line(f"if ({start} < ({cty})_clo) {start} += "
                       f"((({cty})_clo - {start} + {stp} - 1) / {stp}) * {stp};")
            inc = f"{name} += {stp}"
        self._line(f"for ({cty} {name} = {start}; {name} < {lim}; {inc}) {{")
        self.indent += 1
        self._emit_block_stmts(s.body)
        self.indent -= 1
        self._line("}")
        self.indent -= 1
        self._line("}")

    def _emit_chunk_wrappers(self) -> list[str]:
        """Public ``<name>_chunk(lo, hi, args..., int32_t *trapcode)``
        entries for chunk-marked kernels.  Always carries the trapcode
        out-param (uniform ctypes binding); when the unit has trappable
        operations the wrapper arms the per-thread trap jump buffer the
        same way ``*_tentry`` does — each worker thread traps
        independently (the setjmp state is ``__thread``)."""
        out: list[str] = []
        for fn in self.component:
            if fn.is_external or not getattr(fn, "emit_chunk", False):
                continue
            typed = fn.typed
            params = ", ".join(
                self._field_decl(ty, self._sym(sym))
                for sym, ty in zip(typed.param_symbols, typed.type.parameters))
            params = f"{params}, " if params else ""
            args = ", ".join(self._sym(sym) for sym in typed.param_symbols)
            args = f", {args}" if args else ""
            name = self.fn_name(fn)
            out.append(f"void {name}_chunk(int64_t _clo, int64_t _chi, "
                       f"{params}int32_t *trapcode) {{")
            if self._trap_used:
                out.append("  jmp_buf _saved_jmp;")
                out.append("  int32_t _saved_armed = trepro_trap_armed;")
                out.append("  __builtin_memcpy(&_saved_jmp, &trepro_trap_jmp, "
                           "sizeof(jmp_buf));")
                out.append("  if (setjmp(trepro_trap_jmp)) {")
                out.append("    __builtin_memcpy(&trepro_trap_jmp, "
                           "&_saved_jmp, sizeof(jmp_buf));")
                out.append("    trepro_trap_armed = _saved_armed;")
                out.append("    *trapcode = trepro_trap_code;")
                out.append("    return;")
                out.append("  }")
                out.append("  trepro_trap_armed = 1;")
                out.append(f"  {name}_chunkraw(_clo, _chi{args});")
                out.append("  __builtin_memcpy(&trepro_trap_jmp, &_saved_jmp, "
                           "sizeof(jmp_buf));")
                out.append("  trepro_trap_armed = _saved_armed;")
                out.append("  *trapcode = 0;")
            else:
                out.append("  *trapcode = 0;")
                out.append(f"  {name}_chunkraw(_clo, _chi{args});")
            out.append("}")
            out.append("")
        return out

    def _div_helper(self, op: str, ty: T.PrimitiveType) -> str:
        """A guarded integer division/modulo helper for ``ty``.

        Semantics (docs/LANGUAGE.md "Defined semantics"): a zero divisor
        traps (code TRAP_DIV_ZERO/TRAP_MOD_ZERO → TrapError in the host);
        ``INT_MIN / -1`` wraps to ``INT_MIN`` and ``INT_MIN % -1`` is 0 —
        both of which SIGFPE on bare x86 hardware."""
        kind = "div" if op == "/" else "mod"
        suffix = f"{'i' if ty.signed else 'u'}{ty.bytes * 8}"
        name = f"trepro_{kind}_{suffix}"
        if name not in self._helper_defs:
            self._trap_used = True
            cty = self.ctype(ty)
            code = TRAP_DIV_ZERO if kind == "div" else TRAP_MOD_ZERO
            lines = [f"static inline {cty} {name}({cty} a, {cty} b) {{",
                     f"  if (b == 0) trepro_trap({code});"]
            if ty.signed and ty.bytes >= 4:
                # widths below int promote to int, so a/b cannot overflow
                uty = f"uint{ty.bytes * 8}_t"
                usfx = "U" if ty.bytes == 4 else "ULL"
                if kind == "div":
                    lines.append(f"  if (b == -1) return "
                                 f"({cty})(0{usfx} - ({uty})a);")
                else:
                    lines.append("  if (b == -1) return 0;")
            c_op = "/" if kind == "div" else "%"
            lines.append(f"  return ({cty})(a {c_op} b);")
            lines.append("}")
            self._helper_defs[name] = lines
        return name

    def _sat_helper(self, ty: T.PrimitiveType) -> str:
        """A saturating float→int conversion helper targeting ``ty``:
        NaN → 0, out-of-range truncations clamp to the type's min/max
        (LLVM ``fptosi.sat``; both backends implement exactly this).
        float32 sources promote to double exactly, so one helper per
        target type suffices."""
        suffix = f"{'i' if ty.signed else 'u'}{ty.bytes * 8}"
        name = f"trepro_f2{suffix}"
        if name not in self._helper_defs:
            cty = self.ctype(ty)
            bits = ty.bytes * 8
            if ty.signed:
                lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
                # float(2^(bits-1)) and float(-2^(bits-1)) are exact;
                # every x in (lo-1, lo) truncates to lo anyway, so the
                # simple `x < lo` guard is value-preserving
                # spell INT_MIN as (INT_MIN+1) - 1: the bare literal
                # overflows C's long long grammar
                low_guard = (f"  if (x < {float(lo)!r}) "
                             f"return {self._scalar_const(lo + 1, ty)} - 1;")
            else:
                lo, hi = 0, (1 << bits) - 1
                low_guard = "  if (x <= -1.0) return 0;"
            lines = [f"static inline {cty} {name}(double x) {{",
                     "  if (x != x) return 0;",
                     f"  if (x >= {float(hi + 1)!r}) "
                     f"return {self._scalar_const(hi, ty)};",
                     low_guard,
                     f"  return ({cty})x;",
                     "}"]
            self._helper_defs[name] = lines
        return name

    def _narrow(self, expr: str, ty: T.Type) -> str:
        """Truncate a C arithmetic result back to a sub-int Terra type.

        C's integer promotions compute int8/int16 arithmetic at ``int``
        width; without this cast the un-wrapped intermediate leaks into
        enclosing expressions (``(x + x) < y`` at int8) and diverges from
        the interpreter's width-exact wrapping."""
        if isinstance(ty, T.PrimitiveType) and ty.isintegral() \
                and ty.bytes < 4:
            return f"(({self.ctype(ty)}){expr})"
        return expr

    def _emit_typedefs(self) -> list[str]:
        out: list[str] = []
        for ty in self._vector_list:
            size = ty.sizeof()
            align = ty.alignof()
            out.append(
                f"typedef {self.ctype(ty.elem)} {self._vector_names[id(ty)]} "
                f"__attribute__((vector_size({size}), aligned({align})));")
        # forward declarations so pointer fields can be spelled
        for ty in self._struct_list:
            name = self._struct_names[id(ty)]
            out.append(f"typedef struct {name} {name};")
        for ty in self._array_list:
            name = self._array_names[id(ty)]
            out.append(f"typedef struct {name} {name};")
        # definitions, topologically sorted on by-value dependencies
        emitted: set[int] = set()
        aggregates = list(self._struct_list) + list(self._array_list)

        def emit_aggregate(ty):
            if id(ty) in emitted:
                return
            emitted.add(id(ty))
            deps = []
            if isinstance(ty, T.StructType):
                deps = [e.type for e in ty.entries]
            elif isinstance(ty, T.ArrayType):
                deps = [ty.elem]
            for dep in deps:
                if isinstance(dep, (T.StructType, T.ArrayType)):
                    emit_aggregate(dep)
            if isinstance(ty, T.StructType):
                name = self._struct_names[id(ty)]
                parts: list[str] = []
                i = 0
                entries = ty.entries
                while i < len(entries):
                    e = entries[i]
                    if e.union_group is None:
                        parts.append(
                            f" {self._field_decl(e.type, _sanitize(e.field))};")
                        i += 1
                        continue
                    group = e.union_group
                    members = []
                    while i < len(entries) and entries[i].union_group == group:
                        members.append(
                            f" {self._field_decl(entries[i].type, _sanitize(entries[i].field))};")
                        i += 1
                    parts.append(f" union {{{''.join(members)} }};")
                fields = "".join(parts)
                if not ty.entries:
                    fields = " char _empty;"  # C forbids empty structs
                out.append(f"struct {name} {{{fields} }};")
            else:
                name = self._array_names[id(ty)]
                count = max(ty.count, 1)
                out.append(f"struct {name} {{ "
                           f"{self._field_decl(ty.elem, 'data', count)}; }};")

        # aggregates can grow while we iterate (nested registrations)
        i = 0
        while i < len(aggregates):
            emit_aggregate(aggregates[i])
            i += 1
            aggregates = list(self._struct_list) + list(self._array_list)
        return out

    def _freestanding_global(self, glob) -> str:
        name = self._global_names.get(glob.uid)
        if name is None:
            name = f"tg{glob.uid}_{_sanitize(glob.name)}"
            self._global_names[glob.uid] = name
            self._global_list.append(glob)
            self._register(glob.type)
        return name

    def _emit_freestanding_globals(self) -> list[str]:
        out: list[str] = []
        for glob in self._global_list:
            name = self._global_names[glob.uid]
            ty = glob.type
            decl = self._field_decl(ty, name)
            if glob.init is None:
                out.append(f"static {decl};")  # C zero-initializes statics
            elif isinstance(ty, T.PrimitiveType):
                out.append(f"static {decl} = {self._scalar_const(glob.init, ty)};")
            elif ty.ispointer() and (glob.init in (0, None)):
                out.append(f"static {decl} = 0;")
            else:
                # aggregate initializer: copy the exact in-memory bytes in
                # at load time
                from ...ffi.convert import python_to_blob
                blob = python_to_blob(glob.init, ty)
                bytes_list = ",".join(str(b) for b in blob)
                out.append(f"static {decl};")
                out.append(
                    f"__attribute__((constructor)) static void "
                    f"init_{name}(void) {{ static const unsigned char "
                    f"_blob[] = {{{bytes_list}}}; "
                    f"__builtin_memcpy(&{name}, _blob, {len(blob)}); }}")
        return out

    def _field_decl(self, ty: T.Type, name: str,
                    array_count: Optional[int] = None) -> str:
        if isinstance(ty, T.PointerType) and isinstance(ty.pointee, T.FunctionType):
            inner = name if array_count is None else f"{name}[{array_count}]"
            return self._fnptr_type(ty.pointee, inner)
        base = self.ctype(ty)
        if array_count is not None:
            return f"{base} {name}[{array_count}]"
        return f"{base} {name}"

    def _prototype(self, fn) -> str:
        if fn.is_external:
            ftype = fn.external_type
            params = ", ".join(self.ctype(p) for p in ftype.parameters)
            if ftype.varargs:
                params = f"{params}, ..." if params else "..."
            elif not params:
                params = "void"
            return (f"extern {self.ctype(ftype.returntype)} "
                    f"{fn.external_name}({params})")
        typed = fn.typed
        params = ", ".join(
            self._field_decl(ty, self._sym(sym))
            for sym, ty in zip(typed.param_symbols, typed.type.parameters))
        if not params:
            params = "void"
        return f"{self.ctype(typed.type.returntype)} {self.fn_name(fn)}({params})"

    def _sym(self, symbol) -> str:
        # unit-local ordinal names (not the process-global symbol id), so
        # identically-staged units emit byte-identical C and content-cache
        name = self._sym_names.get(symbol.id)
        if name is None:
            name = f"s{len(self._sym_names)}_{_sanitize(symbol.displayname or 'v')}"
            self._sym_names[symbol.id] = name
        return name

    # ==================================================================
    # function bodies
    # ==================================================================
    def _line(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)

    def _emit_function(self, fn) -> None:
        self._line(self._prototype(fn) + " {")
        self.indent += 1
        self._emit_block_stmts(self._fn_body(fn))
        self.indent -= 1
        self._line("}")
        self._line("")

    def _emit_block_stmts(self, block: tast.TBlock) -> None:
        for stat in block.statements:
            self._emit_stat(stat)

    def _emit_stat(self, s: tast.TStat) -> None:
        if isinstance(s, tast.TVarDecl):
            for i, (sym, ty) in enumerate(zip(s.symbols, s.types)):
                name = self._sym(sym)
                if s.inits is not None:
                    self._line(f"{self._field_decl(ty, name)} = "
                               f"{self._rv(s.inits[i], ty)};")
                else:
                    self._line(f"{self._field_decl(ty, name)};")
                    self._line(f"__builtin_memset(&{name}, 0, sizeof({name}));")
        elif isinstance(s, tast.TAssign):
            if len(s.lhs) == 1:
                self._line(f"{self._ev(s.lhs[0])} = "
                           f"{self._rv(s.rhs[0], s.lhs[0].type)};")
            else:
                self._line("{")
                self.indent += 1
                temps = []
                for rhs, lhs in zip(s.rhs, s.lhs):
                    tmp = f"_t{next(self._tmp)}"
                    temps.append(tmp)
                    self._line(f"{self._field_decl(lhs.type, tmp)} = "
                               f"{self._rv(rhs, lhs.type)};")
                for lhs, tmp in zip(s.lhs, temps):
                    self._line(f"{self._ev(lhs)} = {tmp};")
                self.indent -= 1
                self._line("}")
        elif isinstance(s, tast.TIf):
            first = True
            for cond, body in s.branches:
                kw = "if" if first else "} else if"
                first = False
                self._line(f"{kw} ({self._ev(cond)}) {{")
                self.indent += 1
                self._emit_block_stmts(body)
                self.indent -= 1
            if s.orelse is not None:
                self._line("} else {")
                self.indent += 1
                self._emit_block_stmts(s.orelse)
                self.indent -= 1
            self._line("}")
        elif isinstance(s, tast.TWhile):
            self._line(f"while ({self._ev(s.cond)}) {{")
            self.indent += 1
            self._emit_block_stmts(s.body)
            self.indent -= 1
            self._line("}")
        elif isinstance(s, tast.TRepeat):
            self._line("do {")
            self.indent += 1
            self._emit_block_stmts(s.body)
            self.indent -= 1
            self._line(f"}} while (!({self._ev(s.cond)}));")
        elif isinstance(s, tast.TForNum):
            self._emit_for(s)
        elif isinstance(s, tast.TDoStat):
            self._line("{")
            self.indent += 1
            self._emit_block_stmts(s.body)
            self.indent -= 1
            self._line("}")
        elif isinstance(s, tast.TReturn):
            if s.expr is None:
                self._line("return;")
            else:
                self._line(f"return {self._rv(s.expr, s.expr.type)};")
        elif isinstance(s, tast.TBreak):
            self._line("break;")
        elif isinstance(s, tast.TExprStat):
            self._line(f"{self._ev(s.expr)};")
        else:
            raise CompileError(f"cannot emit statement {type(s).__name__}")

    def _emit_for(self, s: tast.TForNum) -> None:
        cty = self.ctype(s.var_type)
        name = self._sym(s.symbol)
        # bounds evaluate once, in source order (start, limit, step) —
        # the interpreter does the same, and effectful or trapping bound
        # expressions make the order observable
        sta = f"_sta{next(self._tmp)}"
        lim = f"_lim{next(self._tmp)}"
        self._line("{")
        self.indent += 1
        self._line(f"{cty} {sta} = {self._ev(s.start)};")
        self._line(f"{cty} {lim} = {self._ev(s.limit)};")
        if s.step is None:
            cond = f"{name} < {lim}"
            inc = f"++{name}"
        else:
            stp = f"_stp{next(self._tmp)}"
            self._line(f"{cty} {stp} = {self._ev(s.step)};")
            inc = f"{name} += {stp}"
            if s.step_sign > 0:
                cond = f"{name} < {lim}"
            elif s.step_sign < 0:
                cond = f"{name} > {lim}"
            else:
                cond = f"({stp} > 0 ? {name} < {lim} : {name} > {lim})"
        self._line(f"for ({cty} {name} = {sta}; {cond}; {inc}) {{")
        self.indent += 1
        self._emit_block_stmts(s.body)
        self.indent -= 1
        self._line("}")
        self.indent -= 1
        self._line("}")

    # ==================================================================
    # expressions
    # ==================================================================
    def _rv(self, e: tast.TExpr, target: T.Type) -> str:
        """Emit ``e`` as an rvalue of ``target`` type (types already agree
        after typechecking; this is just the string form)."""
        return self._ev(e)

    def _ev(self, e: tast.TExpr) -> str:
        if isinstance(e, tast.TConst):
            return self._const(e)
        if isinstance(e, tast.TString):
            return f"(int8_t*){self._cstring(e.value)}"
        if isinstance(e, tast.TNull):
            return f"(({self.ctype(e.type)})0)"
        if isinstance(e, tast.TVar):
            return self._sym(e.symbol)
        if isinstance(e, tast.TGlobal):
            if self.freestanding:
                return self._freestanding_global(e.glob)
            addr = self.backend.global_address(e.glob)
            return f"(*({self.ctype(e.type)}*){addr:#x}UL)"
        if isinstance(e, tast.TFuncLit):
            return self.fn_name(e.func)
        if isinstance(e, tast.TCallback):
            if self.freestanding:
                raise CompileError(
                    "saveobj: this code references a Python callback "
                    f"({e.callback.name}), which cannot exist outside the "
                    f"Python process")
            addr = self.backend.callback_address(e.callback)
            cast = self._fnptr_type(e.callback.type, "")
            return f"(({cast}){addr:#x}UL)"
        if isinstance(e, tast.TCast):
            return self._cast(e)
        if isinstance(e, tast.TCall):
            argstrs = [self._ev(a) for a in e.args]
            if isinstance(e.fn, (tast.TFuncLit, tast.TCallback)):
                callee = self._ev(e.fn)
            else:
                callee = f"({self._ev(e.fn)})"
            if sum(1 for a in e.args if _order_sensitive(a)) >= 2:
                # pin left-to-right argument evaluation (C leaves call
                # argument order unspecified; gcc goes right-to-left)
                decls = " ".join(
                    f"{self.ctype(a.type)} _seqa{i} = ({s});"
                    for i, (a, s) in enumerate(zip(e.args, argstrs)))
                args = ", ".join(f"_seqa{i}" for i in range(len(e.args)))
                return f"({{ {decls} {callee}({args}); }})"
            return f"{callee}({', '.join(argstrs)})"
        if isinstance(e, tast.TSelect):
            return f"{self._ev(e.obj)}.{_sanitize(e.field)}"
        if isinstance(e, tast.TIndex):
            if e.obj.type.ispointer():
                return f"{self._ev(e.obj)}[{self._ev(e.index)}]"
            return f"{self._ev(e.obj)}.data[{self._ev(e.index)}]"
        if isinstance(e, tast.TVectorIndex):
            return f"{self._ev(e.obj)}[{self._ev(e.index)}]"
        if isinstance(e, tast.TDeref):
            return f"(*{self._ev(e.ptr)})"
        if isinstance(e, tast.TAddressOf):
            return f"(&{self._ev(e.operand)})"
        if isinstance(e, tast.TUnOp):
            return self._unop(e)
        if isinstance(e, tast.TBinOp):
            return self._binop(e)
        if isinstance(e, tast.TLogical):
            c_op = "&&" if e.op == "and" else "||"
            return f"(uint8_t)(({self._ev(e.lhs)}) {c_op} ({self._ev(e.rhs)}))"
        if isinstance(e, tast.TCtor):
            return self._ctor(e)
        if isinstance(e, tast.TLetIn):
            saved, self.lines = self.lines, []
            saved_indent, self.indent = self.indent, 1
            self._emit_block_stmts(e.block)
            inner = "\n".join(self.lines)
            self.lines, self.indent = saved, saved_indent
            return f"({{\n{inner}\n{self._ev(e.expr)}; }})"
        if isinstance(e, tast.TIntrinsic):
            return self._intrinsic(e)
        raise CompileError(f"cannot emit expression {type(e).__name__}")

    def _const(self, e: tast.TConst) -> str:
        ty = e.type
        if isinstance(ty, T.VectorType):
            elems = ", ".join(self._scalar_const(v, ty.elem) for v in e.value)
            return f"(({self.ctype(ty)}){{{elems}}})"
        return self._scalar_const(e.value, ty)

    def _scalar_const(self, value, ty: T.PrimitiveType) -> str:
        if ty.islogical():
            return "1" if value else "0"
        if ty.isintegral():
            suffix = ""
            if ty.bytes == 8:
                suffix = "LL" if ty.signed else "ULL"
            elif not ty.signed:
                suffix = "U"
            if ty.signed and value == -(1 << (ty.bytes * 8 - 1)):
                # C has no negative literals: -9223372036854775808LL
                # parses as -(9223372036854775808LL) whose operand
                # overflows long long.  Spell every signed minimum as
                # (min+1) - 1 so the same form works at any width.
                return f"(({self.ctype(ty)})({value + 1}{suffix} - 1))"
            return f"(({self.ctype(ty)}){value}{suffix})"
        import math
        fv = float(value)
        if math.isnan(fv):
            return "__builtin_nanf(\"\")" if ty is T.float32 else "__builtin_nan(\"\")"
        if math.isinf(fv):
            base = "__builtin_inff()" if ty is T.float32 else "__builtin_inf()"
            return f"(-{base})" if fv < 0 else base
        if ty is T.float32:
            return f"{fv!r}f"
        return f"{fv!r}"

    @staticmethod
    def _cstring(text: str) -> str:
        out = ['"']
        for ch in text.encode("utf-8"):
            if 32 <= ch < 127 and ch not in (34, 92):
                out.append(chr(ch))
            else:
                out.append(f"\\{ch:03o}")
        out.append('"')
        return "".join(out)

    def _cast(self, e: tast.TCast) -> str:
        inner = self._ev(e.expr)
        ty = e.type
        src = e.expr.type
        if e.kind == "broadcast":
            assert isinstance(ty, T.VectorType)
            # splat via an initializer list: the older `{0} + x` trick
            # loses the sign of -0.0 (0.0 + -0.0 == +0.0) and is not
            # bit-exact for NaN payloads
            sty = self.ctype(src)
            elems = ", ".join(["_b"] * ty.count)
            return (f"({{ {sty} _b = ({inner}); "
                    f"({self.ctype(ty)}){{{elems}}}; }})")
        if e.kind == "vector":
            assert isinstance(ty, T.VectorType)
            if isinstance(src, T.VectorType) and src.elem.isfloat() \
                    and ty.elem.isintegral():
                # defined float->int: saturating, elementwise (a raw
                # __builtin_convertvector is UB out of range)
                helper = self._sat_helper(ty.elem)
                sty, dty = self.ctype(src), self.ctype(ty)
                return (f"({{ {sty} _s = ({inner}); {dty} _d; "
                        f"for (int _i = 0; _i < {ty.count}; _i++) "
                        f"_d[_i] = {helper}(_s[_i]); _d; }})")
            if isinstance(src, T.VectorType) and ty.elem.islogical():
                sty, dty = self.ctype(src), self.ctype(ty)
                return (f"({{ {sty} _s = ({inner}); {dty} _d; "
                        f"for (int _i = 0; _i < {ty.count}; _i++) "
                        f"_d[_i] = _s[_i] != 0; _d; }})")
            return f"__builtin_convertvector({inner}, {self.ctype(ty)})"
        if e.kind == "numeric":
            if isinstance(ty, T.PrimitiveType) and ty.islogical():
                # Terra bools are always 0/1; a raw (uint8_t) cast would
                # keep other bit patterns alive (e.g. [int32]([bool](4)))
                return f"((uint8_t)(({inner}) != 0))"
            if isinstance(ty, T.PrimitiveType) and ty.isintegral() \
                    and isinstance(src, T.PrimitiveType) and src.isfloat():
                return f"{self._sat_helper(ty)}({inner})"
            return f"(({self.ctype(ty)})({inner}))"
        if e.kind in ("pointer", "ptr-int", "int-ptr"):
            return f"(({self.ctype(ty)})({inner}))"
        raise CompileError(f"cannot emit cast kind {e.kind!r}")

    def _ctor(self, e: tast.TCtor) -> str:
        ty = e.type
        inits = ", ".join(self._ev(x) for x in e.inits)
        if isinstance(ty, T.ArrayType):
            return f"(({self.ctype(ty)}){{{{{inits}}}}})"
        if not e.inits:
            return f"(({self.ctype(ty)}){{0}})"
        return f"(({self.ctype(ty)}){{{inits}}})"

    def _unop(self, e: tast.TUnOp) -> str:
        inner = self._ev(e.operand)
        ty = e.type
        if e.op == "-":
            # -(INT8_MIN) etc. escapes the narrow range via C promotion
            return self._narrow(f"(-({inner}))", ty)
        if e.op == "not":
            if ty is T.bool_:
                return f"((uint8_t)(!({inner})))"
            if isinstance(ty, T.VectorType) and ty.islogical():
                return f"(({inner}) ^ 1)"
            return f"(~({inner}))"
        raise CompileError(f"cannot emit unary {e.op!r}")

    _C_OPS = {"+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
              "<": "<", ">": ">", "<=": "<=", ">=": ">=",
              "==": "==", "~=": "!=", "<<": "<<", ">>": ">>",
              "&": "&", "|": "|", "^": "^", "and": "&", "or": "|"}

    def _binop(self, e: tast.TBinOp) -> str:
        lhs, rhs = self._ev(e.lhs), self._ev(e.rhs)
        if _order_sensitive(e.lhs) and _order_sensitive(e.rhs):
            # pin left-to-right operand evaluation (C leaves it
            # unspecified): materialize both sides in source order, then
            # apply the operator to the temporaries
            lt = self.ctype(e.lhs.type)
            rt = self.ctype(e.rhs.type)
            inner = self._binop_apply(e, "_seql", "_seqr")
            return (f"({{ {lt} _seql = ({lhs}); {rt} _seqr = ({rhs}); "
                    f"{inner}; }})")
        return self._binop_apply(e, lhs, rhs)

    def _binop_apply(self, e: tast.TBinOp, lhs: str, rhs: str) -> str:
        op = self._C_OPS[e.op]
        lt = e.lhs.type
        ty = e.type
        # float modulo lowers to fmod
        if e.op == "%" and (lt.isfloat() and isinstance(lt, T.PrimitiveType)):
            fn = "__builtin_fmodf" if lt is T.float32 else "__builtin_fmod"
            return f"{fn}({lhs}, {rhs})"
        if e.op in ("<", ">", "<=", ">=", "==", "~="):
            if isinstance(e.type, T.VectorType):
                # GCC comparisons give int vectors of -1/0; normalize to
                # our uint8 bool vectors
                return (f"__builtin_convertvector((({lhs}) {op} ({rhs})) & 1, "
                        f"{self.ctype(e.type)})")
            return f"((uint8_t)(({lhs}) {op} ({rhs})))"
        # integer / and % go through guarded helpers: a zero divisor traps
        # (TrapError in the host, like the interpreter) instead of a
        # process-killing SIGFPE, and INT_MIN/-1 wraps instead of trapping
        if e.op in ("/", "%") and isinstance(ty, T.PrimitiveType) \
                and ty.isintegral():
            return f"{self._div_helper(e.op, ty)}({lhs}, {rhs})"
        if e.op in ("/", "%") and isinstance(ty, T.VectorType) \
                and ty.elem.isintegral():
            helper = self._div_helper(e.op, ty.elem)
            cty = self.ctype(ty)
            return (f"({{ {cty} _a = ({lhs}); {cty} _b = ({rhs}); "
                    f"for (int _i = 0; _i < {ty.count}; _i++) "
                    f"_a[_i] = {helper}(_a[_i], _b[_i]); _a; }})")
        if e.op in ("<<", ">>"):
            # defined shift semantics: the count is masked by width-1
            # (LLVM/x86 behaviour); C leaves count >= width undefined
            if isinstance(ty, T.PrimitiveType) and ty.isintegral():
                mask = ty.bytes * 8 - 1
                return self._narrow(
                    f"(({lhs}) {op} (({rhs}) & {mask}))", ty)
            if isinstance(ty, T.VectorType) and ty.elem.isintegral():
                mask = ty.elem.sizeof() * 8 - 1
                return f"(({lhs}) {op} (({rhs}) & {mask}))"
        if e.op in ("+", "-", "*"):
            # sub-int results wrap at their Terra width, not at C's
            # promoted int width
            return self._narrow(f"(({lhs}) {op} ({rhs}))", ty)
        return f"(({lhs}) {op} ({rhs}))"

    def _intrinsic(self, e: tast.TIntrinsic) -> str:
        name = e.name
        if name == "prefetch":
            args = [self._ev(e.args[0])]
            for hint in e.args[1:3]:
                if not isinstance(hint, tast.TConst):
                    raise CompileError(
                        "prefetch hint arguments must be constants")
                args.append(str(int(hint.value)))
            return f"__builtin_prefetch((const void*)({args[0]})" + \
                "".join(f", {a}" for a in args[1:]) + ")"
        if name == "fence":
            return "__sync_synchronize()"
        if name in ("sqrt", "fabs", "floor", "ceil"):
            ty = e.type
            arg = self._ev(e.args[0])
            if isinstance(ty, T.VectorType):
                return self._elementwise_builtin(name, ty, [arg])
            suffix = "f" if ty is T.float32 else ""
            return f"__builtin_{name}{suffix}({arg})"
        if name == "select":
            cond, a, b = (self._ev(x) for x in e.args)
            ty = e.type
            if isinstance(ty, T.VectorType):
                # bitwise blend (gcc's vector ternary is C++-only): widen
                # the bool lanes to all-ones masks at the operand width,
                # then (a & m) | (b & ~m) through integer views
                cty = self.ctype(ty)
                isize = {1: T.int8, 2: T.int16, 4: T.int32, 8: T.int64}
                mask_ty = T.vector(isize[ty.elem.sizeof()], ty.count)
                mty = self.ctype(mask_ty)
                mask = (f"-__builtin_convertvector(({cond}), {mty})")
                # peephole: a direct vector comparison already produces an
                # all-ones native mask at its operands' width — skip the
                # bool round-trip entirely when the widths line up
                cond_node = e.args[0]
                if (isinstance(cond_node, tast.TBinOp)
                        and cond_node.op in ("<", ">", "<=", ">=", "==", "~=")
                        and isinstance(cond_node.lhs.type, T.VectorType)
                        and cond_node.lhs.type.elem.sizeof()
                        == ty.elem.sizeof()):
                    op = self._C_OPS[cond_node.op]
                    mask = (f"(({mty})((({self._ev(cond_node.lhs)}) {op} "
                            f"({self._ev(cond_node.rhs)}))))")
                return (f"({{ {mty} _m = {mask}; "
                        f"{cty} _a = ({a}); {cty} _b = ({b}); "
                        f"{mty} _r = ((*({mty}*)&_a) & _m) | "
                        f"((*({mty}*)&_b) & ~_m); *({cty}*)&_r; }})")
            # select is call-like: both branches are always evaluated
            cty = self.ctype(ty)
            return (f"({{ {cty} _a = ({a}); {cty} _b = ({b}); "
                    f"({cond}) ? _a : _b; }})")
        if name == "vload":
            # unaligned vector load: memcpy compiles to one movups-class
            # instruction at -O1+; vector sizes here are always exact
            # (power-of-two lane counts), so sizeof covers just the lanes
            cty = self.ctype(e.type)
            addr = self._ev(e.args[0])
            return (f"({{ {cty} _v; __builtin_memcpy(&_v, "
                    f"(const void*)({addr}), sizeof _v); _v; }})")
        if name == "vstore":
            cty = self.ctype(e.args[1].type)
            addr = self._ev(e.args[0])
            value = self._ev(e.args[1])
            return (f"({{ {cty} _v = ({value}); __builtin_memcpy("
                    f"(void*)({addr}), &_v, sizeof _v); (void)0; }})")
        if name == "fma":
            ty = e.type
            a, b, c = (self._ev(x) for x in e.args)
            suffix = "f" if ty is T.float32 else ""
            return f"__builtin_fma{suffix}({a}, {b}, {c})"
        if name in ("fmin", "fmax"):
            ty = e.type
            a, b = self._ev(e.args[0]), self._ev(e.args[1])
            cmp = "<" if name == "fmin" else ">"
            if isinstance(ty, T.VectorType):
                cty = self.ctype(ty)
                return (f"({{ {cty} _a = ({a}); {cty} _b = ({b}); "
                        f"for (int _i = 0; _i < {ty.count}; _i++) "
                        f"_a[_i] = _a[_i] {cmp} _b[_i] ? _a[_i] : _b[_i]; "
                        f"_a; }})")
            cty = self.ctype(ty)
            return (f"({{ {cty} _a = ({a}); {cty} _b = ({b}); "
                    f"_a {cmp} _b ? _a : _b; }})")
        raise CompileError(f"cannot emit intrinsic {name!r}")

    def _elementwise_builtin(self, name: str, ty: T.VectorType,
                             args: list[str]) -> str:
        cty = self.ctype(ty)
        suffix = "f" if ty.elem is T.float32 else ""
        return (f"({{ {cty} _a = ({args[0]}); "
                f"for (int _i = 0; _i < {ty.count}; _i++) "
                f"_a[_i] = __builtin_{name}{suffix}(_a[_i]); _a; }})")
