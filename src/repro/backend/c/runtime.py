"""The gcc-based JIT runtime.

The analog of Terra's LLVM JIT path: a connected component of typechecked
functions is emitted as one C translation unit, compiled to a shared
object with ``gcc -O3 -march=native``, loaded with ctypes, and cached so
identical code never rebuilds.

Compilation itself is owned by :mod:`repro.buildd` — the in-process
compile service with a thread pool, a content-addressed artifact cache
(keyed on source, flags, *and* compiler identity), in-flight request
dedup, and telemetry.  This module keeps thin compatibility wrappers
(:func:`compile_shared`, :func:`find_cc`, :func:`cache_dir`) plus the
ctypes binding layer, and adds :meth:`CBackend.compile_unit_async` so
callers (the auto-tuner, Orion) can overlap compilation with other work.
"""

from __future__ import annotations

import ctypes

from ... import trace as _trace
from ...buildd import get_service
from ...buildd import toolchain as _toolchain
from ...buildd.service import DEFAULT_CFLAGS  # noqa: F401  (re-export)
from ...core import types as T
from ...errors import CompileError, FFIError, TrapError
from ...ffi import convert
from ...memory import layout
from ..base import Backend, CompileTicket, ExecutableHandle
from . import abi
from .emit import CEmitter, TRAP_MESSAGES


def cache_dir() -> str:
    """The artifact cache root (compatibility wrapper for buildd)."""
    return get_service().cache.root


def find_cc() -> str:
    """The C compiler path (compatibility wrapper for buildd.toolchain)."""
    return _toolchain.find_cc()


#: extra flags applied to subsequently-compiled units (see extra_cflags)
_EXTRA_CFLAGS: list[str] = []


from contextlib import contextmanager


@contextmanager
def extra_cflags(*flags: str):
    """Apply extra gcc flags to Terra units compiled inside the block.

    Used by the benchmark suite to emulate 2013-era compiler behaviour
    (``-fno-tree-vectorize``) when reproducing the paper's scalar
    baselines — modern gcc auto-vectorizes stencil loops that 2013
    compilers left scalar.

    Flags are captured when the unit is *submitted* for compilation (they
    are part of its cache key), so async compiles started inside the block
    keep the flags even if they finish after it exits.
    """
    _EXTRA_CFLAGS.extend(flags)
    try:
        yield
    finally:
        del _EXTRA_CFLAGS[len(_EXTRA_CFLAGS) - len(flags):]


def compile_shared(source: str, extra_flags: tuple[str, ...] = ()) -> str:
    """Compile C source to a cached shared object; returns the .so path.

    Routed through the :mod:`repro.buildd` service: cached artifacts are
    returned immediately, concurrent identical requests share one compile,
    and publication is atomic (unique temp name + ``os.replace``).
    """
    return get_service().compile(source, extra_flags)


class CompiledFunction(ExecutableHandle):
    """A Python-callable handle to one compiled Terra function.

    When the unit contains guarded (trappable) operations, ``centry`` is
    the function's ``*_tentry`` twin: same signature plus a trailing
    ``int32_t *`` trap-code out-param.  Calls then go through the guarded
    entry, and a nonzero trap code is raised as :class:`TrapError` —
    runtime traps behave exactly like the interpreter's instead of
    SIGFPE/SIGILL-killing the host process."""

    def __init__(self, func, cfn, ftype: T.FunctionType, centry=None,
                 cchunk=None):
        self.func = func
        self.cfn = cfn
        self.centry = centry
        self.cchunk = cchunk   # chunked entry (mark_chunked), or None
        self.type = ftype

    # __call__ (with the shared observability hook) comes from
    # ExecutableHandle — see repro.backend.base

    def _invoke(self, args):
        ftype = self.type
        nparams = len(ftype.parameters)
        if len(args) != nparams and not ftype.varargs:
            raise FFIError(
                f"{self.func.name}() takes {nparams} arguments, got {len(args)}")
        keep: list = []
        cargs = []
        for value, ty in zip(args, ftype.parameters):
            cargs.append(self._to_c(value, ty, keep))
        if self.centry is not None and not ftype.varargs:
            trapcode = ctypes.c_int32(0)
            result = self.centry(*cargs, ctypes.byref(trapcode))
            del keep
            if trapcode.value:
                raise TrapError(TRAP_MESSAGES.get(
                    trapcode.value, f"runtime trap {trapcode.value}"))
        else:
            result = self.cfn(*cargs)
            del keep
        return self._from_c(result, ftype.returntype)

    # -- chunked dispatch (repro.parallel) -----------------------------------
    def chunk_caller(self, *args):
        """Bind ``args`` once and return a cheap ``run(lo, hi)`` callable
        executing the kernel's chunked entry over ``[lo, hi)``.

        This is what worker threads invoke: argument conversion (and the
        keepalives it creates) happens here, on the dispatching thread,
        so each chunk call is one plain ctypes foreign call — which
        releases the GIL for its whole duration.  A nonzero trap code is
        raised as :class:`TrapError` in the calling (worker) thread."""
        if self.cchunk is None:
            raise FFIError(
                f"{self.func.name}() has no chunked entry; call "
                f"fn.mark_chunked() before its first C compile")
        ftype = self.type
        nparams = len(ftype.parameters)
        if len(args) != nparams:
            raise FFIError(
                f"{self.func.name}() takes {nparams} arguments, got {len(args)}")
        keep: list = []
        cargs = [self._to_c(value, ty, keep)
                 for value, ty in zip(args, ftype.parameters)]
        cchunk = self.cchunk
        fname = self.func.name

        def run(lo: int, hi: int, _keep=keep):
            trapcode = ctypes.c_int32(0)
            cchunk(ctypes.c_int64(lo), ctypes.c_int64(hi), *cargs,
                   ctypes.byref(trapcode))
            if trapcode.value:
                raise TrapError(TRAP_MESSAGES.get(
                    trapcode.value, f"runtime trap {trapcode.value}"))

        run.kernel_name = fname
        return run

    def tail_caller(self, nlead: int, *tailargs):
        """Bind every parameter after the first ``nlead`` (integer)
        leading ones and return a cheap ``run(*lead)`` callable.

        Orion's strip dispatch uses this: the image buffers convert to
        pointers once per pipeline call, and each per-worker strip call
        is then one plain ctypes foreign call (GIL released) with only
        the ``gsel/wid/ylo/yhi`` scalars built per call."""
        ftype = self.type
        params = ftype.parameters
        if len(tailargs) != len(params) - nlead:
            raise FFIError(
                f"{self.func.name}() takes {len(params) - nlead} bound "
                f"arguments after {nlead} leading ones, got {len(tailargs)}")
        keep: list = []
        lead_tys = params[:nlead]
        cargs = [self._to_c(value, ty, keep)
                 for value, ty in zip(tailargs, params[nlead:])]
        centry = self.centry
        cfn = self.cfn
        to_c = self._to_c

        def run(*lead, _keep=keep):
            lkeep: list = []
            lc = [to_c(value, ty, lkeep)
                  for value, ty in zip(lead, lead_tys)]
            if centry is not None:
                trapcode = ctypes.c_int32(0)
                centry(*lc, *cargs, ctypes.byref(trapcode))
                if trapcode.value:
                    raise TrapError(TRAP_MESSAGES.get(
                        trapcode.value, f"runtime trap {trapcode.value}"))
            else:
                cfn(*lc, *cargs)

        run.kernel_name = self.func.name
        return run

    def call_chunk(self, lo: int, hi: int, *args):
        """Run the chunked entry once over ``[lo, hi)`` (serial use)."""
        self.chunk_caller(*args)(lo, hi)

    @staticmethod
    def _to_c(value, ty: T.Type, keep: list):
        if isinstance(ty, T.PrimitiveType):
            return convert.python_to_primitive(value, ty)
        if ty.ispointer():
            addr, keepalive = convert.pointer_address(value, ty)
            if keepalive is not None:
                keep.append(keepalive)
            return ctypes.c_uint64(addr)
        if ty.isaggregate():
            blob = convert.python_to_blob(value, ty)
            cls = abi.ctype_for(ty)
            return cls.from_buffer_copy(blob)
        raise FFIError(f"cannot pass {ty} from Python")

    @staticmethod
    def _from_c(result, ty: T.Type):
        if isinstance(ty, T.TupleType) and ty.isunit():
            return None
        if isinstance(ty, T.PrimitiveType):
            if ty.islogical():
                return bool(result)
            return result
        if ty.ispointer():
            from ...ffi.cdata import CPointer
            return CPointer(ty, int(result))
        if isinstance(ty, T.TupleType):
            blob = bytes(result)
            values = tuple(
                convert.blob_to_python(
                    blob[ty.offsetof(e.field):
                         ty.offsetof(e.field) + e.type.sizeof()], e.type)
                for e in ty.entries)
            return values
        if ty.isaggregate():
            from ...ffi.cdata import CStruct
            return CStruct(ty, bytes(result))
        raise FFIError(f"cannot return {ty} to Python")


class CBackend(Backend):
    name = "c"

    #: the linker brings the typed IR to this pipeline level before
    #: calling compile_unit (see repro.passes).  CANON (fold/simplify/dce)
    #: shrinks the emitted C and makes equivalent stagings hit the buildd
    #: artifact cache; LICM is deliberately left to gcc -O3, whose own
    #: loop optimizer subsumes ours — pre-hoisted temps only enlarge the
    #: unit (and the cache key space).  ``REPRO_TERRA_VEC=1`` raises the
    #: level to the auto-vectorizing pipeline (gcc's own vectorizer stops
    #: at 256-bit vectors where ours emits the full register width; see
    #: passes/vectorize.py), and ``REPRO_TERRA_PIPELINE`` still overrides
    #: everything in resolve_level.
    @property
    def pipeline_level(self) -> int:
        import os
        if os.environ.get("REPRO_TERRA_VEC", "") not in ("", "0"):
            from ...passes.manager import PIPELINE_VEC
            return PIPELINE_VEC
        return 1

    def __init__(self):
        self._libs: list[ctypes.CDLL] = []
        self._globals: dict[int, tuple] = {}   # glob.uid -> (buffer, addr)
        self._callbacks: dict[int, tuple] = {}  # cb.uid -> (wrapper, addr)

    # -- compilation -------------------------------------------------------------
    def compile_unit(self, fn, component):
        with _trace.span(f"emit:{fn.name}", cat="emit", backend="c",
                         component_size=len(component)) as sp:
            emitter = CEmitter(component, self)
            source = emitter.emit_unit()
            sp.set(c_bytes=len(source))
        so_path = compile_shared(source, tuple(_EXTRA_CFLAGS))
        return self._bind_unit(fn, component, emitter, so_path)

    def compile_unit_async(self, fn, component):
        """Submit the unit to the buildd pool; returns a
        :class:`~repro.backend.base.CompileTicket` whose ``result()``
        binds the shared object and yields ``fn``'s callable handle.

        Source emission and flag capture happen synchronously (in the
        caller's thread, so :func:`extra_cflags` blocks behave), only the
        compiler run overlaps."""
        with _trace.span(f"emit:{fn.name}", cat="emit", backend="c",
                         component_size=len(component), mode="async") as sp:
            emitter = CEmitter(component, self)
            source = emitter.emit_unit()
            sp.set(c_bytes=len(source))
        future = get_service().compile_async(source, tuple(_EXTRA_CFLAGS))
        return CompileTicket(
            future, lambda so: self._bind_unit(fn, component, emitter, so))

    def _bind_unit(self, fn, component, emitter, so_path):
        """ctypes-load a compiled unit and cache handles for every function
        in it; returns the entry function's handle.  Safe to call twice for
        the same unit (handles install with setdefault)."""
        with _trace.span(f"bind:{fn.name}", cat="bind",
                         so=so_path.rsplit("/", 1)[-1],
                         component_size=len(component)):
            return self._bind_unit_traced(fn, component, emitter, so_path)

    def _bind_unit_traced(self, fn, component, emitter, so_path):
        lib = ctypes.CDLL(so_path)
        self._libs.append(lib)
        entry_handle = None
        for f in component:
            if f.is_external:
                continue
            cname = emitter.fn_name(f)
            cfn = getattr(lib, cname)
            ftype = f.typed.type
            cfn.restype = abi.ctype_for(ftype.returntype)
            cfn.argtypes = [abi.ctype_for(p) for p in ftype.parameters]
            try:
                centry = getattr(lib, cname + "_tentry")
            except AttributeError:
                centry = None  # unit has no trappable operations
            if centry is not None:
                centry.restype = cfn.restype
                centry.argtypes = list(cfn.argtypes) + \
                    [ctypes.POINTER(ctypes.c_int32)]
            cchunk = None
            if getattr(f, "emit_chunk", False):
                cchunk = getattr(lib, cname + "_chunk")
                cchunk.restype = None
                cchunk.argtypes = [ctypes.c_int64, ctypes.c_int64] + \
                    list(cfn.argtypes) + [ctypes.POINTER(ctypes.c_int32)]
            handle = f.dispatcher.install(
                self.name, CompiledFunction(f, cfn, ftype, centry, cchunk))
            if f is fn:
                entry_handle = handle
        if entry_handle is None:
            raise CompileError(
                f"entry function {fn.name!r} not found in compiled unit")
        return entry_handle

    def emit_source(self, fn) -> str:
        """The C source for ``fn``'s connected component (for inspection,
        tests, and saveobj), after the same IR pipeline a real compile
        would run."""
        from ...core.linker import pipelined_component
        component = pipelined_component(fn, self)
        return CEmitter(component, self).emit_unit()

    # -- globals ----------------------------------------------------------------
    def materialize_global(self, glob):
        entry = self._globals.get(glob.uid)
        if entry is None:
            ty = glob.type
            size, align = ty.layout()
            buf = ctypes.create_string_buffer(size + align)
            base = ctypes.addressof(buf)
            addr = (base + align - 1) & ~(align - 1)
            entry = (buf, addr)
            self._globals[glob.uid] = entry
            if glob.init is not None:
                self._write_at(addr, glob.init, ty)
            else:
                ctypes.memset(addr, 0, size)
        return entry

    def global_address(self, glob) -> int:
        return self.materialize_global(glob)[1]

    def _write_at(self, addr: int, value, ty: T.Type) -> None:
        blob = convert.python_to_blob(value, ty)
        ctypes.memmove(addr, blob, len(blob))

    def read_global(self, glob):
        addr = self.global_address(glob)
        raw = ctypes.string_at(addr, glob.type.sizeof())
        return convert.blob_to_python(raw, glob.type)

    def write_global(self, glob, value) -> None:
        self._write_at(self.global_address(glob), value, glob.type)

    # -- Python callbacks --------------------------------------------------------
    def callback_address(self, callback) -> int:
        entry = self._callbacks.get(callback.uid)
        if entry is None:
            ftype = callback.type
            restype = abi.ctype_for(ftype.returntype)
            if ftype.returntype.isaggregate():
                raise FFIError(
                    "Python callbacks cannot return aggregates by value")
            argtypes = [abi.ctype_for(p) for p in ftype.parameters]
            cfunctype = ctypes.CFUNCTYPE(restype, *argtypes)

            def trampoline(*raw_args, _cb=callback, _ftype=ftype):
                args = [CompiledFunction._from_c(a, p)
                        for a, p in zip(raw_args, _ftype.parameters)]
                result = _cb.fn(*args)
                if isinstance(_ftype.returntype, T.TupleType) \
                        and _ftype.returntype.isunit():
                    return None
                if _ftype.returntype.ispointer():
                    addr, _ = convert.pointer_address(result, _ftype.returntype)
                    return addr
                return result

            wrapper = cfunctype(trampoline)
            addr = ctypes.cast(wrapper, ctypes.c_void_p).value
            entry = (wrapper, addr)
            self._callbacks[callback.uid] = entry
            callback._ctypes_wrapper = wrapper
        return entry[1]
