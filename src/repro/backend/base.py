"""Backend interface and registry.

Two backends reproduce Terra's LLVM JIT:

* ``"c"`` — emits C, compiles with the system gcc at ``-O3 -march=native``,
  loads the shared object with ctypes.  This is the performance path.
* ``"interp"`` — a reference interpreter over the typed IR with a checked
  flat-memory substrate.  Used for differential testing and on hosts
  without a C compiler.

The default backend is ``"c"`` when a C compiler is present, else
``"interp"``; override with :func:`set_default_backend` or the
``REPRO_TERRA_BACKEND`` environment variable.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

import os

from ..errors import CompileError
from .. import trace as _trace


class CompileTicket:
    """A future-like handle to an in-progress unit compilation.

    ``result()`` blocks until the underlying build finishes, applies the
    (memoized) binding step exactly once, and returns the callable handle.
    Backends without real async compilation return already-resolved
    tickets via :meth:`completed`.
    """

    def __init__(self, future=None, mapper: Optional[Callable] = None):
        self._future = future
        self._mapper = mapper
        self._lock = threading.Lock()
        self._resolved = False
        self._value = None

    @classmethod
    def completed(cls, value) -> "CompileTicket":
        ticket = cls()
        ticket._resolved = True
        ticket._value = value
        return ticket

    def done(self) -> bool:
        return self._resolved or (self._future is not None
                                  and self._future.done())

    def result(self, timeout: Optional[float] = None):
        with self._lock:
            if not self._resolved:
                raw = self._future.result(timeout)
                self._value = self._mapper(raw) if self._mapper else raw
                self._resolved = True
            return self._value

    async def await_built(self) -> None:
        """Asyncio hook: wait — without blocking the calling event loop —
        until the underlying build has finished, so a subsequent
        ``result()`` never blocks on the compiler (only the cheap binding
        step remains).  Build *failures* are deliberately not raised here;
        ``result()`` re-raises them with full context."""
        if self._resolved or self._future is None:
            return
        import asyncio
        try:
            await asyncio.wrap_future(self._future)
        except Exception:
            pass  # surfaced by result()


class ExecutableHandle:
    """The uniform Python-callable handle interface both backends bind.

    A handle pairs one Terra function (``self.func``) with one backend's
    executable form of it (``self.type`` is the function's
    ``FunctionType``); subclasses implement :meth:`_invoke` over
    already-supplied argument tuples.  ``__call__`` is shared so the
    observability hook — one module-attribute check when tracing and
    profiling are off, spans + profile samples when on — behaves
    identically on every backend, and so :class:`repro.exec.dispatch.
    Dispatcher` can treat handles interchangeably when tiering between
    backends."""

    func = None          # the TerraFunction this handle executes
    type = None          # its FunctionType

    def __call__(self, *args):
        # one module-attribute check when observability is off; spans and
        # profile samples only on the slow path (see repro.trace)
        if _trace._runtime_active:
            return _trace.timed_call(self.func, lambda: self._invoke(args))
        return self._invoke(args)

    def _invoke(self, args):
        raise NotImplementedError


class Backend:
    """Interface implemented by both execution backends."""

    name: str = "abstract"

    #: the :mod:`repro.passes` pipeline level this backend wants the typed
    #: IR brought to before it compiles (0 = raw typechecker output,
    #: 1 = canonicalized, 2 = full optimization — see
    #: :data:`repro.passes.LEVEL_PASSES`).  The linker runs the pipeline
    #: once per function and caches the result on the TypedFunction, so
    #: two backends requesting the same level share the work.
    pipeline_level: int = 2

    def compile_unit(self, fn, component):
        """Compile ``fn``'s connected ``component`` (a list of
        TerraFunctions, fn first) and return a Python-callable handle for
        ``fn``."""
        raise NotImplementedError

    def compile_unit_async(self, fn, component) -> CompileTicket:
        """Start compiling the unit without waiting for it; the returned
        ticket's ``result()`` yields the callable handle.  The default
        compiles synchronously (interpreter "compilation" is cheap); the C
        backend overrides this to run gcc on the buildd pool."""
        return CompileTicket.completed(self.compile_unit(fn, component))

    # -- globals ------------------------------------------------------------
    def materialize_global(self, glob):
        raise NotImplementedError

    def read_global(self, glob):
        raise NotImplementedError

    def write_global(self, glob, value):
        raise NotImplementedError


_backends: dict[str, Backend] = {}
_default_name: Optional[str] = None


def _cc_available() -> bool:
    from ..buildd import toolchain
    return toolchain.cc_available()


def get_backend(name: str) -> Backend:
    backend = _backends.get(name)
    if backend is None:
        if name == "c":
            from .c.runtime import CBackend
            backend = CBackend()
        elif name == "interp":
            from .interp.machine import InterpBackend
            backend = InterpBackend()
        else:
            raise CompileError(f"unknown backend {name!r} "
                               f"(available: 'c', 'interp')")
        _backends[name] = backend
    return backend


def default_backend() -> Backend:
    global _default_name
    if _default_name is None:
        env = os.environ.get("REPRO_TERRA_BACKEND")
        if env:
            _default_name = env
        else:
            _default_name = "c" if _cc_available() else "interp"
    return get_backend(_default_name)


def set_default_backend(name: str) -> None:
    global _default_name
    get_backend(name)  # validate
    _default_name = name


def resolve_backend(backend) -> Backend:
    if backend is None:
        return default_backend()
    if isinstance(backend, Backend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend)
    raise CompileError(f"not a backend: {backend!r}")
