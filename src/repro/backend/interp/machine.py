"""The reference interpreter — Terra's ``→T`` judgment, executable.

Evaluates typed IR directly.  Every local variable lives in the flat
memory substrate (:mod:`repro.memory`), so address-of, pointer arithmetic
and aliasing behave exactly as in compiled code, and every access is
bounds- and liveness-checked (:class:`~repro.errors.TrapError` instead of
undefined behaviour).

This backend exists for three reasons: differential testing of the gcc
backend, running on hosts without a C compiler, and giving checked
semantics to the memory-safety test suite.  It is *not* the performance
path.
"""

from __future__ import annotations

import ctypes
import math

from ... import trace as _trace
from ...core import tast
from ...core import types as T
from ...core.function import PyCallback, TerraFunction
from ...core.symbols import Symbol
from ...errors import CompileError, FFIError, TrapError
from ...ffi import convert
from ...memory.allocator import Allocator
from ...memory.flatmem import Memory
from ...memory.layout import TypedMemory, pack_value, unpack_value, zero_value
from ..base import Backend, ExecutableHandle
from . import values as V
from .builtins import BUILTINS


class _BreakSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


class Frame:
    """One activation: symbol -> (address, type) slots in flat memory."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.slots: dict[Symbol, tuple[int, T.Type]] = {}
        self.regions = []

    def declare(self, symbol: Symbol, ty: T.Type) -> int:
        size, align = ty.layout()
        region = self.machine.memory.map_region(max(size, 1), "stack",
                                                max(align, 1))
        self.slots[symbol] = (region.start, ty)
        self.regions.append(region)
        return region.start

    def addr_of(self, symbol: Symbol) -> tuple[int, T.Type]:
        slot = self.slots.get(symbol)
        if slot is None:
            raise TrapError(f"variable {symbol!r} has no storage (used "
                            f"outside its defining function?)")
        return slot

    def release(self) -> None:
        for region in self.regions:
            self.machine.memory.unmap_region(region)


class Machine:
    """The interpreter state shared by all functions of a backend."""

    def __init__(self, backend: "InterpBackend"):
        self.backend = backend
        self.memory = backend.memory
        self.allocator = backend.allocator
        self.typed = TypedMemory(self.memory)
        self._strings: dict[str, int] = {}
        #: fake code addresses for function pointers
        self._funcptr_by_fn: dict[int, int] = {}
        self._fn_by_addr: dict[int, object] = {}
        self.stdout_chunks: list[str] = []
        # each Terra frame costs ~20 Python frames; keep the product
        # safely under CPython's recursion limit
        self.max_call_depth = 200
        self._depth = 0
        import sys
        if sys.getrecursionlimit() < 10000:
            sys.setrecursionlimit(10000)

    # -- function pointers ----------------------------------------------------
    def funcptr(self, fn) -> int:
        key = id(fn)
        addr = self._funcptr_by_fn.get(key)
        if addr is None:
            region = self.memory.map_region(8, "foreign")
            addr = region.start
            self._funcptr_by_fn[key] = addr
            self._fn_by_addr[addr] = fn
        return addr

    def resolve_funcptr(self, addr: int):
        fn = self._fn_by_addr.get(addr)
        if fn is None:
            raise TrapError(f"call through invalid function pointer {addr:#x}")
        return fn

    def intern_string(self, text: str) -> int:
        addr = self._strings.get(text)
        if addr is None:
            raw = text.encode("utf-8") + b"\x00"
            region = self.memory.map_region(len(raw), "global")
            self.memory.write(region.start, raw)
            addr = region.start
            self._strings[text] = addr
        return addr

    # ==================================================================
    # calls
    # ==================================================================
    def call_function(self, fn: TerraFunction, args: list):
        """Call with interpreter-convention values (see layout module)."""
        if fn.is_external:
            return self.call_external(fn, args)
        if fn.typed is None:
            from ...core.linker import ensure_typechecked
            ensure_typechecked(fn)
        typed = fn.typed
        if self._depth >= self.max_call_depth:
            raise TrapError(f"interpreter call depth exceeded in {fn.name}")
        self._depth += 1
        frame = Frame(self)
        try:
            for sym, ty, value in zip(typed.param_symbols,
                                      typed.type.parameters, args):
                addr = frame.declare(sym, ty)
                self.typed.store(addr, value, ty)
            try:
                self.exec_block(typed.body, frame)
            except _ReturnSignal as ret:
                return ret.value
            rettype = typed.type.returntype
            if isinstance(rettype, T.TupleType) and rettype.isunit():
                return None
            raise TrapError(
                f"function {fn.name} fell off the end without returning "
                f"a {rettype}")
        finally:
            frame.release()
            self._depth -= 1

    def call_external(self, fn: TerraFunction, args: list):
        impl = BUILTINS.get(fn.external_name)
        if impl is None:
            raise TrapError(
                f"external function {fn.external_name!r} has no interpreter "
                f"implementation")
        return impl(self, args)

    def call_callback(self, cb: PyCallback, args: list):
        ftype = cb.type
        py_args = [self._to_python(a, p) for a, p in
                   zip(args, ftype.parameters)]
        result = cb.fn(*py_args)
        rettype = ftype.returntype
        if isinstance(rettype, T.TupleType) and rettype.isunit():
            return None
        return self._from_python(result, rettype)

    def _to_python(self, value, ty: T.Type):
        if ty.ispointer():
            from ...ffi.cdata import CPointer
            return CPointer(ty, value)
        return value

    def _from_python(self, value, ty: T.Type):
        if ty.ispointer():
            addr, _ = convert.pointer_address(value, ty)
            return addr
        if isinstance(ty, T.PrimitiveType):
            return convert.python_to_primitive(value, ty)
        raise FFIError(f"callback cannot return {ty} in the interpreter")

    # ==================================================================
    # statements
    # ==================================================================
    def exec_block(self, block: tast.TBlock, frame: Frame) -> None:
        for stat in block.statements:
            self.exec_stat(stat, frame)

    def exec_stat(self, s: tast.TStat, frame: Frame) -> None:
        if isinstance(s, tast.TVarDecl):
            for i, (sym, ty) in enumerate(zip(s.symbols, s.types)):
                addr = frame.declare(sym, ty)
                if s.inits is not None:
                    value = self.eval_expr(s.inits[i], frame)
                else:
                    value = zero_value(ty)
                self.typed.store(addr, value, ty)
        elif isinstance(s, tast.TAssign):
            rhs = [self.eval_expr(r, frame) for r in s.rhs]
            targets = [self.eval_lvalue(l, frame) for l in s.lhs]
            for (addr, ty), value in zip(targets, rhs):
                self.typed.store(addr, value, ty)
        elif isinstance(s, tast.TIf):
            for cond, body in s.branches:
                if self.eval_expr(cond, frame):
                    self.exec_block(body, frame)
                    return
            if s.orelse is not None:
                self.exec_block(s.orelse, frame)
        elif isinstance(s, tast.TWhile):
            while self.eval_expr(s.cond, frame):
                try:
                    self.exec_block(s.body, frame)
                except _BreakSignal:
                    break
        elif isinstance(s, tast.TRepeat):
            while True:
                try:
                    self.exec_block(s.body, frame)
                except _BreakSignal:
                    break
                if self.eval_expr(s.cond, frame):
                    break
        elif isinstance(s, tast.TForNum):
            self._exec_for(s, frame)
        elif isinstance(s, tast.TDoStat):
            self.exec_block(s.body, frame)
        elif isinstance(s, tast.TReturn):
            value = self.eval_expr(s.expr, frame) if s.expr is not None else None
            raise _ReturnSignal(value)
        elif isinstance(s, tast.TBreak):
            raise _BreakSignal()
        elif isinstance(s, tast.TExprStat):
            self.eval_expr(s.expr, frame)
        else:
            raise CompileError(f"interp: unknown statement {type(s).__name__}")

    def _exec_for(self, s: tast.TForNum, frame: Frame) -> None:
        ty = s.var_type
        start = self.eval_expr(s.start, frame)
        limit = self.eval_expr(s.limit, frame)
        step = self.eval_expr(s.step, frame) if s.step is not None else 1
        addr = frame.declare(s.symbol, ty)
        i = start
        while (i < limit) if step > 0 else (i > limit):
            self.typed.store(addr, i, ty)
            try:
                self.exec_block(s.body, frame)
            except _BreakSignal:
                break
            # pick up body modifications of the loop variable (C behaviour)
            i = self.typed.load(addr, ty)
            if isinstance(ty, T.PrimitiveType) and ty.isintegral():
                i = V.scalar_binop("+", i, step, ty)
            else:
                i = i + step

    # ==================================================================
    # expressions
    # ==================================================================
    def eval_lvalue(self, e: tast.TExpr, frame: Frame) -> tuple[int, T.Type]:
        if isinstance(e, tast.TVar):
            return frame.addr_of(e.symbol)
        if isinstance(e, tast.TGlobal):
            return self.backend.global_slot(e.glob), e.type
        if isinstance(e, tast.TDeref):
            return self.eval_expr(e.ptr, frame), e.type
        if isinstance(e, tast.TSelect):
            base, base_ty = self.eval_lvalue(e.obj, frame)
            assert isinstance(base_ty, T.StructType)
            return base + base_ty.offsetof(e.field), e.type
        if isinstance(e, tast.TIndex):
            index = self.eval_expr(e.index, frame)
            if e.obj.type.ispointer():
                ptr = self.eval_expr(e.obj, frame)
                return ptr + index * e.type.sizeof(), e.type
            base, base_ty = self.eval_lvalue(e.obj, frame)
            assert isinstance(base_ty, T.ArrayType)
            if not 0 <= index < base_ty.count:
                raise TrapError(
                    f"array index {index} out of bounds for {base_ty}")
            return base + index * e.type.sizeof(), e.type
        if isinstance(e, tast.TVectorIndex):
            base, base_ty = self.eval_lvalue(e.obj, frame)
            assert isinstance(base_ty, T.VectorType)
            index = self.eval_expr(e.index, frame)
            if not 0 <= index < base_ty.count:
                raise TrapError(
                    f"vector index {index} out of bounds for {base_ty}")
            return base + index * base_ty.elem.sizeof(), e.type
        raise TrapError(f"interp: {type(e).__name__} is not an lvalue")

    def eval_expr(self, e: tast.TExpr, frame: Frame):
        if isinstance(e, tast.TConst):
            return e.value
        if isinstance(e, tast.TString):
            return self.intern_string(e.value)
        if isinstance(e, tast.TNull):
            return 0
        if isinstance(e, (tast.TVar, tast.TGlobal, tast.TDeref)):
            addr, ty = self.eval_lvalue(e, frame)
            return self.typed.load(addr, ty)
        if isinstance(e, tast.TSelect):
            if e.obj.lvalue:
                addr, ty = self.eval_lvalue(e, frame)
                return self.typed.load(addr, ty)
            blob = self.eval_expr(e.obj, frame)
            sty = e.obj.type
            assert isinstance(sty, T.StructType)
            off = sty.offsetof(e.field)
            return unpack_value(blob[off:off + e.type.sizeof()], e.type)
        if isinstance(e, (tast.TIndex, tast.TVectorIndex)):
            return self._eval_index(e, frame)
        if isinstance(e, tast.TAddressOf):
            addr, _ty = self.eval_lvalue(e.operand, frame)
            return addr
        if isinstance(e, tast.TFuncLit):
            return self.funcptr(e.func)
        if isinstance(e, tast.TCallback):
            return self.funcptr(e.callback)
        if isinstance(e, tast.TCast):
            return self._eval_cast(e, frame)
        if isinstance(e, tast.TCall):
            return self._eval_call(e, frame)
        if isinstance(e, tast.TUnOp):
            return self._eval_unop(e, frame)
        if isinstance(e, tast.TBinOp):
            return self._eval_binop(e, frame)
        if isinstance(e, tast.TLogical):
            lhs = self.eval_expr(e.lhs, frame)
            if e.op == "and":
                return bool(lhs) and bool(self.eval_expr(e.rhs, frame))
            return bool(lhs) or bool(self.eval_expr(e.rhs, frame))
        if isinstance(e, tast.TCtor):
            return self._eval_ctor(e, frame)
        if isinstance(e, tast.TLetIn):
            self.exec_block(e.block, frame)
            return self.eval_expr(e.expr, frame)
        if isinstance(e, tast.TIntrinsic):
            return self._eval_intrinsic(e, frame)
        raise CompileError(f"interp: unknown expression {type(e).__name__}")

    def _eval_index(self, e, frame):
        if isinstance(e, tast.TIndex) and e.obj.type.ispointer():
            addr, ty = self.eval_lvalue(e, frame)
            return self.typed.load(addr, ty)
        if e.obj.lvalue:
            addr, ty = self.eval_lvalue(e, frame)
            return self.typed.load(addr, ty)
        base = self.eval_expr(e.obj, frame)
        index = self.eval_expr(e.index, frame)
        oty = e.obj.type
        if isinstance(oty, T.ArrayType):
            if not 0 <= index < oty.count:
                raise TrapError(f"array index {index} out of bounds for {oty}")
            esize = oty.elem.sizeof()
            return unpack_value(base[index * esize:(index + 1) * esize],
                                oty.elem)
        assert isinstance(oty, T.VectorType)
        if not 0 <= index < oty.count:
            raise TrapError(f"vector index {index} out of bounds for {oty}")
        return base[index]

    def _eval_cast(self, e: tast.TCast, frame):
        value = self.eval_expr(e.expr, frame)
        source, target = e.expr.type, e.type
        if e.kind == "numeric":
            assert isinstance(target, T.PrimitiveType)
            return V.scalar_cast(value, source, target)
        if e.kind in ("pointer", "ptr-int", "int-ptr"):
            if isinstance(target, T.PrimitiveType):
                return V.scalar_cast(value, source, target)
            return int(value) & 0xFFFFFFFFFFFFFFFF
        if e.kind == "broadcast":
            assert isinstance(target, T.VectorType)
            scalar = value
            return [scalar] * target.count
        if e.kind == "vector":
            assert isinstance(target, T.VectorType)
            return [V.scalar_cast(v, source.type, target.elem) for v in value]
        raise CompileError(f"interp: unknown cast kind {e.kind!r}")

    def _eval_call(self, e: tast.TCall, frame):
        args = [self.eval_expr(a, frame) for a in e.args]
        fn = e.fn
        if isinstance(fn, tast.TFuncLit):
            return self.call_function(fn.func, args)
        if isinstance(fn, tast.TCallback):
            return self.call_callback(fn.callback, args)
        addr = self.eval_expr(fn, frame)
        target = self.resolve_funcptr(addr)
        if isinstance(target, PyCallback):
            return self.call_callback(target, args)
        return self.call_function(target, args)

    def _eval_unop(self, e: tast.TUnOp, frame):
        value = self.eval_expr(e.operand, frame)
        ty = e.type
        if e.op == "-":
            if isinstance(ty, T.VectorType):
                return [V.scalar_neg(v, ty.elem) for v in value]
            assert isinstance(ty, T.PrimitiveType)
            return V.scalar_neg(value, ty)
        if e.op == "not":
            if ty is T.bool_:
                return not value
            if isinstance(ty, T.VectorType):
                if ty.islogical():
                    return [not v for v in value]
                return [V.scalar_binop("^", v, -1, ty.elem) for v in value]
            assert isinstance(ty, T.PrimitiveType)
            from ...memory.layout import wrap_int
            return wrap_int(~value, ty)
        raise CompileError(f"interp: unknown unary {e.op!r}")

    def _eval_binop(self, e: tast.TBinOp, frame):
        lhs = self.eval_expr(e.lhs, frame)
        rhs = self.eval_expr(e.rhs, frame)
        lt = e.lhs.type
        op = e.op
        # pointer arithmetic
        if lt.ispointer():
            if e.rhs.type.ispointer():
                if op == "-":
                    return (lhs - rhs) // lt.pointee.sizeof()
                return V.scalar_compare(op, lhs, rhs)
            esize = lt.pointee.sizeof()
            if op == "+":
                return lhs + rhs * esize
            if op == "-":
                return lhs - rhs * esize
        if op in ("<", ">", "<=", ">=", "==", "~="):
            if isinstance(lt, T.VectorType):
                return [V.scalar_compare(op, a, b) for a, b in zip(lhs, rhs)]
            return V.scalar_compare(op, lhs, rhs)
        if isinstance(lt, T.VectorType):
            return [V.scalar_binop(op, a, b, lt.elem)
                    for a, b in zip(lhs, rhs)]
        assert isinstance(lt, T.PrimitiveType)
        return V.scalar_binop(op, lhs, rhs, lt)

    def _eval_ctor(self, e: tast.TCtor, frame) -> bytes:
        ty = e.type
        blob = bytearray(ty.sizeof())
        if isinstance(ty, T.ArrayType):
            esize = ty.elem.sizeof()
            for i, init in enumerate(e.inits):
                blob[i * esize:(i + 1) * esize] = pack_value(
                    self.eval_expr(init, frame), ty.elem)
            return bytes(blob)
        assert isinstance(ty, T.StructType)
        for entry, init in zip(ty.entries, e.inits):
            off = ty.offsetof(entry.field)
            raw = pack_value(self.eval_expr(init, frame), entry.type)
            blob[off:off + len(raw)] = raw
        return bytes(blob)

    def _eval_intrinsic(self, e: tast.TIntrinsic, frame):
        name = e.name
        if name == "prefetch":
            self.eval_expr(e.args[0], frame)  # evaluate for effect/check
            return None
        if name == "fence":
            return None
        if name == "vload":
            vty = e.type
            assert isinstance(vty, T.VectorType)
            addr = self.eval_expr(e.args[0], frame)
            esize = vty.elem.sizeof()
            return [self.typed.load(addr + k * esize, vty.elem)
                    for k in range(vty.count)]
        if name == "vstore":
            vty = e.args[1].type
            assert isinstance(vty, T.VectorType)
            addr = self.eval_expr(e.args[0], frame)
            value = self.eval_expr(e.args[1], frame)
            esize = vty.elem.sizeof()
            for k, lane in enumerate(value):
                self.typed.store(addr + k * esize, lane, vty.elem)
            return None
        args = [self.eval_expr(a, frame) for a in e.args]
        ty = e.type
        if name == "fma":
            a, b, c = args
            assert isinstance(ty, T.PrimitiveType)
            return V.fused_multiply_add(a, b, c, ty)
        if name == "select":
            cond, a, b = args
            if isinstance(ty, T.VectorType):
                return [av if c else bv for c, av, bv in zip(cond, a, b)]
            return a if cond else b
        fns = {"sqrt": math.sqrt, "fabs": abs, "floor": math.floor,
               "ceil": math.ceil, "fmin": min, "fmax": max}
        fn = fns.get(name)
        if fn is None:
            raise CompileError(f"interp: unknown intrinsic {name!r}")
        if isinstance(ty, T.VectorType):
            if len(args) == 1:
                return [V.scalar_cast(fn(v), ty.elem, ty.elem)
                        for v in args[0]]
            return [V.scalar_cast(fn(a, b), ty.elem, ty.elem)
                    for a, b in zip(args[0], args[1])]
        assert isinstance(ty, T.PrimitiveType)
        result = fn(*args)
        return V.scalar_cast(result, ty, ty) if ty.isfloat() else result


class InterpFunction(ExecutableHandle):
    """Python-callable handle mirroring CompiledFunction's conversions."""

    def __init__(self, func: TerraFunction, machine: Machine):
        self.func = func
        self.machine = machine
        self.type = func.typed.type if func.typed else func.gettype()

    # __call__ (with the shared observability hook) comes from
    # ExecutableHandle — see repro.backend.base

    def _invoke(self, args):
        ftype = self.type
        if len(args) != len(ftype.parameters):
            raise FFIError(
                f"{self.func.name}() takes {len(ftype.parameters)} "
                f"arguments, got {len(args)}")
        keep: list = []
        machine_args = []
        for value, ty in zip(args, ftype.parameters):
            machine_args.append(self._to_machine(value, ty, keep))
        try:
            result = self.machine.call_function(self.func, machine_args)
        finally:
            for item in keep:
                if isinstance(item, _CopyBack):
                    item.copy_back()
        return self._to_python(result, ftype.returntype)

    def _to_machine(self, value, ty: T.Type, keep: list):
        if isinstance(ty, T.PrimitiveType):
            return convert.python_to_primitive(value, ty)
        if ty.ispointer():
            return self._pointer_to_machine(value, ty, keep)
        if ty.isaggregate():
            return convert.python_to_blob(value, ty)
        raise FFIError(f"interp: cannot pass {ty} from Python")

    def _pointer_to_machine(self, value, ty: T.Type, keep: list) -> int:
        """Pointers in the interpreter live in flat memory: copy Python
        buffers in, and arrange copy-out for numpy arrays (so kernels that
        write through pointers behave as with the C backend)."""
        np = _numpy()
        machine = self.machine
        if value is None:
            return 0
        if isinstance(value, int):
            return value
        from ...ffi.cdata import CPointer
        if isinstance(value, CPointer):
            return value.address
        if np is not None and isinstance(value, np.ndarray):
            if not value.flags["C_CONTIGUOUS"]:
                raise FFIError(
                    "numpy arrays passed to Terra must be C-contiguous")
            pointee = ty.pointee if isinstance(ty, T.PointerType) else None
            if isinstance(pointee, T.PrimitiveType):
                expected = convert.numpy_elem_type(value)
                if expected is not pointee:
                    raise FFIError(
                        f"numpy array of dtype {value.dtype} passed where "
                        f"&{pointee} expected")
            raw = value.tobytes()
            region = machine.memory.map_region(max(len(raw), 1), "foreign")
            machine.memory.write(region.start, raw)
            keep.append(_CopyBack(machine, region, value))
            return region.start
        if isinstance(value, ctypes.Array):
            # server-resident buffers (repro.serve) and other ctypes
            # storage: copy in, mirror writes back out after the call —
            # same observable behavior as handing the C backend the
            # array's real address
            raw = bytes(memoryview(value).cast("B"))
            region = machine.memory.map_region(max(len(raw), 1), "foreign")
            machine.memory.write(region.start, raw)
            keep.append(_CtypesCopyBack(machine, region, value))
            return region.start
        if isinstance(value, (bytes, bytearray)):
            raw = bytes(value) + b"\x00"
            region = machine.memory.map_region(len(raw), "foreign")
            machine.memory.write(region.start, raw)
            keep.append(region)
            return region.start
        if isinstance(value, str):
            return machine.intern_string(value)
        raise FFIError(f"interp: cannot convert {type(value).__name__} "
                       f"to pointer")

    def _to_python(self, result, ty: T.Type):
        if isinstance(ty, T.TupleType) and ty.isunit():
            return None
        if isinstance(ty, T.PrimitiveType):
            return result
        if ty.ispointer():
            from ...ffi.cdata import CPointer
            return CPointer(ty, result)
        if isinstance(ty, T.TupleType):
            from ...ffi.cdata import CStruct
            return CStruct(ty, result).totuple()
        if ty.isaggregate():
            from ...ffi.cdata import CStruct
            return CStruct(ty, result)
        raise FFIError(f"interp: cannot return {ty}")


class _CopyBack:
    """Copies interpreter memory back into the originating numpy array
    after the call (the interpreter's address space is distinct from the
    process heap, so pointer writes must be mirrored out)."""

    def __init__(self, machine: Machine, region, array):
        self.machine = machine
        self.region = region
        self.array = array

    def copy_back(self) -> None:
        import numpy as np
        raw = self.machine.memory.read_unchecked(
            self.region.start, self.array.nbytes)
        flat = np.frombuffer(raw, dtype=self.array.dtype)
        self.array.reshape(-1)[:] = flat
        self.machine.memory.unmap_region(self.region)


class _CtypesCopyBack(_CopyBack):
    """Copy-out twin of :class:`_CopyBack` for ctypes arrays."""

    def copy_back(self) -> None:
        size = ctypes.sizeof(self.array)
        raw = self.machine.memory.read_unchecked(self.region.start, size)
        ctypes.memmove(self.array, raw, size)
        self.machine.memory.unmap_region(self.region)


def _numpy():
    import numpy
    return numpy


class InterpBackend(Backend):
    name = "interp"

    #: the linker brings the typed IR to this pipeline level before
    #: calling compile_unit (see repro.passes); the interpreter has no
    #: private optimizer of its own, so it wants the FULL pipeline —
    #: including LICM, which no downstream compiler would do for it
    pipeline_level = 2

    def __init__(self):
        self.memory = Memory()
        self.allocator = Allocator(self.memory)
        self.machine = Machine(self)
        self._global_slots: dict[int, int] = {}

    def compile_unit(self, fn, component):
        with _trace.span(f"emit:{fn.name}", cat="emit", backend="interp",
                         component_size=len(component)):
            handle = fn.dispatcher.install(
                self.name, InterpFunction(fn, self.machine))
        return handle

    # -- globals ----------------------------------------------------------------
    def global_slot(self, glob) -> int:
        addr = self._global_slots.get(glob.uid)
        if addr is None:
            size, align = glob.type.layout()
            region = self.memory.map_region(max(size, 1), "global",
                                            max(align, 1))
            addr = region.start
            self._global_slots[glob.uid] = addr
            if glob.init is not None:
                blob = convert.python_to_blob(glob.init, glob.type)
                self.memory.write(addr, blob)
        return addr

    def materialize_global(self, glob):
        return self.global_slot(glob)

    def read_global(self, glob):
        addr = self.global_slot(glob)
        raw = self.memory.read(addr, glob.type.sizeof())
        return convert.blob_to_python(raw, glob.type)

    def write_global(self, glob, value) -> None:
        addr = self.global_slot(glob)
        self.memory.write(addr, convert.python_to_blob(value, glob.type))
