"""Runtime value representations and C-semantics arithmetic for the
reference interpreter.

Values follow the conventions of :mod:`repro.memory.layout`: primitives
are Python ints/floats/bools, pointers are integer addresses, vectors are
Python lists, aggregates are raw byte blobs.  Every arithmetic result is
normalized to C semantics — integers wrap at their width, ``int32``
division truncates toward zero, ``float`` (32-bit) results round to single
precision after every operation — so the interpreter agrees bit-for-bit
with gcc-compiled code.
"""

from __future__ import annotations

import math

from ...core import types as T
from ...errors import TrapError
from ...memory.layout import round_float, wrap_int


def c_int_div(a: int, b: int) -> int:
    """C integer division: truncation toward zero."""
    if b == 0:
        raise TrapError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_int_mod(a: int, b: int) -> int:
    """C ``%``: remainder with the sign of the dividend."""
    if b == 0:
        raise TrapError("integer modulo by zero")
    return a - c_int_div(a, b) * b


def scalar_binop(op: str, a, b, ty: T.PrimitiveType):
    """Apply a scalar arithmetic/bitwise op with C semantics for ``ty``."""
    if ty.isintegral():
        if op == "+":
            r = a + b
        elif op == "-":
            r = a - b
        elif op == "*":
            r = a * b
        elif op == "/":
            r = c_int_div(a, b)
        elif op == "%":
            r = c_int_mod(a, b)
        elif op in ("and", "&"):
            r = a & b
        elif op in ("or", "|"):
            r = a | b
        elif op == "^":
            r = a ^ b
        elif op == "<<":
            r = a << (b & (ty.bytes * 8 - 1))
        elif op == ">>":
            # arithmetic shift for signed, logical for unsigned (C, gcc)
            shift = b & (ty.bytes * 8 - 1)
            if ty.signed:
                r = a >> shift
            else:
                r = (a & ((1 << (ty.bytes * 8)) - 1)) >> shift
        else:
            raise TrapError(f"unknown integer op {op!r}")
        return wrap_int(r, ty)
    if ty.isfloat():
        if op == "+":
            r = a + b
        elif op == "-":
            r = a - b
        elif op == "*":
            r = a * b
        elif op == "/":
            if b == 0:
                # IEEE: x/±0 is ±inf with the signs multiplied (so 1/-0.0
                # is -inf), and 0/0 or nan/0 is nan — Python would raise
                if a == 0 or math.isnan(a):
                    r = math.nan
                else:
                    r = math.copysign(
                        math.inf, math.copysign(1.0, a) * math.copysign(1.0, b))
            else:
                r = a / b
        elif op == "%":
            # C fmod: nan for a zero divisor or an infinite dividend
            # (math.fmod raises ValueError for the latter)
            try:
                r = math.fmod(a, b) if b != 0 else math.nan
            except ValueError:
                r = math.nan
        else:
            raise TrapError(f"unknown float op {op!r}")
        return round_float(r, ty)
    if ty.islogical():
        if op in ("and", "&"):
            return bool(a) and bool(b)
        if op in ("or", "|"):
            return bool(a) or bool(b)
        if op == "^":
            return bool(a) != bool(b)
    raise TrapError(f"unsupported op {op!r} on {ty}")


def scalar_neg(value, ty: T.PrimitiveType):
    """Unary negation with C semantics: integers wrap at their width,
    floats flip the sign bit (so ``-0.0`` stays negative zero — computing
    ``0 - x`` instead would lose it)."""
    if ty.isfloat():
        return round_float(-value, ty)
    return scalar_binop("-", 0, value, ty)


def scalar_compare(op: str, a, b) -> bool:
    if op == "<":
        return a < b
    if op == ">":
        return a > b
    if op == "<=":
        return a <= b
    if op == ">=":
        return a >= b
    if op == "==":
        return a == b
    if op == "~=":
        return a != b
    raise TrapError(f"unknown comparison {op!r}")


def int_range(ty: T.PrimitiveType) -> tuple[int, int]:
    """The inclusive [min, max] range of an integral primitive type."""
    bits = ty.bytes * 8
    if ty.signed:
        return -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return 0, (1 << bits) - 1


def saturate_float_to_int(value: float, target: T.PrimitiveType) -> int:
    """The defined float→int conversion: truncate toward zero, then
    *saturate* to the target's range; NaN converts to 0.

    C leaves out-of-range conversions undefined (gcc constant-folds,
    cvttsd2si, and the interpreter used to disagree three ways); we define
    them as LLVM's ``fptosi.sat``/``fptoui.sat`` — also Rust ``as`` and
    WebAssembly ``trunc_sat`` — and both backends implement exactly this.
    See docs/LANGUAGE.md "Defined semantics"."""
    lo, hi = int_range(target)
    if math.isnan(value):
        return 0
    if math.isinf(value):
        return hi if value > 0 else lo
    truncated = int(value)  # Python int() truncates toward zero
    return min(max(truncated, lo), hi)


def scalar_cast(value, source: T.Type, target: T.PrimitiveType):
    """C-semantics conversion of a scalar value to primitive ``target``."""
    if target.islogical():
        return bool(value)
    if target.isintegral():
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, float):
            return saturate_float_to_int(value, target)
        return wrap_int(int(value), target)
    # float target
    if isinstance(value, bool):
        value = int(value)
    return round_float(float(value), target)


#: lazily-bound libm fma/fmaf (Python 3.11 has no math.fma); False once
#: binding failed, so saveobj-style minimal environments degrade to the
#: doubly-rounded a*b+c instead of crashing
_LIBM_FMA = None


def _libm_fma():
    global _LIBM_FMA
    if _LIBM_FMA is None:
        try:
            import ctypes
            import ctypes.util
            lib = ctypes.CDLL(ctypes.util.find_library("m") or "libm.so.6")
            fma64 = lib.fma
            fma64.restype = ctypes.c_double
            fma64.argtypes = [ctypes.c_double] * 3
            fma32 = lib.fmaf
            fma32.restype = ctypes.c_float
            fma32.argtypes = [ctypes.c_float] * 3
            _LIBM_FMA = (fma64, fma32)
        except (OSError, AttributeError):
            _LIBM_FMA = False
    return _LIBM_FMA


def fused_multiply_add(a: float, b: float, c: float,
                       ty: T.PrimitiveType) -> float:
    """``a*b + c`` with a single rounding, in ``ty``'s precision —
    matching the C backend's ``__builtin_fma``/``__builtin_fmaf``.
    Only reachable when ``REPRO_TERRA_FMA=1`` opted into contraction."""
    fns = _libm_fma()
    if not fns:
        return round_float(float(a) * float(b) + float(c), ty)
    fma64, fma32 = fns
    if ty is T.float32:
        return round_float(fma32(a, b, c), ty)
    return float(fma64(a, b, c))
