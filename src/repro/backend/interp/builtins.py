"""Interpreter implementations of the built-in C library.

The C backend links external functions against the real libc; this module
gives the interpreter backend the same surface, implemented over the flat
memory substrate (so ``malloc``/``free`` are fully checked) and Python's
stdlib (math, file I/O).

Each implementation receives ``(machine, args)`` with machine-convention
values (ints/floats/addresses) and returns a machine-convention result.
"""

from __future__ import annotations

import math
import sys
import time

from ...errors import TrapError
from ...memory.layout import round_float, wrap_int
from ...core import types as T

BUILTINS: dict = {}


def builtin(name: str):
    def register(fn):
        BUILTINS[name] = fn
        return fn
    return register


# -- stdlib.h ------------------------------------------------------------------

@builtin("malloc")
def _malloc(machine, args):
    return machine.allocator.malloc(int(args[0]))


@builtin("calloc")
def _calloc(machine, args):
    return machine.allocator.calloc(int(args[0]), int(args[1]))


@builtin("realloc")
def _realloc(machine, args):
    return machine.allocator.realloc(int(args[0]), int(args[1]))


@builtin("free")
def _free(machine, args):
    machine.allocator.free(int(args[0]))
    return None


@builtin("abort")
def _abort(machine, args):
    raise TrapError("abort() called")


@builtin("exit")
def _exit(machine, args):
    raise TrapError(f"exit({int(args[0])}) called")


_RAND_STATE = [88172645463325252]


@builtin("srand")
def _srand(machine, args):
    _RAND_STATE[0] = int(args[0]) or 1
    return None


@builtin("rand")
def _rand(machine, args):
    # xorshift64, reduced to RAND_MAX range — deterministic across runs
    x = _RAND_STATE[0]
    x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 7
    x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
    _RAND_STATE[0] = x
    return x % 2147483648


@builtin("atoi")
def _atoi(machine, args):
    text = machine.memory.read_cstring(int(args[0])).decode("utf-8", "replace")
    try:
        return wrap_int(int(text.strip().split()[0]), T.int32)
    except (ValueError, IndexError):
        return 0


# -- string.h -------------------------------------------------------------------

@builtin("memset")
def _memset(machine, args):
    addr, byte, count = int(args[0]), int(args[1]) & 0xFF, int(args[2])
    machine.memory.write(addr, bytes([byte]) * count)
    return addr


@builtin("memcpy")
def _memcpy(machine, args):
    dst, src, count = int(args[0]), int(args[1]), int(args[2])
    machine.memory.write(dst, machine.memory.read(src, count))
    return dst


@builtin("memmove")
def _memmove(machine, args):
    return _memcpy(machine, args)  # read-then-write is already safe


@builtin("memcmp")
def _memcmp(machine, args):
    a = machine.memory.read(int(args[0]), int(args[2]))
    b = machine.memory.read(int(args[1]), int(args[2]))
    return 0 if a == b else (-1 if a < b else 1)


@builtin("strlen")
def _strlen(machine, args):
    return len(machine.memory.read_cstring(int(args[0])))


@builtin("strcmp")
def _strcmp(machine, args):
    a = machine.memory.read_cstring(int(args[0]))
    b = machine.memory.read_cstring(int(args[1]))
    return 0 if a == b else (-1 if a < b else 1)


@builtin("strcpy")
def _strcpy(machine, args):
    dst = int(args[0])
    src = machine.memory.read_cstring(int(args[1]))
    machine.memory.write_cstring(dst, src)
    return dst


# -- stdio.h ---------------------------------------------------------------------

def _format_printf(machine, fmt: str, varargs: list) -> str:
    out = []
    i = 0
    argi = 0
    n = len(fmt)
    while i < n:
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        j = i + 1
        # flags, width, precision
        while j < n and fmt[j] in "-+ #0123456789.*":
            j += 1
        # length modifiers
        while j < n and fmt[j] in "hlLzjt":
            j += 1
        if j >= n:
            out.append("%")
            break
        conv = fmt[j]
        spec = fmt[i:j + 1]
        # drop length modifiers: Python's % doesn't know them
        pyspec = "%" + "".join(c for c in spec[1:-1] if c not in "hlLzjt") + conv
        if conv == "%":
            out.append("%")
        elif conv in "diu":
            out.append(pyspec.replace("u", "d") % int(varargs[argi]))
            argi += 1
        elif conv in "fFeEgG":
            out.append(pyspec % float(varargs[argi]))
            argi += 1
        elif conv in "xXo":
            out.append(pyspec % (int(varargs[argi]) & 0xFFFFFFFFFFFFFFFF))
            argi += 1
        elif conv == "c":
            out.append(chr(int(varargs[argi]) & 0xFF))
            argi += 1
        elif conv == "s":
            text = machine.memory.read_cstring(int(varargs[argi]))
            out.append(pyspec % text.decode("utf-8", "replace"))
            argi += 1
        elif conv == "p":
            out.append(f"{int(varargs[argi]):#x}")
            argi += 1
        else:
            out.append(spec)
        i = j + 1
    return "".join(out)


@builtin("printf")
def _printf(machine, args):
    fmt = machine.memory.read_cstring(int(args[0])).decode("utf-8", "replace")
    text = _format_printf(machine, fmt, list(args[1:]))
    machine.stdout_chunks.append(text)
    sys.stdout.write(text)
    return len(text)


@builtin("snprintf")
def _snprintf(machine, args):
    dst, size = int(args[0]), int(args[1])
    fmt = machine.memory.read_cstring(int(args[2])).decode("utf-8", "replace")
    text = _format_printf(machine, fmt, list(args[3:]))
    raw = text.encode("utf-8")
    if size > 0:
        clipped = raw[:size - 1]
        machine.memory.write_cstring(dst, clipped)
    return len(raw)


@builtin("puts")
def _puts(machine, args):
    text = machine.memory.read_cstring(int(args[0])).decode("utf-8", "replace")
    machine.stdout_chunks.append(text + "\n")
    sys.stdout.write(text + "\n")
    return len(text) + 1


@builtin("putchar")
def _putchar(machine, args):
    ch = chr(int(args[0]) & 0xFF)
    machine.stdout_chunks.append(ch)
    sys.stdout.write(ch)
    return int(args[0])


# file I/O: FILE* handles are fake addresses mapped to Python files
_FILES: dict[int, object] = {}
_FILE_IDS = iter(range(0x70000000, 0x7FFFFFFF))


@builtin("fopen")
def _fopen(machine, args):
    path = machine.memory.read_cstring(int(args[0])).decode("utf-8")
    mode = machine.memory.read_cstring(int(args[1])).decode("utf-8")
    pymode = mode.replace("b", "") + "b"
    try:
        f = open(path, pymode)  # noqa: SIM115
    except OSError:
        return 0
    handle = machine.memory.map_region(8, "foreign").start
    _FILES[handle] = f
    return handle


def _file(args0) -> object:
    f = _FILES.get(int(args0))
    if f is None:
        raise TrapError(f"invalid FILE* {int(args0):#x}")
    return f


@builtin("fclose")
def _fclose(machine, args):
    f = _file(args[0])
    f.close()
    del _FILES[int(args[0])]
    return 0


@builtin("fread")
def _fread(machine, args):
    ptr, size, count, fh = (int(a) for a in args)
    data = _file(fh).read(size * count)
    machine.memory.write(ptr, data)
    return len(data) // size if size else 0


@builtin("fwrite")
def _fwrite(machine, args):
    ptr, size, count, fh = (int(a) for a in args)
    data = machine.memory.read(ptr, size * count)
    _file(fh).write(data)
    return count


@builtin("fseek")
def _fseek(machine, args):
    _file(args[0]).seek(int(args[1]), int(args[2]))
    return 0


@builtin("ftell")
def _ftell(machine, args):
    return _file(args[0]).tell()


@builtin("fgetc")
def _fgetc(machine, args):
    data = _file(args[0]).read(1)
    return data[0] if data else -1


@builtin("fputc")
def _fputc(machine, args):
    _file(args[1]).write(bytes([int(args[0]) & 0xFF]))
    return int(args[0])


# -- math.h ----------------------------------------------------------------------

def _math1(name: str, fn, single: bool):
    ty = T.float32 if single else T.float64

    def impl(machine, args):
        try:
            r = fn(float(args[0]))
        except ValueError:
            r = math.nan
        return round_float(r, ty)
    BUILTINS[name] = impl


def _math2(name: str, fn, single: bool):
    ty = T.float32 if single else T.float64

    def impl(machine, args):
        try:
            r = fn(float(args[0]), float(args[1]))
        except ValueError:
            r = math.nan
        return round_float(r, ty)
    BUILTINS[name] = impl


for _name, _fn in [("sqrt", math.sqrt), ("fabs", abs), ("exp", math.exp),
                   ("log", math.log), ("sin", math.sin), ("cos", math.cos),
                   ("tan", math.tan), ("floor", math.floor),
                   ("ceil", math.ceil), ("asin", math.asin),
                   ("acos", math.acos), ("atan", math.atan)]:
    _math1(_name, _fn, single=False)
    _math1(_name + "f", _fn, single=True)

for _name, _fn in [("pow", math.pow), ("fmod", math.fmod),
                   ("atan2", math.atan2), ("fmin", min), ("fmax", max)]:
    _math2(_name, _fn, single=False)
    _math2(_name + "f", _fn, single=True)


# -- time.h ----------------------------------------------------------------------

@builtin("clock")
def _clock(machine, args):
    return int(time.process_time() * 1_000_000)  # CLOCKS_PER_SEC = 1e6
