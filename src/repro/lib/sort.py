"""Staged sorting — monomorphic quicksort specialized per element type
and comparator.

C's generic ``qsort`` pays an indirect call per comparison and works on
untyped bytes.  Staging removes both costs: ``Sort(T, compare)``
instantiates quicksort (with insertion sort for small partitions) for a
concrete element type, with the comparator — a Python *macro* — inlined
into the generated code.  The companion benchmark measures the gap
against libc qsort, in the spirit of the paper's "generative programming
for performance" examples.
"""

from __future__ import annotations

from typing import Callable, Optional

from .. import declare, macro, terra
from ..core import types as T
from ..core.quotes import Quote
from ..errors import TypeCheckError

#: partitions at or below this size use insertion sort
INSERTION_CUTOFF = 16

_cache: dict[tuple, object] = {}


def default_compare(a: Quote, b: Quote) -> Quote:
    """``a < b`` — the natural order for arithmetic element types."""
    return a.lt(b)


def Sort(elem: T.Type, compare: Optional[Callable] = None):
    """Build ``sort(data : &elem, n : int64) : {}``.

    ``compare(a, b)`` is a Python function over quotes returning the
    quote of a boolean "a orders before b"; it is inlined (via ``macro``)
    at every comparison site.
    """
    coerced = T.coerce_to_type(elem)
    if coerced is None:
        raise TypeCheckError(f"Sort needs a Terra type, got {elem!r}")
    elem = coerced
    key = (id(elem), compare)
    cached = _cache.get(key)
    if cached is not None:
        return cached

    lt = macro(compare or default_compare)
    sort_rec = declare("sort_rec")

    ns = terra("""
    terra insertion(data : &E, lo : int64, hi : int64) : {}
      for i = lo + 1, hi + 1 do
        var key = data[i]
        var j = i - 1
        while j >= lo and lt(key, data[j]) do
          data[j + 1] = data[j]
          j = j - 1
        end
        data[j + 1] = key
      end
    end

    terra sort_rec(data : &E, lo : int64, hi : int64) : {}
      while hi - lo > [CUTOFF] do
        -- median-of-three pivot selection
        var mid = lo + (hi - lo) / 2
        if lt(data[mid], data[lo]) then
          var t = data[mid] data[mid] = data[lo] data[lo] = t
        end
        if lt(data[hi], data[lo]) then
          var t = data[hi] data[hi] = data[lo] data[lo] = t
        end
        if lt(data[hi], data[mid]) then
          var t = data[hi] data[hi] = data[mid] data[mid] = t
        end
        var pivot = data[mid]
        var i = lo
        var j = hi
        while i <= j do
          while lt(data[i], pivot) do i = i + 1 end
          while lt(pivot, data[j]) do j = j - 1 end
          if i <= j then
            var t = data[i] data[i] = data[j] data[j] = t
            i = i + 1
            j = j - 1
          end
        end
        -- recurse into the smaller side; loop on the larger (O(log n) stack)
        if j - lo < hi - i then
          if lo < j then sort_rec(data, lo, j) end
          lo = i
        else
          if i < hi then sort_rec(data, i, hi) end
          hi = j
        end
      end
      insertion(data, lo, hi)
    end

    terra sort(data : &E, n : int64) : {}
      if n > 1 then
        sort_rec(data, 0, n - 1)
      end
    end
    """, env={"E": elem, "lt": lt, "CUTOFF": INSERTION_CUTOFF,
              "sort_rec": sort_rec})
    _cache[key] = ns.sort
    return ns.sort
