"""Fat-pointer interfaces — the paper's §6.3.1 closing remark.

    "Users are not limited to using any particular class system or
    implementation.  For instance, we have also implemented a system that
    implements interfaces using fat pointers that store both the object
    pointer and vtable together."

A fat interface value is a two-word struct ``{ obj : &int8, vtable :
&VT }`` passed by value; unlike the embedded-vtable scheme of
:mod:`repro.lib.javalike`, objects need no interface fields (zero
per-object overhead) at the cost of a wider handle.
"""

from __future__ import annotations

from .. import functype, global_, pointer, quote_, symbol, terra
from ..core import types as T
from ..errors import TypeCheckError


class FatInterface:
    """An interface dispatched through fat pointers."""

    def __init__(self, methods: dict, name: str = "fatiface"):
        self.name = name
        self.methods: dict[str, T.FunctionType] = {}
        for mname, mtype in methods.items():
            if isinstance(mtype, tuple):
                mtype = functype(list(mtype[0]), mtype[1])
            self.methods[mname] = mtype
        objptr = T.rawstring  # &int8: the erased object pointer
        self.vtable_type = T.StructType(f"{name}_vt")
        for mname, mtype in self.methods.items():
            stub_t = T.FunctionType([objptr] + list(mtype.parameters),
                                    mtype.returns)
            self.vtable_type.add_entry(mname, T.pointer(stub_t))
        #: the fat-pointer value type
        self.type = T.StructType(name)
        self.type.add_entry("obj", objptr)
        self.type.add_entry("vtable", T.pointer(self.vtable_type))
        for mname, mtype in self.methods.items():
            self.type.methods[mname] = self._dispatch(mname, mtype)
        #: per-implementing-class wrap functions
        self._wrappers: dict[int, object] = {}
        self._vtables: dict[int, object] = {}

    def _dispatch(self, mname: str, mtype: T.FunctionType):
        params = [symbol(t, f"a{i}") for i, t in enumerate(mtype.parameters)]
        return terra("""
        terra(self : &iface, [params])
          return self.vtable.[mname](self.obj, [params])
        end
        """, env={"iface": self.type, "params": params, "mname": mname})

    def implement(self, cls: T.StructType,
                  implementations: dict[str, object]) -> None:
        """Register ``cls`` as implementing this interface with the given
        concrete Terra methods (each taking ``&cls`` first)."""
        missing = set(self.methods) - set(implementations)
        if missing:
            raise TypeCheckError(
                f"missing implementations for {sorted(missing)}")
        vt = global_(self.vtable_type, name=f"fvt_{self.name}_{cls.name}")
        ready = global_(T.bool_, False, name=f"fvtr_{self.name}_{cls.name}")
        assigns = []
        for mname, mtype in self.methods.items():
            concrete = implementations[mname]
            stub = self._make_stub(cls, concrete, mtype)
            assigns.append(quote_("[vt].[mname] = [stub]",
                                  env={"vt": vt, "mname": mname,
                                       "stub": stub}))
        wrap = terra("""
        terra(obj : &cls) : iface
          if not ready then
            [assigns]
            ready = true
          end
          return iface { [&int8](obj), &vt }
        end
        """, env={"cls": cls, "iface": self.type, "vt": vt,
                  "ready": ready, "assigns": assigns})
        self._vtables[id(cls)] = vt
        self._wrappers[id(cls)] = wrap

    def wrap(self, cls: T.StructType):
        """The Terra function converting ``&cls`` to a fat-pointer value."""
        wrapper = self._wrappers.get(id(cls))
        if wrapper is None:
            raise TypeCheckError(
                f"{cls} does not implement interface {self.name}")
        return wrapper

    def _make_stub(self, cls: T.StructType, concrete, mtype: T.FunctionType):
        params = [symbol(t, f"a{i}") for i, t in enumerate(mtype.parameters)]
        return terra("""
        terra(obj : &int8, [params])
          return concrete([&cls](obj), [params])
        end
        """, env={"cls": cls, "concrete": concrete, "params": params})


def interface(methods: dict, name: str = "fatiface") -> FatInterface:
    return FatInterface(methods, name)
