"""``terralib`` — a compatibility namespace mirroring the paper's API.

The paper's examples call ``terralib.includec``, ``terralib.saveobj``,
``terralib.newlist`` and friends.  This module exposes this
reproduction's equivalents under those names, so code transliterated from
the paper reads the same:

    from repro.lib.stdlib import terralib
    std = terralib.includec("stdlib.h")
    terralib.saveobj("runlaplace.o", {"runlaplace": runlaplace})
"""

from __future__ import annotations

from types import SimpleNamespace

from .. import (constant, declare, functype, global_, includec, macro,
                pointer, pycallback, saveobj, select, sizeof, struct,
                symbol, symmat, tuple_of, vector)
from ..core import types as _types
from ..core.specialize import is_terra_function


class List(list):
    """Lua-flavoured list (``terralib.newlist``): 1-based ``insert`` is
    plain append; ``map``/``filter`` return new Lists."""

    def insert(self, value):  # noqa: A003 - Lua's list:insert(v) appends
        self.append(value)
        return self

    def map(self, fn) -> "List":  # noqa: A003
        return List(fn(x) for x in self)

    def filter(self, fn) -> "List":  # noqa: A003
        return List(x for x in self if fn(x))


def newlist(items=None) -> List:
    return List(items or [])


def israwlist(value) -> bool:
    return isinstance(value, (list, tuple))


def isfunction(value) -> bool:
    """``terralib.isfunction`` — is this a Terra function?"""
    return is_terra_function(value)


def istype(value) -> bool:
    return isinstance(value, _types.Type)


def isquote(value) -> bool:
    from ..core.quotes import Quote
    return isinstance(value, Quote)


def issymbol(value) -> bool:
    from ..core.symbols import Symbol
    return isinstance(value, Symbol)


def offsetof(ty: _types.StructType, field: str) -> int:
    return ty.offsetof(field)


def types() -> SimpleNamespace:
    """The type-constructor table (``terralib.types`` in real Terra)."""
    return SimpleNamespace(
        pointer=_types.pointer, array=_types.array, vector=_types.vector,
        funcpointer=lambda params, rets: _types.pointer(
            functype(params, rets)),
        newstruct=_types.StructType, tuple=tuple_of, unit=_types.unit)


terralib = SimpleNamespace(
    includec=includec,
    saveobj=saveobj,
    constant=constant,
    global_=global_,
    declare=declare,
    macro=macro,
    symbol=symbol,
    symmat=symmat,
    sizeof=sizeof,
    offsetof=offsetof,
    newlist=newlist,
    israwlist=israwlist,
    isfunction=isfunction,
    istype=istype,
    isquote=isquote,
    issymbol=issymbol,
    cast=pycallback,        # terralib.cast(fntype, luafn) wraps a function
    types=types(),
    struct=struct,
    pointer=pointer,
    vector=vector,
    select=select,
)
terralib.is_terra_namespace = True
