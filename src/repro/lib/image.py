"""``Image(PixelType)`` — the paper's Section 2 parameterized image type.

    "We can define a Lua function Image that creates the desired Terra
    type at runtime.  This is conceptually similar to a C++ template."

``Image`` is a Python function returning a Terra struct type with
``init/get/set/load/save/free`` methods, specialized for the pixel type.
``load``/``save`` use the C file API imported through ``includec``
(demonstrating the "backwards compatible with C" design): the format is a
minimal header (magic, edge length, pixel size) followed by raw pixels.

Python helpers :func:`to_numpy` / :func:`from_numpy` bridge image buffers
to numpy for the tests and benchmarks.
"""

from __future__ import annotations

import numpy as np

from .. import includec, pointer, sizeof, struct, terra
from ..core import types as T

_std = includec("stdlib.h")
_stdio = includec("stdio.h")

#: file magic: "TIMG" as a little-endian int32
MAGIC = 0x474D4954

_cache: dict[int, T.StructType] = {}


def Image(PixelType: T.Type) -> T.StructType:
    """Create (and memoize) the image struct type for a pixel type."""
    cached = _cache.get(id(PixelType))
    if cached is not None:
        return cached

    ImageImpl = struct(f"Image_{PixelType}")
    ImageImpl.add_entry("data", pointer(PixelType))
    ImageImpl.add_entry("N", T.int32)

    env = {"ImageImpl": ImageImpl, "PixelType": PixelType,
           "std": _std, "stdio": _stdio, "MAGIC": MAGIC}

    terra("""
    terra ImageImpl:init(N : int) : {}
      self.data = [&PixelType](std.malloc(N * N * sizeof(PixelType)))
      self.N = N
    end

    terra ImageImpl:get(x : int, y : int) : PixelType
      return self.data[x * self.N + y]
    end

    terra ImageImpl:set(x : int, y : int, v : PixelType) : {}
      self.data[x * self.N + y] = v
    end

    terra ImageImpl:free() : {}
      std.free(self.data)
      self.data = nil
      self.N = 0
    end

    terra ImageImpl:fill(v : PixelType) : {}
      for i = 0, self.N * self.N do
        self.data[i] = v
      end
    end

    terra ImageImpl:save(filename : rawstring) : bool
      var f = stdio.fopen(filename, 'wb')
      if f == nil then return false end
      var magic = MAGIC
      var n = self.N
      var psize = [int32](sizeof(PixelType))
      stdio.fwrite(&magic, 4, 1, f)
      stdio.fwrite(&n, 4, 1, f)
      stdio.fwrite(&psize, 4, 1, f)
      stdio.fwrite(self.data, sizeof(PixelType), n * n, f)
      stdio.fclose(f)
      return true
    end

    terra ImageImpl:load(filename : rawstring) : bool
      var f = stdio.fopen(filename, 'rb')
      if f == nil then return false end
      var magic : int32 = 0
      var n : int32 = 0
      var psize : int32 = 0
      stdio.fread(&magic, 4, 1, f)
      stdio.fread(&n, 4, 1, f)
      stdio.fread(&psize, 4, 1, f)
      if magic ~= MAGIC or psize ~= [int32](sizeof(PixelType)) then
        stdio.fclose(f)
        return false
      end
      self:init(n)
      stdio.fread(self.data, sizeof(PixelType), n * n, f)
      stdio.fclose(f)
      return true
    end
    """, env=env)

    _cache[id(PixelType)] = ImageImpl
    return ImageImpl


_NUMPY_OF = {
    "float": np.float32, "double": np.float64,
    "int8": np.int8, "int16": np.int16, "int32": np.int32,
    "int64": np.int64, "uint8": np.uint8, "uint16": np.uint16,
    "uint32": np.uint32, "uint64": np.uint64,
}


def write_image_file(path: str, array: np.ndarray) -> None:
    """Write a square numpy array in the Image file format."""
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise ValueError("image files hold square 2-D arrays")
    n = array.shape[0]
    header = np.array([MAGIC, n, array.dtype.itemsize], dtype=np.int32)
    with open(path, "wb") as f:
        f.write(header.tobytes())
        f.write(np.ascontiguousarray(array).tobytes())


def read_image_file(path: str, dtype=np.float32) -> np.ndarray:
    with open(path, "rb") as f:
        header = np.frombuffer(f.read(12), dtype=np.int32)
        if header[0] != MAGIC:
            raise ValueError(f"{path} is not an image file")
        n = int(header[1])
        data = np.frombuffer(f.read(), dtype=dtype, count=n * n)
    return data.reshape(n, n).copy()
