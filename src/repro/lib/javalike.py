"""A single-inheritance class system with interfaces — paper §6.3.1.

    "Using type-reflection, we can implement a single-inheritance class
    system with multiple subtyping of interfaces similar to Java's. ...
    Our implementation, based on vtables, uses the subset of Stroustrup's
    multiple inheritance that is needed to implement single inheritance
    with multiple interfaces."

Everything here is *library code* over the public reflection API — no
compiler support.  Mechanics, exactly as the paper describes:

* ``__finalizelayout`` (run by the typechecker right before the type is
  first examined) computes the concrete layout: the parent's layout is a
  prefix (so child pointers can be cast to parent pointers), one vtable
  pointer sits at offset 0, and each implemented interface contributes a
  vtable-pointer field;
* user-defined methods are moved to a concrete table and replaced by stub
  methods that dispatch through ``self.__vtable``;
* interfaces are one-field structs (a vtable pointer); converting an
  object pointer to an interface pointer selects the interface subobject
  (``&obj.__if_NAME``), and the interface's stubs restore the original
  object pointer before invoking the concrete method;
* ``__cast`` implements the subtyping conversions (&Child <: &Parent,
  &Class <: &Interface).

Objects must be initialized once with the class's generated ``init``
method (``Square.methods.init``), which installs the vtable pointers.
"""

from __future__ import annotations

from typing import Optional

from .. import (Quote, bool_, expr, functype, global_, pointer, quote_,
                symbol, terra)
from ..core import types as T
from ..core.function import GlobalVar, TerraFunction
from ..errors import TypeCheckError


class Interface:
    """An interface: a set of method names and (self-less) function types."""

    def __init__(self, methods: dict[str, T.FunctionType], name: str = "interface"):
        self.name = name
        self.methods = dict(methods)
        #: the Terra-level interface struct: { __vtable : &vtable_struct }
        self.type = T.StructType(name)
        self.vtable_type = T.StructType(f"{name}_vtable")
        for mname, mtype in self.methods.items():
            stub_type = T.FunctionType(
                [T.pointer(self.type)] + list(mtype.parameters), mtype.returns)
            self.vtable_type.add_entry(mname, T.pointer(stub_type))
        self.type.add_entry("__vtable", T.pointer(self.vtable_type))
        # calling a method on an interface pointer dispatches through the
        # interface vtable
        for mname, mtype in self.methods.items():
            self.type.methods[mname] = self._dispatch_stub(mname, mtype)
        _interface_meta[id(self.type)] = self

    def _dispatch_stub(self, mname: str, mtype: T.FunctionType) -> TerraFunction:
        params = [symbol(t, f"a{i}") for i, t in enumerate(mtype.parameters)]
        iface = self.type
        env = {"iface": iface, "params": params, "mname": mname}
        return terra("""
        terra(self : &iface, [params])
          return self.__vtable.[mname](self, [params])
        end
        """, env=env)


def interface(methods: dict, name: str = "interface") -> Interface:
    """Create an interface (paper: ``J.interface { draw = {} -> {} }``).

    Method types may be FunctionTypes or ``(param_list, return_type)``
    tuples."""
    normalized = {}
    for mname, mtype in methods.items():
        if isinstance(mtype, tuple):
            mtype = functype(list(mtype[0]), mtype[1])
        if not isinstance(mtype, T.FunctionType):
            raise TypeCheckError(
                f"interface method {mname!r} needs a function type")
        normalized[mname] = mtype
    return Interface(normalized, name)


class _ClassInfo:
    def __init__(self, cls: T.StructType):
        self.cls = cls
        self.parent: Optional[T.StructType] = None
        self.interfaces: list[Interface] = []
        #: method name -> concrete TerraFunction (after finalize)
        self.concrete: dict[str, TerraFunction] = {}
        #: vtable method order (parent methods first)
        self.vtable_order: list[str] = []
        self.vtable_type: Optional[T.StructType] = None
        self.vtable_global: Optional[GlobalVar] = None
        self.iface_globals: dict[str, GlobalVar] = {}
        self.ready_flag: Optional[GlobalVar] = None
        self.finalized = False


_class_info: dict[int, _ClassInfo] = {}
_interface_meta: dict[int, Interface] = {}


def _info(cls: T.StructType) -> _ClassInfo:
    info = _class_info.get(id(cls))
    if info is None:
        info = _ClassInfo(cls)
        _class_info[id(cls)] = info
        cls.metamethods["__finalizelayout"] = lambda ty: _finalize(info)
        cls.metamethods["__cast"] = _make_cast(info)
    return info


def extends(child: T.StructType, parent: T.StructType) -> None:
    """Declare single inheritance: ``J.extends(Square, Shape)``."""
    info = _info(child)
    if info.finalized:
        raise TypeCheckError(f"{child} is already finalized")
    if info.parent is not None:
        raise TypeCheckError(f"{child} already has a parent")
    info.parent = parent
    _info(parent)  # ensure the parent is registered as a class


def implements(cls: T.StructType, iface) -> None:
    """Declare interface implementation: ``J.implements(Square, Drawable)``."""
    info = _info(cls)
    if info.finalized:
        raise TypeCheckError(f"{cls} is already finalized")
    target = iface if isinstance(iface, Interface) else \
        _interface_meta.get(id(iface))
    if target is None:
        raise TypeCheckError(f"{iface!r} is not an interface")
    info.interfaces.append(target)


def _iface_field(iface: Interface) -> str:
    return f"__if_{iface.name}"


def issubclass_(child: T.StructType, parent: T.StructType) -> bool:
    info = _class_info.get(id(child))
    while info is not None:
        if info.cls is parent:
            return True
        if info.parent is None:
            return False
        info = _class_info.get(id(info.parent))
    return False


def implementsinterface(cls: T.StructType, iface_type: T.StructType) -> bool:
    info = _class_info.get(id(cls))
    while info is not None:
        for ifc in info.interfaces:
            if ifc.type is iface_type:
                return True
        if info.parent is None:
            return False
        info = _class_info.get(id(info.parent))
    return False


def _all_interfaces(info: _ClassInfo) -> list[Interface]:
    out = []
    if info.parent is not None:
        out.extend(_all_interfaces(_class_info[id(info.parent)]))
    for ifc in info.interfaces:
        if ifc not in out:
            out.append(ifc)
    return out


def _finalize(info: _ClassInfo) -> None:
    """The ``__finalizelayout`` hook: computes layout, vtables and stubs."""
    if info.finalized:
        return
    info.finalized = True
    cls = info.cls
    own_entries = list(cls.entries)
    cls.entries.clear()

    parent_info = None
    if info.parent is not None:
        info.parent.complete()
        info.parent.layout()
        parent_info = _class_info[id(info.parent)]

    # --- concrete methods: inherited then own (overrides replace) -------
    if parent_info is not None:
        info.concrete.update(parent_info.concrete)
        info.vtable_order = list(parent_info.vtable_order)
    for name, fn in list(cls.methods.items()):
        if isinstance(fn, TerraFunction):
            info.concrete[name] = fn
            if name not in info.vtable_order:
                info.vtable_order.append(name)

    # --- class vtable type ------------------------------------------------
    vt = T.StructType(f"{cls.name}_vtable")
    for name in info.vtable_order:
        ftype = _concrete_type(info, name)
        vt.add_entry(name, T.pointer(ftype))
    info.vtable_type = vt
    info.vtable_global = global_(vt, name=f"vt_{cls.name}")
    info.ready_flag = global_(bool_, False, name=f"vtready_{cls.name}")

    # --- layout: parent prefix (or vtable pointer), interfaces, fields ---
    if parent_info is not None:
        # the parent prefix includes the shared vtable pointer at offset 0
        for entry in info.parent.entries:
            cls.entries.append(T.StructEntry(entry.field, entry.type))
    else:
        cls.add_entry("__vtable", T.pointer(vt))
    for iface in info.interfaces:
        field = _iface_field(iface)
        if not any(e.field == field for e in cls.entries):
            cls.add_entry(field, T.pointer(iface.vtable_type))
    for entry in own_entries:
        cls.entries.append(entry)

    # the child's vtable pointer field keeps the PARENT's vtable type in
    # the layout (same slot); stores/loads go through pointer casts in the
    # generated stubs below.

    # --- user-facing stubs: dispatch through the vtable -------------------
    for name in info.vtable_order:
        ftype = _concrete_type(info, name)
        cls.methods[name] = _make_stub(info, name, ftype)

    # --- interface vtables and their stubs --------------------------------
    for iface in _all_interfaces(info):
        field = _iface_field(iface)
        ivt_global = global_(iface.vtable_type, name=f"ivt_{cls.name}_{iface.name}")
        info.iface_globals[field] = ivt_global

    # --- the object initializer -------------------------------------------
    cls.methods["init"] = _make_init(info)


def _concrete_type(info: _ClassInfo, name: str) -> T.FunctionType:
    return info.concrete[name].gettype()


def _make_stub(info: _ClassInfo, name: str,
               ftype: T.FunctionType) -> TerraFunction:
    """``class.methods[m] = terra([params]) return self.__vtable.m([params]) end``
    (paper §6.3.1 code listing, transliterated).

    The stub's receiver is ``&cls``; the vtable entry's receiver is the
    *defining* class (possibly a parent), so the receiver is cast."""
    cls = info.cls
    defining_self = ftype.parameters[0]
    rest_types = list(ftype.parameters[1:])
    rest = [symbol(t, f"p{i}") for i, t in enumerate(rest_types)]
    env = {
        "cls": cls, "rest": rest, "methodname": name,
        "vtptr": T.pointer(info.vtable_type),
        "selfty": defining_self,
    }
    return terra("""
    terra(self : &cls, [rest])
      return [vtptr](self.__vtable).[methodname]([selfty](self), [rest])
    end
    """, env=env)


def _make_init(info: _ClassInfo) -> TerraFunction:
    """Generate ``Class.methods.init``: installs vtable pointers (and on
    first call, fills in the vtable globals with the concrete methods)."""
    cls = info.cls
    assigns = []
    for name in info.vtable_order:
        fn = info.concrete[name]
        assigns.append(quote_(
            "[vt].[mname] = [fn]",
            env={"vt": info.vtable_global, "mname": name, "fn": fn}))
    self_sym = symbol(pointer(cls), "self")
    iface_ptr_assigns = []
    for iface in _all_interfaces(info):
        field = _iface_field(iface)
        ivt = info.iface_globals[field]
        for mname, mtype in iface.methods.items():
            stub = _make_iface_stub(info, iface, mname, mtype)
            assigns.append(quote_(
                "[ivt].[mname] = [stub]",
                env={"ivt": ivt, "mname": mname, "stub": stub}))
        iface_ptr_assigns.append(quote_(
            "[self_sym].[field] = &[ivt]",
            env={"ivt": ivt, "field": field, "self_sym": self_sym}))
    env = {
        "cls": cls, "ready": info.ready_flag, "vt": info.vtable_global,
        "assigns": assigns, "iface_ptr_assigns": iface_ptr_assigns,
        "rootvt": T.pointer(_vtable_field_type(info)),
        "self_sym": self_sym,
    }
    return terra("""
    terra([self_sym]) : {}
      if not ready then
        [assigns]
        ready = true
      end
      [self_sym].__vtable = [rootvt](&vt)
      [iface_ptr_assigns]
    end
    """, env=env)


def _vtable_field_type(info: _ClassInfo) -> T.Type:
    """The declared type of the __vtable field (the root parent's vtable
    struct), which child vtable pointers are cast to."""
    cls_entries = info.cls.entries
    for entry in cls_entries:
        if entry.field == "__vtable":
            return entry.type.pointee
    raise TypeCheckError(f"{info.cls} has no __vtable field")


def _make_iface_stub(info: _ClassInfo, iface: Interface, mname: str,
                     mtype: T.FunctionType) -> TerraFunction:
    """The interface stub: restore the object pointer from the interface
    subobject pointer, then call the concrete method."""
    cls = info.cls
    offset = cls.offsetof(_iface_field(iface))
    concrete = info.concrete.get(mname)
    if concrete is None:
        raise TypeCheckError(
            f"class {cls} implements {iface.name} but has no method "
            f"{mname!r}")
    params = [symbol(t, f"a{i}") for i, t in enumerate(mtype.parameters)]
    env = {
        "iface": iface.type, "cls": cls, "params": params,
        "offset": offset, "concrete": concrete,
        "selfty": concrete.gettype().parameters[0],
    }
    return terra("""
    terra(self : &iface, [params])
      var obj = [&cls]([&int8](self) - offset)
      return concrete([selfty](obj), [params])
    end
    """, env=env)


def _make_cast(info: _ClassInfo):
    """The ``__cast`` metamethod, reproducing the paper's listing."""

    def cast(fromtype: T.Type, totype: T.Type, exp: Quote):
        if fromtype.ispointer() and totype.ispointer():
            src, dst = fromtype.pointee, totype.pointee
            if isinstance(src, T.StructType) and isinstance(dst, T.StructType):
                if issubclass_(src, dst):
                    return expr("[totype]([exp])",
                                env={"totype": totype, "exp": exp})
                if implementsinterface(src, dst):
                    iface = _interface_meta[id(dst)]
                    field = _iface_field(iface)
                    return expr("[totype](&([exp]).[field])",
                                env={"totype": totype, "exp": exp,
                                     "field": field})
        raise TypeCheckError(f"not a subtype: {fromtype} -> {totype}")

    return cast
