"""A minimal BMP codec — the paper's §2 example operates on ``.bmp`` files.

Supports the common uncompressed formats: reading 8-bit palettized and
24-bit BGR files, writing 8-bit greyscale (with the standard 256-entry
grey palette).  Pure Python + numpy; used by the quickstart pipeline and
usable from any Terra program via the file's byte layout.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import TerraError

_FILE_HEADER = "<2sIHHI"        # magic, file size, res1, res2, data offset
_INFO_HEADER = "<IiiHHIIiiII"   # BITMAPINFOHEADER


def write_bmp(path: str, image: np.ndarray) -> None:
    """Write a 2-D uint8 array (or float array in [0,1]) as an 8-bit
    greyscale BMP."""
    if image.ndim != 2:
        raise TerraError("write_bmp expects a 2-D image")
    if image.dtype != np.uint8:
        scaled = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)
        image = (scaled * 255.0 + 0.5).astype(np.uint8)
    height, width = image.shape
    row_size = (width + 3) & ~3            # rows pad to 4 bytes
    palette = b"".join(bytes((i, i, i, 0)) for i in range(256))
    data_offset = 14 + 40 + len(palette)
    image_size = row_size * height
    file_size = data_offset + image_size
    with open(path, "wb") as f:
        f.write(struct.pack(_FILE_HEADER, b"BM", file_size, 0, 0,
                            data_offset))
        f.write(struct.pack(_INFO_HEADER, 40, width, height, 1, 8, 0,
                            image_size, 2835, 2835, 256, 0))
        f.write(palette)
        pad = bytes(row_size - width)
        for row in image[::-1]:            # BMP stores bottom-up
            f.write(row.tobytes())
            f.write(pad)


def read_bmp(path: str) -> np.ndarray:
    """Read an uncompressed 8-bit or 24-bit BMP as a 2-D uint8 greyscale
    array (24-bit input is converted by the integer luma approximation)."""
    with open(path, "rb") as f:
        raw = f.read()
    if raw[:2] != b"BM":
        raise TerraError(f"{path} is not a BMP file")
    _magic, _fsize, _r1, _r2, data_offset = struct.unpack_from(
        _FILE_HEADER, raw, 0)
    (hdr_size, width, height, _planes, bpp, compression, _img_size,
     _xppm, _yppm, colors_used, _important) = struct.unpack_from(
        _INFO_HEADER, raw, 14)
    if hdr_size < 40 or compression != 0:
        raise TerraError("only uncompressed BITMAPINFOHEADER BMPs supported")
    flipped = height > 0
    height = abs(height)
    out = np.zeros((height, width), dtype=np.uint8)
    if bpp == 8:
        ncolors = colors_used or 256
        pal_off = 14 + hdr_size
        palette = np.frombuffer(raw, dtype=np.uint8,
                                count=ncolors * 4, offset=pal_off)
        palette = palette.reshape(-1, 4)
        grey = ((palette[:, 2].astype(np.uint32) * 299
                 + palette[:, 1].astype(np.uint32) * 587
                 + palette[:, 0].astype(np.uint32) * 114) // 1000
                ).astype(np.uint8)
        row_size = (width + 3) & ~3
        for y in range(height):
            row = np.frombuffer(raw, dtype=np.uint8, count=width,
                                offset=data_offset + y * row_size)
            out[y] = grey[row]
    elif bpp == 24:
        row_size = (width * 3 + 3) & ~3
        for y in range(height):
            row = np.frombuffer(raw, dtype=np.uint8, count=width * 3,
                                offset=data_offset + y * row_size)
            bgr = row.reshape(-1, 3).astype(np.uint32)
            out[y] = ((bgr[:, 2] * 299 + bgr[:, 1] * 587 + bgr[:, 0] * 114)
                      // 1000).astype(np.uint8)
    else:
        raise TerraError(f"unsupported BMP bit depth: {bpp}")
    return out[::-1].copy() if flipped else out


def to_float(image: np.ndarray) -> np.ndarray:
    """uint8 greyscale -> float32 in [0, 1]."""
    return (np.asarray(image, dtype=np.float32) / 255.0)


def from_float(image: np.ndarray) -> np.ndarray:
    return (np.clip(np.asarray(image, dtype=np.float64), 0, 1) * 255.0
            + 0.5).astype(np.uint8)
