"""``DataTable`` — programmable data layout, paper §6.3.2.

    "A Lua function DataTable takes a Lua table specifying the fields of
    the record and how to store them (AoS or SoA), returning a new Terra
    type. ... The interface abstracts the layout of the data, so it can be
    changed just by replacing 'AoS' with 'SoA'."

The returned Terra struct type has methods:

* ``t:init(n)`` / ``t:free()`` — allocate/release storage for n rows,
* ``t:rows()`` — the row count,
* ``t:row(i)`` — a lightweight row handle (a value struct),
* per field ``F``: ``row:F()`` (get) and ``row:setF(v)`` (set).

Both layouts expose the identical interface, so switching between
array-of-structs and struct-of-arrays is a one-word change — the paper's
Figure 9 benchmarks are written once against this interface.
"""

from __future__ import annotations

from .. import includec, pointer, struct, terra
from ..core import types as T
from ..errors import TypeCheckError

_std = includec("stdlib.h")

_counter = [0]


def DataTable(fields: dict[str, T.Type], layout: str = "AoS",
              block: int = 8) -> T.StructType:
    """Create a table type with the given fields and storage layout.

    Layouts: ``"AoS"`` (array of structs), ``"SoA"`` (struct of arrays),
    or ``"AoSoA"`` (arrays of ``block``-row tiles, each tile struct-of-
    arrays — the hybrid that keeps whole records nearby while giving
    vector units contiguous lanes).
    """
    if layout not in ("AoS", "SoA", "AoSoA"):
        raise TypeCheckError(
            f"layout must be 'AoS', 'SoA' or 'AoSoA', got {layout!r}")
    for name, ftype in fields.items():
        coerced = T.coerce_to_type(ftype)
        if coerced is None:
            raise TypeCheckError(f"field {name!r} needs a Terra type")
        fields[name] = coerced
    _counter[0] += 1
    uid = _counter[0]
    if layout == "AoS":
        return _make_aos(fields, uid)
    if layout == "SoA":
        return _make_soa(fields, uid)
    return _make_aosoa(fields, uid, block)


def map_rows(Table: T.StructType, bodyfn, name: str = "maprows"):
    """Stage a kernel that applies ``bodyfn`` to every row of a table.

    ``bodyfn(row)`` receives the row-handle *symbol* and returns a quote
    (or list of quotes) for the per-row body — the same contract as
    ``blockedloop``'s body generator.  The result is a ``mark_chunked()``
    Terra function ``f(t : &Table, n : int64)`` whose final loop runs
    over row indices, so it can be dispatched across workers with
    :func:`parallel_map_rows` (or :func:`repro.parallel.parallel_for`)
    as well as called serially.  Rows are independent: the body must
    only touch its own row for a parallel dispatch to be sound.
    """
    from .. import pointer as _pointer, symbol, terra as _terra
    t = symbol(_pointer(Table), "t")
    n = symbol(T.int64, "n")
    i = symbol(T.int64, "i")
    row = symbol(None, "row")
    body = bodyfn(row)
    fn = _terra("""
    terra([t], [n]) : {}
      for [i] = 0, [n] do
        var [row] = [t]:row([i])
        [body]
      end
    end
    """, env={"t": t, "n": n, "i": i, "row": row, "body": body})
    fn.name = name
    return fn.mark_chunked()


def parallel_map_rows(kernel, table, nrows: int, *args,
                      nthreads: int = 0, grain: int = 1) -> None:
    """Run a :func:`map_rows` kernel over ``table``'s rows in parallel.

    ``table`` is the ``&Table`` cdata pointer, ``nrows`` the row count;
    extra ``args`` follow the kernel's own extra parameters.  For AoSoA
    tables pass ``grain=block`` so whole tiles stay on one worker."""
    from ..parallel import parallel_for
    parallel_for(kernel, 0, nrows, table, nrows, *args,
                 nthreads=nthreads, grain=grain)


def _make_aos(fields: dict[str, T.Type], uid: int) -> T.StructType:
    Record = struct(f"Record{uid}")
    for name, ftype in fields.items():
        Record.add_entry(name, ftype)
    Table = struct(f"TableAoS{uid}")
    Table.add_entry("data", pointer(Record))
    Table.add_entry("n", T.int64)
    Row = struct(f"RowAoS{uid}")
    Row.add_entry("rec", pointer(Record))

    env = {"Table": Table, "Row": Row, "Record": Record, "std": _std}
    terra("""
    terra Table:init(n : int64) : {}
      self.data = [&Record](std.malloc(n * sizeof(Record)))
      self.n = n
    end
    terra Table:free() : {}
      std.free(self.data)
      self.data = nil
      self.n = 0
    end
    terra Table:rows() : int64
      return self.n
    end
    terra Table:row(i : int64) : Row
      return Row { &self.data[i] }
    end
    """, env=env)
    for name, ftype in fields.items():
        fenv = {"Row": Row, "ftype": ftype, "fname": name}
        getter = terra("""
        terra(self : &Row) : ftype
          return self.rec.[fname]
        end
        """, env=fenv)
        setter = terra("""
        terra(self : &Row, v : ftype) : {}
          self.rec.[fname] = v
        end
        """, env=fenv)
        Row.methods[name] = getter
        Row.methods["set" + name] = setter
    Table.metadata = {"layout": "AoS", "fields": dict(fields), "row": Row,
                      "record": Record}
    return Table


def _make_soa(fields: dict[str, T.Type], uid: int) -> T.StructType:
    Table = struct(f"TableSoA{uid}")
    for name, ftype in fields.items():
        Table.add_entry(name, pointer(ftype))
    Table.add_entry("n", T.int64)
    Row = struct(f"RowSoA{uid}")
    Row.add_entry("t", pointer(Table))
    Row.add_entry("i", T.int64)

    allocs = []
    frees = []
    from .. import quote_, symbol
    self_sym = symbol(pointer(Table), "self")
    n_sym = symbol(T.int64, "n")
    for name, ftype in fields.items():
        allocs.append(quote_(
            "[self_sym].[fname] = [&ftype](std.malloc([n_sym] * sizeof(ftype)))",
            env={"self_sym": self_sym, "fname": name, "ftype": ftype,
                 "n_sym": n_sym, "std": _std}))
        frees.append(quote_(
            "std.free([self_sym].[fname])",
            env={"self_sym": self_sym, "fname": name, "std": _std}))

    env = {"Table": Table, "Row": Row, "std": _std,
           "self_sym": self_sym, "n_sym": n_sym,
           "allocs": allocs, "frees": frees}
    init = terra("""
    terra([self_sym], [n_sym]) : {}
      [allocs]
      [self_sym].n = [n_sym]
    end
    """, env=env)
    free = terra("""
    terra([self_sym]) : {}
      [frees]
      [self_sym].n = 0
    end
    """, env=env)
    Table.methods["init"] = init
    Table.methods["free"] = free
    terra("""
    terra Table:rows() : int64
      return self.n
    end
    terra Table:row(i : int64) : Row
      return Row { self, i }
    end
    """, env=env)
    for name, ftype in fields.items():
        fenv = {"Row": Row, "ftype": ftype, "fname": name}
        getter = terra("""
        terra(self : &Row) : ftype
          return self.t.[fname][self.i]
        end
        """, env=fenv)
        setter = terra("""
        terra(self : &Row, v : ftype) : {}
          self.t.[fname][self.i] = v
        end
        """, env=fenv)
        Row.methods[name] = getter
        Row.methods["set" + name] = setter
    Table.metadata = {"layout": "SoA", "fields": dict(fields), "row": Row}
    return Table


def _make_aosoa(fields: dict[str, T.Type], uid: int,
                block: int) -> T.StructType:
    """Tiled hybrid: storage is ceil(n/B) tiles; within a tile, each
    field's B values are contiguous."""
    if block < 1:
        raise TypeCheckError(f"AoSoA block must be positive, got {block}")
    # per-field byte offset of its lane array within one tile
    offsets: dict[str, int] = {}
    running = 0
    for name, ftype in fields.items():
        size, align = ftype.layout()
        running = (running + align - 1) & ~(align - 1)
        offsets[name] = running
        running += size * block
    tile_bytes = (running + 15) & ~15  # keep tiles 16-aligned

    Table = struct(f"TableAoSoA{uid}")
    Table.add_entry("data", pointer(T.uint8))
    Table.add_entry("n", T.int64)
    Row = struct(f"RowAoSoA{uid}")
    Row.add_entry("t", pointer(Table))
    Row.add_entry("i", T.int64)

    env = {"Table": Table, "Row": Row, "std": _std,
           "B": block, "TILE": tile_bytes}
    terra("""
    terra Table:init(n : int64) : {}
      var tiles = (n + [B - 1]) / B
      self.data = [&uint8](std.malloc(tiles * TILE))
      self.n = n
    end
    terra Table:free() : {}
      std.free(self.data)
      self.data = nil
      self.n = 0
    end
    terra Table:rows() : int64
      return self.n
    end
    terra Table:row(i : int64) : Row
      return Row { self, i }
    end
    """, env=env)
    for name, ftype in fields.items():
        fenv = {"Row": Row, "ftype": ftype, "B": block,
                "TILE": tile_bytes, "OFF": offsets[name],
                "SZ": ftype.sizeof()}
        getter = terra("""
        terra(self : &Row) : ftype
          var base = (self.i / B) * TILE + OFF + (self.i % B) * SZ
          return @[&ftype](&self.t.data[base])
        end
        """, env=fenv)
        setter = terra("""
        terra(self : &Row, v : ftype) : {}
          var base = (self.i / B) * TILE + OFF + (self.i % B) * SZ
          @[&ftype](&self.t.data[base]) = v
        end
        """, env=fenv)
        Row.methods[name] = getter
        Row.methods["set" + name] = setter
    Table.metadata = {"layout": "AoSoA", "fields": dict(fields), "row": Row,
                      "block": block, "tile_bytes": tile_bytes}
    return Table
