"""``GrowableArray(T)`` — a generic dynamic array as a Terra library.

The std.Vector of the Terra ecosystem: a meta-function over element types
producing a struct with ``init/push/pop/get/set/size/capacity/free``
methods over manually-managed storage (amortized-doubling growth).
Demonstrates the paper's "high-performance runtime components as
libraries" thesis alongside DataTable and the class systems.
"""

from __future__ import annotations

from .. import includec, pointer, struct, terra
from ..core import types as T
from ..errors import TypeCheckError

_std = includec("stdlib.h")
_str = includec("string.h")

_cache: dict[int, T.StructType] = {}


def GrowableArray(elem: T.Type) -> T.StructType:
    """Create (and memoize) the growable-array type for ``elem``."""
    coerced = T.coerce_to_type(elem)
    if coerced is None:
        raise TypeCheckError(f"GrowableArray needs a Terra type, got {elem!r}")
    elem = coerced
    cached = _cache.get(id(elem))
    if cached is not None:
        return cached

    Arr = struct(f"Growable_{elem}")
    Arr.add_entry("data", pointer(elem))
    Arr.add_entry("length", T.int64)
    Arr.add_entry("space", T.int64)

    env = {"Arr": Arr, "E": elem, "std": _std, "cstr": _str}
    terra("""
    terra Arr:init() : {}
      self.data = nil
      self.length = 0
      self.space = 0
    end

    terra Arr:reserve(n : int64) : {}
      if n <= self.space then return end
      var newspace = self.space * 2
      if newspace < n then newspace = n end
      if newspace < 4 then newspace = 4 end
      var newdata = [&E](std.malloc(newspace * sizeof(E)))
      if self.data ~= nil then
        cstr.memcpy(newdata, self.data, self.length * sizeof(E))
        std.free(self.data)
      end
      self.data = newdata
      self.space = newspace
    end

    terra Arr:push(v : E) : {}
      self:reserve(self.length + 1)
      self.data[self.length] = v
      self.length = self.length + 1
    end

    terra Arr:pop() : E
      self.length = self.length - 1
      return self.data[self.length]
    end

    terra Arr:get(i : int64) : E
      return self.data[i]
    end

    terra Arr:set(i : int64, v : E) : {}
      self.data[i] = v
    end

    terra Arr:size() : int64
      return self.length
    end

    terra Arr:capacity() : int64
      return self.space
    end

    terra Arr:clear() : {}
      self.length = 0
    end

    terra Arr:free() : {}
      if self.data ~= nil then
        std.free(self.data)
      end
      self:init()
    end
    """, env=env)
    _cache[id(elem)] = Arr
    return Arr
