"""``blockedloop`` — the paper's Section 2 staged loop-nest generator.

    "we can create a Lua function, blockedloop, to generate the Terra code
    for the loop nests with a parameterizable number of block sizes"

Given a loop bound, a list of block sizes (the last one conventionally 1),
and a body generator, produces a quote containing nested 2-D blocked
loops.  ``bodyfn`` receives the two innermost loop-index *symbols* and
returns a quote for the loop body — the same contract as the paper's Lua
version, transliterated to Python.
"""

from __future__ import annotations

from ..core.quotes import Quote
from ..core.symbols import symbol
from .. import core  # noqa: F401  (documentation import)


def blockedloop(N, blocksizes, bodyfn) -> Quote:
    """Generate a 2-D blocked loop nest over ``[0,N) x [0,N)``.

    ``blocksizes[0]`` is the outer block edge, subsequent entries refine
    it; each level iterates its indices by the *next* level's block size,
    exactly like the paper's implementation.  ``bodyfn(i, j)`` must return
    a quote (or list of quotes) for the innermost body.
    """
    from .. import quote_

    def generatelevel(n, ii, jj, ilimit, jlimit, bb):
        if n > len(blocksizes):
            return bodyfn(ii, jj)
        blocksize = blocksizes[n - 1]
        i = symbol(None, f"i{n}")
        j = symbol(None, f"j{n}")
        # Each level clamps against its *parent block's* clamped limit,
        # not the global N: with non-divisor chains (say [6, 4, 1]) a
        # size-4 sub-block starting at 4 must stop at the size-6 block
        # edge 6, not run to min(4+4, N) and double-visit 6..7 (which
        # the next size-6 block covers again).  The limits are hoisted
        # into locals so they can be threaded down the recursion.
        ilim = symbol(None, f"ilim{n}")
        jlim = symbol(None, f"jlim{n}")
        inner = generatelevel(n + 1, i, j, ilim, jlim, blocksize)
        return quote_(
            """
            var [ilim] = [ii] + [bb]
            if [ilim] > [ilimit] then [ilim] = [ilimit] end
            var [jlim] = [jj] + [bb]
            if [jlim] > [jlimit] then [jlim] = [jlimit] end
            for [i] = [ii], [ilim], [blocksize] do
              for [j] = [jj], [jlim], [blocksize] do
                [inner]
              end
            end
            """,
            env={
                "i": i, "j": j, "ii": ii, "jj": jj,
                "ilim": ilim, "jlim": jlim,
                "ilimit": ilimit, "jlimit": jlimit,
                "blocksize": blocksize, "inner": inner,
                "bb": bb,
            })

    return generatelevel(1, 0, 0, N, N, N)


def parallel_blockedloop(kernel, N, *args, blocksizes=None,
                         nthreads: int = 0) -> None:
    """Dispatch a blocked kernel's outer row loop across worker threads.

    ``kernel`` is a ``mark_chunked()`` Terra function whose body *ends*
    in a blockedloop nest (the outer ``for i1 = 0, N, blocksizes[0]``
    loop is the chunked one).  Chunk cuts are aligned to
    ``blocksizes[0]`` so whole row blocks stay on one worker — the
    blocking structure, and therefore the per-element arithmetic order,
    is exactly the serial call's.
    """
    from ..parallel import parallel_for
    grain = blocksizes[0] if blocksizes else 1
    parallel_for(kernel, 0, N, *args, nthreads=nthreads, grain=grain)
