"""Terra functions: declaration, definition, lazy typechecking, JIT.

The lifecycle follows the paper exactly:

* ``declare()`` creates an *undefined* function (the paper's ``tdecl``) —
  an address that other functions may reference before it has a body;
* defining (``ter l(x:T):T { e }``) specializes the body **eagerly** and
  attaches it; a function can be defined only once (definitions are
  immutable, which is what makes typechecking monotonic, §4.1);
* typechecking and linking run **lazily**: the first time a function is
  called (or referenced by a called function), its whole connected
  component of references is typechecked (paper Figure 4);
* compilation happens per backend on first call, and the result is cached.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from ..errors import SpecializeError, TypeCheckError
from ..exec.dispatch import Dispatcher
from . import sast
from . import types as T
from .symbols import Symbol

_func_ids = itertools.count(1)


class TerraFunction:
    """A Terra function object (the paper's function address ``l``)."""

    is_terra_function = True

    #: which frontend produced the definition — "string" for the
    #: Lua-Terra parser (the default), "pyast" for the @terra decorator
    #: (overridden per instance; see docs/FRONTENDS.md)
    frontend = "string"

    UNDEFINED = "undefined"
    DEFINED = "defined"

    def __init__(self, name: str = "anon", location=None):
        self.uid = next(_func_ids)
        self.name = name
        self.location = location
        self.state = self.UNDEFINED
        # definition payload (present when state == DEFINED)
        self.param_symbols: list[Symbol] = []
        self.param_types: list[T.Type] = []
        self.declared_rettype: Optional[T.Type] = None
        self.body: Optional[sast.SBlock] = None
        # external (C) functions have a type and symbol name but no body
        self.external_name: Optional[str] = None
        self.external_type: Optional[T.FunctionType] = None
        # lazy results
        self.typed = None            # TypedFunction after typechecking
        self._type: Optional[T.FunctionType] = None
        self._typecheck_error: Optional[Exception] = None
        # all call/compile state (per-backend handles, pending tickets,
        # tiering) lives on the dispatcher — see repro.exec
        self.dispatcher = Dispatcher(self)
        # when True the C backend emits a `<name>_chunk(lo, hi, args...,
        # trap*)` twin driving the body's final loop over [lo, hi) — the
        # dispatch target of repro.parallel (see mark_chunked)
        self.emit_chunk = False

    # -- definition ------------------------------------------------------------
    def define(self, param_symbols: Sequence[Symbol],
               param_types: Sequence[T.Type],
               rettype: Optional[T.Type], body: sast.SBlock) -> "TerraFunction":
        """Attach a specialized definition (the paper's LTDEFN rule).

        Functions may be defined exactly once: LTDEFN requires the target
        to be undefined, which keeps typechecking monotonic.
        """
        if self.state != self.UNDEFINED:
            raise SpecializeError(
                f"Terra function {self.name!r} is already defined; "
                f"definitions are immutable")
        # every frontend funnels through here — enforce the frontend↔IR
        # contract (docs/FRONTENDS.md) before accepting the definition
        sast.validate_definition(param_symbols, param_types, rettype, body)
        self.param_symbols = list(param_symbols)
        self.param_types = list(param_types)
        self.declared_rettype = rettype
        self.body = body
        self.state = self.DEFINED
        if rettype is not None:
            rets = [] if (isinstance(rettype, T.TupleType) and rettype.isunit()) \
                else ([rettype] if not isinstance(rettype, T.TupleType)
                      else list(rettype.element_types))
            self._type = T.FunctionType(self.param_types, rets)
        return self

    @classmethod
    def external(cls, name: str, ftype: T.FunctionType,
                 symbol_name: Optional[str] = None) -> "TerraFunction":
        """An externally-implemented (C) function: has a type, no body."""
        fn = cls(name)
        fn.state = cls.DEFINED
        fn.external_name = symbol_name or name
        fn.external_type = ftype
        fn._type = ftype
        fn.param_types = list(ftype.parameters)
        return fn

    @property
    def is_external(self) -> bool:
        return self.external_name is not None

    def isdefined(self) -> bool:
        return self.state == self.DEFINED

    # -- typechecking (lazy) -------------------------------------------------------
    def gettype(self) -> T.FunctionType:
        """The function's type; typechecks if the return type is inferred."""
        if self._type is not None:
            return self._type
        self.ensure_typechecked()
        assert self._type is not None
        return self._type

    def ensure_typechecked(self) -> None:
        """Typecheck this function's connected component (paper Fig. 4)."""
        from .linker import ensure_typechecked
        ensure_typechecked(self)

    def peektype(self) -> Optional[T.FunctionType]:
        return self._type

    # -- compilation & calling ---------------------------------------------------
    # The mechanics live on ``self.dispatcher`` (repro.exec): TerraFunction
    # keeps only the thin public API.

    @property
    def _compiled(self) -> dict:
        """Backend name -> compiled handle (the dispatcher's handle table;
        kept as a property for backward compatibility)."""
        return self.dispatcher.handles

    @property
    def _pending(self) -> dict:
        """Backend name -> pending CompileTicket (dispatcher state)."""
        return self.dispatcher.pending

    def compile(self, backend=None):
        """Compile (JIT) on ``backend`` and return a callable handle.

        If an async compile was started earlier (:meth:`compile_async`),
        this joins it instead of compiling again — with the flags that
        were in effect at submission time.
        """
        return self.dispatcher.compiled_handle(backend)

    def compile_async(self, backend=None):
        """Start compiling on ``backend`` without waiting: the unit is
        emitted now (capturing the current compile flags) and built on the
        :mod:`repro.buildd` pool; returns a ``CompileTicket`` whose
        ``result()`` yields the callable handle.

        A later :meth:`compile` or direct call joins the pending build, so
        ``fn.compile_async(); ...; fn(x)`` never compiles twice.
        """
        return self.dispatcher.compile_async(backend)

    def __call__(self, *args):
        """Calling from Python routes through the per-function dispatcher,
        which consults the process execution policy (:mod:`repro.exec`) —
        by default: JIT-compile on the default backend and convert
        arguments via the FFI (the paper's LTAPP rule)."""
        return self.dispatcher(*args)

    # -- parallel dispatch (repro.parallel) ---------------------------------------
    def mark_chunked(self) -> "TerraFunction":
        """Request a *chunked* C entry for this loop kernel.

        The C backend then emits, next to the normal entry, a twin
        ``<name>_chunk(int64 lo, int64 hi, args..., int32* trap)`` that
        runs only the iterations of the body's **final top-level loop**
        that fall in ``[lo, hi)`` — the dispatch target
        :func:`repro.parallel.parallel_for` hands to worker threads.

        Must be called before the function is compiled on the C backend
        (the mark changes the emitted unit, hence its cache identity).
        Returns ``self`` so it chains: ``terra(...)(src).mark_chunked()``.
        """
        if self.emit_chunk:
            return self
        if self.is_external:
            raise SpecializeError(
                f"mark_chunked: {self.name!r} is external; chunked entries "
                f"exist only for Terra-defined loop kernels")
        if "c" in self.dispatcher.handles or "c" in self.dispatcher.pending:
            raise SpecializeError(
                f"mark_chunked: {self.name!r} is already compiled on the C "
                f"backend; mark it before the first compile/call")
        self.emit_chunk = True
        return self

    def getdefinitions(self):
        return [self]

    # -- inspection (Terra's printpretty / disas) -----------------------------
    def printpretty(self, typed: bool = False) -> str:
        """Render the specialized (or, with ``typed=True``, the typed)
        form of this function as Terra-like source and print it."""
        from .prettyprint import format_specialized, format_typed
        text = format_typed(self) if typed else format_specialized(self)
        print(text)
        return text

    def get_source(self, typed: bool = False) -> str:
        """Like :meth:`printpretty` but returns the text without printing."""
        from .prettyprint import format_specialized, format_typed
        return format_typed(self) if typed else format_specialized(self)

    def get_c_source(self) -> str:
        """The C translation unit the gcc backend compiles for this
        function's connected component (the analog of Terra's ``disas``)."""
        from ..backend.base import get_backend
        return get_backend("c").emit_source(self)

    def get_optimized_ir(self, level: Optional[int] = None) -> str:
        """The typed IR after the :mod:`repro.passes` pipeline — what both
        backends actually compile.  ``level`` picks a pipeline level
        (default: the full pipeline); the tree is returned at exactly
        that level even when an earlier compile already advanced the
        in-place tree further (served from the per-level snapshots)."""
        from ..passes import pipelined_body
        from .prettyprint import format_typed_ir
        self.ensure_typechecked()
        assert self.typed is not None
        body = pipelined_body(self.typed, level)
        return format_typed_ir(self.typed, body=body)

    def report(self, print_: bool = True):
        """Runtime profile of this function's compiled handle(s): call
        count, total wall seconds, min/mean/max per call.  Populated when
        :mod:`repro.trace.profile` is on (``REPRO_TERRA_PROFILE=1``);
        returns None (and says so) if the function was never profiled."""
        from ..trace import profile
        stats = profile.stats_for(self)
        if print_:
            if stats is None:
                print(f"{self.name}: no profiled calls "
                      f"(set REPRO_TERRA_PROFILE=1 or call "
                      f"repro.trace.profile.enable())")
            else:
                print(f"{self.name}: {stats['calls']} calls, "
                      f"{stats['seconds']:.6f}s total, "
                      f"min/mean/max "
                      f"{stats['min'] * 1e6:.2f}/"
                      f"{stats['mean'] * 1e6:.2f}/"
                      f"{stats['max'] * 1e6:.2f} us")
        return stats

    def __repr__(self) -> str:
        ty = self._type if self._type is not None else "<untypechecked>"
        return f"terra {self.name}: {ty} [{self.state}]"


def declare(name: str = "anon") -> TerraFunction:
    """Create an undefined Terra function (the paper's ``tdecl``) for
    forward references and mutual recursion."""
    return TerraFunction(name)


class GlobalVar:
    """A Terra global variable (the full language's ``global()``).

    Storage is materialized per backend on first use; reads/writes from
    Python go through :meth:`get`/:meth:`set`.
    """

    is_terra_global = True
    _ids = itertools.count(1)

    def __init__(self, type: T.Type, init=None, name: str = "g"):  # noqa: A002
        if not isinstance(type, T.Type):
            raise TypeCheckError(f"global() requires a Terra type, got {type!r}")
        self.uid = next(self._ids)
        self.type = type
        self.init = init
        self.name = f"{name}{self.uid}"
        self._storages: dict[str, object] = {}  # backend name -> storage

    def storage_for(self, backend):
        store = self._storages.get(backend.name)
        if store is None:
            store = backend.materialize_global(self)
            self._storages[store_name := backend.name] = store
        return store

    def get(self, backend=None):
        from ..backend.base import resolve_backend
        backend = resolve_backend(backend)
        return backend.read_global(self)

    def set(self, value, backend=None) -> None:
        from ..backend.base import resolve_backend
        backend = resolve_backend(backend)
        backend.write_global(self, value)

    def __repr__(self) -> str:
        return f"global {self.name} : {self.type}"


def global_(type: T.Type, init=None, name: str = "g") -> GlobalVar:  # noqa: A002
    return GlobalVar(type, init, name)


class Constant:
    """A typed Terra constant (``terralib.constant(type, value)``);
    embeds as a literal during specialization."""

    is_terra_constant = True

    def __init__(self, type: T.Type, value):  # noqa: A002
        if not isinstance(type, T.Type):
            raise TypeCheckError(f"constant() requires a Terra type, got {type!r}")
        self.type = type
        self.value = value

    def __repr__(self) -> str:
        return f"constant({self.type}, {self.value!r})"


def constant(type: T.Type, value) -> Constant:  # noqa: A002
    return Constant(type, value)


class PyCallback:
    """A Python function with an explicit Terra function type, callable
    from Terra code — the analog of wrapping a Lua function through
    LuaJIT's FFI (paper §4.2, cross-language interoperability)."""

    is_terra_callback = True
    _ids = itertools.count(1)

    def __init__(self, ftype: T.FunctionType, fn):
        if not isinstance(ftype, T.FunctionType):
            raise TypeCheckError(
                f"pycallback() requires a Terra function type, got {ftype!r}")
        self.uid = next(self._ids)
        self.type = ftype
        self.fn = fn
        self.name = f"pycb_{getattr(fn, '__name__', 'fn')}_{self.uid}"
        self._ctypes_wrapper = None  # cached CFUNCTYPE instance (C backend)

    def __call__(self, *args):
        return self.fn(*args)

    def __repr__(self) -> str:
        return f"pycallback({self.type}, {self.fn!r})"


def pycallback(ftype: T.FunctionType, fn) -> PyCallback:
    return PyCallback(ftype, fn)
