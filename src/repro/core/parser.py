"""Recursive-descent parser for the Terra surface language.

The grammar is Lua's statement language with Terra's extensions:

* typed ``var`` declarations and typed parameters,
* ``&`` (address-of) and ``@`` (dereference) operators,
* half-open numeric ``for`` loops,
* escapes ``[ ... ]`` whose bodies are *Python* source (scanned raw by the
  lexer), usable in expression, statement, declared-variable, parameter,
  field-selection and for-loop-variable positions — every position the
  paper's Figure 5 auto-tuner kernel exercises,
* ``struct`` definitions and method definitions ``terra T:m(...)``,
* function types ``{T,...} -> T`` in type positions.

Operator precedence (loosest to tightest) mirrors Terra:
``or``, ``and``, comparisons, ``|``, ``^``, ``&``, shifts, ``+ -``,
``* / %``, unary (``not - & @``), postfix application/select/index.
"""

from __future__ import annotations

from typing import Optional

from ..errors import TerraSyntaxError
from . import ast
from .lexer import Lexer, Token

#: binary operator precedence table; higher binds tighter.
_BINARY_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "<": 3, ">": 3, "<=": 3, ">=": 3, "~=": 3, "==": 3,
    "|": 4,
    "^": 5,
    "&": 6,
    "<<": 7, ">>": 7,
    "+": 8, "-": 8,
    "*": 9, "/": 9, "%": 9,
}

_UNARY_OPS = {"not", "-", "&", "@"}
_UNARY_PRECEDENCE = 10

#: tokens that terminate a block
_BLOCK_ENDERS = {"end", "else", "elseif", "until", "in"}


class Parser:
    def __init__(self, source: str, filename: str = "<terra>",
                 first_line: int = 1):
        self.lexer = Lexer(source, filename, first_line)
        self._buffer: list[Token] = []
        self.last_line = first_line

    # -- token plumbing ------------------------------------------------------
    def _fill(self, n: int) -> None:
        while len(self._buffer) < n:
            self._buffer.append(self.lexer.next_token())

    @property
    def tok(self) -> Token:
        self._fill(1)
        return self._buffer[0]

    def peek(self, n: int = 1) -> Token:
        self._fill(n + 1)
        return self._buffer[n]

    def advance(self) -> Token:
        self._fill(1)
        tok = self._buffer.pop(0)
        self.last_line = tok.location.line
        return tok

    def check(self, kind: str, value=None) -> bool:
        return self.tok.matches(kind, value)

    def check_op(self, value: str) -> bool:
        return self.tok.matches(Token.OP, value)

    def check_kw(self, value: str) -> bool:
        return self.tok.matches(Token.KEYWORD, value)

    def accept_op(self, value: str) -> bool:
        if self.check_op(value):
            self.advance()
            return True
        return False

    def accept_kw(self, value: str) -> bool:
        if self.check_kw(value):
            self.advance()
            return True
        return False

    def expect(self, kind: str, value=None) -> Token:
        if not self.tok.matches(kind, value):
            want = value if value is not None else kind
            raise TerraSyntaxError(
                f"expected {want!r} but found {self.tok.value!r}",
                self.tok.location)
        return self.advance()

    def error(self, message: str) -> TerraSyntaxError:
        return TerraSyntaxError(message, self.tok.location)

    # -- escapes ---------------------------------------------------------------
    def parse_escape(self) -> ast.Escape:
        """Parse ``[ python ]`` with the current token being ``[``."""
        open_tok = self.expect(Token.OP, "[")
        if self._buffer:
            # tokens were buffered past the '['; the lexer will rewind.
            self._buffer.clear()
        code, loc = self.lexer.scan_escape(open_tok.end_offset)
        code = code.strip()
        if not code:
            raise TerraSyntaxError("empty escape", loc)
        return ast.Escape(code, loc)

    # -- top level ---------------------------------------------------------------
    def parse_toplevel(self) -> list[ast.Node]:
        """Parse a sequence of ``terra`` and ``struct`` definitions."""
        defs: list[ast.Node] = []
        while not self.check(Token.EOF):
            if self.check_kw("terra"):
                defs.append(self.parse_function_def())
            elif self.check_kw("struct"):
                defs.append(self.parse_struct_def())
            else:
                raise self.error(
                    f"expected 'terra' or 'struct' at top level, found "
                    f"{self.tok.value!r}")
        return defs

    def parse_function_def(self) -> ast.FunctionDef:
        loc = self.expect(Token.KEYWORD, "terra").location
        namepath: Optional[list[str]] = None
        method_name: Optional[str] = None
        if self.check(Token.NAME):
            namepath = [self.advance().value]
            while self.accept_op("."):
                namepath.append(self.expect(Token.NAME).value)
            if self.accept_op(":"):
                method_name = self.expect(Token.NAME).value
        params = self.parse_params()
        return_type_expr = None
        if self.accept_op(":"):
            return_type_expr = self.parse_type_expr()
        body = self.parse_block()
        self.expect(Token.KEYWORD, "end")
        return ast.FunctionDef(namepath, method_name, params,
                               return_type_expr, body, loc)

    def parse_params(self) -> list[ast.Param]:
        self.expect(Token.OP, "(")
        params: list[ast.Param] = []
        if not self.check_op(")"):
            while True:
                params.append(self.parse_param())
                if not self.accept_op(","):
                    break
        self.expect(Token.OP, ")")
        return params

    def parse_param(self) -> ast.Param:
        loc = self.tok.location
        if self.check_op("["):
            esc = self.parse_escape()
            type_expr = self.parse_type_expr() if self.accept_op(":") else None
            return ast.Param(None, esc, type_expr, loc)
        name = self.expect(Token.NAME).value
        type_expr = self.parse_type_expr() if self.accept_op(":") else None
        return ast.Param(name, None, type_expr, loc)

    def parse_struct_def(self) -> ast.StructDef:
        loc = self.expect(Token.KEYWORD, "struct").location
        name = self.expect(Token.NAME).value
        self.expect(Token.OP, "{")
        entries: list = []
        while not self.check_op("}"):
            if self.check(Token.NAME, "union") \
                    and self.peek(1).matches(Token.OP, "{"):
                self.advance()
                self.advance()
                members: list[tuple[str, ast.Expr]] = []
                while not self.check_op("}"):
                    field = self.expect(Token.NAME).value
                    self.expect(Token.OP, ":")
                    members.append((field, self.parse_type_expr()))
                    self.accept_op(",") or self.accept_op(";")  # noqa: B015
                self.expect(Token.OP, "}")
                entries.append(("union", members))
            else:
                field = self.expect(Token.NAME).value
                self.expect(Token.OP, ":")
                entries.append((field, self.parse_type_expr()))
            # separators between entries are optional (newlines suffice)
            self.accept_op(",") or self.accept_op(";")  # noqa: B015
        self.expect(Token.OP, "}")
        return ast.StructDef(name, entries, loc)

    def parse_quote_body(self) -> ast.QuoteBody:
        """Parse the body of a quotation: statements, optional ``in e,...``."""
        loc = self.tok.location
        block = self.parse_block()
        in_exprs = None
        if self.accept_kw("in"):
            in_exprs = self.parse_exprlist()
        if not self.check(Token.EOF):
            raise self.error(f"unexpected {self.tok.value!r} after quote body")
        return ast.QuoteBody(block, in_exprs, loc)

    def parse_single_expression(self) -> ast.Expr:
        expr = self.parse_expr()
        if not self.check(Token.EOF):
            raise self.error(f"unexpected {self.tok.value!r} after expression")
        return expr

    # -- statements ----------------------------------------------------------------
    def parse_block(self) -> ast.Block:
        loc = self.tok.location
        statements: list[ast.Stat] = []
        while True:
            if self.check(Token.EOF):
                break
            if self.tok.kind == Token.KEYWORD and self.tok.value in _BLOCK_ENDERS:
                break
            stat = self.parse_statement()
            if stat is not None:
                statements.append(stat)
        return ast.Block(statements, loc)

    def parse_statement(self) -> Optional[ast.Stat]:
        tok = self.tok
        if tok.matches(Token.OP, ";"):
            self.advance()
            return None
        if tok.kind == Token.KEYWORD:
            kw = tok.value
            if kw == "var":
                return self.parse_var_stat()
            if kw == "if":
                return self.parse_if_stat()
            if kw == "while":
                return self.parse_while_stat()
            if kw == "repeat":
                return self.parse_repeat_stat()
            if kw == "for":
                return self.parse_for_stat()
            if kw == "do":
                loc = self.advance().location
                body = self.parse_block()
                self.expect(Token.KEYWORD, "end")
                return ast.DoStat(body, loc)
            if kw == "return":
                loc = self.advance().location
                exprs: list[ast.Expr] = []
                if not self._at_statement_end():
                    exprs = self.parse_exprlist()
                return ast.ReturnStat(exprs, loc)
            if kw == "break":
                loc = self.advance().location
                return ast.BreakStat(loc)
            if kw == "defer":
                loc = self.advance().location
                call = self.parse_suffixed_expr()
                if not isinstance(call, (ast.Apply, ast.MethodCall)):
                    raise self.error("defer requires a function call")
                return ast.DeferStat(call, loc)
            if kw == "escape":
                open_tok = self.advance()
                if self._buffer:
                    self._buffer.clear()
                code, loc = self.lexer.scan_escape_block(open_tok.end_offset)
                import textwrap
                return ast.EscapeBlock(textwrap.dedent(code), loc)
            raise self.error(f"unexpected keyword {kw!r}")
        # expression-statement / assignment / statement escape ----------------
        return self.parse_expr_statement()

    def _at_statement_end(self) -> bool:
        tok = self.tok
        if tok.kind == Token.EOF:
            return True
        if tok.kind == Token.KEYWORD and tok.value in _BLOCK_ENDERS:
            return True
        if tok.matches(Token.OP, ";"):
            return True
        return False

    def parse_var_stat(self) -> ast.VarStat:
        loc = self.expect(Token.KEYWORD, "var").location
        targets: list[ast.VarTarget] = []
        while True:
            if self.check_op("["):
                esc = self.parse_escape()
                type_expr = self.parse_type_expr() if self.accept_op(":") else None
                targets.append(ast.VarTarget(None, esc, type_expr))
            else:
                name = self.expect(Token.NAME).value
                type_expr = self.parse_type_expr() if self.accept_op(":") else None
                targets.append(ast.VarTarget(name, None, type_expr))
            if not self.accept_op(","):
                break
        inits = None
        if self.accept_op("="):
            inits = self.parse_exprlist()
        return ast.VarStat(targets, inits, loc)

    def parse_if_stat(self) -> ast.IfStat:
        loc = self.expect(Token.KEYWORD, "if").location
        branches: list[tuple[ast.Expr, ast.Block]] = []
        cond = self.parse_expr()
        self.expect(Token.KEYWORD, "then")
        branches.append((cond, self.parse_block()))
        orelse = None
        while True:
            if self.accept_kw("elseif"):
                cond = self.parse_expr()
                self.expect(Token.KEYWORD, "then")
                branches.append((cond, self.parse_block()))
                continue
            if self.accept_kw("else"):
                orelse = self.parse_block()
            self.expect(Token.KEYWORD, "end")
            break
        return ast.IfStat(branches, orelse, loc)

    def parse_while_stat(self) -> ast.WhileStat:
        loc = self.expect(Token.KEYWORD, "while").location
        cond = self.parse_expr()
        self.expect(Token.KEYWORD, "do")
        body = self.parse_block()
        self.expect(Token.KEYWORD, "end")
        return ast.WhileStat(cond, body, loc)

    def parse_repeat_stat(self) -> ast.RepeatStat:
        loc = self.expect(Token.KEYWORD, "repeat").location
        body = self.parse_block()
        self.expect(Token.KEYWORD, "until")
        cond = self.parse_expr()
        return ast.RepeatStat(body, cond, loc)

    def parse_for_stat(self) -> ast.ForNum:
        loc = self.expect(Token.KEYWORD, "for").location
        if self.check_op("["):
            esc = self.parse_escape()
            target = ast.VarTarget(None, esc, None)
        else:
            name = self.expect(Token.NAME).value
            type_expr = self.parse_type_expr() if self.accept_op(":") else None
            target = ast.VarTarget(name, None, type_expr)
        self.expect(Token.OP, "=")
        start = self.parse_expr()
        self.expect(Token.OP, ",")
        limit = self.parse_expr()
        step = self.parse_expr() if self.accept_op(",") else None
        self.expect(Token.KEYWORD, "do")
        body = self.parse_block()
        self.expect(Token.KEYWORD, "end")
        return ast.ForNum(target, start, limit, step, body, loc)

    def _parse_lhs_expr(self) -> ast.Expr:
        """A statement-leading expression: a suffixed expression, possibly
        under dereferences (``@p = v`` stores through a pointer)."""
        if self.check_op("@"):
            loc = self.advance().location
            return ast.UnOp("@", self._parse_lhs_expr(), loc)
        return self.parse_suffixed_expr()

    def parse_expr_statement(self) -> ast.Stat:
        loc = self.tok.location
        first = self._parse_lhs_expr()
        if self.check_op("=") or self.check_op(","):
            lhs = [first]
            while self.accept_op(","):
                lhs.append(self._parse_lhs_expr())
            self.expect(Token.OP, "=")
            rhs = self.parse_exprlist()
            return ast.AssignStat(lhs, rhs, loc)
        if isinstance(first, (ast.Apply, ast.MethodCall)):
            return ast.ExprStat(first, loc)
        if isinstance(first, ast.Escape):
            return ast.EscapeStat(first.code, first.location)
        raise self.error("expected a statement (this expression has no effect)")

    # -- expressions ----------------------------------------------------------------
    def parse_exprlist(self) -> list[ast.Expr]:
        exprs = [self.parse_expr()]
        while self.accept_op(","):
            exprs.append(self.parse_expr())
        return exprs

    def parse_expr(self, min_precedence: int = 1) -> ast.Expr:
        lhs = self.parse_unary_expr()
        while True:
            tok = self.tok
            op = None
            if tok.kind == Token.OP and tok.value in _BINARY_PRECEDENCE:
                op = tok.value
            elif tok.kind == Token.KEYWORD and tok.value in ("and", "or"):
                op = tok.value
            if op is None:
                return lhs
            prec = _BINARY_PRECEDENCE[op]
            if prec < min_precedence:
                return lhs
            loc = self.advance().location
            rhs = self.parse_expr(prec + 1)  # all our binaries associate left
            lhs = ast.BinOp(op, lhs, rhs, loc)

    def parse_unary_expr(self) -> ast.Expr:
        tok = self.tok
        if ((tok.kind == Token.OP and tok.value in ("-", "&", "@"))
                or tok.matches(Token.KEYWORD, "not")):
            loc = self.advance().location
            operand = self.parse_unary_expr()
            return ast.UnOp(tok.value, operand, loc)
        return self.parse_suffixed_expr()

    def parse_suffixed_expr(self) -> ast.Expr:
        expr = self.parse_primary_expr()
        while True:
            tok = self.tok
            if tok.matches(Token.OP, "."):
                loc = self.advance().location
                if self.check_op("["):
                    field: object = self.parse_escape()
                else:
                    field = self.expect(Token.NAME).value
                expr = ast.Select(expr, field, loc)
            elif tok.matches(Token.OP, ":") and self._is_method_call():
                loc = self.advance().location
                name = self.expect(Token.NAME).value
                args = self.parse_call_args()
                expr = ast.MethodCall(expr, name, args, loc)
            elif tok.matches(Token.OP, "("):
                loc = tok.location
                args = self.parse_call_args()
                expr = ast.Apply(expr, args, loc)
            elif tok.matches(Token.OP, "[") and tok.location.line == self.last_line:
                # a '[' on a *new* line starts a statement escape, not an
                # index — disambiguates `var x = 0 \n [stmts]` (cf. Lua's
                # ambiguous-call problem; real Terra wants a ';' here)
                loc = self.advance().location
                index = self.parse_expr()
                self.expect(Token.OP, "]")
                expr = ast.Index(expr, index, loc)
            elif tok.matches(Token.OP, "{"):
                expr = self.parse_constructor(type_expr=expr)
            else:
                return expr

    def _is_method_call(self) -> bool:
        """Distinguish ``obj:m(...)`` from a ``:`` type annotation: a method
        call's ``:`` is followed by a name and then ``(``."""
        return (self.peek(1).kind == Token.NAME
                and self.peek(2).matches(Token.OP, "("))

    def parse_call_args(self) -> list[ast.Expr]:
        self.expect(Token.OP, "(")
        args: list[ast.Expr] = []
        if not self.check_op(")"):
            args = self.parse_exprlist()
        self.expect(Token.OP, ")")
        return args

    def parse_primary_expr(self) -> ast.Expr:
        tok = self.tok
        if tok.kind == Token.NUMBER:
            self.advance()
            nv = tok.value
            return ast.Number(nv.value, nv.is_float, nv.suffix, tok.location)
        if tok.kind == Token.STRING:
            self.advance()
            return ast.String(tok.value, tok.location)
        if tok.kind == Token.NAME:
            self.advance()
            return ast.Name(tok.value, tok.location)
        if tok.kind == Token.KEYWORD:
            if tok.value == "true":
                self.advance()
                return ast.Bool(True, tok.location)
            if tok.value == "false":
                self.advance()
                return ast.Bool(False, tok.location)
            if tok.value == "nil":
                self.advance()
                return ast.Nil(tok.location)
        if tok.matches(Token.OP, "("):
            self.advance()
            expr = self.parse_expr()
            self.expect(Token.OP, ")")
            return expr
        if tok.matches(Token.OP, "["):
            return self.parse_escape()
        if tok.matches(Token.OP, "{"):
            return self.parse_constructor(type_expr=None)
        if tok.matches(Token.OP, "&"):
            # address-of reached through a non-unary path (e.g. call args)
            loc = self.advance().location
            return ast.UnOp("&", self.parse_unary_expr(), loc)
        raise self.error(f"unexpected token {tok.value!r} in expression")

    def parse_constructor(self, type_expr: Optional[ast.Expr]) -> ast.Constructor:
        loc = self.expect(Token.OP, "{").location
        fields: list[ast.CtorField] = []
        while not self.check_op("}"):
            if (self.tok.kind == Token.NAME
                    and self.peek(1).matches(Token.OP, "=")):
                name = self.advance().value
                self.advance()  # '='
                fields.append(ast.CtorField(name, self.parse_expr()))
            else:
                fields.append(ast.CtorField(None, self.parse_expr()))
            if not (self.accept_op(",") or self.accept_op(";")):
                break
        self.expect(Token.OP, "}")
        return ast.Constructor(type_expr, fields, loc)

    # -- type expressions -------------------------------------------------------
    def parse_type_expr(self) -> ast.Expr:
        """Parse a type annotation.

        Type annotations are meta-language expressions in Terra; we parse
        the common grammar (``&T``, ``T[N]``, names, namespace selects,
        constructor calls like ``vector(float,4)``, escapes, and function
        types ``{T,...} -> T``) and let the specializer evaluate it.
        """
        tok = self.tok
        if tok.matches(Token.OP, "&"):
            loc = self.advance().location
            return ast.UnOp("&", self.parse_type_expr(), loc)
        if tok.matches(Token.OP, "{"):
            loc = self.advance().location
            params: list[ast.Expr] = []
            while not self.check_op("}"):
                params.append(self.parse_type_expr())
                if not self.accept_op(","):
                    break
            self.expect(Token.OP, "}")
            if self.accept_op("->"):
                returns = self._parse_return_types()
                return ast.FunctionTypeExpr(params, returns, loc)
            # a brace list in type position is a tuple type; {} is unit
            return ast.TupleTypeExpr(params, loc)
        base = self._parse_type_atom()
        # postfix: array bounds and pointers-to-arrays chain
        while True:
            if self.check_op("[") and self.tok.location.line == self.last_line:
                # same-line only: `terra f() : int` followed by a
                # statement escape on the next line is not an array type
                loc = self.advance().location
                count = self.parse_expr()
                self.expect(Token.OP, "]")
                base = ast.Index(base, count, loc)
            elif self.check_op("->"):
                loc = self.advance().location
                returns = self._parse_return_types()
                base = ast.FunctionTypeExpr([base], returns, loc)
            else:
                return base

    def _parse_return_types(self) -> list[ast.Expr]:
        if self.check_op("{"):
            self.advance()
            returns: list[ast.Expr] = []
            while not self.check_op("}"):
                returns.append(self.parse_type_expr())
                if not self.accept_op(","):
                    break
            self.expect(Token.OP, "}")
            return returns
        return [self.parse_type_expr()]

    def _parse_type_atom(self) -> ast.Expr:
        tok = self.tok
        if tok.matches(Token.OP, "("):
            # parenthesized type, e.g. (&Shape)[2]
            self.advance()
            inner = self.parse_type_expr()
            self.expect(Token.OP, ")")
            return inner
        if tok.matches(Token.OP, "["):
            return self.parse_escape()
        if tok.kind == Token.NAME:
            self.advance()
            expr: ast.Expr = ast.Name(tok.value, tok.location)
            while True:
                if self.check_op(".") and self.peek(1).kind == Token.NAME:
                    self.advance()
                    field = self.advance().value
                    expr = ast.Select(expr, field, tok.location)
                elif self.check_op("("):
                    args = self.parse_call_args()
                    expr = ast.Apply(expr, args, tok.location)
                else:
                    return expr
        raise self.error(f"expected a type, found {tok.value!r}")


# -- public helpers ------------------------------------------------------------

def parse_toplevel(source: str, filename: str = "<terra>",
                   first_line: int = 1) -> list[ast.Node]:
    return Parser(source, filename, first_line).parse_toplevel()


def parse_quote(source: str, filename: str = "<quote>",
                first_line: int = 1) -> ast.QuoteBody:
    return Parser(source, filename, first_line).parse_quote_body()


def parse_expression(source: str, filename: str = "<expr>",
                     first_line: int = 1) -> ast.Expr:
    return Parser(source, filename, first_line).parse_single_expression()


def parse_type(source: str, filename: str = "<type>",
               first_line: int = 1) -> ast.Expr:
    parser = Parser(source, filename, first_line)
    expr = parser.parse_type_expr()
    if not parser.check(Token.EOF):
        raise parser.error("unexpected text after type")
    return expr
