"""Eager specialization — the paper's ``→S`` judgment.

Specialization runs *as soon as* a Terra function or quotation is defined
(paper §4.1: "Eager specialization prevents mutations in Lua code from
changing the meaning of a Terra function between when it is compiled and
when it is used").  It:

* evaluates every escape ``[e]`` in the shared lexical environment and
  embeds the result as a Terra term (rule SESC),
* resolves every variable: Terra-scope names become symbol references,
  meta-scope names become embedded values (rule SVAR),
* renames every Terra-declared variable to a fresh symbol — hygiene
  (the freshness side-conditions of rules SLET/LTDEFN),
* evaluates type annotations as meta-language expressions,
* resolves nested-namespace sugar (``std.malloc``) without explicit
  escapes.

The result is a specialized tree (:mod:`repro.core.sast`) that no longer
depends on the meta environment in any way — the basis for "separate
evaluation" of Terra code.
"""

from __future__ import annotations

import numbers
from typing import Optional

import numpy as np

from ..errors import SpecializeError
from . import ast, sast
from . import types as T
from .env import Environment
from .quotes import Quote
from .symbols import Symbol


class Macro:
    """A meta-function invoked *during specialization* when called from
    Terra code.  Receives its arguments as quotations and returns a value
    to splice (usually a quote).  This is Terra's ``macro``."""

    __slots__ = ("fn", "name")

    def __init__(self, fn, name: Optional[str] = None):
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "macro")

    def __call__(self, *args):
        # Calling a macro from Python (e.g. inside an escape) also works:
        # arguments are coerced to quotes exactly as from Terra code.
        return self.fn(*[a if isinstance(a, Quote) else Quote.wrap(a)
                         for a in args])

    def __repr__(self) -> str:
        return f"macro({self.name})"


def macro(fn) -> Macro:
    """Declare a specialization-time macro (Terra's ``macro(luafn)``)."""
    return Macro(fn)


class _SizeofBuiltin:
    """``sizeof(T)`` — usable directly in Terra code on a meta type."""

    def __repr__(self) -> str:
        return "sizeof"

    def __call__(self, ty):
        if not isinstance(ty, T.Type):
            raise SpecializeError(f"sizeof expects a Terra type, got {ty!r}")
        return ty.sizeof()


sizeof = _SizeofBuiltin()


def is_terra_function(value) -> bool:
    return getattr(value, "is_terra_function", False)


def is_global_var(value) -> bool:
    return getattr(value, "is_terra_global", False)


def is_terra_constant(value) -> bool:
    return getattr(value, "is_terra_constant", False)


def is_callback(value) -> bool:
    return getattr(value, "is_terra_callback", False)


def is_intrinsic(value) -> bool:
    return getattr(value, "is_terra_intrinsic", False)


def embed_value(value, location) -> sast.SExpr:
    """Convert a meta-language (Python) value into a specialized Terra term.

    This implements the side-condition of rule SESC: the escape's result
    must lie in the subset of Lua values that are also Terra terms.
    """
    if isinstance(value, Quote):
        return value.as_expression()
    if isinstance(value, Symbol):
        return sast.SVar(value, location)
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return sast.SConst(bool(value), T.bool_, location)
    if isinstance(value, (int, np.integer)):
        value = int(value)
        if T.int32.min_value() <= value <= T.int32.max_value():
            return sast.SConst(value, T.int32, location)
        if T.int64.min_value() <= value <= T.int64.max_value():
            return sast.SConst(value, T.int64, location)
        if value <= T.uint64.max_value():
            return sast.SConst(value, T.uint64, location)
        raise SpecializeError(f"integer {value} does not fit any Terra type",
                              location)
    if isinstance(value, np.float32):
        return sast.SConst(float(value), T.float32, location)
    if isinstance(value, (float, np.floating)):
        return sast.SConst(float(value), T.float64, location)
    if isinstance(value, str):
        return sast.SString(value, location)
    if isinstance(value, T.Type):
        return sast.STypeRef(value, location)
    if is_terra_function(value):
        return sast.SFuncRef(value, location)
    if is_global_var(value):
        return sast.SGlobal(value, location)
    if is_terra_constant(value):
        return sast.SConst(value.value, value.type, location)
    if is_callback(value):
        return sast.SPyCallback(value, location)
    coerced = T.coerce_to_type(value)
    if coerced is not None:
        # Python's int/float/bool class objects name the Terra types in
        # Terra code positions (e.g. the cast [float](x))
        return sast.STypeRef(coerced, location)
    if value is None:
        raise SpecializeError(
            "escape evaluated to None, which is not a Terra term", location)
    if isinstance(value, (list, tuple)):
        raise SpecializeError(
            "a list can only be spliced in statement, argument or "
            "declaration position", location)
    if callable(value):
        raise SpecializeError(
            f"cannot embed Python callable {value!r} in Terra code; wrap it "
            f"with pycallback(fntype, fn) or macro(fn)", location)
    raise SpecializeError(
        f"value {value!r} of type {type(value).__name__} is not a Terra term",
        location)


class _Meta:
    """Marker wrapper for 'still a meta-language value' during resolution."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class Specializer:
    def __init__(self, env: Environment):
        self.env = env
        #: stack of dicts: Terra-scope name -> Symbol
        self.scopes: list[dict[str, Symbol]] = [{}]

    # -- scope handling -----------------------------------------------------
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def bind(self, name: str, symbol: Symbol) -> None:
        self.scopes[-1][name] = symbol

    def lookup_terra(self, name: str) -> Optional[Symbol]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def terra_scope_view(self) -> dict[str, Quote]:
        """Terra variables as seen by escapes: quoted symbol references."""
        view: dict[str, Quote] = {}
        for scope in self.scopes:
            for name, sym in scope.items():
                view[name] = Quote.from_expr(sast.SVar(sym))
        return view

    # -- escapes ---------------------------------------------------------------
    def eval_escape(self, code: str, location):
        try:
            return self.env.eval_escape(code, self.terra_scope_view(), location)
        except SpecializeError as first_error:
            # Paper-style type escapes like [&vector(float,4)] are Terra
            # type syntax, not Python; retry as a Terra type expression
            # (where `float` etc. name Terra types).
            cause = first_error.__cause__
            if not isinstance(cause, (NameError, SyntaxError)):
                raise
            try:
                from .parser import parse_type
                tree = parse_type(code)
                return self.eval_type(tree)
            except Exception:
                raise first_error from None

    # -- meta evaluation (type annotations, namespace paths) -----------------
    def meta_eval(self, e: ast.Expr):
        """Evaluate an expression as *meta-language* code (used for type
        annotations and constructor prefixes, which are Lua expressions in
        real Terra)."""
        if isinstance(e, ast.Name):
            sym = self.lookup_terra(e.name)
            if sym is not None:
                raise SpecializeError(
                    f"{e.name!r} is a Terra variable, not a meta value",
                    e.location)
            return self.env.lookup(e.name)
        if isinstance(e, ast.Number):
            return e.value
        if isinstance(e, ast.String):
            return e.value
        if isinstance(e, ast.Bool):
            return e.value
        if isinstance(e, ast.Escape):
            return self.eval_escape(e.code, e.location)
        if isinstance(e, ast.Select):
            obj = self.meta_eval(e.obj)
            field = e.field
            if isinstance(field, ast.Escape):
                field = self.eval_escape(field.code, field.location)
            return _meta_select(obj, field, e.location)
        if isinstance(e, ast.Apply):
            fn = self.meta_eval(e.fn)
            args = [self.meta_eval(a) for a in e.args]
            try:
                return fn(*args)
            except SpecializeError:
                raise
            except Exception as exc:
                raise SpecializeError(
                    f"error calling {fn!r} during specialization: {exc!r}",
                    e.location) from exc
        if isinstance(e, ast.UnOp) and e.op == "&":
            return T.pointer(self.eval_type(e.operand))
        if isinstance(e, ast.Index):
            base = self.meta_eval(e.obj)
            if isinstance(base, T.Type):
                return T.array(base, self._const_int(e.index))
            return base[self.meta_eval(e.index)]
        if isinstance(e, ast.FunctionTypeExpr):
            params = [self.eval_type(p) for p in e.parameters]
            returns = [self.eval_type(r) for r in e.returns]
            returns = [r for r in returns if not (isinstance(r, T.TupleType)
                                                  and r.isunit())]
            return T.FunctionType(params, returns)
        if isinstance(e, ast.TupleTypeExpr):
            return T.TupleType(tuple(self.eval_type(el) for el in e.elements))
        raise SpecializeError(
            f"cannot evaluate {type(e).__name__} as a meta expression; "
            f"use an escape", getattr(e, "location", None))

    def _const_int(self, e: ast.Expr) -> int:
        value = self.meta_eval(e)
        if not isinstance(value, numbers.Integral):
            raise SpecializeError(
                f"array length must be an integer, got {value!r}",
                getattr(e, "location", None))
        return int(value)

    def eval_type(self, e: ast.Expr) -> T.Type:
        value = self.meta_eval(e)
        coerced = T.coerce_to_type(value)
        if coerced is not None:
            # a bare function type in annotation position means a function
            # pointer (Terra: `var f : {int} -> int = add1`)
            if isinstance(coerced, T.FunctionType):
                return T.pointer(coerced)
            return coerced
        raise SpecializeError(
            f"type annotation evaluated to {value!r}, which is not a Terra "
            f"type", getattr(e, "location", None))

    # -- expression specialization ----------------------------------------------
    def spec_expr(self, e: ast.Expr) -> sast.SExpr:
        result = self._spec(e)
        if isinstance(result, _Meta):
            return embed_value(result.value, e.location)
        return result

    def _spec(self, e: ast.Expr):
        """Specialize an expression; may return a :class:`_Meta` when the
        expression is (so far) a pure meta-namespace path."""
        loc = e.location
        if isinstance(e, ast.Number):
            return self._spec_number(e)
        if isinstance(e, ast.String):
            return sast.SString(e.value, loc)
        if isinstance(e, ast.Bool):
            return sast.SConst(e.value, T.bool_, loc)
        if isinstance(e, ast.Nil):
            return sast.SNull(loc)
        if isinstance(e, ast.Name):
            sym = self.lookup_terra(e.name)
            if sym is not None:
                return sast.SVar(sym, loc)
            try:
                return _Meta(self.env.lookup(e.name))
            except SpecializeError as exc:
                if exc.location is None:
                    raise SpecializeError(exc.raw_message, loc) from None
                raise
        if isinstance(e, ast.Escape):
            # escape results behave like meta values so that e.g.
            # [table].field, [intrinsic](...) and [T](...) work
            return _Meta(self.eval_escape(e.code, loc))
        if isinstance(e, ast.Select):
            return self._spec_select(e)
        if isinstance(e, ast.Index):
            obj = self._spec(e.obj)
            if isinstance(obj, _Meta):
                if isinstance(obj.value, T.Type):
                    # T[N] in expression position: an array type value
                    return _Meta(T.array(obj.value, self._const_int(e.index)))
                obj = embed_value(obj.value, loc)
            return sast.SIndex(obj, self.spec_expr(e.index), loc)
        if isinstance(e, ast.Apply):
            return self._spec_apply(e)
        if isinstance(e, ast.MethodCall):
            obj = self.spec_expr(e.obj)
            args = self._spec_args(e.args)
            return sast.SMethodCall(obj, e.name, args, loc)
        if isinstance(e, ast.UnOp):
            if e.op == "&":
                # could be a pointer-type expression (&T) or address-of
                operand = self._spec(e.operand)
                if isinstance(operand, _Meta) and isinstance(operand.value, T.Type):
                    return _Meta(T.pointer(operand.value))
                if isinstance(operand, _Meta):
                    operand = embed_value(operand.value, loc)
                if isinstance(operand, sast.STypeRef):
                    return _Meta(T.pointer(operand.type))
                return sast.SUnOp("&", operand, loc)
            return sast.SUnOp(e.op, self.spec_expr(e.operand), loc)
        if isinstance(e, ast.BinOp):
            return sast.SBinOp(e.op, self.spec_expr(e.lhs),
                               self.spec_expr(e.rhs), loc)
        if isinstance(e, ast.Constructor):
            return self._spec_constructor(e)
        if isinstance(e, (ast.FunctionTypeExpr, ast.TupleTypeExpr)):
            return _Meta(self.meta_eval(e))
        if isinstance(e, ast.TreeRef):
            return e.tree
        raise SpecializeError(
            f"cannot specialize {type(e).__name__}", loc)

    def _spec_number(self, e: ast.Number) -> sast.SConst:
        if e.is_float:
            ty = T.float32 if e.suffix == "f" else T.float64
            return sast.SConst(float(e.value), ty, e.location)
        suffix_types = {"": None, "u": T.uint32, "ll": T.int64, "ull": T.uint64}
        ty = suffix_types[e.suffix]
        if ty is None:
            value = int(e.value)
            ty = T.int32 if value <= T.int32.max_value() else T.int64
            if value > T.int64.max_value():
                ty = T.uint64
        return sast.SConst(int(e.value), ty, e.location)

    def _spec_select(self, e: ast.Select):
        field = e.field
        if isinstance(field, ast.Escape):
            field = self.eval_escape(field.code, field.location)
            if isinstance(field, Symbol):
                field = field.displayname or field.name
            if not isinstance(field, str):
                raise SpecializeError(
                    f"computed field name must be a string, got {field!r}",
                    e.location)
        obj = self._spec(e.obj)
        if isinstance(obj, _Meta):
            value = obj.value
            if _is_namespace(value):
                return _Meta(_meta_select(value, field, e.location))
            # otherwise embed and treat as a struct field access
            obj = embed_value(value, e.location)
        return sast.SSelect(obj, field, e.location)

    def _spec_args(self, args: list[ast.Expr]) -> list[sast.SExpr]:
        """Specialize call arguments; a list-valued escape splices multiple
        arguments (paper Fig. 5: ``self.__vtable.[name]([params])``)."""
        out: list[sast.SExpr] = []
        for a in args:
            if isinstance(a, ast.Escape):
                value = self.eval_escape(a.code, a.location)
                if isinstance(value, (list, tuple)):
                    out.extend(embed_value(v, a.location) for v in value)
                    continue
                out.append(embed_value(value, a.location))
            else:
                out.append(self.spec_expr(a))
        return out

    def _spec_apply(self, e: ast.Apply):
        fn = self._spec(e.fn)
        if isinstance(fn, sast.STypeRef):
            fn = _Meta(fn.type)
        if isinstance(fn, _Meta):
            value = fn.value
            coerced = T.coerce_to_type(value)
            if coerced is not None:
                value = coerced
            if isinstance(value, T.Type):
                args = self._spec_args(e.args)
                if len(args) != 1:
                    raise SpecializeError(
                        f"cast to {value} takes exactly one argument",
                        e.location)
                return sast.SCast(value, args[0], e.location)
            if value is sizeof:
                if len(e.args) != 1:
                    raise SpecializeError("sizeof takes one argument", e.location)
                ty = self.eval_type(e.args[0])
                return sast.SConst(ty.sizeof(), T.uint64, e.location)
            if isinstance(value, Macro):
                quote_args = [self._quote_arg(a) for a in e.args]
                try:
                    result = value.fn(*quote_args)
                except SpecializeError:
                    raise
                except Exception as exc:
                    raise SpecializeError(
                        f"error in macro {value.name}: {exc!r}",
                        e.location) from exc
                return embed_value(result, e.location)
            if is_intrinsic(value):
                args = self._spec_args(e.args)
                return sast.SIntrinsic(value.intrinsic_name, args, e.location)
            if is_terra_function(value) or is_global_var(value) \
                    or is_callback(value) or isinstance(value, (Quote, Symbol)):
                fn = embed_value(value, e.location)
            else:
                raise SpecializeError(
                    f"cannot call meta value {value!r} from Terra code "
                    f"(wrap Python functions with macro() or pycallback())",
                    e.location)
        return sast.SApply(fn, self._spec_args(e.args), e.location)

    def _quote_arg(self, a: ast.Expr) -> Quote:
        """A macro argument: passed as a quotation of the specialized tree."""
        return Quote.from_expr(self.spec_expr(a))

    def _spec_constructor(self, e: ast.Constructor) -> sast.SExpr:
        ctype: Optional[T.Type] = None
        if e.type_expr is not None:
            spec = self._spec(e.type_expr)
            if isinstance(spec, _Meta) and isinstance(spec.value, T.Type):
                ctype = spec.value
            elif isinstance(spec, sast.STypeRef):
                ctype = spec.type
            else:
                raise SpecializeError(
                    "constructor prefix did not evaluate to a Terra type",
                    e.location)
            if not (ctype.isstruct() or ctype.isarray()):
                raise SpecializeError(
                    f"cannot construct value of non-aggregate type {ctype}",
                    e.location)
        fields = []
        for f in e.fields:
            fields.append(sast.SCtorField(f.name, self.spec_expr(f.value)))
        return sast.SCtor(ctype, fields, e.location)

    # -- statement specialization -------------------------------------------------
    def spec_block(self, block: ast.Block) -> sast.SBlock:
        self.push_scope()
        try:
            out: list[sast.SStat] = []
            for stat in block.statements:
                self._spec_stat(stat, out)
            return sast.SBlock(out, block.location)
        finally:
            self.pop_scope()

    def _spec_stat(self, s: ast.Stat, out: list[sast.SStat]) -> None:
        loc = s.location
        if isinstance(s, ast.VarStat):
            out.append(self._spec_var_stat(s))
        elif isinstance(s, ast.AssignStat):
            lhs = [self.spec_expr(x) for x in s.lhs]
            rhs = [self.spec_expr(x) for x in s.rhs]
            out.append(sast.SAssign(lhs, rhs, loc))
        elif isinstance(s, ast.IfStat):
            branches = []
            for cond, body in s.branches:
                branches.append((self.spec_expr(cond), self.spec_block(body)))
            orelse = self.spec_block(s.orelse) if s.orelse is not None else None
            out.append(sast.SIf(branches, orelse, loc))
        elif isinstance(s, ast.WhileStat):
            out.append(sast.SWhile(self.spec_expr(s.cond),
                                   self.spec_block(s.body), loc))
        elif isinstance(s, ast.RepeatStat):
            out.append(sast.SRepeat(self.spec_block(s.body),
                                    self.spec_expr(s.cond), loc))
        elif isinstance(s, ast.ForNum):
            out.append(self._spec_for(s))
        elif isinstance(s, ast.DoStat):
            out.append(sast.SDoStat(self.spec_block(s.body), loc))
        elif isinstance(s, ast.ReturnStat):
            out.append(sast.SReturn([self.spec_expr(x) for x in s.exprs], loc))
        elif isinstance(s, ast.BreakStat):
            out.append(sast.SBreak(loc))
        elif isinstance(s, ast.ExprStat):
            out.append(sast.SExprStat(self.spec_expr(s.expr), loc))
        elif isinstance(s, ast.EscapeStat):
            self._spec_escape_stat(s, out)
        elif isinstance(s, ast.EscapeBlock):
            self._spec_escape_block(s, out)
        elif isinstance(s, ast.DeferStat):
            out.append(sast.SDefer(self.spec_expr(s.call), loc))
        else:
            raise SpecializeError(f"cannot specialize {type(s).__name__}", loc)

    def _spec_escape_stat(self, s: ast.EscapeStat, out: list[sast.SStat]) -> None:
        value = self.eval_escape(s.code, s.location)
        self._splice_stat_value(value, s.location, out)

    def _spec_escape_block(self, s: ast.EscapeBlock,
                           out: list[sast.SStat]) -> None:
        """``escape ... end``: exec the Python block; everything passed to
        its ``emit(q)`` is spliced here, in call order."""
        emitted: list = []

        def emit(value) -> None:
            emitted.append(value)

        from collections import ChainMap
        scope = dict(self.terra_scope_view())
        scope["emit"] = emit
        local_view = ChainMap(scope, self.env.locals)
        try:
            exec(compile(s.code, "<escape block>", "exec"),  # noqa: S102
                 self.env.globals, local_view)
        except SpecializeError:
            raise
        except Exception as exc:
            raise SpecializeError(
                f"error in escape block: {exc!r}", s.location) from exc
        for value in emitted:
            self._splice_stat_value(value, s.location, out)

    def _splice_stat_value(self, value, location, out: list[sast.SStat]) -> None:
        if value is None:
            return
        if isinstance(value, (list, tuple)):
            for v in value:
                self._splice_stat_value(v, location, out)
            return
        if isinstance(value, Quote):
            out.extend(value.as_statements())
            return
        if isinstance(value, Symbol):
            # a bare symbol as a statement is a no-op reference; allow it
            out.append(sast.SExprStat(sast.SVar(value, location), location))
            return
        raise SpecializeError(
            f"statement escape produced {value!r}, which cannot be spliced "
            f"as statements", location)

    def _spec_var_stat(self, s: ast.VarStat) -> sast.SVarDecl:
        # initializers are specialized in the *enclosing* scope
        inits = None
        if s.inits is not None:
            inits = [self.spec_expr(x) for x in s.inits]
        symbols: list[Symbol] = []
        types: list[Optional[T.Type]] = []
        bindings: list[tuple[str, Symbol]] = []
        for target in s.targets:
            declared = self.eval_type(target.type_expr) \
                if target.type_expr is not None else None
            if target.escape is not None:
                value = self.eval_escape(target.escape.code,
                                         target.escape.location)
                syms = value if isinstance(value, (list, tuple)) else [value]
                for sym in syms:
                    if not isinstance(sym, Symbol):
                        raise SpecializeError(
                            f"var declaration escape must produce symbols, "
                            f"got {sym!r}", target.escape.location)
                    symbols.append(sym)
                    types.append(declared if declared is not None else sym.type)
            else:
                sym = Symbol(declared, target.name)
                symbols.append(sym)
                types.append(declared)
                bindings.append((target.name, sym))
        for name, sym in bindings:
            self.bind(name, sym)
        return sast.SVarDecl(symbols, types, inits, s.location)

    def _spec_for(self, s: ast.ForNum) -> sast.SForNum:
        start = self.spec_expr(s.start)
        limit = self.spec_expr(s.limit)
        step = self.spec_expr(s.step) if s.step is not None else None
        target = s.target
        if target.escape is not None:
            sym = self.eval_escape(target.escape.code, target.escape.location)
            if not isinstance(sym, Symbol):
                raise SpecializeError(
                    f"for-loop variable escape must produce a symbol, got "
                    f"{sym!r}", target.escape.location)
        else:
            declared = self.eval_type(target.type_expr) \
                if target.type_expr is not None else None
            sym = Symbol(declared, target.name)
        self.push_scope()
        try:
            if target.name is not None:
                self.bind(target.name, sym)
            body = self.spec_block(s.body)
        finally:
            self.pop_scope()
        return sast.SForNum(sym, start, limit, step, body, s.location)

    # -- function / quote entry points -----------------------------------------
    def spec_function(self, fdef: ast.FunctionDef,
                      self_type: Optional[T.Type] = None):
        """Specialize a function definition.

        Returns ``(param_symbols, param_types, return_type, body)`` where
        ``return_type`` is None when it must be inferred.
        """
        self.push_scope()
        try:
            param_syms: list[Symbol] = []
            param_types: list[T.Type] = []
            if self_type is not None:
                sym = Symbol(self_type, "self")
                param_syms.append(sym)
                param_types.append(self_type)
                self.bind("self", sym)
            for p in fdef.params:
                self._spec_param(p, param_syms, param_types)
            rettype: Optional[T.Type] = None
            if fdef.return_type_expr is not None:
                rettype = self.eval_type(fdef.return_type_expr)
            body = self.spec_block(fdef.body)
            return param_syms, param_types, rettype, body
        finally:
            self.pop_scope()

    def _spec_param(self, p: ast.Param, syms: list[Symbol],
                    types: list[T.Type]) -> None:
        declared = self.eval_type(p.type_expr) if p.type_expr is not None else None
        if p.escape is not None:
            value = self.eval_escape(p.escape.code, p.escape.location)
            values = value if isinstance(value, (list, tuple)) else [value]
            for sym in values:
                if not isinstance(sym, Symbol):
                    raise SpecializeError(
                        f"parameter escape must produce symbols, got {sym!r}",
                        p.location)
                ptype = declared if declared is not None else sym.type
                if ptype is None:
                    raise SpecializeError(
                        f"parameter symbol {sym!r} has no type", p.location)
                syms.append(sym)
                types.append(ptype)
                if sym.displayname:
                    self.bind(sym.displayname, sym)
            return
        if declared is None:
            raise SpecializeError(
                f"parameter {p.name!r} requires a type annotation", p.location)
        sym = Symbol(declared, p.name)
        syms.append(sym)
        types.append(declared)
        self.bind(p.name, sym)

    def spec_quote(self, qbody: ast.QuoteBody) -> Quote:
        self.push_scope()
        try:
            out: list[sast.SStat] = []
            for stat in qbody.block.statements:
                self._spec_stat(stat, out)
            block = sast.SBlock(out, qbody.location)
            in_exprs = None
            if qbody.in_exprs is not None:
                in_exprs = [self.spec_expr(e) for e in qbody.in_exprs]
            return Quote.from_statements(block, in_exprs)
        finally:
            self.pop_scope()


def _is_namespace(value) -> bool:
    """Things whose ``.field`` means meta-namespace lookup, not struct
    field access."""
    import types as pytypes
    if isinstance(value, (dict, pytypes.ModuleType, pytypes.SimpleNamespace)):
        return True
    if isinstance(value, T.Type):
        return True  # Complex.methods, Complex.entries, ...
    # objects that opt in (e.g. the table returned by includec)
    return getattr(value, "is_terra_namespace", False)


def _meta_select(obj, field: str, location):
    if isinstance(obj, dict):
        if field not in obj:
            raise SpecializeError(f"no entry {field!r} in table", location)
        return obj[field]
    try:
        return getattr(obj, field)
    except AttributeError as exc:
        try:
            return obj[field]
        except Exception:
            raise SpecializeError(
                f"cannot select {field!r} from {obj!r}", location) from exc
