"""Terra's type system, reproduced as first-class Python objects.

In the paper, "Terra types are Lua values" (Section 4.1, *Mechanisms for
type reflection*).  Here they are Python values: ordinary objects that user
code can inspect (``t.ispointer()``, ``t.isstruct()``), construct
programmatically (``pointer(float)``, ``vector(double, 4)``), and attach
behaviour to (struct ``entries``, ``methods`` and ``metamethods`` tables).

The layout rules (sizeof / alignof / field offsets) follow the natural
alignment rules of the C ABI on x86-64 so that the interpreter backend and
the gcc-compiled backend agree byte-for-byte on every type.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import TypeCheckError


def _round_up(offset: int, align: int) -> int:
    return (offset + align - 1) & ~(align - 1)


class Type:
    """Base class of all Terra types.

    Provides the reflection API of the full Terra language.  Each query
    defaults to False/None and is overridden by the relevant subclass.
    """

    #: cached (size, align); computed lazily because struct layout may be
    #: finalized by a metamethod at first use (paper Section 6.3.1).
    _layout: tuple[int, int] | None = None

    # -- reflection queries (match Terra's type API) ----------------------
    def isprimitive(self) -> bool:
        return False

    def isintegral(self) -> bool:
        return False

    def isfloat(self) -> bool:
        return False

    def isarithmetic(self) -> bool:
        return self.isintegral() or self.isfloat()

    def islogical(self) -> bool:
        return False

    def ispointer(self) -> bool:
        return False

    def isarray(self) -> bool:
        return False

    def isvector(self) -> bool:
        return False

    def isstruct(self) -> bool:
        return False

    def isfunction(self) -> bool:
        return False

    def isunit(self) -> bool:
        """True for the empty tuple type ``{}`` used as a 'void' return."""
        return False

    def istuple(self) -> bool:
        return False

    def isaggregate(self) -> bool:
        return self.isarray() or self.isstruct()

    def iscomplete(self) -> bool:
        """A type is complete when its layout can be computed."""
        try:
            self.layout()
            return True
        except TypeCheckError:
            return False

    # -- layout ------------------------------------------------------------
    def layout(self) -> tuple[int, int]:
        """Return ``(sizeof, alignof)`` in bytes."""
        if self._layout is None:
            self._layout = self._compute_layout()
        return self._layout

    def _compute_layout(self) -> tuple[int, int]:
        raise TypeCheckError(f"type {self} has no layout")

    def sizeof(self) -> int:
        return self.layout()[0]

    def alignof(self) -> int:
        return self.layout()[1]

    # -- convenience -------------------------------------------------------
    def __repr__(self) -> str:
        return str(self)


class PrimitiveType(Type):
    """An integer, floating-point or boolean machine type.

    Instances are interned singletons (``int32 is int32``) so identity
    equality works the way Terra programmers expect.
    """

    __slots__ = ("name", "kind", "bytes", "signed")

    KIND_INTEGER = "integer"
    KIND_FLOAT = "float"
    KIND_LOGICAL = "logical"

    def __init__(self, name: str, kind: str, nbytes: int, signed: bool):
        self.name = name
        self.kind = kind
        self.bytes = nbytes
        self.signed = signed

    def isprimitive(self) -> bool:
        return True

    def isintegral(self) -> bool:
        return self.kind == self.KIND_INTEGER

    def isfloat(self) -> bool:
        return self.kind == self.KIND_FLOAT

    def islogical(self) -> bool:
        return self.kind == self.KIND_LOGICAL

    def _compute_layout(self) -> tuple[int, int]:
        return (self.bytes, self.bytes)

    def min_value(self) -> int:
        if not self.isintegral():
            raise TypeCheckError(f"{self} has no integer range")
        return -(1 << (self.bytes * 8 - 1)) if self.signed else 0

    def max_value(self) -> int:
        if not self.isintegral():
            raise TypeCheckError(f"{self} has no integer range")
        bits = self.bytes * 8 - (1 if self.signed else 0)
        return (1 << bits) - 1

    def __str__(self) -> str:
        return self.name


# The primitive types of Terra.  ``int`` is 32-bit (as in Terra/C) and
# ``long``/``intptr`` are 64-bit on the x86-64 ABI we target.
int8 = PrimitiveType("int8", PrimitiveType.KIND_INTEGER, 1, True)
int16 = PrimitiveType("int16", PrimitiveType.KIND_INTEGER, 2, True)
int32 = PrimitiveType("int32", PrimitiveType.KIND_INTEGER, 4, True)
int64 = PrimitiveType("int64", PrimitiveType.KIND_INTEGER, 8, True)
uint8 = PrimitiveType("uint8", PrimitiveType.KIND_INTEGER, 1, False)
uint16 = PrimitiveType("uint16", PrimitiveType.KIND_INTEGER, 2, False)
uint32 = PrimitiveType("uint32", PrimitiveType.KIND_INTEGER, 4, False)
uint64 = PrimitiveType("uint64", PrimitiveType.KIND_INTEGER, 8, False)
float32 = PrimitiveType("float", PrimitiveType.KIND_FLOAT, 4, True)
float64 = PrimitiveType("double", PrimitiveType.KIND_FLOAT, 8, True)
bool_ = PrimitiveType("bool", PrimitiveType.KIND_LOGICAL, 1, False)

#: aliases matching Terra's spelling
int_ = int32
uint = uint32
long_ = int64
ulong = uint64
float_ = float32
double = float64

_PRIMITIVES_BY_NAME = {
    t.name: t
    for t in (int8, int16, int32, int64, uint8, uint16, uint32, uint64,
              float32, float64, bool_)
}
_PRIMITIVES_BY_NAME.update({
    "int": int32, "uint": uint32, "long": int64, "ulong": uint64,
})


def primitive_by_name(name: str) -> PrimitiveType | None:
    return _PRIMITIVES_BY_NAME.get(name)


class PointerType(Type):
    """``&T`` — a pointer to ``T``.  Memoized so ``pointer(T)`` is identical
    across call sites."""

    __slots__ = ("pointee",)
    _cache: dict[int, "PointerType"] = {}

    def __new__(cls, pointee: Type):
        cached = cls._cache.get(id(pointee))
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self.pointee = pointee
        cls._cache[id(pointee)] = self
        return self

    def __init__(self, pointee: Type):  # noqa: D401 - memoized in __new__
        pass

    def ispointer(self) -> bool:
        return True

    @property
    def type(self) -> Type:
        """Terra reflection spells the pointee ``t.type``."""
        return self.pointee

    def _compute_layout(self) -> tuple[int, int]:
        return (8, 8)

    def __str__(self) -> str:
        return f"&{self.pointee}"


class ArrayType(Type):
    """``T[N]`` — a fixed-size array *value* type (not a decayed pointer)."""

    __slots__ = ("elem", "count")
    _cache: dict[tuple[int, int], "ArrayType"] = {}

    def __new__(cls, elem: Type, count: int):
        key = (id(elem), count)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        if count < 0:
            raise TypeCheckError(f"array length must be non-negative, got {count}")
        self = super().__new__(cls)
        self.elem = elem
        self.count = count
        cls._cache[key] = self
        return self

    def __init__(self, elem: Type, count: int):
        pass

    def isarray(self) -> bool:
        return True

    @property
    def type(self) -> Type:
        return self.elem

    @property
    def N(self) -> int:
        return self.count

    def _compute_layout(self) -> tuple[int, int]:
        size, align = self.elem.layout()
        return (size * self.count, align)

    def __str__(self) -> str:
        return f"{self.elem}[{self.count}]"


class VectorType(Type):
    """``vector(T, N)`` — a fixed-length SIMD vector of a primitive type.

    The paper: "Terra includes fixed-length vectors of basic types (e.g.
    vector(float,4)) to reflect the presence of SIMD units".  Layout follows
    GCC vector extensions: size ``N*sizeof(T)`` rounded to a power of two,
    aligned to its size.
    """

    __slots__ = ("elem", "count")
    _cache: dict[tuple[int, int], "VectorType"] = {}

    def __new__(cls, elem: Type, count: int):
        key = (id(elem), count)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        if not isinstance(elem, PrimitiveType):
            raise TypeCheckError(f"vector element must be a primitive type, got {elem}")
        if count <= 0:
            raise TypeCheckError(f"vector length must be positive, got {count}")
        self = super().__new__(cls)
        self.elem = elem
        self.count = count
        cls._cache[key] = self
        return self

    def __init__(self, elem: Type, count: int):
        pass

    def isvector(self) -> bool:
        return True

    def isintegral(self) -> bool:
        return self.elem.isintegral()

    def isfloat(self) -> bool:
        return self.elem.isfloat()

    def islogical(self) -> bool:
        return self.elem.islogical()

    @property
    def type(self) -> Type:
        return self.elem

    @property
    def N(self) -> int:
        return self.count

    def _compute_layout(self) -> tuple[int, int]:
        # size rounds up to a power of two (as GCC/LLVM vectors do), but
        # alignment is the *element* alignment: Terra kernels routinely
        # load vectors from unaligned addresses (e.g. shifted stencil
        # reads), so the C backend emits under-aligned vector types
        # (movups instead of movaps) and the layouts must agree.
        raw = self.elem.sizeof() * self.count
        size = 1
        while size < raw:
            size <<= 1
        return (size, self.elem.sizeof())

    def __str__(self) -> str:
        return f"vector({self.elem},{self.count})"


class StructEntry:
    """One field of a struct: a name and a type.

    Mirrors the ``{ field = ..., type = ... }`` tables the paper inserts
    into ``Complex.entries``.  Entries sharing a ``union_group`` overlay
    at the same offset (Terra's in-struct ``union`` blocks).
    """

    __slots__ = ("field", "type", "union_group")

    def __init__(self, field: str, type: Type,  # noqa: A002 - Terra's name
                 union_group: "int | None" = None):
        self.field = field
        self.type = type
        self.union_group = union_group

    def __repr__(self) -> str:
        return f"StructEntry({self.field!r}, {self.type})"


class StructType(Type):
    """A nominally-typed struct with reflection tables.

    * ``entries``   — ordered list of :class:`StructEntry` (in-memory layout)
    * ``methods``   — dict of name -> Terra function (or anything callable
      through staging); ``obj:m(...)`` desugars to ``T.methods.m(&obj, ...)``
    * ``metamethods`` — compile-time hooks; this reproduction implements
      ``__finalizelayout`` (run once, right before the layout is first
      examined), ``__cast`` (user-defined conversions, see typechecker),
      ``__methodmissing``, and ``__entrymissing``.
    """

    _anon_counter = 0

    def __init__(self, name: str | None = None):
        if name is None:
            StructType._anon_counter += 1
            name = f"anon{StructType._anon_counter}"
        self.name = name
        self.entries: list[StructEntry] = []
        self.methods: dict[str, object] = {}
        self.metamethods: dict[str, object] = {}
        self._finalized = False
        self._in_finalize = False
        self._offsets: dict[str, int] | None = None
        self._defined = False  # set once entries are supplied (or layout runs)

    def isstruct(self) -> bool:
        return True

    # -- construction helpers ---------------------------------------------
    _union_counter = 0

    def add_entry(self, field: str, type: Type) -> "StructType":  # noqa: A002
        if self._finalized and not self._in_finalize:
            raise TypeCheckError(
                f"cannot add entry {field!r} to {self.name}: layout already finalized")
        self.entries.append(StructEntry(field, type))
        return self

    def add_union(self, fields) -> "StructType":
        """Add overlapping fields (Terra's in-struct ``union { ... }``):
        ``s.add_union([("i", int64), ("d", double)])``."""
        if self._finalized and not self._in_finalize:
            raise TypeCheckError(
                f"cannot add a union to {self.name}: layout already finalized")
        StructType._union_counter += 1
        group = StructType._union_counter
        for field, ftype in fields:
            self.entries.append(StructEntry(field, ftype, group))
        return self

    def entry_names(self) -> list[str]:
        return [e.field for e in self.entries]

    def entry_type(self, field: str) -> Type | None:
        self.complete()
        for e in self.entries:
            if e.field == field:
                return e.type
        return None

    def has_entry(self, field: str) -> bool:
        return self.entry_type(field) is not None

    # -- finalization -------------------------------------------------------
    def complete(self) -> "StructType":
        """Run ``__finalizelayout`` (once) and freeze the layout.

        The paper: "This metamethod is called by the Terra typechecker right
        before a type is examined, allowing it to compute the layout of the
        type at the latest possible time."
        """
        if not self._finalized:
            hook = self.metamethods.get("__finalizelayout")
            self._finalized = True  # set first: hook may query own entries
            if hook is not None:
                self._in_finalize = True
                try:
                    hook(self)
                finally:
                    self._in_finalize = False
        return self

    def _compute_layout(self) -> tuple[int, int]:
        self.complete()
        offset = 0
        align = 1
        offsets: dict[str, int] = {}
        i = 0
        entries = self.entries
        while i < len(entries):
            entry = entries[i]
            if entry.union_group is None:
                esize, ealign = entry.type.layout()
                offset = _round_up(offset, ealign)
                offsets[entry.field] = offset
                offset += esize
                align = max(align, ealign)
                i += 1
                continue
            # a run of entries in the same union group overlays at one
            # offset; the union occupies max(size) at max(align)
            group = entry.union_group
            usize, ualign = 0, 1
            j = i
            while j < len(entries) and entries[j].union_group == group:
                esize, ealign = entries[j].type.layout()
                usize = max(usize, esize)
                ualign = max(ualign, ealign)
                j += 1
            offset = _round_up(offset, ualign)
            for k in range(i, j):
                offsets[entries[k].field] = offset
            offset += usize
            align = max(align, ualign)
            i = j
        size = _round_up(offset, align)
        self._offsets = offsets
        return (size, align)

    def offsetof(self, field: str) -> int:
        self.layout()
        assert self._offsets is not None
        if field not in self._offsets:
            raise TypeCheckError(f"struct {self.name} has no field {field!r}")
        return self._offsets[field]

    def __str__(self) -> str:
        return self.name


class FunctionType(Type):
    """``{T1, T2} -> {R}`` — the type of a Terra function.

    ``returns`` is a list: empty for unit, one entry for a single return,
    several for tuple returns.
    """

    __slots__ = ("parameters", "returns", "varargs")
    _cache: dict[tuple, "FunctionType"] = {}

    def __new__(cls, parameters: Sequence[Type], returns: Sequence[Type],
                varargs: bool = False):
        key = (tuple(id(p) for p in parameters),
               tuple(id(r) for r in returns), varargs)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self.parameters = tuple(parameters)
        self.returns = tuple(returns)
        self.varargs = varargs
        cls._cache[key] = self
        return self

    def __init__(self, parameters, returns, varargs: bool = False):
        pass

    def isfunction(self) -> bool:
        return True

    @property
    def returntype(self) -> Type:
        if len(self.returns) == 0:
            return unit
        if len(self.returns) == 1:
            return self.returns[0]
        return TupleType(self.returns)

    def _compute_layout(self) -> tuple[int, int]:
        raise TypeCheckError("function types have no layout; use a pointer")

    def __str__(self) -> str:
        params = ",".join(str(p) for p in self.parameters)
        if self.varargs:
            params = params + ",..." if params else "..."
        rets = ",".join(str(r) for r in self.returns)
        return f"{{{params}}} -> {{{rets}}}"


class TupleType(StructType):
    """An anonymous struct used for multiple return values.

    Fields are named ``_0, _1, ...`` as in real Terra's tuple lowering.
    """

    _cache: dict[tuple, "TupleType"] = {}

    def __new__(cls, element_types: Sequence[Type]):
        key = tuple(id(t) for t in element_types)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        cls._cache[key] = self
        return self

    def __init__(self, element_types: Sequence[Type]):
        if getattr(self, "_tuple_initialized", False):
            return
        names = "_".join(str(t) for t in element_types)
        super().__init__(f"tuple_{len(element_types)}_{abs(hash(names)) % 99991}")
        for i, t in enumerate(element_types):
            self.add_entry(f"_{i}", t)
        self.element_types = tuple(element_types)
        self._tuple_initialized = True

    def istuple(self) -> bool:
        return True

    def isunit(self) -> bool:
        return len(self.element_types) == 0

    def __str__(self) -> str:
        return "{" + ",".join(str(t) for t in self.element_types) + "}"


#: the unit type ``{}`` (a zero-element tuple) used as the 'void' return.
unit = TupleType(())


class OpaqueType(Type):
    """A named type with unknown layout (e.g. ``FILE`` from includec)."""

    def __init__(self, name: str):
        self.name = name

    def __str__(self) -> str:
        return self.name


# -- public constructors (the Lua-side API of Terra) -------------------------

def _as_type(t, constructor: str) -> Type:
    """Accept a Terra type or one of Python's int/float/bool class
    objects, which name Terra types throughout (``ptr(float)`` in a
    ``@terra`` annotation is evaluated by Python itself, so the
    constructors must coerce exactly like escapes do)."""
    if isinstance(t, Type):
        return t
    coerced = coerce_to_type(t)
    if coerced is None:
        raise TypeCheckError(f"{constructor}() expects a Terra type, got {t!r}")
    return coerced


def pointer(t: Type) -> PointerType:
    """``&t``: construct a pointer type."""
    return PointerType(_as_type(t, "pointer"))


def array(t: Type, n: int) -> ArrayType:
    """``t[n]``: construct a fixed-size array type."""
    return ArrayType(_as_type(t, "array"), int(n))


def vector(t: Type, n: int) -> VectorType:
    """``vector(t, n)``: construct a SIMD vector type."""
    return VectorType(_as_type(t, "vector"), int(n))


def functype(parameters: Iterable[Type], returns: Iterable[Type] | Type,
             varargs: bool = False) -> FunctionType:
    if isinstance(returns, Type):
        returns = [] if returns is unit else [returns]
    return FunctionType(list(parameters), list(returns), varargs)


def tuple_of(types: Sequence[Type]) -> TupleType:
    return TupleType(tuple(types))


def struct(name: str | None = None,
           entries: Sequence[tuple[str, Type]] | None = None) -> StructType:
    """Create a (possibly empty) struct type programmatically.

    Equivalent to the paper's ``struct Complex {}`` followed by inserting
    into ``Complex.entries``.
    """
    s = StructType(name)
    if entries:
        for field, ftype in entries:
            s.add_entry(field, ftype)
    return s


#: ``rawstring`` — Terra's name for ``&int8`` (C ``char*``).
rawstring = pointer(int8)


def coerce_to_type(value) -> "Type | None":
    """Interpret ``value`` as a Terra type where a type is expected.

    Python's builtin ``int``/``float``/``bool`` class objects map onto the
    Terra types of the same *name* (``int``=int32, ``float``=float32,
    ``bool``), so paper-style escapes like ``[&int]`` work even though the
    escape body evaluates as Python."""
    if isinstance(value, Type):
        return value
    if value is int:
        return int32
    if value is float:
        return float32
    if value is bool:
        return bool_
    if value is str:
        return rawstring
    return None


def common_primitive(a: PrimitiveType, b: PrimitiveType) -> PrimitiveType:
    """The usual arithmetic conversions (C semantics) for two primitives."""
    if a is b:
        return a
    if a.isfloat() or b.isfloat():
        if a is float64 or b is float64:
            return float64
        if a.isfloat() and b.isfloat():
            return float32
        # float + integer -> the float type
        return a if a.isfloat() else b
    if a.islogical() or b.islogical():
        raise TypeCheckError(f"no common arithmetic type for {a} and {b}")
    # integer promotion: to the larger; same size, unsigned wins
    if a.bytes != b.bytes:
        bigger = a if a.bytes > b.bytes else b
        smaller = b if a.bytes > b.bytes else a
        if bigger.signed or not smaller.signed:
            return bigger
        # bigger unsigned absorbs smaller signed
        return bigger
    return a if not a.signed else b
