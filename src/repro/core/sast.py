"""Specialized Terra trees — the paper's ``ē`` terms.

Produced by eager specialization (:mod:`repro.core.specialize`), consumed
by the lazy typechecker.  In a specialized tree:

* every variable is a resolved :class:`~repro.core.symbols.Symbol`,
* every escape has been evaluated and its result embedded,
* every meta-namespace lookup (``std.malloc``) has been resolved,
* Lua/Python values have become constants, function references, global
  references, types (for casts) or spliced quotations.

Specialized trees are still untyped: types appear on ``SCast``/``SVarDecl``
annotations only where the programmer wrote them; the typechecker computes
the rest when the function is first called (paper §4.1, lazy typechecking).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import SourceLocation
from . import types as T
from .symbols import Symbol


class SNode:
    _fields: tuple[str, ...] = ()

    def __init__(self, location: Optional[SourceLocation] = None):
        self.location = location

    def __repr__(self) -> str:
        parts = ", ".join(f"{f}={getattr(self, f, None)!r}" for f in self._fields)
        return f"{type(self).__name__}({parts})"


# -- expressions -------------------------------------------------------------

class SExpr(SNode):
    pass


class SConst(SExpr):
    """A literal / embedded meta-language constant.  ``type`` may be None
    (e.g. a bare Lua/Python int) and is then defaulted by the typechecker."""

    _fields = ("value", "type")

    def __init__(self, value, type: Optional[T.Type] = None,  # noqa: A002
                 location=None):
        super().__init__(location)
        self.value = value
        self.type = type


class SString(SExpr):
    """A string constant (becomes ``rawstring`` pointing at static data)."""

    _fields = ("value",)

    def __init__(self, value: str, location=None):
        super().__init__(location)
        self.value = value


class SNull(SExpr):
    """``nil`` — the null pointer; adopts any pointer type from context."""


class SVar(SExpr):
    _fields = ("symbol",)

    def __init__(self, symbol: Symbol, location=None):
        super().__init__(location)
        self.symbol = symbol


class SGlobal(SExpr):
    """A reference to a Terra global variable."""

    _fields = ("glob",)

    def __init__(self, glob, location=None):
        super().__init__(location)
        self.glob = glob


class SFuncRef(SExpr):
    """A direct reference to a Terra function (the paper's ``l``)."""

    _fields = ("func",)

    def __init__(self, func, location=None):
        super().__init__(location)
        self.func = func


class STypeRef(SExpr):
    """A Terra type in expression position — only legal as a call target
    (cast) or constructor prefix; anything else is a type error."""

    _fields = ("type",)

    def __init__(self, type: T.Type, location=None):  # noqa: A002
        super().__init__(location)
        self.type = type


class SCast(SExpr):
    """``[&int8](e)`` / ``T(e)`` — an explicit conversion."""

    _fields = ("type", "expr")

    def __init__(self, type: T.Type, expr: SExpr, location=None):  # noqa: A002
        super().__init__(location)
        self.type = type
        self.expr = expr


class SApply(SExpr):
    _fields = ("fn", "args")

    def __init__(self, fn: SExpr, args: Sequence[SExpr], location=None):
        super().__init__(location)
        self.fn = fn
        self.args = list(args)


class SMethodCall(SExpr):
    """``obj:m(args)`` — resolved against the static type of ``obj`` during
    typechecking (paper §4.1: desugars to ``[T.methods.m](obj, args)``)."""

    _fields = ("obj", "name", "args")

    def __init__(self, obj: SExpr, name: str, args: Sequence[SExpr], location=None):
        super().__init__(location)
        self.obj = obj
        self.name = name
        self.args = list(args)


class SSelect(SExpr):
    """Struct field access (meta-namespace selects are already resolved)."""

    _fields = ("obj", "field")

    def __init__(self, obj: SExpr, field: str, location=None):
        super().__init__(location)
        self.obj = obj
        self.field = field


class SIndex(SExpr):
    _fields = ("obj", "index")

    def __init__(self, obj: SExpr, index: SExpr, location=None):
        super().__init__(location)
        self.obj = obj
        self.index = index


class SUnOp(SExpr):
    _fields = ("op", "operand")

    def __init__(self, op: str, operand: SExpr, location=None):
        super().__init__(location)
        self.op = op
        self.operand = operand


class SBinOp(SExpr):
    _fields = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: SExpr, rhs: SExpr, location=None):
        super().__init__(location)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class SCtorField:
    __slots__ = ("name", "value")

    def __init__(self, name: Optional[str], value: SExpr):
        self.name = name
        self.value = value

    def __repr__(self) -> str:
        return f"SCtorField({self.name!r}, {self.value!r})"


class SCtor(SExpr):
    """Struct construction ``T { ... }`` / anonymous ``{ ... }``."""

    _fields = ("type", "fields")

    def __init__(self, type: Optional[T.Type],  # noqa: A002
                 fields: Sequence[SCtorField], location=None):
        super().__init__(location)
        self.type = type
        self.fields = list(fields)


class SLetIn(SExpr):
    """A statements-quote with an ``in`` clause spliced into expression
    position: run the block, yield the expression(s)."""

    _fields = ("block", "exprs")

    def __init__(self, block: "SBlock", exprs: Sequence[SExpr], location=None):
        super().__init__(location)
        self.block = block
        self.exprs = list(exprs)


class SIntrinsic(SExpr):
    """A backend intrinsic (prefetch, fence...).  ``name`` selects the
    lowering; args are ordinary expressions."""

    _fields = ("name", "args")

    def __init__(self, name: str, args: Sequence[SExpr], location=None):
        super().__init__(location)
        self.name = name
        self.args = list(args)


class SPyCallback(SExpr):
    """A Python function embedded with an explicit Terra function type
    (the FFI's ``terralib.cast(fntype, luafn)`` analog)."""

    _fields = ("callback",)

    def __init__(self, callback, location=None):
        super().__init__(location)
        self.callback = callback


# -- statements ----------------------------------------------------------------

class SStat(SNode):
    pass


class SBlock(SNode):
    _fields = ("statements",)

    def __init__(self, statements: Sequence[SStat], location=None):
        super().__init__(location)
        self.statements = list(statements)


class SVarDecl(SStat):
    """``var s1 : t1, s2 : t2 = e1, e2`` — symbols are already unique."""

    _fields = ("symbols", "types", "inits")

    def __init__(self, symbols: Sequence[Symbol],
                 types: Sequence[Optional[T.Type]],
                 inits: Optional[Sequence[SExpr]], location=None):
        super().__init__(location)
        self.symbols = list(symbols)
        self.types = list(types)
        self.inits = list(inits) if inits is not None else None


class SAssign(SStat):
    _fields = ("lhs", "rhs")

    def __init__(self, lhs: Sequence[SExpr], rhs: Sequence[SExpr], location=None):
        super().__init__(location)
        self.lhs = list(lhs)
        self.rhs = list(rhs)


class SIf(SStat):
    _fields = ("branches", "orelse")

    def __init__(self, branches: Sequence[tuple[SExpr, SBlock]],
                 orelse: Optional[SBlock], location=None):
        super().__init__(location)
        self.branches = list(branches)
        self.orelse = orelse


class SWhile(SStat):
    _fields = ("cond", "body")

    def __init__(self, cond: SExpr, body: SBlock, location=None):
        super().__init__(location)
        self.cond = cond
        self.body = body


class SRepeat(SStat):
    _fields = ("body", "cond")

    def __init__(self, body: SBlock, cond: SExpr, location=None):
        super().__init__(location)
        self.body = body
        self.cond = cond


class SForNum(SStat):
    """Half-open numeric for over ``[start, limit)`` with optional step."""

    _fields = ("symbol", "start", "limit", "step", "body")

    def __init__(self, symbol: Symbol, start: SExpr, limit: SExpr,
                 step: Optional[SExpr], body: SBlock, location=None):
        super().__init__(location)
        self.symbol = symbol
        self.start = start
        self.limit = limit
        self.step = step
        self.body = body


class SDoStat(SStat):
    """``do ... end`` — a nested scope."""

    _fields = ("body",)

    def __init__(self, body: SBlock, location=None):
        super().__init__(location)
        self.body = body


class SReturn(SStat):
    _fields = ("exprs",)

    def __init__(self, exprs: Sequence[SExpr], location=None):
        super().__init__(location)
        self.exprs = list(exprs)


class SBreak(SStat):
    pass


class SExprStat(SStat):
    _fields = ("expr",)

    def __init__(self, expr: SExpr, location=None):
        super().__init__(location)
        self.expr = expr


class SDefer(SStat):
    _fields = ("call",)

    def __init__(self, call: SExpr, location=None):
        super().__init__(location)
        self.call = call


# -- the frontend contract ----------------------------------------------------
#
# Every frontend (the string parser, the @terra decorator, respec's
# variant builder) hands TerraFunction.define a specialized definition.
# ``validate_definition`` checks the structural invariants that the
# typechecker, passes and backends silently assume — the executable half
# of docs/FRONTENDS.md.  Violations are frontend bugs, never user errors.

def _contract(cond: bool, message: str, location=None) -> None:
    if not cond:
        from ..errors import FrontendContractError
        raise FrontendContractError(message, location)


def validate_definition(param_symbols, param_types, rettype, body) -> None:
    """Check a ``(param_symbols, param_types, rettype, body)`` definition
    against the frontend↔IR contract (docs/FRONTENDS.md):

    * parameters are :class:`Symbol` objects paired 1:1 with concrete
      :class:`~repro.core.types.Type` values, with no duplicate symbols
      (hygiene: the specializer renames every binder freshly);
    * ``rettype`` is a Type or None (None = infer during typechecking);
    * the body is an :class:`SBlock` of fully specialized statements —
      no leftover escapes, unresolved names or meta values: every leaf
      is an ``S*`` node, every binder a Symbol, every annotation a Type.
    """
    _contract(len(list(param_symbols)) == len(list(param_types)),
              f"parameter symbols ({len(list(param_symbols))}) and types "
              f"({len(list(param_types))}) must pair 1:1")
    seen_ids = set()
    for sym, ty in zip(param_symbols, param_types):
        _contract(isinstance(sym, Symbol),
                  f"parameter {sym!r} is not a Symbol")
        _contract(isinstance(ty, T.Type),
                  f"parameter {sym!r} has non-Type annotation {ty!r}")
        _contract(id(sym) not in seen_ids,
                  f"parameter symbol {sym!r} appears twice (hygiene "
                  f"requires fresh symbols per binder)")
        seen_ids.add(id(sym))
    _contract(rettype is None or isinstance(rettype, T.Type),
              f"return annotation {rettype!r} is not a Terra type")
    _contract(isinstance(body, SBlock),
              f"function body must be an SBlock, got {type(body).__name__}")
    _validate_block(body)


def _validate_block(block: SBlock) -> None:
    _contract(isinstance(block, SBlock),
              f"expected SBlock, got {type(block).__name__}",
              getattr(block, "location", None))
    for stat in block.statements:
        _validate_stat(stat)


def _validate_stat(s) -> None:
    loc = getattr(s, "location", None)
    _contract(isinstance(s, SStat),
              f"statement position holds {type(s).__name__}", loc)
    if isinstance(s, SVarDecl):
        _contract(len(s.symbols) == len(s.types),
                  "SVarDecl symbols/types must pair 1:1", loc)
        for sym, ty in zip(s.symbols, s.types):
            _contract(isinstance(sym, Symbol),
                      f"SVarDecl binder {sym!r} is not a Symbol", loc)
            _contract(ty is None or isinstance(ty, T.Type),
                      f"SVarDecl annotation {ty!r} is not a Type", loc)
        if s.inits is not None:
            for e in s.inits:
                _validate_expr(e)
    elif isinstance(s, SAssign):
        _contract(len(s.lhs) >= 1 and len(s.rhs) >= 1,
                  "SAssign needs at least one lhs and one rhs", loc)
        for e in s.lhs + s.rhs:
            _validate_expr(e)
    elif isinstance(s, SIf):
        _contract(len(s.branches) >= 1, "SIf needs at least one branch", loc)
        for cond, blk in s.branches:
            _validate_expr(cond)
            _validate_block(blk)
        if s.orelse is not None:
            _validate_block(s.orelse)
    elif isinstance(s, SWhile):
        _validate_expr(s.cond)
        _validate_block(s.body)
    elif isinstance(s, SRepeat):
        _validate_block(s.body)
        _validate_expr(s.cond)
    elif isinstance(s, SForNum):
        _contract(isinstance(s.symbol, Symbol),
                  f"SForNum binder {s.symbol!r} is not a Symbol", loc)
        _validate_expr(s.start)
        _validate_expr(s.limit)
        if s.step is not None:
            _validate_expr(s.step)
        _validate_block(s.body)
    elif isinstance(s, SDoStat):
        _validate_block(s.body)
    elif isinstance(s, SReturn):
        for e in s.exprs:
            _validate_expr(e)
    elif isinstance(s, (SExprStat,)):
        _validate_expr(s.expr)
    elif isinstance(s, SDefer):
        _validate_expr(s.call)
    # SBreak has no children


def _validate_expr(e) -> None:
    loc = getattr(e, "location", None)
    _contract(isinstance(e, SExpr),
              f"expression position holds {type(e).__name__} (unresolved "
              f"meta value or untyped-AST leak?)", loc)
    if isinstance(e, SVar):
        _contract(isinstance(e.symbol, Symbol),
                  f"SVar holds {e.symbol!r}, not a Symbol", loc)
    elif isinstance(e, SConst):
        _contract(e.type is None or isinstance(e.type, T.Type),
                  f"SConst type annotation {e.type!r} is not a Type", loc)
    elif isinstance(e, (STypeRef, SCast)):
        _contract(isinstance(e.type, T.Type),
                  f"{type(e).__name__} requires a Type, got {e.type!r}", loc)
        if isinstance(e, SCast):
            _validate_expr(e.expr)
    elif isinstance(e, SApply):
        _validate_expr(e.fn)
        for a in e.args:
            _validate_expr(a)
    elif isinstance(e, (SMethodCall, SIntrinsic)):
        if isinstance(e, SMethodCall):
            _validate_expr(e.obj)
        for a in e.args:
            _validate_expr(a)
    elif isinstance(e, SSelect):
        _contract(isinstance(e.field, str),
                  f"SSelect field {e.field!r} is not resolved to a string",
                  loc)
        _validate_expr(e.obj)
    elif isinstance(e, SIndex):
        _validate_expr(e.obj)
        _validate_expr(e.index)
    elif isinstance(e, SUnOp):
        _validate_expr(e.operand)
    elif isinstance(e, SBinOp):
        _validate_expr(e.lhs)
        _validate_expr(e.rhs)
    elif isinstance(e, SCtor):
        _contract(e.type is None or isinstance(e.type, T.Type),
                  f"SCtor type {e.type!r} is not a Type", loc)
        for f in e.fields:
            _validate_expr(f.value)
    elif isinstance(e, SLetIn):
        _validate_block(e.block)
        for x in e.exprs:
            _validate_expr(x)
    # SString / SNull / SGlobal / SFuncRef / SPyCallback are leaves


def copy_tree(node):
    """Deep-copy a specialized tree (symbols are shared, nodes are not).

    Splicing the same quote into two places must not alias mutable nodes,
    because the typechecker annotates trees in place.
    """
    if isinstance(node, SNode):
        clone = object.__new__(type(node))
        clone.location = node.location
        for field in node._fields:
            setattr(clone, field, copy_tree(getattr(node, field)))
        return clone
    if isinstance(node, list):
        return [copy_tree(x) for x in node]
    if isinstance(node, tuple):
        return tuple(copy_tree(x) for x in node)
    if isinstance(node, SCtorField):
        return SCtorField(node.name, copy_tree(node.value))
    return node  # symbols, types, constants, functions are shared
