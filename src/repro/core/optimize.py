"""Compatibility shim — the optimizer moved to :mod:`repro.passes`.

This module used to hold the interpreter-only constant folder.  Those
transforms now live in the pass-managed pipeline shared by *both*
backends (:mod:`repro.passes.fold`, :mod:`repro.passes.simplify`,
:mod:`repro.passes.dce`, :mod:`repro.passes.licm`), which the linker runs
once per function before any backend compiles it.

:func:`optimize_function` remains for callers that want to canonicalize a
typed function directly; it now runs the level-1 pipeline.
"""

from __future__ import annotations

from . import tast


def optimize_function(typed: tast.TypedFunction) -> tast.TypedFunction:
    """Fold and prune a typed function in place (idempotent).

    Deprecated entry point: equivalent to running the canonicalization
    pipeline (``repro.passes.run_pipeline(typed, PIPELINE_CANON)``).
    """
    from ..passes import PIPELINE_CANON, run_pipeline
    run_pipeline(typed, PIPELINE_CANON)
    return typed
