"""Linking: connected-component typechecking and compilation.

Paper Figure 4 (TYFUN1/TYFUN2): before a Terra function runs, every
function in the connected component of its references must typecheck —
"they ensure all functions that are in the connected component of a
function are typechecked before the function is run."  A reference to a
declared-but-undefined function is a :class:`LinkError`.

Typechecking success is cached (definitions are immutable, so success is
stable); failures are *not* cached, because the result of typechecking can
"change monotonically from a type-error to success as the functions it
references are defined" — and because type reflection (``__cast``,
``__finalizelayout``) may legitimately add capabilities to types between
attempts.
"""

from __future__ import annotations

from ..errors import LinkError, TypeCheckError
from .function import TerraFunction

#: functions currently being typechecked (cycle detection)
_in_progress: set[int] = set()


def typecheck_function(fn: TerraFunction) -> None:
    """Typecheck one function (no-op for externals and cached results)."""
    if fn.typed is not None or fn.is_external:
        return
    if not fn.isdefined():
        raise LinkError(
            f"Terra function {fn.name!r} is declared but not defined")
    if fn.uid in _in_progress:
        raise TypeCheckError(
            f"function {fn.name!r} is recursive (directly or mutually) and "
            f"needs an explicit return type annotation")
    from .typechecker import TypeChecker
    _in_progress.add(fn.uid)
    try:
        typed = TypeChecker(fn).run()
    finally:
        _in_progress.discard(fn.uid)
    fn.typed = typed
    fn._type = typed.type


def connected_component(fn: TerraFunction) -> list[TerraFunction]:
    """All functions reachable from ``fn`` through direct references,
    including ``fn`` itself, in deterministic discovery order.  Requires
    the component to be fully typechecked."""
    seen: dict[int, TerraFunction] = {}
    order: list[TerraFunction] = []
    stack = [fn]
    while stack:
        f = stack.pop()
        if f.uid in seen:
            continue
        seen[f.uid] = f
        order.append(f)
        if f.is_external:
            continue
        typecheck_function(f)
        assert f.typed is not None
        for ref in f.typed.referenced_functions:
            if ref.uid not in seen:
                stack.append(ref)
    return order


def ensure_typechecked(fn: TerraFunction) -> None:
    """Typecheck ``fn`` and its whole connected component (paper Fig. 4)."""
    connected_component(fn)


def ensure_compiled(fn: TerraFunction, backend):
    """Compile ``fn``'s connected component on ``backend`` and return a
    callable handle for ``fn``."""
    component = connected_component(fn)
    return backend.compile_unit(fn, component)
