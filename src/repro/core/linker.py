"""Linking: connected-component typechecking and compilation.

Paper Figure 4 (TYFUN1/TYFUN2): before a Terra function runs, every
function in the connected component of its references must typecheck —
"they ensure all functions that are in the connected component of a
function are typechecked before the function is run."  A reference to a
declared-but-undefined function is a :class:`LinkError`.

Typechecking success is cached (definitions are immutable, so success is
stable); failures are *not* cached, because the result of typechecking can
"change monotonically from a type-error to success as the functions it
references are defined" — and because type reflection (``__cast``,
``__finalizelayout``) may legitimately add capabilities to types between
attempts.
"""

from __future__ import annotations

import threading

from ..errors import LinkError, TypeCheckError
from .. import trace
from .function import TerraFunction

#: functions currently being typechecked (cycle detection).  Thread-local:
#: recursion is a property of one traversal, and two *threads* visiting the
#: same function concurrently (the compile service makes that easy) must
#: not be mistaken for a recursive reference.
_tls = threading.local()


def _in_progress() -> set[int]:
    try:
        return _tls.in_progress
    except AttributeError:
        _tls.in_progress = set()
        return _tls.in_progress


def typecheck_function(fn: TerraFunction) -> None:
    """Typecheck one function (no-op for externals and cached results)."""
    if fn.typed is not None or fn.is_external:
        return
    if not fn.isdefined():
        raise LinkError(
            f"Terra function {fn.name!r} is declared but not defined")
    in_progress = _in_progress()
    if fn.uid in in_progress:
        raise TypeCheckError(
            f"function {fn.name!r} is recursive (directly or mutually) and "
            f"needs an explicit return type annotation")
    from .typechecker import TypeChecker
    in_progress.add(fn.uid)
    try:
        with trace.span(f"typecheck:{fn.name}", cat="typecheck"):
            typed = TypeChecker(fn).run()
    finally:
        in_progress.discard(fn.uid)
    if fn.typed is None:  # a racing thread may have typechecked it already
        fn.typed = typed
        fn._type = typed.type


def connected_component(fn: TerraFunction) -> list[TerraFunction]:
    """All functions reachable from ``fn`` through direct references,
    including ``fn`` itself, in deterministic discovery order.  Requires
    the component to be fully typechecked."""
    seen: dict[int, TerraFunction] = {}
    order: list[TerraFunction] = []
    with trace.span(f"component:{fn.name}", cat="typecheck") as sp:
        stack = [fn]
        while stack:
            f = stack.pop()
            if f.uid in seen:
                continue
            seen[f.uid] = f
            order.append(f)
            if f.is_external:
                continue
            typecheck_function(f)
            assert f.typed is not None
            for ref in f.typed.referenced_functions:
                if ref.uid not in seen:
                    stack.append(ref)
        sp.set(component_size=len(order))
    return order


def ensure_typechecked(fn: TerraFunction) -> None:
    """Typecheck ``fn`` and its whole connected component (paper Fig. 4)."""
    connected_component(fn)


def pipelined_component(fn: TerraFunction, backend) -> list[TerraFunction]:
    """Typecheck ``fn``'s connected component and bring every member's
    typed IR to the backend's requested pipeline level.

    This is the single point where the :mod:`repro.passes` pipeline runs:
    backends receive the component *after* it, each at its declared level
    regardless of compile order (``repro.passes.pipelined_body`` serves
    lower levels from snapshots), and a function shared by two compiles
    is only transformed once (``TypedFunction.pipeline_level`` caches the
    level reached).
    """
    from ..passes import run_function_pipeline
    level = getattr(backend, "pipeline_level", None)
    with trace.span(f"link:{fn.name}", cat="typecheck",
                    backend=backend.name, level=level) as sp:
        component = connected_component(fn)
        for member in component:
            run_function_pipeline(member, level)
        sp.set(component_size=len(component))
    return component


def ensure_compiled(fn: TerraFunction, backend):
    """Compile ``fn``'s connected component on ``backend`` and return a
    callable handle for ``fn``."""
    component = pipelined_component(fn, backend)
    return backend.compile_unit(fn, component)


def ensure_compiled_async(fn: TerraFunction, backend):
    """Typecheck ``fn``'s component, emit it, and *submit* it to the
    backend's compile service without waiting; returns a
    :class:`~repro.backend.base.CompileTicket` whose ``result()`` yields
    the callable handle.

    Typechecking, the IR pipeline, and emission run synchronously in the
    caller (they touch shared linker state); only the native compile
    overlaps.  Callers that submit many units up front (the §6.1
    auto-tuner) get them compiled concurrently by the :mod:`repro.buildd`
    pool.
    """
    component = pipelined_component(fn, backend)
    return backend.compile_unit_async(fn, component)
