"""Untyped Terra AST — the parser's output, the specializer's input.

These trees may still contain :class:`Escape` nodes (meta-language code to
run during specialization) and unresolved :class:`Name` nodes.  Eager
specialization (:mod:`repro.core.specialize`) turns them into *specialized*
trees in which every name is resolved to a symbol, constant, function
reference or spliced quotation — the paper's ``ē`` terms.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import SourceLocation


class Node:
    """Base AST node; every node records its source location."""

    _fields: tuple[str, ...] = ()

    def __init__(self, location: Optional[SourceLocation] = None):
        self.location = location

    def __repr__(self) -> str:
        parts = ", ".join(f"{f}={getattr(self, f, None)!r}" for f in self._fields)
        return f"{type(self).__name__}({parts})"


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

class Expr(Node):
    pass


class Number(Expr):
    """A numeric literal; carries the lexer's suffix info so the
    typechecker can give it the right Terra type (int, double, float...)."""

    _fields = ("value", "is_float", "suffix")

    def __init__(self, value, is_float: bool, suffix: str, location=None):
        super().__init__(location)
        self.value = value
        self.is_float = is_float
        self.suffix = suffix


class String(Expr):
    _fields = ("value",)

    def __init__(self, value: str, location=None):
        super().__init__(location)
        self.value = value


class Bool(Expr):
    _fields = ("value",)

    def __init__(self, value: bool, location=None):
        super().__init__(location)
        self.value = value


class Nil(Expr):
    """``nil`` — the null pointer constant."""


class Name(Expr):
    _fields = ("name",)

    def __init__(self, name: str, location=None):
        super().__init__(location)
        self.name = name


class Escape(Expr):
    """``[ python-code ]`` — evaluated in the shared lexical environment
    during specialization; the result is spliced into the Terra tree."""

    _fields = ("code",)

    def __init__(self, code: str, location=None):
        super().__init__(location)
        self.code = code


class Select(Expr):
    """``a.b`` — struct field access *or* meta-namespace lookup; which one
    is decided during specialization (paper: nested Lua-table sugar)."""

    _fields = ("obj", "field")

    def __init__(self, obj: Expr, field: str, location=None):
        super().__init__(location)
        self.obj = obj
        self.field = field


class Index(Expr):
    """``a[i]`` — pointer/array/vector indexing."""

    _fields = ("obj", "index")

    def __init__(self, obj: Expr, index: Expr, location=None):
        super().__init__(location)
        self.obj = obj
        self.index = index


class Apply(Expr):
    """``f(a, b)`` — call; becomes a cast if ``f`` specializes to a type."""

    _fields = ("fn", "args")

    def __init__(self, fn: Expr, args: Sequence[Expr], location=None):
        super().__init__(location)
        self.fn = fn
        self.args = list(args)


class MethodCall(Expr):
    """``obj:m(a)`` — sugar for ``[T.methods.m](&obj, a)`` (paper §4.1)."""

    _fields = ("obj", "name", "args")

    def __init__(self, obj: Expr, name: str, args: Sequence[Expr], location=None):
        super().__init__(location)
        self.obj = obj
        self.name = name
        self.args = list(args)


class UnOp(Expr):
    """Unary operators: ``-``, ``not``, ``&`` (address-of), ``@`` (deref)."""

    _fields = ("op", "operand")

    def __init__(self, op: str, operand: Expr, location=None):
        super().__init__(location)
        self.op = op
        self.operand = operand


class BinOp(Expr):
    _fields = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, location=None):
        super().__init__(location)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class CtorField:
    """One initializer in a struct constructor: positional or named."""

    __slots__ = ("name", "value")

    def __init__(self, name: Optional[str], value: Expr):
        self.name = name
        self.value = value

    def __repr__(self) -> str:
        return f"CtorField({self.name!r}, {self.value!r})"


class Constructor(Expr):
    """``T { ... }`` (typed) or ``{ a = 1, 2 }`` (anonymous struct)."""

    _fields = ("type_expr", "fields")

    def __init__(self, type_expr: Optional[Expr], fields: Sequence[CtorField],
                 location=None):
        super().__init__(location)
        self.type_expr = type_expr
        self.fields = list(fields)


class FunctionTypeExpr(Expr):
    """``{T1, T2} -> R`` appearing in type position."""

    _fields = ("parameters", "returns")

    def __init__(self, parameters: Sequence[Expr], returns: Sequence[Expr],
                 location=None):
        super().__init__(location)
        self.parameters = list(parameters)
        self.returns = list(returns)


class TupleTypeExpr(Expr):
    """``{T1, T2}`` in type position; ``{}`` is the unit type."""

    _fields = ("elements",)

    def __init__(self, elements: Sequence[Expr], location=None):
        super().__init__(location)
        self.elements = list(elements)


class TreeRef(Expr):
    """A pre-specialized tree spliced in by the specializer (never produced
    by the parser).  Wraps specialized nodes when a quote is inserted."""

    _fields = ("tree",)

    def __init__(self, tree, location=None):
        super().__init__(location)
        self.tree = tree


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

class Stat(Node):
    pass


class Block(Node):
    _fields = ("statements",)

    def __init__(self, statements: Sequence[Stat], location=None):
        super().__init__(location)
        self.statements = list(statements)


class VarTarget:
    """One declared variable: a literal name or an escape that must
    evaluate to a symbol (paper Fig. 5: ``var [caddr[m][n]] = ...``)."""

    __slots__ = ("name", "escape", "type_expr")

    def __init__(self, name: Optional[str], escape: Optional[Escape],
                 type_expr: Optional[Expr]):
        self.name = name
        self.escape = escape
        self.type_expr = type_expr

    def __repr__(self) -> str:
        return f"VarTarget({self.name!r}, {self.escape!r}, {self.type_expr!r})"


class VarStat(Stat):
    """``var a : int, b = e1, e2``"""

    _fields = ("targets", "inits")

    def __init__(self, targets: Sequence[VarTarget],
                 inits: Optional[Sequence[Expr]], location=None):
        super().__init__(location)
        self.targets = list(targets)
        self.inits = list(inits) if inits is not None else None


class AssignStat(Stat):
    _fields = ("lhs", "rhs")

    def __init__(self, lhs: Sequence[Expr], rhs: Sequence[Expr], location=None):
        super().__init__(location)
        self.lhs = list(lhs)
        self.rhs = list(rhs)


class IfStat(Stat):
    _fields = ("branches", "orelse")

    def __init__(self, branches: Sequence[tuple[Expr, Block]],
                 orelse: Optional[Block], location=None):
        super().__init__(location)
        self.branches = list(branches)
        self.orelse = orelse


class WhileStat(Stat):
    _fields = ("cond", "body")

    def __init__(self, cond: Expr, body: Block, location=None):
        super().__init__(location)
        self.cond = cond
        self.body = body


class RepeatStat(Stat):
    """``repeat body until cond``"""

    _fields = ("body", "cond")

    def __init__(self, body: Block, cond: Expr, location=None):
        super().__init__(location)
        self.body = body
        self.cond = cond


class ForNum(Stat):
    """``for i = start, limit [, step] do body end``.

    Terra's numeric for iterates over the half-open interval
    ``[start, limit)`` — unlike Lua's inclusive loop.  The paper's examples
    (``for i = 0, newN do``) rely on this.
    """

    _fields = ("target", "start", "limit", "step", "body")

    def __init__(self, target: VarTarget, start: Expr, limit: Expr,
                 step: Optional[Expr], body: Block, location=None):
        super().__init__(location)
        self.target = target
        self.start = start
        self.limit = limit
        self.step = step
        self.body = body


class DoStat(Stat):
    _fields = ("body",)

    def __init__(self, body: Block, location=None):
        super().__init__(location)
        self.body = body


class ReturnStat(Stat):
    _fields = ("exprs",)

    def __init__(self, exprs: Sequence[Expr], location=None):
        super().__init__(location)
        self.exprs = list(exprs)


class BreakStat(Stat):
    pass


class ExprStat(Stat):
    _fields = ("expr",)

    def __init__(self, expr: Expr, location=None):
        super().__init__(location)
        self.expr = expr


class EscapeStat(Stat):
    """A statement-position escape: may splice a quote, a list of quotes,
    or nothing."""

    _fields = ("code",)

    def __init__(self, code: str, location=None):
        super().__init__(location)
        self.code = code


class EscapeBlock(Stat):
    """``escape <python statements> end`` — run a Python block during
    specialization; quotes passed to its ``emit(...)`` are spliced here
    in order (Terra's escape/emit)."""

    _fields = ("code",)

    def __init__(self, code: str, location=None):
        super().__init__(location)
        self.code = code


class DeferStat(Stat):
    """``defer f(args)`` — run the call when the scope exits."""

    _fields = ("call",)

    def __init__(self, call: Expr, location=None):
        super().__init__(location)
        self.call = call


# ---------------------------------------------------------------------------
# top-level definitions
# ---------------------------------------------------------------------------

class Param:
    """A formal parameter: a named+typed one, or an escape producing a
    typed symbol (or list of symbols, for ``terra([params])`` splicing)."""

    __slots__ = ("name", "escape", "type_expr", "location")

    def __init__(self, name: Optional[str], escape: Optional[Escape],
                 type_expr: Optional[Expr], location=None):
        self.name = name
        self.escape = escape
        self.type_expr = type_expr
        self.location = location

    def __repr__(self) -> str:
        return f"Param({self.name!r}, {self.escape!r}, {self.type_expr!r})"


class FunctionDef(Node):
    """``terra name(params) : rettype body end`` — possibly anonymous
    (``terra(params) ...``), possibly a method (``terra T:m(...)``)."""

    _fields = ("namepath", "method_name", "params", "return_type_expr", "body")

    def __init__(self, namepath: Optional[list[str]], method_name: Optional[str],
                 params: Sequence[Param], return_type_expr: Optional[Expr],
                 body: Block, location=None):
        super().__init__(location)
        self.namepath = namepath          # e.g. ["ImageImpl"] or None
        self.method_name = method_name    # for ``terra T:m``
        self.params = list(params)
        self.return_type_expr = return_type_expr
        self.body = body


class StructDef(Node):
    """``struct Name { field : T, ... }``"""

    _fields = ("name", "entries")

    def __init__(self, name: str, entries: Sequence[tuple[str, Expr]],
                 location=None):
        super().__init__(location)
        self.name = name
        self.entries = list(entries)


class QuoteBody(Node):
    """The parse of a ``quote ... [in e1, e2] end`` body."""

    _fields = ("block", "in_exprs")

    def __init__(self, block: Block, in_exprs: Optional[Sequence[Expr]],
                 location=None):
        super().__init__(location)
        self.block = block
        self.in_exprs = list(in_exprs) if in_exprs is not None else None
