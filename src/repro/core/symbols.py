"""Symbols — unique Terra variable identities.

The paper (§6.1): "Terra provides the function ``symbol``, equivalent to
LISP's gensym, which generates a globally unique identifier that can be
used to define and refer to a variable that will not be renamed" — the
mechanism for *selectively violating hygiene* in generated code (Figure 5
uses it for the register-blocking temporaries).

Hygiene itself is also implemented with symbols: every ``var`` declaration
and parameter is renamed to a fresh :class:`Symbol` during specialization
(the paper's LTDEFN/SLET freshness side-conditions), so splicing quotes
can never capture variables accidentally.
"""

from __future__ import annotations

import itertools
from typing import Optional

from . import types as T

_counter = itertools.count(1)


class Symbol:
    """A unique variable identity, optionally carrying a Terra type.

    A typed symbol can be used directly as a function parameter
    (``terra([A] : &double, ...)`` or ``terra([sym])`` when the symbol
    itself carries its type).
    """

    __slots__ = ("id", "displayname", "type")

    def __init__(self, type: Optional[T.Type] = None,  # noqa: A002
                 displayname: Optional[str] = None):
        if type is not None and not isinstance(type, T.Type):
            raise TypeError(f"symbol type must be a Terra type, got {type!r}")
        self.id = next(_counter)
        self.displayname = displayname
        self.type = type

    @property
    def name(self) -> str:
        """A readable unique name (used in diagnostics and emitted C)."""
        base = self.displayname or "v"
        return f"{base}_{self.id}"

    def __repr__(self) -> str:
        ty = f" : {self.type}" if self.type is not None else ""
        return f"${self.name}{ty}"

    def __hash__(self) -> int:
        return self.id

    def __eq__(self, other) -> bool:
        return self is other


def symbol(type: Optional[T.Type] = None,  # noqa: A002
           name: Optional[str] = None) -> Symbol:
    """Create a fresh symbol (Terra's ``symbol(type, name)``).

    Also accepts the paper's single-string form ``symbol("A")``.
    """
    if isinstance(type, str) and name is None:
        return Symbol(None, type)
    return Symbol(type, name)


def symmat(name: str, *dims: int, type: Optional[T.Type] = None):  # noqa: A002
    """Generate a (possibly multi-dimensional) matrix of symbols.

    The paper's Figure 5 helper: ``symmat("a", RM)`` gives a list of RM
    symbols; ``symmat("c", RM, RN)`` a list of RM lists of RN symbols.
    """
    if not dims:
        return symbol(type, name)
    head, *rest = dims
    return [symmat(f"{name}{i}", *rest, type=type) for i in range(head)]


class Label:
    """A unique label identity for ``goto``-style control flow (used by
    lowered constructs; not exposed in the surface syntax)."""

    __slots__ = ("id", "displayname")

    def __init__(self, displayname: Optional[str] = None):
        self.id = next(_counter)
        self.displayname = displayname

    @property
    def name(self) -> str:
        return f"{self.displayname or 'L'}_{self.id}"

    def __repr__(self) -> str:
        return f"@{self.name}"
