"""The shared lexical environment.

The paper's central design point: "the evaluation of Lua and the
generation of Terra code share the same lexical environment" (§4.1).  In
this reproduction the meta-language is Python, so "the same lexical
environment" means the Python frame in which ``terra(...)`` / ``quote_(...)``
was invoked: its locals, enclosing closure variables, and globals.

:func:`capture` snapshots that frame.  During specialization, Terra-scope
variables (function parameters, ``var`` declarations) are overlaid on top
of it so that escapes can refer to in-scope Terra variables as quoted
symbols — the paper's SVAR rule ("Variables in Terra can refer to
variables defined in Lua and in Terra; they behave as if they were
escaped").
"""

from __future__ import annotations

import builtins
import sys
from collections import ChainMap
from typing import Mapping, Optional

from ..errors import SpecializeError


_TERRA_GLOBALS: Optional[dict] = None


def _terra_globals() -> dict:
    """Names that are implicitly in scope in Terra code — the primitive
    type names and core type constructors (Terra installs these as Lua
    globals; we resolve them after the user's scope but before Python
    builtins, so Terra's ``int``/``float``/``bool`` win over Python's)."""
    global _TERRA_GLOBALS
    if _TERRA_GLOBALS is None:
        from . import types as T
        from .specialize import sizeof
        g: dict = {
            name: ty for name, ty in [
                ("int", T.int32), ("uint", T.uint32),
                ("long", T.int64), ("ulong", T.uint64),
                ("int8", T.int8), ("int16", T.int16),
                ("int32", T.int32), ("int64", T.int64),
                ("uint8", T.uint8), ("uint16", T.uint16),
                ("uint32", T.uint32), ("uint64", T.uint64),
                ("float", T.float32), ("double", T.float64),
                ("bool", T.bool_), ("rawstring", T.rawstring),
                ("intptr", T.int64), ("opaque", T.OpaqueType("opaque")),
            ]
        }
        g["vector"] = T.vector
        g["arrayof"] = T.array
        g["tuple"] = T.tuple_of
        g["sizeof"] = sizeof
        from .intrinsics import vectorof
        g["vectorof"] = vectorof
        _TERRA_GLOBALS = g
    return _TERRA_GLOBALS


class Environment:
    """A captured meta-language environment plus the Terra scope overlay."""

    def __init__(self, locals_map: Mapping, globals_map: dict,
                 description: str = "<environment>"):
        self.locals = dict(locals_map)
        self.globals = globals_map
        self.description = description

    # -- lookups --------------------------------------------------------------
    _MISSING = object()

    def lookup(self, name: str, default=_MISSING):
        if name in self.locals:
            return self.locals[name]
        if name in self.globals:
            return self.globals[name]
        terra_global = _terra_globals().get(name)
        if terra_global is not None:
            return terra_global
        if hasattr(builtins, name):
            return getattr(builtins, name)
        if default is not self._MISSING:
            return default
        raise SpecializeError(
            f"variable {name!r} is not defined in Terra scope or the "
            f"enclosing {self.description}")

    def contains(self, name: str) -> bool:
        sentinel = object()
        return self.lookup(name, sentinel) is not sentinel

    # -- escape evaluation -------------------------------------------------------
    def eval_escape(self, code: str, terra_scope: Optional[Mapping] = None,
                    location=None):
        """Evaluate escape code in this environment.

        ``terra_scope`` maps in-scope Terra variable names to their quoted
        symbol references; it shadows the captured meta bindings, exactly
        as lexical scoping demands.
        """
        maps = []
        if terra_scope:
            maps.append(dict(terra_scope))
        maps.append(self.locals)
        local_view = ChainMap(*maps) if len(maps) > 1 else maps[0]
        # Terra type sugar: escapes like [&PixelType] (paper §2) use '&' as
        # the pointer-type constructor, which is not Python syntax.
        npointer = 0
        stripped = code
        while stripped.startswith("&"):
            npointer += 1
            stripped = stripped[1:].lstrip()
        try:
            value = eval(stripped, self.globals, local_view)  # noqa: S307
        except SpecializeError:
            raise
        except Exception as exc:
            raise SpecializeError(
                f"error evaluating escape [{code}]: {exc!r}", location) from exc
        if npointer:
            from . import types as T
            coerced = T.coerce_to_type(value)
            if coerced is None:
                raise SpecializeError(
                    f"escape [&...] requires a Terra type, got {value!r}",
                    location)
            value = coerced
            for _ in range(npointer):
                value = T.pointer(value)
        return value

    def child_with(self, extra: Mapping) -> "Environment":
        merged = dict(self.locals)
        merged.update(extra)
        return Environment(merged, self.globals, self.description)


#: frames whose dynamic parent IS their lexical parent (Python < 3.12).
#: Lambdas are excluded: they may be *called* from anywhere, so walking
#: f_back would capture the wrong scope.
_COMPREHENSION_FRAMES = {"<listcomp>", "<genexpr>", "<dictcomp>", "<setcomp>"}


def capture(depth: int = 1) -> Environment:
    """Capture the Python lexical environment ``depth`` frames above the
    caller of :func:`capture`.

    ``depth=1`` means "my caller's caller" — i.e. the frame that invoked
    the public API function which called ``capture``.

    Comprehension (and lambda) frames hide the enclosing function's
    locals on Python < 3.12, so those are merged in: names used only
    inside Terra source strings never create Python closure cells, and
    ``[quote_("[acc] = ...") for i in ...]`` must still see ``acc``.
    """
    frame = sys._getframe(depth + 1)
    try:
        description = f"Python frame {frame.f_code.co_name!r}"
        merged = dict(frame.f_locals)
        outer = frame
        while outer.f_code.co_name in _COMPREHENSION_FRAMES \
                and outer.f_back is not None:
            outer = outer.f_back
            for name, value in outer.f_locals.items():
                merged.setdefault(name, value)
        return Environment(merged, frame.f_globals, description)
    finally:
        del frame


def from_mapping(mapping: Optional[Mapping]) -> Environment:
    """Build an environment from an explicit dict (the ``env=`` keyword)."""
    if mapping is None:
        return Environment({}, {}, "<empty environment>")
    if isinstance(mapping, Environment):
        return mapping
    return Environment(mapping, {}, "<explicit environment>")
