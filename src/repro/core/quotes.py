"""Quotations — blocks of specialized Terra code as first-class values.

``quote ... end`` in the paper creates "a block of Terra code that can be
spliced into another Terra expression"; the back-tick creates
single-expression quotations.  Here :func:`repro.quote_` and
:func:`repro.expr` build them from source text, and libraries build them
programmatically.

Quotes are specialized *eagerly* at creation (paper §4.1): all escapes in
the body run immediately in the enclosing lexical environment, so later
mutation of meta-level variables cannot change the quote's meaning.

Quotes also support Python operator overloading (``q1 + q2`` builds the
quote of the sum), which is how DSLs like Orion assemble expression trees
without string pasting.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import SpecializeError
from . import sast
from . import types as T


class Quote:
    """A specialized fragment of Terra code.

    ``kind`` is ``"expression"`` (wraps one ``SExpr``) or ``"statements"``
    (wraps an ``SBlock`` plus optional ``in`` expressions).
    """

    EXPRESSION = "expression"
    STATEMENTS = "statements"

    __slots__ = ("kind", "tree", "in_exprs")

    def __init__(self, kind: str, tree, in_exprs: Optional[Sequence[sast.SExpr]] = None):
        assert kind in (self.EXPRESSION, self.STATEMENTS)
        self.kind = kind
        self.tree = tree
        self.in_exprs = list(in_exprs) if in_exprs is not None else None

    # -- splicing support ---------------------------------------------------
    def as_expression(self) -> sast.SExpr:
        """The tree to splice in expression position."""
        if self.kind == self.EXPRESSION:
            return sast.copy_tree(self.tree)
        if self.in_exprs is not None and len(self.in_exprs) >= 1:
            block = sast.copy_tree(self.tree)
            exprs = [sast.copy_tree(e) for e in self.in_exprs]
            return sast.SLetIn(block, exprs)
        raise SpecializeError(
            "cannot splice a statements-quote (with no 'in' expression) "
            "into expression position")

    def as_statements(self) -> list[sast.SStat]:
        """The statements to splice in statement position."""
        if self.kind == self.EXPRESSION:
            return [sast.SExprStat(sast.copy_tree(self.tree))]
        block = sast.copy_tree(self.tree)
        stmts = list(block.statements)
        if self.in_exprs:
            # 'in' expressions used in statement position are evaluated for
            # effect (they are usually calls)
            stmts.extend(sast.SExprStat(sast.copy_tree(e)) for e in self.in_exprs)
        return stmts

    # -- programmatic construction -------------------------------------------
    @staticmethod
    def from_expr(tree: sast.SExpr) -> "Quote":
        return Quote(Quote.EXPRESSION, tree)

    @staticmethod
    def from_statements(block: sast.SBlock,
                        in_exprs: Optional[Sequence[sast.SExpr]] = None) -> "Quote":
        return Quote(Quote.STATEMENTS, block, in_exprs)

    @staticmethod
    def wrap(value) -> "Quote":
        """Coerce a Python value (or quote, or symbol) to a Quote."""
        from .specialize import embed_value  # cycle: specialize imports quotes
        if isinstance(value, Quote):
            return value
        return Quote.from_expr(embed_value(value, None))

    def _binop(self, op: str, other, reflected: bool = False) -> "Quote":
        lhs, rhs = (other, self) if reflected else (self, other)
        return Quote.from_expr(sast.SBinOp(
            op, Quote.wrap(lhs).as_expression(), Quote.wrap(rhs).as_expression()))

    # arithmetic --------------------------------------------------------------
    def __add__(self, other):
        return self._binop("+", other)

    def __radd__(self, other):
        return self._binop("+", other, reflected=True)

    def __sub__(self, other):
        return self._binop("-", other)

    def __rsub__(self, other):
        return self._binop("-", other, reflected=True)

    def __mul__(self, other):
        return self._binop("*", other)

    def __rmul__(self, other):
        return self._binop("*", other, reflected=True)

    def __truediv__(self, other):
        return self._binop("/", other)

    def __rtruediv__(self, other):
        return self._binop("/", other, reflected=True)

    def __mod__(self, other):
        return self._binop("%", other)

    def __rmod__(self, other):
        return self._binop("%", other, reflected=True)

    def __neg__(self):
        return Quote.from_expr(sast.SUnOp("-", self.as_expression()))

    # comparisons build Terra comparisons, not Python bools -----------------
    def eq(self, other) -> "Quote":
        return self._binop("==", other)

    def ne(self, other) -> "Quote":
        return self._binop("~=", other)

    def lt(self, other) -> "Quote":
        return self._binop("<", other)

    def le(self, other) -> "Quote":
        return self._binop("<=", other)

    def gt(self, other) -> "Quote":
        return self._binop(">", other)

    def ge(self, other) -> "Quote":
        return self._binop(">=", other)

    # structure access ---------------------------------------------------------
    def select(self, field: str) -> "Quote":
        return Quote.from_expr(sast.SSelect(self.as_expression(), field))

    def index(self, idx) -> "Quote":
        return Quote.from_expr(sast.SIndex(
            self.as_expression(), Quote.wrap(idx).as_expression()))

    def __getitem__(self, idx):
        return self.index(idx)

    def call(self, *args) -> "Quote":
        return Quote.from_expr(sast.SApply(
            self.as_expression(), [Quote.wrap(a).as_expression() for a in args]))

    def __call__(self, *args):
        return self.call(*args)

    def methodcall(self, name: str, *args) -> "Quote":
        return Quote.from_expr(sast.SMethodCall(
            self.as_expression(), name,
            [Quote.wrap(a).as_expression() for a in args]))

    def addressof(self) -> "Quote":
        return Quote.from_expr(sast.SUnOp("&", self.as_expression()))

    def deref(self) -> "Quote":
        return Quote.from_expr(sast.SUnOp("@", self.as_expression()))

    def cast(self, ty: T.Type) -> "Quote":
        return Quote.from_expr(sast.SCast(ty, self.as_expression()))

    def __repr__(self) -> str:
        return f"Quote<{self.kind}>({self.tree!r})"
