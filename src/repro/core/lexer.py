"""Tokenizer for the Terra surface language.

Terra's lexical structure is Lua's, extended with the C-flavoured operators
the low-level language needs (``&`` address-of, ``@`` dereference, ``->``
in function types, shifts).  Comments are Lua comments (``--`` and
``--[[ ... ]]``).  Numeric literals accept C-style suffixes used in the
paper's examples (``0.f`` for a float constant, ``3ULL`` etc.).

Because Terra escapes ``[ ... ]`` contain *meta-language* code (Lua in the
paper, Python here) that is not Terra-tokenizable in general, the lexer is
streaming: the parser consumes tokens one at a time and, when it decides a
``[`` opens an escape, asks the lexer to scan the raw bracket body as
Python text (:meth:`Lexer.scan_escape`).
"""

from __future__ import annotations

from ..errors import SourceLocation, TerraSyntaxError

_DIGITS = "0123456789"


def _isdigit(ch: str) -> bool:
    # str.isdigit() accepts unicode digits like '²' that int() rejects
    return ch in _DIGITS

KEYWORDS = {
    "and", "break", "defer", "do", "else", "elseif", "end", "escape",
    "false", "for", "goto", "if", "in", "nil", "not", "or", "quote",
    "repeat", "return", "struct", "terra", "then", "true", "until", "var",
    "while",
}

#: multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "...", "..", "->", "==", "~=", "<=", ">=", "<<", ">>",
    "+", "-", "*", "/", "%", "^", "#", "&", "|", "~", "@",
    "<", ">", "=", "(", ")", "{", "}", "[", "]", ";", ":", ",", ".", "`",
]


class Token:
    __slots__ = ("kind", "value", "location", "end_offset")

    NAME = "name"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"
    OP = "op"
    EOF = "eof"

    def __init__(self, kind: str, value, location: SourceLocation,
                 end_offset: int = -1):
        self.kind = kind
        self.value = value
        self.location = location
        self.end_offset = end_offset

    def matches(self, kind: str, value=None) -> bool:
        return self.kind == kind and (value is None or self.value == value)

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


class NumberValue:
    """A numeric literal plus the type constraint from its suffix/shape."""

    __slots__ = ("value", "is_float", "suffix")

    def __init__(self, value, is_float: bool, suffix: str):
        self.value = value
        self.is_float = is_float
        self.suffix = suffix  # "", "f", "u", "ll", "ull"

    def __repr__(self) -> str:
        return f"NumberValue({self.value!r}, float={self.is_float}, {self.suffix!r})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, NumberValue) and self.value == other.value
                and self.is_float == other.is_float and self.suffix == other.suffix)


class Lexer:
    """A streaming tokenizer with raw-escape scanning."""

    def __init__(self, source: str, filename: str = "<terra>",
                 first_line: int = 1):
        self.source = source
        self.filename = filename
        self.first_line = first_line
        self.pos = 0
        self.line = first_line
        self.line_start = 0

    # -- bookkeeping --------------------------------------------------------
    def _location(self) -> SourceLocation:
        line_end = self.source.find("\n", self.line_start)
        if line_end < 0:
            line_end = len(self.source)
        return SourceLocation(self.filename, self.line,
                              self.pos - self.line_start + 1,
                              self.source[self.line_start:line_end])

    def _error(self, message: str) -> TerraSyntaxError:
        return TerraSyntaxError(message, self._location())

    def _advance_lines(self, start: int, end: int) -> None:
        added = self.source.count("\n", start, end)
        if added:
            self.line += added
            self.line_start = self.source.rfind("\n", start, end) + 1

    # -- token production ----------------------------------------------------
    def _skip_trivia(self) -> None:
        src, n = self.source, len(self.source)
        while self.pos < n:
            ch = src[self.pos]
            if ch == "\n":
                self.line += 1
                self.pos += 1
                self.line_start = self.pos
            elif ch in " \t\r":
                self.pos += 1
            elif src.startswith("--", self.pos):
                if src.startswith("--[[", self.pos):
                    end = src.find("]]", self.pos + 4)
                    if end < 0:
                        raise self._error("unterminated block comment")
                    self._advance_lines(self.pos, end)
                    self.pos = end + 2
                else:
                    end = src.find("\n", self.pos)
                    self.pos = n if end < 0 else end
            else:
                return

    def next_token(self) -> Token:
        self._skip_trivia()
        src, n = self.source, len(self.source)
        if self.pos >= n:
            return Token(Token.EOF, None, self._location(), self.pos)
        loc = self._location()
        ch = src[self.pos]
        # names / keywords ---------------------------------------------------
        if ch.isalpha() or ch == "_":
            start = self.pos
            while self.pos < n and (src[self.pos].isalnum() or src[self.pos] == "_"):
                self.pos += 1
            word = src[start:self.pos]
            kind = Token.KEYWORD if word in KEYWORDS else Token.NAME
            return Token(kind, word, loc, self.pos)
        # numbers --------------------------------------------------------------
        if _isdigit(ch) or (ch == "." and self.pos + 1 < n and _isdigit(src[self.pos + 1])):
            return self._scan_number(loc)
        # strings --------------------------------------------------------------
        if ch in "\"'":
            return self._scan_string(loc)
        # operators -----------------------------------------------------------
        for op in _OPERATORS:
            if src.startswith(op, self.pos):
                self.pos += len(op)
                return Token(Token.OP, op, loc, self.pos)
        raise self._error(f"unexpected character {ch!r}")

    def _scan_number(self, loc: SourceLocation) -> Token:
        src, n = self.source, len(self.source)
        start = self.pos
        is_float = False
        if src.startswith(("0x", "0X"), self.pos):
            self.pos += 2
            while self.pos < n and src[self.pos] in "0123456789abcdefABCDEF":
                self.pos += 1
            if self.pos == start + 2:
                raise self._error("malformed hex literal (no digits after 0x)")
            value: int | float = int(src[start:self.pos], 16)
        else:
            while self.pos < n and _isdigit(src[self.pos]):
                self.pos += 1
            if (self.pos < n and src[self.pos] == "."
                    and not src.startswith("..", self.pos)):
                is_float = True
                self.pos += 1
                while self.pos < n and _isdigit(src[self.pos]):
                    self.pos += 1
            if self.pos < n and src[self.pos] in "eE":
                peek = self.pos + 1
                if peek < n and src[peek] in "+-":
                    peek += 1
                if peek < n and _isdigit(src[peek]):
                    is_float = True
                    self.pos = peek
                    while self.pos < n and _isdigit(src[self.pos]):
                        self.pos += 1
                else:
                    # C (and Terra) reject a dangling exponent outright;
                    # silently lexing `1e` as `1` + identifier `e` hides
                    # the typo behind a confusing parse error later.
                    raise self._error(
                        "malformed number literal (exponent has no digits)")
            text = src[start:self.pos]
            value = float(text) if is_float else int(text)
        suffix = ""
        sfx_start = self.pos
        while self.pos < n and src[self.pos] in "fFuUlL":
            self.pos += 1
        raw_suffix = src[sfx_start:self.pos].lower()
        if raw_suffix:
            if raw_suffix == "f":
                is_float, value, suffix = True, float(value), "f"
            elif raw_suffix in ("u", "ul", "lu"):
                suffix = "u"
            elif raw_suffix in ("ull", "llu"):
                suffix = "ull"
            elif raw_suffix in ("l", "ll"):
                suffix = "ll"
            else:
                raise self._error(f"bad numeric suffix {raw_suffix!r}")
        return Token(Token.NUMBER, NumberValue(value, is_float, suffix),
                     loc, self.pos)

    def _scan_string(self, loc: SourceLocation) -> Token:
        src, n = self.source, len(self.source)
        quote_char = src[self.pos]
        self.pos += 1
        chunks: list[str] = []
        mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", "'": "'",
                   '"': '"', "0": "\0", "a": "\a", "b": "\b", "f": "\f",
                   "v": "\v"}
        while True:
            if self.pos >= n:
                raise self._error("unterminated string literal")
            c = src[self.pos]
            if c == quote_char:
                self.pos += 1
                break
            if c == "\n":
                raise self._error("newline in string literal")
            if c == "\\":
                self.pos += 1
                if self.pos >= n:
                    raise self._error("unterminated escape sequence")
                esc = src[self.pos]
                if esc not in mapping:
                    raise self._error(f"unknown escape sequence \\{esc}")
                chunks.append(mapping[esc])
                self.pos += 1
            else:
                chunks.append(c)
                self.pos += 1
        return Token(Token.STRING, "".join(chunks), loc, self.pos)

    # -- raw escape scanning -----------------------------------------------
    def scan_escape(self, open_offset: int) -> tuple[str, SourceLocation]:
        """Scan the body of a ``[ ... ]`` escape as raw Python source.

        ``open_offset`` is the offset just *after* the ``[`` token (its
        ``end_offset``).  Returns the Python source text and its location,
        and leaves the lexer positioned after the closing ``]``.  Tracks
        Python string literals (including triple quotes) and nested
        brackets so that e.g. ``[xs[i]("][")]`` scans correctly.
        """
        src, n = self.source, len(self.source)
        if open_offset != self.pos:
            # The parser buffered lookahead past the '['; rewind and
            # recompute line bookkeeping from scratch.
            self.pos = open_offset
            self.line = self.first_line + src.count("\n", 0, open_offset)
            self.line_start = src.rfind("\n", 0, open_offset) + 1
        loc = self._location()
        depth = 1
        i = self.pos
        while i < n:
            c = src[i]
            if c in "\"'":
                quote = c
                if src.startswith(quote * 3, i):
                    end = src.find(quote * 3, i + 3)
                    if end < 0:
                        raise self._error("unterminated string in escape")
                    i = end + 3
                    continue
                i += 1
                while i < n and src[i] != quote:
                    i += 2 if src[i] == "\\" else 1
                if i >= n:
                    raise self._error("unterminated string in escape")
                i += 1
                continue
            if c == "#":
                end = src.find("\n", i)
                i = n if end < 0 else end
                continue
            if c in "([{":
                depth += 1
            elif c in ")]}":
                depth -= 1
                if depth == 0:
                    body = src[self.pos:i]
                    self._advance_lines(self.pos, i + 1)
                    self.pos = i + 1
                    return body, loc
            i += 1
        raise self._error("unterminated escape: missing ']'")


    def scan_escape_block(self, open_offset: int) -> tuple[str, SourceLocation]:
        """Scan the body of an ``escape ... end`` block as raw Python
        statements.  The block ends at the first line whose entire content
        is ``end`` while outside any Python bracket or string.  Leaves the
        lexer positioned after that ``end``."""
        src, n = self.source, len(self.source)
        if open_offset != self.pos:
            self.pos = open_offset
            self.line = self.first_line + src.count("\n", 0, open_offset)
            self.line_start = src.rfind("\n", 0, open_offset) + 1
        loc = self._location()
        depth = 0
        i = self.pos
        line_begin = i
        while i < n:
            c = src[i]
            if c in "\"'":
                quote = c
                if src.startswith(quote * 3, i):
                    endq = src.find(quote * 3, i + 3)
                    if endq < 0:
                        raise self._error("unterminated string in escape block")
                    i = endq + 3
                    continue
                i += 1
                while i < n and src[i] != quote and src[i] != "\n":
                    i += 2 if src[i] == "\\" else 1
                if i < n and src[i] == quote:
                    i += 1
                continue
            if c == "#":
                nl = src.find("\n", i)
                i = n if nl < 0 else nl
                continue
            if c in "([{":
                depth += 1
            elif c in ")]}":
                depth = max(0, depth - 1)
            elif c == "\n":
                i += 1
                line_begin = i
                continue
            elif depth == 0 and src.startswith("end", i) \
                    and src[line_begin:i].strip() == "" \
                    and (i + 3 >= n or not (src[i + 3].isalnum()
                                            or src[i + 3] == "_")):
                body = src[self.pos:line_begin]
                self._advance_lines(self.pos, i + 3)
                self.pos = i + 3
                return body, loc
            i += 1
        raise self._error("unterminated escape block: missing 'end'")


def tokenize(source: str, filename: str = "<terra>",
             first_line: int = 1) -> list[Token]:
    """Eagerly tokenize escape-free Terra source (used by tests)."""
    lexer = Lexer(source, filename, first_line)
    tokens = []
    while True:
        tok = lexer.next_token()
        tokens.append(tok)
        if tok.kind == Token.EOF:
            return tokens
