"""Lazy typechecking of specialized Terra functions.

Runs the first time a function is called or referenced by a called
function (paper §4.1: "we perform typechecking and linking lazily").  The
checker:

* computes a type for every expression, inserting implicit conversions
  (C's usual arithmetic conversions, NULL adoption, array decay, scalar →
  vector broadcast),
* desugars method invocations ``obj:m(a)`` into direct calls through the
  receiver's static type (``T.methods.m``), running ``__methodmissing``
  when the method is absent,
* expands user-defined conversions via the ``__cast`` metamethod — trying
  the *starting* type's metamethod first when both types define one,
  exactly as the paper specifies,
* finalizes struct layouts via ``__finalizelayout`` right before a type is
  first examined,
* lowers ``defer`` into explicit calls on every scope exit path,
* records every referenced function for connected-component linking.

Typechecking is monotonic: a function that fails only because a referenced
declaration is still undefined will succeed once it is defined; an
ill-typed body stays ill-typed (definitions are immutable).
"""

from __future__ import annotations

import os
from typing import Optional

from ..errors import LinkError, TypeCheckError
from . import sast, tast
from . import types as T
from .function import PyCallback, TerraFunction
from .intrinsics import lookup as lookup_intrinsic
from .quotes import Quote
from .specialize import Macro
from .symbols import Symbol

_ARITH_OPS = {"+", "-", "*", "/", "%"}
_COMPARE_OPS = {"<", ">", "<=", ">=", "==", "~="}
_SHIFT_OPS = {"<<", ">>"}
_BITWISE_OPS = {"&", "|", "^"}


def _is_void_ptr(ty: T.Type) -> bool:
    return (ty.ispointer()
            and isinstance(ty.pointee, T.OpaqueType)
            and ty.pointee.name == "void")


def type_of_function(fn: TerraFunction) -> T.FunctionType:
    """The declared or inferred type of ``fn``; typechecks on demand with
    cycle detection (recursive functions must annotate return types)."""
    if fn._type is not None:
        return fn._type
    if not fn.isdefined():
        raise LinkError(
            f"Terra function {fn.name!r} is declared but not defined")
    from .linker import typecheck_function
    typecheck_function(fn)
    assert fn._type is not None
    return fn._type


class TypeChecker:
    def __init__(self, func: TerraFunction):
        self.func = func
        self.scope: dict[Symbol, T.Type] = {}
        self.declared_ret = func.declared_rettype
        self.inferred_ret: Optional[T.Type] = None
        self.loop_depth = 0
        #: stack of per-scope deferred calls; each frame: (is_loop, [TExpr])
        self.defer_stack: list[tuple[bool, list[tast.TExpr]]] = []
        self.referenced_functions: list[TerraFunction] = []
        self.referenced_globals: list = []
        self.referenced_callbacks: list[PyCallback] = []

    # -- entry point ----------------------------------------------------------
    def run(self) -> tast.TypedFunction:
        fn = self.func
        assert fn.body is not None
        for sym, ty in zip(fn.param_symbols, fn.param_types):
            self._check_complete(ty, fn.location)
            self.scope[sym] = ty
        body = self.check_block(fn.body)
        if self.declared_ret is not None:
            rettype = self.declared_ret
        elif self.inferred_ret is not None:
            rettype = self.inferred_ret
        else:
            rettype = T.unit
        rets = self._rettype_to_list(rettype)
        ftype = T.FunctionType(fn.param_types, rets)
        typed = tast.TypedFunction(fn, list(fn.param_symbols), ftype, body)
        typed.referenced_functions = self.referenced_functions
        typed.referenced_globals = self.referenced_globals
        typed.referenced_callbacks = self.referenced_callbacks
        if os.environ.get("REPRO_TERRA_VERIFY_IR", "") not in ("", "0"):
            # catch malformed trees at the source before any pass touches
            # them (the pass manager re-verifies after each transform)
            from ..passes.verify import verify_function
            verify_function(typed, where="after typechecking")
        return typed

    @staticmethod
    def _rettype_to_list(rettype: T.Type) -> list[T.Type]:
        if isinstance(rettype, T.TupleType):
            return list(rettype.element_types)
        return [rettype]

    def _check_complete(self, ty: T.Type, location) -> None:
        if isinstance(ty, T.StructType):
            ty.complete()
        if isinstance(ty, T.OpaqueType):
            raise TypeCheckError(
                f"cannot use incomplete type {ty} by value", location)

    # ======================================================================
    # conversions
    # ======================================================================
    def convert(self, expr: tast.TExpr, target: T.Type, location,
                explicit: bool = False) -> tast.TExpr:
        source = expr.type
        if source is target:
            return expr
        if isinstance(target, T.StructType):
            target.complete()
        if isinstance(source, T.StructType):
            source.complete()
        # NULL adopts any pointer type -------------------------------------
        if isinstance(expr, tast.TNull) and target.ispointer():
            return tast.TNull(target, location)
        # primitive numeric conversions --------------------------------------
        if isinstance(source, T.PrimitiveType) and isinstance(target, T.PrimitiveType):
            if source.isarithmetic() and target.isarithmetic():
                return self._fold_cast(target, expr, "numeric", location)
            if explicit and (source.islogical() or target.islogical()):
                return tast.TCast(target, expr, "numeric", location)
        # pointer conversions ---------------------------------------------------
        if source.ispointer() and target.ispointer():
            # void* converts implicitly in both directions, as in C
            if _is_void_ptr(source) or _is_void_ptr(target):
                return tast.TCast(target, expr, "pointer", location)
            if explicit:
                return tast.TCast(target, expr, "pointer", location)
            cast = self._try_user_cast(source, target, expr, location)
            if cast is not None:
                return cast
            raise TypeCheckError(
                f"cannot implicitly convert {source} to {target}; "
                f"use an explicit cast", location)
        if explicit and source.ispointer() and target.isintegral() \
                and isinstance(target, T.PrimitiveType) and target.bytes == 8:
            return tast.TCast(target, expr, "ptr-int", location)
        if explicit and source.isintegral() and target.ispointer():
            return tast.TCast(target, expr, "int-ptr", location)
        # array decay: T[N] lvalue -> &T -----------------------------------------
        if source.isarray() and target.ispointer() \
                and isinstance(source, T.ArrayType) \
                and source.elem is target.pointee:
            if not expr.lvalue:
                raise TypeCheckError(
                    "cannot take the address of an array rvalue", location)
            first = tast.TIndex(expr, tast.TConst(0, T.int64, location),
                                source.elem, location)
            return tast.TAddressOf(first, location)
        # scalar -> vector broadcast ------------------------------------------------
        if isinstance(target, T.VectorType) and isinstance(source, T.PrimitiveType):
            if source.isarithmetic() and target.elem.isarithmetic():
                scalar = self.convert(expr, target.elem, location, explicit)
                return tast.TCast(target, scalar, "broadcast", location)
        # vector -> vector elementwise -------------------------------------------
        if isinstance(target, T.VectorType) and isinstance(source, T.VectorType):
            if source.count == target.count and explicit:
                return tast.TCast(target, expr, "vector", location)
        # anonymous aggregate -> struct ----------------------------------------------
        if isinstance(source, T.StructType) and isinstance(target, T.StructType):
            cast = self._try_user_cast(source, target, expr, location)
            if cast is not None:
                return cast
            if isinstance(expr, tast.TCtor):
                recast = self._ctor_to_struct(expr, target, location)
                if recast is not None:
                    return recast
        # user-defined conversions for any struct-involved pair ------------------
        if isinstance(source, T.StructType) or isinstance(target, T.StructType) \
                or (source.ispointer() and isinstance(source.pointee, T.StructType)):
            cast = self._try_user_cast(source, target, expr, location)
            if cast is not None:
                return cast
        raise TypeCheckError(
            f"cannot convert {source} to {target}", location)

    def _fold_cast(self, target, expr, kind, location):
        """Constant-fold numeric casts of literals so that e.g. int
        literals used in float contexts stay exact constants."""
        if isinstance(expr, tast.TConst) and isinstance(target, T.PrimitiveType):
            value = expr.value
            if target.isfloat():
                # round at the target's precision: a double literal cast
                # to float must bake the float32 value, not the double
                from ..memory.layout import round_float
                return tast.TConst(round_float(float(value), target),
                                   target, location)
            if target.isintegral() and isinstance(value, int):
                if target.min_value() <= value <= target.max_value():
                    return tast.TConst(value, target, location)
        return tast.TCast(target, expr, kind, location)

    def _struct_of(self, ty: T.Type) -> Optional[T.StructType]:
        if isinstance(ty, T.StructType):
            return ty
        if ty.ispointer() and isinstance(ty.pointee, T.StructType):
            return ty.pointee
        return None

    def _try_user_cast(self, source: T.Type, target: T.Type,
                       expr: tast.TExpr, location) -> Optional[tast.TExpr]:
        """Run ``__cast`` metamethods.  The paper: "it will call the
        __cast metamethod of either type ... (if both are successful, we
        favor the metamethod of the starting type)"."""
        candidates = []
        src_struct = self._struct_of(source)
        dst_struct = self._struct_of(target)
        if src_struct is not None and "__cast" in src_struct.metamethods:
            candidates.append(src_struct.metamethods["__cast"])
        if dst_struct is not None and dst_struct is not src_struct \
                and "__cast" in dst_struct.metamethods:
            candidates.append(dst_struct.metamethods["__cast"])
        for cast_fn in candidates:
            try:
                result = cast_fn(source, target, Quote.from_expr(expr))
            except Exception:
                continue
            if result is None:
                continue
            typed = self.check_expr(self._quote_tree(result, location))
            if typed.type is not target:
                typed = self.convert(typed, target, location)
            return typed
        return None

    @staticmethod
    def _quote_tree(value, location):
        if isinstance(value, Quote):
            return value.as_expression()
        from .specialize import embed_value
        return embed_value(value, location)

    # ======================================================================
    # expressions
    # ======================================================================
    def check_expr(self, e) -> tast.TExpr:
        # already-typed nodes (from __cast / macro splices) pass through
        if isinstance(e, tast.TExpr):
            return e
        method = getattr(self, "_check_" + type(e).__name__, None)
        if method is None:
            raise TypeCheckError(
                f"cannot typecheck {type(e).__name__}", getattr(e, "location", None))
        return method(e)

    def check_rvalue(self, e) -> tast.TExpr:
        typed = self.check_expr(e)
        if isinstance(typed, tast.TNull):
            # un-adopted nil defaults to &int8
            return tast.TNull(T.rawstring, typed.location)
        if isinstance(typed.type, T.FunctionType):
            raise TypeCheckError(
                "a function cannot be used as a value here; take its "
                "address implicitly by referencing it", typed.location)
        return typed

    # -- leaves ------------------------------------------------------------------
    def _check_SConst(self, e: sast.SConst) -> tast.TExpr:
        ty = e.type
        if ty is None:
            ty = T.int32 if isinstance(e.value, int) else T.float64
        if isinstance(e.value, (list, tuple)) and isinstance(ty, T.VectorType):
            return tast.TConst(list(e.value), ty, e.location)
        return tast.TConst(e.value, ty, e.location)

    def _check_SString(self, e: sast.SString) -> tast.TExpr:
        return tast.TString(e.value, e.location)

    def _check_SNull(self, e: sast.SNull) -> tast.TExpr:
        return tast.TNull(T.rawstring, e.location)

    def _check_SVar(self, e: sast.SVar) -> tast.TExpr:
        ty = self.scope.get(e.symbol)
        if ty is None:
            ty = e.symbol.type
            if ty is None or e.symbol not in self.scope:
                raise TypeCheckError(
                    f"variable {e.symbol!r} is not in scope here (a quote "
                    f"may have been spliced outside the scope of its "
                    f"variables)", e.location)
        return tast.TVar(e.symbol, ty, e.location)

    def _check_SGlobal(self, e: sast.SGlobal) -> tast.TExpr:
        if e.glob not in self.referenced_globals:
            self.referenced_globals.append(e.glob)
        return tast.TGlobal(e.glob, e.location)

    def _check_SFuncRef(self, e: sast.SFuncRef) -> tast.TExpr:
        ftype = type_of_function(e.func)
        if e.func not in self.referenced_functions:
            self.referenced_functions.append(e.func)
        return tast.TFuncLit(e.func, ftype, e.location)

    def _check_SPyCallback(self, e: sast.SPyCallback) -> tast.TExpr:
        if e.callback not in self.referenced_callbacks:
            self.referenced_callbacks.append(e.callback)
        return tast.TCallback(e.callback, e.location)

    def _check_STypeRef(self, e: sast.STypeRef) -> tast.TExpr:
        raise TypeCheckError(
            f"type {e.type} used as a value (types may only appear in "
            f"casts, constructors and annotations)", e.location)

    # -- operators ---------------------------------------------------------------
    def _check_SUnOp(self, e: sast.SUnOp) -> tast.TExpr:
        if e.op == "&":
            operand = self.check_expr(e.operand)
            if not operand.lvalue:
                raise TypeCheckError(
                    "cannot take the address of an rvalue", e.location)
            return tast.TAddressOf(operand, e.location)
        if e.op == "@":
            operand = self.check_rvalue(e.operand)
            if not operand.type.ispointer():
                raise TypeCheckError(
                    f"cannot dereference non-pointer type {operand.type}",
                    e.location)
            return tast.TDeref(operand, operand.type.pointee, e.location)
        if e.op == "-":
            operand = self.check_rvalue(e.operand)
            ty = operand.type
            if isinstance(ty, T.StructType):
                ty.complete()
                hook = ty.metamethods.get("__unm")
                if hook is not None:
                    result = hook(Quote.from_expr(operand))
                    return self.check_expr(
                        self._quote_tree(result, e.location))
            if ty.isarithmetic() or (ty.isvector() and ty.isarithmetic()):
                if isinstance(operand, tast.TConst) and isinstance(
                        operand.value, (int, float)):
                    # fold with C semantics: unsigned/sub-int negation
                    # wraps at the type's width (a bare -value would bake
                    # an unrepresentable constant into the IR, which the
                    # C emitter then wraps but the interpreter would not)
                    from ..backend.interp.values import scalar_neg
                    return tast.TConst(scalar_neg(operand.value, ty),
                                       ty, e.location)
                return tast.TUnOp("-", operand, ty, e.location)
            raise TypeCheckError(f"cannot negate {ty}", e.location)
        if e.op == "not":
            operand = self.check_rvalue(e.operand)
            ty = operand.type
            if ty is T.bool_ or ty.isintegral() \
                    or (isinstance(ty, T.VectorType)
                        and (ty.islogical() or ty.isintegral())):
                return tast.TUnOp("not", operand, ty, e.location)
            raise TypeCheckError(f"'not' requires bool or integer, got {ty}",
                                 e.location)
        raise TypeCheckError(f"unknown unary operator {e.op!r}", e.location)

    def _unify_arith(self, lhs: tast.TExpr, rhs: tast.TExpr, location
                     ) -> tuple[tast.TExpr, tast.TExpr, T.Type]:
        lt, rt = lhs.type, rhs.type
        if isinstance(lt, T.VectorType) or isinstance(rt, T.VectorType):
            if isinstance(lt, T.VectorType) and isinstance(rt, T.VectorType):
                if lt.count != rt.count:
                    raise TypeCheckError(
                        f"vector length mismatch: {lt} vs {rt}", location)
                common = T.vector(T.common_primitive(lt.elem, rt.elem), lt.count)
            elif isinstance(lt, T.VectorType):
                common = T.vector(T.common_primitive(
                    lt.elem, self._as_primitive(rt, location)), lt.count)
            else:
                assert isinstance(rt, T.VectorType)
                common = T.vector(T.common_primitive(
                    self._as_primitive(lt, location), rt.elem), rt.count)
            return (self.convert(lhs, common, location),
                    self.convert(rhs, common, location), common)
        common_p = T.common_primitive(self._as_primitive(lt, location),
                                      self._as_primitive(rt, location))
        return (self.convert(lhs, common_p, location),
                self.convert(rhs, common_p, location), common_p)

    @staticmethod
    def _as_primitive(ty: T.Type, location) -> T.PrimitiveType:
        if isinstance(ty, T.PrimitiveType) and ty.isarithmetic():
            return ty
        raise TypeCheckError(f"expected an arithmetic type, got {ty}", location)

    _OP_METAMETHODS = {"+": "__add", "-": "__sub", "*": "__mul",
                       "/": "__div", "%": "__mod", "==": "__eq",
                       "~=": "__ne", "<": "__lt", "<=": "__le",
                       ">": "__gt", ">=": "__ge"}

    def _try_operator_metamethod(self, op: str, lhs: tast.TExpr,
                                 rhs: tast.TExpr, location):
        """User-defined operators: a struct operand whose metamethods
        define ``__add`` etc. handles the operator by returning a quote."""
        name = self._OP_METAMETHODS.get(op)
        if name is None:
            return None
        for operand in (lhs, rhs):
            if isinstance(operand.type, T.StructType):
                operand.type.complete()
                hook = operand.type.metamethods.get(name)
                if hook is not None:
                    result = hook(Quote.from_expr(lhs), Quote.from_expr(rhs))
                    return self.check_expr(self._quote_tree(result, location))
        return None

    def _check_SBinOp(self, e: sast.SBinOp) -> tast.TExpr:
        op = e.op
        lhs = self.check_rvalue(e.lhs)
        rhs = self.check_rvalue(e.rhs)
        overloaded = self._try_operator_metamethod(op, lhs, rhs, e.location)
        if overloaded is not None:
            return overloaded
        lt, rt = lhs.type, rhs.type
        if op in _ARITH_OPS:
            # pointer arithmetic ------------------------------------------------
            if lt.ispointer() and rt.isintegral() and op in ("+", "-"):
                idx = self.convert(rhs, T.int64, e.location)
                return tast.TBinOp(op, lhs, idx, lt, e.location)
            if rt.ispointer() and lt.isintegral() and op == "+":
                idx = self.convert(lhs, T.int64, e.location)
                return tast.TBinOp(op, rhs, idx, rt, e.location)
            if lt.ispointer() and rt.ispointer() and op == "-":
                if lt is not rt:
                    raise TypeCheckError(
                        f"cannot subtract pointers of different types "
                        f"{lt} and {rt}", e.location)
                return tast.TBinOp(op, lhs, rhs, T.int64, e.location)
            lhs, rhs, common = self._unify_arith(lhs, rhs, e.location)
            return tast.TBinOp(op, lhs, rhs, common, e.location)
        if op in _COMPARE_OPS:
            if lt.ispointer() and rt.ispointer():
                if lt is not rt and not (isinstance(lhs, tast.TNull)
                                         or isinstance(rhs, tast.TNull)):
                    raise TypeCheckError(
                        f"cannot compare pointers of different types "
                        f"{lt} and {rt}", e.location)
                if isinstance(lhs, tast.TNull):
                    lhs = tast.TNull(rt, e.location)
                if isinstance(rhs, tast.TNull):
                    rhs = tast.TNull(lt, e.location)
                return tast.TBinOp(op, lhs, rhs, T.bool_, e.location)
            if lt is T.bool_ and rt is T.bool_ and op in ("==", "~="):
                return tast.TBinOp(op, lhs, rhs, T.bool_, e.location)
            lhs, rhs, common = self._unify_arith(lhs, rhs, e.location)
            if isinstance(common, T.VectorType):
                return tast.TBinOp(op, lhs, rhs,
                                   T.vector(T.bool_, common.count), e.location)
            return tast.TBinOp(op, lhs, rhs, T.bool_, e.location)
        if op in ("and", "or"):
            if lt is T.bool_ and rt is T.bool_:
                return tast.TLogical(op, lhs, rhs, e.location)
            if lt.isintegral() and rt.isintegral():
                lhs, rhs, common = self._unify_arith(lhs, rhs, e.location)
                return tast.TBinOp(op, lhs, rhs, common, e.location)
            if isinstance(lt, T.VectorType) and isinstance(rt, T.VectorType) \
                    and lt is rt and (lt.islogical() or lt.isintegral()):
                return tast.TBinOp(op, lhs, rhs, lt, e.location)
            raise TypeCheckError(
                f"{op!r} requires two booleans or two integers, got {lt} "
                f"and {rt}", e.location)
        if op in _SHIFT_OPS:
            if not (lt.isintegral() and rt.isintegral()):
                raise TypeCheckError(
                    f"shift requires integers, got {lt} and {rt}", e.location)
            rhs = self.convert(rhs, lt if isinstance(lt, T.PrimitiveType)
                               else rt, e.location)
            return tast.TBinOp(op, lhs, rhs, lt, e.location)
        if op in _BITWISE_OPS:
            if lt.isintegral() and rt.isintegral():
                lhs, rhs, common = self._unify_arith(lhs, rhs, e.location)
                return tast.TBinOp(op, lhs, rhs, common, e.location)
            raise TypeCheckError(
                f"bitwise {op!r} requires integers, got {lt} and {rt}",
                e.location)
        raise TypeCheckError(f"unknown operator {op!r}", e.location)

    # -- memory access -----------------------------------------------------------
    def _check_SSelect(self, e: sast.SSelect) -> tast.TExpr:
        obj = self.check_expr(e.obj)
        ty = obj.type
        if ty.ispointer() and isinstance(ty.pointee, T.StructType):
            obj = tast.TDeref(obj, ty.pointee, e.location)
            ty = ty.pointee
        if not isinstance(ty, T.StructType):
            raise TypeCheckError(
                f"cannot select field {e.field!r} from non-struct type {ty}",
                e.location)
        ty.complete()
        ftype = ty.entry_type(e.field)
        if ftype is None:
            hook = ty.metamethods.get("__entrymissing")
            if hook is not None:
                result = hook(e.field, Quote.from_expr(obj))
                return self.check_expr(self._quote_tree(result, e.location))
            raise TypeCheckError(
                f"struct {ty} has no field {e.field!r} "
                f"(fields: {', '.join(ty.entry_names()) or 'none'})",
                e.location)
        return tast.TSelect(obj, e.field, ftype, e.location)

    def _check_SIndex(self, e: sast.SIndex) -> tast.TExpr:
        obj = self.check_expr(e.obj)
        index = self.convert(self.check_rvalue(e.index), T.int64, e.location)
        ty = obj.type
        if ty.ispointer():
            obj = self.check_rvalue(e.obj)
            return tast.TIndex(obj, index, ty.pointee, e.location)
        if isinstance(ty, T.ArrayType):
            return tast.TIndex(obj, index, ty.elem, e.location)
        if isinstance(ty, T.VectorType):
            return tast.TVectorIndex(obj, index, ty.elem, e.location)
        raise TypeCheckError(f"cannot index type {ty}", e.location)

    # -- calls --------------------------------------------------------------------
    def _check_SCast(self, e: sast.SCast) -> tast.TExpr:
        target = e.type
        # vector(T,N)(scalar) broadcasts; T(v) converts
        expr = self.check_rvalue(e.expr)
        return self.convert(expr, target, e.location, explicit=True)

    def _check_SApply(self, e: sast.SApply) -> tast.TExpr:
        fn = self.check_expr(e.fn)
        args = [self.check_rvalue(a) for a in e.args]
        ftype: Optional[T.FunctionType] = None
        if isinstance(fn, (tast.TFuncLit, tast.TCallback)):
            ftype = fn.type.pointee
        elif fn.type.ispointer() and isinstance(fn.type.pointee, T.FunctionType):
            ftype = fn.type.pointee
        if ftype is None:
            # struct call syntax: obj(args) via the __apply metamethod
            struct = self._struct_of(fn.type)
            if struct is not None:
                struct.complete()
                hook = struct.metamethods.get("__apply")
                if hook is not None:
                    result = hook(Quote.from_expr(fn),
                                  *[Quote.from_expr(a) for a in args])
                    return self.check_expr(
                        self._quote_tree(result, e.location))
            raise TypeCheckError(
                f"called value has non-function type {fn.type}", e.location)
        return self._build_call(fn, ftype, args, e.location)

    def _build_call(self, fn, ftype: T.FunctionType, args, location) -> tast.TCall:
        nparams = len(ftype.parameters)
        if len(args) < nparams or (len(args) > nparams and not ftype.varargs):
            raise TypeCheckError(
                f"wrong number of arguments: expected "
                f"{nparams}{'+' if ftype.varargs else ''}, got {len(args)}",
                location)
        converted = [self.convert(a, p, location)
                     for a, p in zip(args, ftype.parameters)]
        # varargs default promotions (C): float->double, small ints->int
        for extra in args[nparams:]:
            ty = extra.type
            if ty is T.float32:
                extra = self.convert(extra, T.float64, location)
            elif isinstance(ty, T.PrimitiveType) and ty.isintegral() and ty.bytes < 4:
                extra = self.convert(extra, T.int32, location)
            elif ty is T.bool_:
                extra = tast.TCast(T.int32, extra, "numeric", location)
            converted.append(extra)
        return tast.TCall(fn, converted, ftype.returntype, location)

    def _check_SMethodCall(self, e: sast.SMethodCall) -> tast.TExpr:
        obj = self.check_expr(e.obj)
        struct = self._struct_of(obj.type)
        if struct is None:
            raise TypeCheckError(
                f"cannot invoke method {e.name!r} on non-struct type "
                f"{obj.type}", e.location)
        struct.complete()
        method = struct.methods.get(e.name)
        if method is None:
            hook = struct.metamethods.get("__methodmissing")
            if hook is None:
                raise TypeCheckError(
                    f"struct {struct} has no method {e.name!r}", e.location)
            arg_quotes = [Quote.from_expr(self.check_rvalue(a)) for a in e.args]
            result = hook(e.name, Quote.from_expr(obj), *arg_quotes)
            return self.check_expr(self._quote_tree(result, e.location))
        args = [self.check_rvalue(a) for a in e.args]
        receiver = self._method_receiver(obj, struct, method, e)
        if isinstance(method, Macro):
            result = method.fn(Quote.from_expr(receiver),
                               *[Quote.from_expr(a) for a in args])
            return self.check_expr(self._quote_tree(result, e.location))
        if isinstance(method, TerraFunction):
            ftype = type_of_function(method)
            if method not in self.referenced_functions:
                self.referenced_functions.append(method)
            lit = tast.TFuncLit(method, ftype, e.location)
            return self._build_call(lit, ftype, [receiver] + args, e.location)
        raise TypeCheckError(
            f"method {e.name!r} of {struct} is {method!r}, which is not "
            f"callable from Terra", e.location)

    def _method_receiver(self, obj: tast.TExpr, struct: T.StructType,
                         method, e) -> tast.TExpr:
        """Compute the receiver argument: methods taking ``&S`` get the
        object's address (auto-&), methods taking ``S`` get the value."""
        wants_pointer = True
        if isinstance(method, TerraFunction) and method.param_types:
            first = method.param_types[0]
            wants_pointer = first.ispointer()
        if obj.type.ispointer():
            return obj if wants_pointer else \
                tast.TDeref(obj, obj.type.pointee, e.location)
        if wants_pointer:
            if not obj.lvalue:
                raise TypeCheckError(
                    f"cannot invoke pointer-receiver method {e.name!r} on "
                    f"an rvalue of type {struct}", e.location)
            return tast.TAddressOf(obj, e.location)
        return obj

    def _check_SIntrinsic(self, e: sast.SIntrinsic) -> tast.TExpr:
        intr = lookup_intrinsic(e.name)
        if intr is None:
            raise TypeCheckError(f"unknown intrinsic {e.name!r}", e.location)
        args = [self.check_rvalue(a) for a in e.args]
        result = intr.typerule([a.type for a in args])
        return tast.TIntrinsic(e.name, args, result, e.location)

    # -- aggregates ------------------------------------------------------------
    def _check_SCtor(self, e: sast.SCtor) -> tast.TExpr:
        if e.type is not None and isinstance(e.type, T.ArrayType):
            return self._check_array_ctor(e)
        if e.type is not None:
            assert isinstance(e.type, T.StructType)
            return self._ctor_with_struct(e, e.type)
        # anonymous constructor: named fields -> fresh struct; else tuple
        values = [self.check_rvalue(f.value) for f in e.fields]
        names = [f.name for f in e.fields]
        if any(n is not None for n in names):
            anon = T.StructType()
            for i, (name, v) in enumerate(zip(names, values)):
                anon.add_entry(name if name is not None else f"_{i}", v.type)
            anon._anonymous_ctor = True
            return tast.TCtor(anon, values, e.location)
        tup = T.TupleType(tuple(v.type for v in values))
        return tast.TCtor(tup, values, e.location)

    def _check_array_ctor(self, e: sast.SCtor) -> tast.TExpr:
        aty = e.type
        assert isinstance(aty, T.ArrayType)
        if any(f.name is not None for f in e.fields):
            raise TypeCheckError("array constructors take positional values",
                                 e.location)
        if len(e.fields) > aty.count:
            raise TypeCheckError(
                f"too many initializers for {aty}", e.location)
        inits = [self.convert(self.check_rvalue(f.value), aty.elem, e.location)
                 for f in e.fields]
        while len(inits) < aty.count:
            inits.append(self._zero_expr(aty.elem, e.location))
        return tast.TCtor(aty, inits, e.location)

    def _ctor_with_struct(self, e: sast.SCtor,
                          struct: T.StructType) -> tast.TExpr:
        struct.complete()
        entries = struct.entries
        inits: dict[str, tast.TExpr] = {}
        positional = 0
        for f in e.fields:
            value = self.check_rvalue(f.value)
            if f.name is not None:
                if struct.entry_type(f.name) is None:
                    raise TypeCheckError(
                        f"struct {struct} has no field {f.name!r}", e.location)
                inits[f.name] = self.convert(value, struct.entry_type(f.name),
                                             e.location)
            else:
                if positional >= len(entries):
                    raise TypeCheckError(
                        f"too many initializers for {struct}", e.location)
                entry = entries[positional]
                positional += 1
                inits[entry.field] = self.convert(value, entry.type, e.location)
        ordered = []
        for entry in entries:
            if entry.field in inits:
                ordered.append(inits[entry.field])
            else:
                ordered.append(self._zero_expr(entry.type, e.location))
        return tast.TCtor(struct, ordered, e.location)

    def _ctor_to_struct(self, ctor: tast.TCtor, target: T.StructType,
                        location) -> Optional[tast.TExpr]:
        """Convert an anonymous constructor to a named struct (field-wise,
        positionally or by name)."""
        source = ctor.type
        assert isinstance(source, T.StructType)
        target.complete()
        if len(source.entries) > len(target.entries):
            return None
        by_name = getattr(source, "_anonymous_ctor", False) or \
            isinstance(source, T.TupleType) is False
        inits: list[tast.TExpr] = []
        try:
            if isinstance(source, T.TupleType):
                for i, entry in enumerate(target.entries):
                    if i < len(ctor.inits):
                        inits.append(self.convert(ctor.inits[i], entry.type,
                                                  location))
                    else:
                        inits.append(self._zero_expr(entry.type, location))
            else:
                provided = {en.field: init for en, init in
                            zip(source.entries, ctor.inits)}
                for entry in target.entries:
                    if entry.field in provided:
                        inits.append(self.convert(provided[entry.field],
                                                  entry.type, location))
                    else:
                        inits.append(self._zero_expr(entry.type, location))
        except TypeCheckError:
            return None
        return tast.TCtor(target, inits, location)

    def _zero_expr(self, ty: T.Type, location) -> tast.TExpr:
        if isinstance(ty, T.PrimitiveType):
            if ty.islogical():
                return tast.TConst(False, ty, location)
            return tast.TConst(0 if ty.isintegral() else 0.0, ty, location)
        if ty.ispointer():
            return tast.TNull(ty, location)
        if isinstance(ty, T.VectorType):
            zero = tast.TConst(0 if ty.elem.isintegral() else 0.0, ty.elem,
                               location)
            return tast.TCast(ty, zero, "broadcast", location)
        if isinstance(ty, T.ArrayType):
            return tast.TCtor(ty, [self._zero_expr(ty.elem, location)
                                   for _ in range(ty.count)], location)
        if isinstance(ty, T.StructType):
            ty.complete()
            return tast.TCtor(ty, [self._zero_expr(en.type, location)
                                   for en in ty.entries], location)
        raise TypeCheckError(f"cannot zero-initialize type {ty}", location)

    def _check_SLetIn(self, e: sast.SLetIn) -> tast.TExpr:
        self.defer_stack.append((False, []))
        stmts: list[tast.TStat] = []
        for s in e.block.statements:
            stmts.extend(self.check_stat(s))
        if len(e.exprs) != 1:
            raise TypeCheckError(
                "a statements-quote spliced into expression position must "
                "have exactly one 'in' expression", e.location)
        value = self.check_rvalue(e.exprs[0])
        _, defers = self.defer_stack.pop()
        for call in reversed(defers):
            stmts.append(tast.TExprStat(call, e.location))
        block = tast.TBlock(stmts, e.location)
        return tast.TLetIn(block, value, value.type, e.location)

    # ======================================================================
    # statements
    # ======================================================================
    def check_block(self, block: sast.SBlock) -> tast.TBlock:
        self.defer_stack.append((False, []))
        stmts: list[tast.TStat] = []
        for s in block.statements:
            stmts.extend(self.check_stat(s))
        _, defers = self.defer_stack.pop()
        for call in reversed(defers):
            stmts.append(tast.TExprStat(call, block.location))
        return tast.TBlock(stmts, block.location)

    def _loop_block(self, block: sast.SBlock) -> tast.TBlock:
        self.loop_depth += 1
        self.defer_stack.append((True, []))
        try:
            stmts: list[tast.TStat] = []
            for s in block.statements:
                stmts.extend(self.check_stat(s))
            _, defers = self.defer_stack.pop()
            for call in reversed(defers):
                stmts.append(tast.TExprStat(call, block.location))
            return tast.TBlock(stmts, block.location)
        finally:
            self.loop_depth -= 1

    def check_stat(self, s) -> list[tast.TStat]:
        method = getattr(self, "_check_" + type(s).__name__, None)
        if method is None:
            raise TypeCheckError(
                f"cannot typecheck statement {type(s).__name__}",
                getattr(s, "location", None))
        result = method(s)
        return result if isinstance(result, list) else [result]

    def _check_SVarDecl(self, s: sast.SVarDecl) -> list[tast.TStat]:
        inits = None
        if s.inits is not None:
            inits = [self.check_rvalue(x) for x in s.inits]
            # tuple unpacking: var a, b = f()  where f returns {A, B}
            if len(inits) == 1 and len(s.symbols) > 1 \
                    and isinstance(inits[0].type, T.TupleType):
                return self._unpack_decl(s, inits[0])
            if len(inits) != len(s.symbols):
                raise TypeCheckError(
                    f"variable declaration has {len(s.symbols)} names but "
                    f"{len(inits)} initializers", s.location)
        types: list[T.Type] = []
        conv_inits = []
        for i, sym in enumerate(s.symbols):
            declared = s.types[i] if i < len(s.types) else None
            if declared is None and sym.type is not None:
                declared = sym.type
            if inits is not None:
                init = inits[i]
                ty = declared if declared is not None else init.type
                if isinstance(ty, T.StructType):
                    ty.complete()
                conv_inits.append(self.convert(init, ty, s.location))
            else:
                if declared is None:
                    raise TypeCheckError(
                        f"variable {sym!r} needs a type annotation or an "
                        f"initializer", s.location)
                ty = declared
            self._check_complete(ty, s.location)
            if isinstance(ty, T.TupleType) and ty.isunit():
                raise TypeCheckError("cannot declare a variable of unit type",
                                     s.location)
            types.append(ty)
            self.scope[sym] = ty
        return [tast.TVarDecl(list(s.symbols), types,
                              conv_inits if inits is not None else None,
                              s.location)]

    def _unpack_decl(self, s: sast.SVarDecl, init: tast.TExpr) -> list[tast.TStat]:
        tup = init.type
        assert isinstance(tup, T.TupleType)
        if len(tup.element_types) != len(s.symbols):
            raise TypeCheckError(
                f"cannot unpack {len(tup.element_types)} values into "
                f"{len(s.symbols)} variables", s.location)
        temp = Symbol(tup, "unpack")
        self.scope[temp] = tup
        out: list[tast.TStat] = [
            tast.TVarDecl([temp], [tup], [init], s.location)]
        for i, sym in enumerate(s.symbols):
            declared = s.types[i] if i < len(s.types) else None
            ety = tup.element_types[i]
            field = tast.TSelect(tast.TVar(temp, tup, s.location), f"_{i}",
                                 ety, s.location)
            ty = declared if declared is not None else ety
            value = self.convert(field, ty, s.location)
            self.scope[sym] = ty
            out.append(tast.TVarDecl([sym], [ty], [value], s.location))
        return out

    def _check_SAssign(self, s: sast.SAssign) -> list[tast.TStat]:
        lhs = [self.check_expr(x) for x in s.lhs]
        for x in lhs:
            if not x.lvalue:
                raise TypeCheckError("cannot assign to an rvalue", s.location)
        rhs = [self.check_rvalue(x) for x in s.rhs]
        if len(rhs) == 1 and len(lhs) > 1 and isinstance(rhs[0].type, T.TupleType):
            return self._unpack_assign(s, lhs, rhs[0])
        if len(lhs) != len(rhs):
            raise TypeCheckError(
                f"assignment has {len(lhs)} targets but {len(rhs)} values",
                s.location)
        rhs = [self.convert(r, l.type, s.location) for l, r in zip(lhs, rhs)]
        return [tast.TAssign(lhs, rhs, s.location)]

    def _unpack_assign(self, s, lhs, init) -> list[tast.TStat]:
        tup = init.type
        if len(tup.element_types) != len(lhs):
            raise TypeCheckError(
                f"cannot unpack {len(tup.element_types)} values into "
                f"{len(lhs)} targets", s.location)
        temp = Symbol(tup, "unpack")
        self.scope[temp] = tup
        out: list[tast.TStat] = [tast.TVarDecl([temp], [tup], [init], s.location)]
        assigns_l, assigns_r = [], []
        for i, target in enumerate(lhs):
            field = tast.TSelect(tast.TVar(temp, tup, s.location), f"_{i}",
                                 tup.element_types[i], s.location)
            assigns_l.append(target)
            assigns_r.append(self.convert(field, target.type, s.location))
        out.append(tast.TAssign(assigns_l, assigns_r, s.location))
        return out

    def _check_SIf(self, s: sast.SIf) -> tast.TStat:
        branches = []
        for cond, body in s.branches:
            tcond = self._check_cond(cond, s.location)
            branches.append((tcond, self.check_block(body)))
        orelse = self.check_block(s.orelse) if s.orelse is not None else None
        return tast.TIf(branches, orelse, s.location)

    def _check_cond(self, cond, location) -> tast.TExpr:
        typed = self.check_rvalue(cond)
        if typed.type is not T.bool_:
            raise TypeCheckError(
                f"condition must be bool, got {typed.type} (Terra has no "
                f"truthiness)", location)
        return typed

    def _check_SWhile(self, s: sast.SWhile) -> tast.TStat:
        cond = self._check_cond(s.cond, s.location)
        return tast.TWhile(cond, self._loop_block(s.body), s.location)

    def _check_SRepeat(self, s: sast.SRepeat) -> tast.TStat:
        # condition sees the loop body's scope in Lua; Terra scopes the body
        # separately — we follow Terra and check the body first.
        body = self._loop_block(s.body)
        cond = self._check_cond(s.cond, s.location)
        return tast.TRepeat(body, cond, s.location)

    def _check_SForNum(self, s: sast.SForNum) -> tast.TStat:
        start = self.check_rvalue(s.start)
        limit = self.check_rvalue(s.limit)
        step = self.check_rvalue(s.step) if s.step is not None else None
        var_type = s.symbol.type
        if var_type is None:
            # unify start and limit types so `for i = 0, n` with an int64
            # bound iterates at the bound's width
            var_type = start.type
            if isinstance(var_type, T.PrimitiveType) \
                    and isinstance(limit.type, T.PrimitiveType) \
                    and var_type.isarithmetic() and limit.type.isarithmetic():
                var_type = T.common_primitive(var_type, limit.type)
        if not var_type.isarithmetic():
            raise TypeCheckError(
                f"for-loop variable must be arithmetic, got {var_type}",
                s.location)
        start = self.convert(start, var_type, s.location)
        limit = self.convert(limit, var_type, s.location)
        step_sign = 1
        if step is not None:
            step = self.convert(step, var_type, s.location)
            if isinstance(step, tast.TConst):
                step_sign = 1 if step.value >= 0 else -1
            else:
                step_sign = 0
        self.scope[s.symbol] = var_type
        body = self._loop_block(s.body)
        return tast.TForNum(s.symbol, var_type, start, limit, step, body,
                            step_sign, s.location)

    def _check_SDoStat(self, s: sast.SDoStat) -> tast.TStat:
        return tast.TDoStat(self.check_block(s.body), s.location)

    def _check_SReturn(self, s: sast.SReturn) -> tast.TStat:
        exprs = [self.check_rvalue(x) for x in s.exprs]
        # `return f()` where f returns unit: evaluate, then return nothing
        if len(exprs) == 1 and isinstance(exprs[0].type, T.TupleType) \
                and exprs[0].type.isunit():
            stmts: list[tast.TStat] = [tast.TExprStat(exprs[0], s.location)]
            stmts.extend(self._defers_for_return(s.location))
            stmts.append(tast.TReturn(None, s.location))
            target = self.declared_ret if self.declared_ret is not None \
                else self.inferred_ret
            if target is None:
                self.inferred_ret = T.unit
            elif not (isinstance(target, T.TupleType) and target.isunit()):
                raise TypeCheckError(
                    f"function {self.func.name!r} must return {target}",
                    s.location)
            return tast.TDoStat(tast.TBlock(stmts, s.location), s.location)
        if len(exprs) == 0:
            actual: T.Type = T.unit
            value: Optional[tast.TExpr] = None
        elif len(exprs) == 1:
            actual = exprs[0].type
            value = exprs[0]
        else:
            actual = T.TupleType(tuple(x.type for x in exprs))
            value = tast.TCtor(actual, exprs, s.location)
        target = self.declared_ret if self.declared_ret is not None \
            else self.inferred_ret
        if target is None:
            self.inferred_ret = actual
            target = actual
        if isinstance(target, T.TupleType) and target.isunit():
            if value is not None:
                raise TypeCheckError(
                    f"function {self.func.name!r} returns no values but a "
                    f"return statement has one", s.location)
        elif value is None:
            raise TypeCheckError(
                f"function {self.func.name!r} must return a value of type "
                f"{target}", s.location)
        else:
            value = self.convert(value, target, s.location)
        defers = self._defers_for_return(s.location)
        if not defers:
            return tast.TReturn(value, s.location)
        # the return value is evaluated *before* deferred calls run
        stmts: list[tast.TStat] = []
        if value is not None:
            temp = Symbol(value.type, "retval")
            self.scope[temp] = value.type
            stmts.append(tast.TVarDecl([temp], [value.type], [value],
                                       s.location))
            value = tast.TVar(temp, value.type, s.location)
        stmts.extend(defers)
        stmts.append(tast.TReturn(value, s.location))
        return tast.TDoStat(tast.TBlock(stmts, s.location), s.location)

    def _defers_for_return(self, location) -> list[tast.TStat]:
        out = []
        for _, defers in reversed(self.defer_stack):
            for call in reversed(defers):
                out.append(tast.TExprStat(call, location))
        return out

    def _check_SBreak(self, s: sast.SBreak) -> tast.TStat:
        if self.loop_depth == 0:
            raise TypeCheckError("break outside of a loop", s.location)
        stmts: list[tast.TStat] = []
        for is_loop, defers in reversed(self.defer_stack):
            for call in reversed(defers):
                stmts.append(tast.TExprStat(call, s.location))
            if is_loop:
                break
        stmts.append(tast.TBreak(s.location))
        if len(stmts) == 1:
            return stmts[0]
        return tast.TDoStat(tast.TBlock(stmts, s.location), s.location)

    def _check_SExprStat(self, s: sast.SExprStat) -> tast.TStat:
        expr = self.check_expr(s.expr)
        return tast.TExprStat(expr, s.location)

    def _check_SDefer(self, s: sast.SDefer) -> list[tast.TStat]:
        call = self.check_expr(s.call)
        if not isinstance(call, tast.TCall):
            raise TypeCheckError("defer requires a function call", s.location)
        self.defer_stack[-1][1].append(call)
        return []
