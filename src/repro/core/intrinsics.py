"""Backend intrinsics exposed to Terra code.

The paper's auto-tuner (§6.1) relies on ``prefetch`` ("we use prefetch
intrinsics to optimize non-contiguous reads from memory") and on vector
types.  Intrinsics are meta-level values: referencing one from Terra code
produces an :class:`~repro.core.sast.SIntrinsic` node, which each backend
lowers in its own way (``__builtin_prefetch`` under gcc, a no-op in the
interpreter).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import TypeCheckError
from . import types as T


class Intrinsic:
    """A named backend intrinsic.  ``typerule`` receives the list of
    argument types and returns the result type (raising
    :class:`TypeCheckError` on misuse)."""

    is_terra_intrinsic = True

    def __init__(self, name: str, typerule: Callable[[list[T.Type]], T.Type]):
        self.intrinsic_name = name
        self.typerule = typerule

    def __repr__(self) -> str:
        return f"intrinsic({self.intrinsic_name})"


def _prefetch_rule(arg_types: list[T.Type]) -> T.Type:
    if not arg_types or not arg_types[0].ispointer():
        raise TypeCheckError(
            "prefetch requires a pointer as its first argument")
    if len(arg_types) > 4:
        raise TypeCheckError("prefetch takes at most 4 arguments")
    for ty in arg_types[1:]:
        if not ty.isintegral():
            raise TypeCheckError("prefetch hint arguments must be integers")
    return T.unit


def _fence_rule(arg_types: list[T.Type]) -> T.Type:
    if arg_types:
        raise TypeCheckError("fence takes no arguments")
    return T.unit


def _unary_float_rule(name: str):
    def rule(arg_types: list[T.Type]) -> T.Type:
        if len(arg_types) != 1:
            raise TypeCheckError(f"{name} takes one argument")
        ty = arg_types[0]
        if ty.isfloat():
            return ty
        if ty.isvector() and ty.isfloat():
            return ty
        raise TypeCheckError(f"{name} requires a float argument, got {ty}")
    return rule


def _binary_minmax_rule(name: str):
    def rule(arg_types: list[T.Type]) -> T.Type:
        if len(arg_types) != 2:
            raise TypeCheckError(f"{name} takes two arguments")
        a, b = arg_types
        if a is b and (a.isarithmetic() or (a.isvector() and a.isarithmetic())):
            return a
        if a.isarithmetic() and b.isarithmetic() and \
                isinstance(a, T.PrimitiveType) and isinstance(b, T.PrimitiveType):
            return T.common_primitive(a, b)
        raise TypeCheckError(f"{name} requires matching arithmetic types, "
                             f"got {a} and {b}")
    return rule


#: ``prefetch(addr, rw, locality [, cachetype])`` — hints a future access.
prefetch = Intrinsic("prefetch", _prefetch_rule)

#: full memory fence
fence = Intrinsic("fence", _fence_rule)

#: math intrinsics usable on floats and float vectors
sqrt = Intrinsic("sqrt", _unary_float_rule("sqrt"))
fabs = Intrinsic("fabs", _unary_float_rule("fabs"))
floor_ = Intrinsic("floor", _unary_float_rule("floor"))
ceil_ = Intrinsic("ceil", _unary_float_rule("ceil"))

#: scalar/vector select-free min/max
fmin = Intrinsic("fmin", _binary_minmax_rule("fmin"))
fmax = Intrinsic("fmax", _binary_minmax_rule("fmax"))


def _select_rule(arg_types: list[T.Type]) -> T.Type:
    if len(arg_types) != 3:
        raise TypeCheckError("select takes (cond, a, b)")
    cond, a, b = arg_types
    if a is not b:
        raise TypeCheckError(
            f"select branches must have the same type, got {a} and {b}")
    if cond is T.bool_:
        return a
    if isinstance(cond, T.VectorType) and cond.islogical():
        if not (isinstance(a, T.VectorType) and a.count == cond.count):
            raise TypeCheckError(
                f"vector select needs matching vector branches, got {a}")
        return a
    raise TypeCheckError(f"select condition must be bool or a bool vector, "
                         f"got {cond}")


#: ``select(cond, a, b)`` — branch-free choice; elementwise on vectors
#: (Terra's ``terralib.select``).  Both branches are always evaluated.
select = Intrinsic("select", _select_rule)

ALL_INTRINSICS = {i.intrinsic_name: i for i in
                  (prefetch, fence, sqrt, fabs, floor_, ceil_, fmin, fmax,
                   select)}


def _make_vectorof():
    """``vectorof(T, a, b, ...)`` — a vector literal from lane values
    (Terra's ``vectorof``), implemented as a macro over quotes."""
    from .specialize import Macro
    from . import sast
    from .quotes import Quote
    from .symbols import Symbol

    def vectorof_impl(type_quote, *lanes):
        tree = type_quote.tree if isinstance(type_quote, Quote) else None
        if not isinstance(tree, sast.STypeRef) \
                or not isinstance(tree.type, T.PrimitiveType):
            raise TypeCheckError(
                "vectorof(T, ...) needs a primitive element type first")
        elem = tree.type
        n = len(lanes)
        if n == 0:
            raise TypeCheckError("vectorof needs at least one lane value")
        vty = T.vector(elem, n)
        sym = Symbol(vty, "vlit")
        stmts = [sast.SVarDecl([sym], [vty], None)]
        for i, lane in enumerate(lanes):
            stmts.append(sast.SAssign(
                [sast.SIndex(sast.SVar(sym), sast.SConst(i, T.int32))],
                [lane.as_expression()]))
        return Quote.from_statements(sast.SBlock(stmts),
                                     [sast.SVar(sym)])

    return Macro(vectorof_impl, "vectorof")


#: vector literal constructor (a macro, usable directly from Terra code)
vectorof = _make_vectorof()


def lookup(name: str) -> Optional[Intrinsic]:
    return ALL_INTRINSICS.get(name)
