"""Pretty-printing of specialized and typed Terra trees.

Real Terra's ``fn:printpretty()`` — indispensable when debugging staged
code, since the source the programmer wrote is not the code that exists
after specialization (escapes evaluated, variables renamed, quotes
spliced).  Two printers:

* :func:`format_specialized` — the eagerly-specialized (untyped) tree,
* :func:`format_typed` — the typed IR, with inferred types and the
  compiler-inserted conversions visible.
"""

from __future__ import annotations

from . import sast, tast
from . import types as T


class _Printer:
    def __init__(self):
        self.lines: list[str] = []
        self.depth = 0

    def line(self, text: str) -> None:
        self.lines.append("  " * self.depth + text)

    def render(self) -> str:
        return "\n".join(self.lines)


# ===========================================================================
# specialized trees
# ===========================================================================

def format_specialized(fn) -> str:
    """Render a defined TerraFunction's specialized form as Terra-like
    source (what exists after eager specialization, before typechecking)."""
    if fn.is_external:
        return f"terra {fn.name} :: {fn.external_type} -- external"
    if fn.body is None:
        return f"terra {fn.name} -- declared, not defined"
    p = _Printer()
    params = ", ".join(
        f"{s.name} : {t}" for s, t in zip(fn.param_symbols, fn.param_types))
    ret = f" : {fn.declared_rettype}" if fn.declared_rettype is not None else ""
    p.line(f"terra {fn.name}({params}){ret}")
    p.depth += 1
    _spec_block(p, fn.body)
    p.depth -= 1
    p.line("end")
    return p.render()


def _spec_block(p: _Printer, block: sast.SBlock) -> None:
    for stat in block.statements:
        _spec_stat(p, stat)


def _spec_stat(p: _Printer, s: sast.SStat) -> None:
    if isinstance(s, sast.SVarDecl):
        names = ", ".join(
            sym.name + (f" : {ty}" if ty is not None else "")
            for sym, ty in zip(s.symbols, s.types))
        if s.inits is not None:
            p.line(f"var {names} = "
                   f"{', '.join(spec_expr_str(e) for e in s.inits)}")
        else:
            p.line(f"var {names}")
    elif isinstance(s, sast.SAssign):
        p.line(f"{', '.join(spec_expr_str(e) for e in s.lhs)} = "
               f"{', '.join(spec_expr_str(e) for e in s.rhs)}")
    elif isinstance(s, sast.SIf):
        for i, (cond, body) in enumerate(s.branches):
            p.line(f"{'if' if i == 0 else 'elseif'} {spec_expr_str(cond)} then")
            p.depth += 1
            _spec_block(p, body)
            p.depth -= 1
        if s.orelse is not None:
            p.line("else")
            p.depth += 1
            _spec_block(p, s.orelse)
            p.depth -= 1
        p.line("end")
    elif isinstance(s, sast.SWhile):
        p.line(f"while {spec_expr_str(s.cond)} do")
        p.depth += 1
        _spec_block(p, s.body)
        p.depth -= 1
        p.line("end")
    elif isinstance(s, sast.SRepeat):
        p.line("repeat")
        p.depth += 1
        _spec_block(p, s.body)
        p.depth -= 1
        p.line(f"until {spec_expr_str(s.cond)}")
    elif isinstance(s, sast.SForNum):
        step = f", {spec_expr_str(s.step)}" if s.step is not None else ""
        p.line(f"for {s.symbol.name} = {spec_expr_str(s.start)}, "
               f"{spec_expr_str(s.limit)}{step} do")
        p.depth += 1
        _spec_block(p, s.body)
        p.depth -= 1
        p.line("end")
    elif isinstance(s, sast.SDoStat):
        p.line("do")
        p.depth += 1
        _spec_block(p, s.body)
        p.depth -= 1
        p.line("end")
    elif isinstance(s, sast.SReturn):
        p.line("return " + ", ".join(spec_expr_str(e) for e in s.exprs)
               if s.exprs else "return")
    elif isinstance(s, sast.SBreak):
        p.line("break")
    elif isinstance(s, sast.SExprStat):
        p.line(spec_expr_str(s.expr))
    elif isinstance(s, sast.SDefer):
        p.line(f"defer {spec_expr_str(s.call)}")
    else:
        p.line(f"-- <{type(s).__name__}>")


def spec_expr_str(e: sast.SExpr) -> str:
    """One-line rendering of a specialized expression."""
    if isinstance(e, sast.SConst):
        if isinstance(e.value, float) and e.type is T.float32:
            return f"{e.value!r}f"
        return repr(e.value) if not isinstance(e.value, bool) \
            else ("true" if e.value else "false")
    if isinstance(e, sast.SString):
        return repr(e.value)
    if isinstance(e, sast.SNull):
        return "nil"
    if isinstance(e, sast.SVar):
        return e.symbol.name
    if isinstance(e, sast.SGlobal):
        return e.glob.name
    if isinstance(e, sast.SFuncRef):
        return e.func.name
    if isinstance(e, sast.STypeRef):
        return f"[{e.type}]"
    if isinstance(e, sast.SCast):
        return f"[{e.type}]({spec_expr_str(e.expr)})"
    if isinstance(e, sast.SApply):
        return (f"{spec_expr_str(e.fn)}"
                f"({', '.join(spec_expr_str(a) for a in e.args)})")
    if isinstance(e, sast.SMethodCall):
        return (f"{spec_expr_str(e.obj)}:{e.name}"
                f"({', '.join(spec_expr_str(a) for a in e.args)})")
    if isinstance(e, sast.SSelect):
        return f"{spec_expr_str(e.obj)}.{e.field}"
    if isinstance(e, sast.SIndex):
        return f"{spec_expr_str(e.obj)}[{spec_expr_str(e.index)}]"
    if isinstance(e, sast.SUnOp):
        if e.op in ("&", "@"):
            return f"{e.op}{spec_expr_str(e.operand)}"
        return f"{e.op} {spec_expr_str(e.operand)}" if e.op == "not" \
            else f"{e.op}{spec_expr_str(e.operand)}"
    if isinstance(e, sast.SBinOp):
        return f"({spec_expr_str(e.lhs)} {e.op} {spec_expr_str(e.rhs)})"
    if isinstance(e, sast.SCtor):
        prefix = str(e.type) if e.type is not None else ""
        fields = ", ".join(
            (f"{f.name} = " if f.name else "") + spec_expr_str(f.value)
            for f in e.fields)
        return f"{prefix} {{ {fields} }}"
    if isinstance(e, sast.SLetIn):
        return "(quote ... in " + \
            ", ".join(spec_expr_str(x) for x in e.exprs) + ")"
    if isinstance(e, sast.SIntrinsic):
        return f"{e.name}({', '.join(spec_expr_str(a) for a in e.args)})"
    if isinstance(e, sast.SPyCallback):
        return f"<callback {e.callback.name}>"
    return f"<{type(e).__name__}>"


# ===========================================================================
# typed trees
# ===========================================================================

def format_typed(fn) -> str:
    """Render a typechecked TerraFunction's typed IR, with every
    expression's type and the inserted conversions visible."""
    fn.ensure_typechecked()
    typed = fn.typed
    if typed is None:
        return f"terra {fn.name} :: {fn.gettype()} -- external"
    return format_typed_ir(typed)


def format_typed_ir(typed: tast.TypedFunction, body=None) -> str:
    """Render a TypedFunction directly (the pass manager's IR dumps use
    this: mid-pipeline there is only the typed tree, no TerraFunction
    wrapper involvement needed).  ``body`` renders an alternate body for
    the same function, e.g. a per-level pipeline snapshot."""
    p = _Printer()
    params = ", ".join(
        f"{s.name} : {t}"
        for s, t in zip(typed.param_symbols, typed.type.parameters))
    p.line(f"terra {typed.name}({params}) : {typed.type.returntype}")
    p.depth += 1
    _typed_block(p, typed.body if body is None else body)
    p.depth -= 1
    p.line("end")
    return p.render()


def _typed_block(p: _Printer, block: tast.TBlock) -> None:
    for stat in block.statements:
        _typed_stat(p, stat)


def _typed_stat(p: _Printer, s: tast.TStat) -> None:
    if isinstance(s, tast.TVarDecl):
        names = ", ".join(f"{sym.name} : {ty}"
                          for sym, ty in zip(s.symbols, s.types))
        if s.inits is not None:
            p.line(f"var {names} = "
                   f"{', '.join(typed_expr_str(e) for e in s.inits)}")
        else:
            p.line(f"var {names} -- zero-initialized")
    elif isinstance(s, tast.TAssign):
        p.line(f"{', '.join(typed_expr_str(e) for e in s.lhs)} = "
               f"{', '.join(typed_expr_str(e) for e in s.rhs)}")
    elif isinstance(s, tast.TIf):
        for i, (cond, body) in enumerate(s.branches):
            p.line(f"{'if' if i == 0 else 'elseif'} "
                   f"{typed_expr_str(cond)} then")
            p.depth += 1
            _typed_block(p, body)
            p.depth -= 1
        if s.orelse is not None:
            p.line("else")
            p.depth += 1
            _typed_block(p, s.orelse)
            p.depth -= 1
        p.line("end")
    elif isinstance(s, tast.TWhile):
        p.line(f"while {typed_expr_str(s.cond)} do")
        p.depth += 1
        _typed_block(p, s.body)
        p.depth -= 1
        p.line("end")
    elif isinstance(s, tast.TRepeat):
        p.line("repeat")
        p.depth += 1
        _typed_block(p, s.body)
        p.depth -= 1
        p.line(f"until {typed_expr_str(s.cond)}")
    elif isinstance(s, tast.TForNum):
        step = f", {typed_expr_str(s.step)}" if s.step is not None else ""
        p.line(f"for {s.symbol.name} : {s.var_type} = "
               f"{typed_expr_str(s.start)}, {typed_expr_str(s.limit)}{step} do")
        p.depth += 1
        _typed_block(p, s.body)
        p.depth -= 1
        p.line("end")
    elif isinstance(s, tast.TDoStat):
        p.line("do")
        p.depth += 1
        _typed_block(p, s.body)
        p.depth -= 1
        p.line("end")
    elif isinstance(s, tast.TReturn):
        p.line("return" if s.expr is None
               else f"return {typed_expr_str(s.expr)}")
    elif isinstance(s, tast.TBreak):
        p.line("break")
    elif isinstance(s, tast.TExprStat):
        p.line(typed_expr_str(s.expr))
    else:
        p.line(f"-- <{type(s).__name__}>")


def typed_expr_str(e: tast.TExpr) -> str:
    if isinstance(e, tast.TConst):
        return repr(e.value) if not isinstance(e.value, bool) \
            else ("true" if e.value else "false")
    if isinstance(e, tast.TString):
        return repr(e.value)
    if isinstance(e, tast.TNull):
        return f"nil:{e.type}"
    if isinstance(e, tast.TVar):
        return e.symbol.name
    if isinstance(e, tast.TGlobal):
        return e.glob.name
    if isinstance(e, tast.TFuncLit):
        return e.func.name
    if isinstance(e, tast.TCallback):
        return f"<callback {e.callback.name}>"
    if isinstance(e, tast.TCast):
        return f"[{e.type}:{e.kind}]({typed_expr_str(e.expr)})"
    if isinstance(e, tast.TCall):
        return (f"{typed_expr_str(e.fn)}"
                f"({', '.join(typed_expr_str(a) for a in e.args)})")
    if isinstance(e, tast.TSelect):
        return f"{typed_expr_str(e.obj)}.{e.field}"
    if isinstance(e, (tast.TIndex, tast.TVectorIndex)):
        return f"{typed_expr_str(e.obj)}[{typed_expr_str(e.index)}]"
    if isinstance(e, tast.TDeref):
        return f"@{typed_expr_str(e.ptr)}"
    if isinstance(e, tast.TAddressOf):
        return f"&{typed_expr_str(e.operand)}"
    if isinstance(e, tast.TUnOp):
        return f"{e.op}({typed_expr_str(e.operand)})"
    if isinstance(e, tast.TBinOp):
        return f"({typed_expr_str(e.lhs)} {e.op} {typed_expr_str(e.rhs)})"
    if isinstance(e, tast.TLogical):
        return f"({typed_expr_str(e.lhs)} {e.op} {typed_expr_str(e.rhs)})"
    if isinstance(e, tast.TCtor):
        return (f"{e.type} {{ "
                f"{', '.join(typed_expr_str(x) for x in e.inits)} }}")
    if isinstance(e, tast.TLetIn):
        return f"({{...}} in {typed_expr_str(e.expr)})"
    if isinstance(e, tast.TIntrinsic):
        return f"{e.name}({', '.join(typed_expr_str(a) for a in e.args)})"
    return f"<{type(e).__name__}>"
