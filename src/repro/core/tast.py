"""Typed Terra IR — the output of the lazy typechecker.

Every expression node carries a ``type`` and an ``lvalue`` flag.  Both
backends (the gcc C emitter and the reference interpreter) consume exactly
this IR; implicit conversions have been made explicit as ``TCast`` nodes,
method calls are resolved to direct calls, user-defined ``__cast``
metamethods have been expanded, and ``defer`` has been lowered away.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from . import types as T
from .symbols import Symbol


class TNode:
    _fields: tuple[str, ...] = ()

    def __init__(self, location=None):
        self.location = location

    def __repr__(self) -> str:
        parts = ", ".join(f"{f}={getattr(self, f, None)!r}" for f in self._fields)
        return f"{type(self).__name__}({parts})"


class TExpr(TNode):
    type: T.Type
    lvalue: bool = False


class TConst(TExpr):
    _fields = ("value", "type")

    def __init__(self, value, type: T.Type, location=None):  # noqa: A002
        super().__init__(location)
        self.value = value
        self.type = type


class TString(TExpr):
    """A string constant of type rawstring; backends intern the bytes."""

    _fields = ("value",)

    def __init__(self, value: str, location=None):
        super().__init__(location)
        self.value = value
        self.type = T.rawstring


class TNull(TExpr):
    _fields = ("type",)

    def __init__(self, type: T.Type, location=None):  # noqa: A002
        super().__init__(location)
        self.type = type


class TVar(TExpr):
    lvalue = True
    _fields = ("symbol", "type")

    def __init__(self, symbol: Symbol, type: T.Type, location=None):  # noqa: A002
        super().__init__(location)
        self.symbol = symbol
        self.type = type


class TGlobal(TExpr):
    lvalue = True
    _fields = ("glob",)

    def __init__(self, glob, location=None):
        super().__init__(location)
        self.glob = glob
        self.type = glob.type


class TFuncLit(TExpr):
    """A reference to a Terra function used as a value (function pointer)."""

    _fields = ("func",)

    def __init__(self, func, ftype: "T.FunctionType | None" = None,
                 location=None):
        super().__init__(location)
        self.func = func
        if ftype is None:
            ftype = func.gettype()
        self.type = T.pointer(ftype)


class TCallback(TExpr):
    _fields = ("callback",)

    def __init__(self, callback, location=None):
        super().__init__(location)
        self.callback = callback
        self.type = T.pointer(callback.type)


class TCast(TExpr):
    """An explicit or compiler-inserted conversion.  ``kind`` is one of
    ``"numeric"``, ``"pointer"``, ``"broadcast"`` (scalar->vector),
    ``"vector"`` (elementwise), ``"ptr-int"``, ``"int-ptr"``,
    ``"aggregate"`` (anonymous struct -> named struct, field by field)."""

    _fields = ("type", "expr", "kind")

    def __init__(self, type: T.Type, expr: TExpr, kind: str,  # noqa: A002
                 location=None):
        super().__init__(location)
        self.type = type
        self.expr = expr
        self.kind = kind


class TCall(TExpr):
    """A call.  ``fn`` is a TFuncLit (direct), TCallback, or a pointer-typed
    expression (indirect)."""

    _fields = ("fn", "args", "type")

    def __init__(self, fn: TExpr, args: Sequence[TExpr], type: T.Type,  # noqa: A002
                 location=None):
        super().__init__(location)
        self.fn = fn
        self.args = list(args)
        self.type = type


class TSelect(TExpr):
    """Struct field access; ``obj`` is struct-typed (auto-deref of pointers
    is made explicit with TDeref by the typechecker)."""

    _fields = ("obj", "field", "type")

    def __init__(self, obj: TExpr, field: str, type: T.Type,  # noqa: A002
                 location=None):
        super().__init__(location)
        self.obj = obj
        self.field = field
        self.type = type

    @property
    def lvalue(self) -> bool:
        return self.obj.lvalue


class TIndex(TExpr):
    """``a[i]`` where ``a`` is pointer (lvalue result), array or vector."""

    _fields = ("obj", "index", "type")

    def __init__(self, obj: TExpr, index: TExpr, type: T.Type,  # noqa: A002
                 location=None):
        super().__init__(location)
        self.obj = obj
        self.index = index
        self.type = type

    @property
    def lvalue(self) -> bool:
        if self.obj.type.ispointer():
            return True
        return self.obj.lvalue


class TDeref(TExpr):
    lvalue = True
    _fields = ("ptr", "type")

    def __init__(self, ptr: TExpr, type: T.Type, location=None):  # noqa: A002
        super().__init__(location)
        self.ptr = ptr
        self.type = type


class TAddressOf(TExpr):
    _fields = ("operand", "type")

    def __init__(self, operand: TExpr, location=None):
        super().__init__(location)
        self.operand = operand
        self.type = T.pointer(operand.type)


class TUnOp(TExpr):
    """``-`` (negate), ``not`` (logical or bitwise complement)."""

    _fields = ("op", "operand", "type")

    def __init__(self, op: str, operand: TExpr, type: T.Type,  # noqa: A002
                 location=None):
        super().__init__(location)
        self.op = op
        self.operand = operand
        self.type = type


class TBinOp(TExpr):
    _fields = ("op", "lhs", "rhs", "type")

    def __init__(self, op: str, lhs: TExpr, rhs: TExpr, type: T.Type,  # noqa: A002
                 location=None):
        super().__init__(location)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.type = type


class TLogical(TExpr):
    """Short-circuit ``and``/``or`` on scalar booleans."""

    _fields = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: TExpr, rhs: TExpr, location=None):
        super().__init__(location)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.type = T.bool_


class TCtor(TExpr):
    """A fully-resolved aggregate constructor: one init expression per
    entry of ``type`` (zero-fill is explicit as TConst/TCtor zeros)."""

    _fields = ("type", "inits")

    def __init__(self, type: T.Type, inits: Sequence[TExpr],  # noqa: A002
                 location=None):
        super().__init__(location)
        self.type = type
        self.inits = list(inits)


class TLetIn(TExpr):
    """Statements followed by a value (spliced statements-quote with
    ``in``); gcc backend lowers to a statement expression."""

    _fields = ("block", "expr", "type")

    def __init__(self, block: "TBlock", expr: TExpr, type: T.Type,  # noqa: A002
                 location=None):
        super().__init__(location)
        self.block = block
        self.expr = expr
        self.type = type


class TIntrinsic(TExpr):
    _fields = ("name", "args", "type")

    def __init__(self, name: str, args: Sequence[TExpr], type: T.Type,  # noqa: A002
                 location=None):
        super().__init__(location)
        self.name = name
        self.args = list(args)
        self.type = type


class TVectorIndex(TExpr):
    """Reading/writing one lane of a vector lvalue."""

    _fields = ("obj", "index", "type")

    def __init__(self, obj: TExpr, index: TExpr, type: T.Type,  # noqa: A002
                 location=None):
        super().__init__(location)
        self.obj = obj
        self.index = index
        self.type = type

    @property
    def lvalue(self) -> bool:
        return self.obj.lvalue


# -- statements -----------------------------------------------------------------

class TStat(TNode):
    pass


class TBlock(TNode):
    _fields = ("statements",)

    def __init__(self, statements: Sequence[TStat], location=None):
        super().__init__(location)
        self.statements = list(statements)


class TVarDecl(TStat):
    _fields = ("symbols", "types", "inits")

    def __init__(self, symbols: Sequence[Symbol], types: Sequence[T.Type],
                 inits: Optional[Sequence[TExpr]], location=None):
        super().__init__(location)
        self.symbols = list(symbols)
        self.types = list(types)
        self.inits = list(inits) if inits is not None else None


class TAssign(TStat):
    _fields = ("lhs", "rhs")

    def __init__(self, lhs: Sequence[TExpr], rhs: Sequence[TExpr], location=None):
        super().__init__(location)
        self.lhs = list(lhs)
        self.rhs = list(rhs)


class TIf(TStat):
    _fields = ("branches", "orelse")

    def __init__(self, branches: Sequence[tuple[TExpr, TBlock]],
                 orelse: Optional[TBlock], location=None):
        super().__init__(location)
        self.branches = list(branches)
        self.orelse = orelse


class TWhile(TStat):
    _fields = ("cond", "body")

    def __init__(self, cond: TExpr, body: TBlock, location=None):
        super().__init__(location)
        self.cond = cond
        self.body = body


class TRepeat(TStat):
    _fields = ("body", "cond")

    def __init__(self, body: TBlock, cond: TExpr, location=None):
        super().__init__(location)
        self.body = body
        self.cond = cond


class TForNum(TStat):
    """Half-open numeric loop; ``step_sign`` is +1/-1 when the step is a
    compile-time constant, else 0 (runtime direction check)."""

    _fields = ("symbol", "var_type", "start", "limit", "step", "body")

    def __init__(self, symbol: Symbol, var_type: T.Type, start: TExpr,
                 limit: TExpr, step: Optional[TExpr], body: TBlock,
                 step_sign: int = 1, location=None):
        super().__init__(location)
        self.symbol = symbol
        self.var_type = var_type
        self.start = start
        self.limit = limit
        self.step = step
        self.step_sign = step_sign
        self.body = body


class TDoStat(TStat):
    _fields = ("body",)

    def __init__(self, body: TBlock, location=None):
        super().__init__(location)
        self.body = body


class TReturn(TStat):
    """``expr`` is None for unit returns; multi-returns are a TCtor of the
    function's tuple type."""

    _fields = ("expr",)

    def __init__(self, expr: Optional[TExpr], location=None):
        super().__init__(location)
        self.expr = expr


class TBreak(TStat):
    pass


class TExprStat(TStat):
    _fields = ("expr",)

    def __init__(self, expr: TExpr, location=None):
        super().__init__(location)
        self.expr = expr


class TypedFunction:
    """The typechecked form of one Terra function."""

    def __init__(self, func, param_symbols: list[Symbol],
                 ftype: T.FunctionType, body: TBlock):
        self.func = func
        self.param_symbols = param_symbols
        self.type = ftype
        self.body = body
        #: direct references discovered during typechecking, for linking
        self.referenced_functions: list = []
        self.referenced_globals: list = []
        self.referenced_callbacks: list = []
        self.string_constants: list[str] = []
        #: highest :mod:`repro.passes` pipeline level already applied to
        #: ``body`` (0 = raw typechecker output).  Guarded by
        #: ``_pipeline_lock`` so concurrent compiles can neither
        #: double-transform the tree nor observe it half-rewritten.
        self.pipeline_level: int = 0
        self._pipeline_lock = threading.Lock()
        #: per-level body snapshots, cloned by the pipeline just before it
        #: advances ``body`` past a level; a backend that requests a level
        #: the in-place tree has already moved beyond is served from these
        #: (see :func:`repro.passes.pipelined_body`).
        self._pipeline_bodies: dict[int, TBlock] = {}

    @property
    def name(self) -> str:
        return self.func.name


def walk(node):
    """Yield every TNode in a typed tree (pre-order)."""
    if isinstance(node, TNode):
        yield node
        for field in node._fields:
            yield from walk(getattr(node, field))
    elif isinstance(node, (list, tuple)):
        for item in node:
            yield from walk(item)


def clone(node):
    """Structurally clone a typed (sub)tree.

    TNodes are duplicated; symbols, types, globals, functions, and source
    locations are shared by reference, so identity-based facts (interned
    types, symbol scoping) survive the copy.  The pass pipeline uses this
    to snapshot a function body before transforming it further.
    """
    if isinstance(node, TNode):
        new = object.__new__(type(node))
        for key, value in vars(node).items():
            new.__dict__[key] = clone(value)
        return new
    if isinstance(node, list):
        return [clone(item) for item in node]
    if isinstance(node, tuple):
        return tuple(clone(item) for item in node)
    return node
